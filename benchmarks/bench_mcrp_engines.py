"""Ablation A1: the MCRP engine choice, enumerated from the registry.

Runs every registered maximum-cycle-ratio engine on the 1-periodic
constraint graphs of Table-1-style instances, plus Karp's cycle-mean
core on HSDF-expanded graphs. Engines come from
:mod:`repro.mcrp.registry`, so a newly registered engine is picked up
here with zero edits; engines flagged ``quadratic`` (Θ(nm) per oracle
probe) are kept off the largest instances.

Expected outcome (recorded in EXPERIMENTS.md): the compiled-core
``hybrid`` engine wins on large graphs — float Howard lands on the
optimum and one exact probe certifies it — with plain ratio iteration
close behind; Lawler's bisection is a constant factor slower (it cannot
jump); the pure-Python ``bellman`` baseline trails by the vectorization
factor.

``test_hybrid_beats_default_ratio_iteration`` is the acceptance gate of
the compiled-core refactor: identical exact ``Fraction`` results, lower
wall-clock than the default from-scratch ratio-iteration solve on the
largest bundled graphs. The seed's pre-refactor implementation
(per-solve Fraction scaling, per-probe ``argsort``) no longer exists
in-tree, so the gate compares against today's *default* engine — which
already runs on the compiled core and is strictly faster than the seed
path was, making the gate conservative. The pure-Python ``bellman``
engine rides along in the artifact as the closest in-tree proxy for an
un-vectorized solve.
"""

import time

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis import build_constraint_graph
from repro.baselines.expansion import expand_sdf_to_hsdf
from repro.generators.dsp import samplerate_converter, satellite_receiver
from repro.generators.random_sdf import large_hsdf, mimic_dsp
from repro.mcrp import (
    BiValuedGraph,
    all_engines,
    max_cycle_mean,
    max_cycle_ratio,
)

INSTANCES = {
    "samplerate": samplerate_converter,
    "satellite": satellite_receiver,
    "mimicdsp3": lambda: mimic_dsp(3),
    "lghsdf2": lambda: large_hsdf(2),
}
LARGE = {"lghsdf2"}

ENGINES = {info.name: info for info in all_engines()}


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("instance", sorted(INSTANCES))
def test_engine_on_constraint_graph(benchmark, engine, instance):
    info = ENGINES[engine]
    if info.quadratic and instance in LARGE:
        pytest.skip(f"{engine} is quadratic; skipped on {instance}")
    graph = INSTANCES[instance]()
    bi, _ = build_constraint_graph(graph)
    result = benchmark(lambda: info.solve(bi))
    assert result.ratio is not None and result.ratio > 0


@pytest.mark.parametrize("instance", ["samplerate", "mimicdsp3"])
def test_engines_agree(benchmark, instance):
    graph = INSTANCES[instance]()
    bi, _ = build_constraint_graph(graph)
    ratios = {name: info.solve(bi).ratio for name, info in ENGINES.items()}
    assert len(set(ratios.values())) == 1, ratios
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _expanded_constraint_graph(graph, cap=None):
    """The K-expanded bi-valued constraint graph (K = q, capped)."""
    from repro.analysis import repetition_vector
    from repro.kperiodic.expansion import (
        expand_graph,
        expanded_repetition_vector,
    )

    q = repetition_vector(graph)
    K = {t: (q[t] if cap is None else min(q[t], cap)) for t in q}
    expanded = expand_graph(graph, K)
    q_tilde = expanded_repetition_vector(q, K)
    bi, _ = build_constraint_graph(expanded, q_tilde, serialize=True)
    return bi


def test_hybrid_beats_default_ratio_iteration(results_dir):
    """Compiled-core hybrid vs the default from-scratch ratio iteration.

    Measured on the largest solver inputs the bundle produces — the
    K-expanded constraint graphs K-Iter actually grinds on in its final
    rounds (the 1-periodic graphs are a handful of nodes and finish in
    microseconds either way). Hybrid must return identical ``Fraction``
    ratios and win wall-clock on the largest instance (best-of-3 each;
    compilation runs fresh per timing run via ``invalidate``). The
    baseline is today's default engine, not the (gone) seed
    implementation — a conservative bar, see the module docstring; the
    pure-Python ``bellman`` row gives the un-vectorized reference.
    """
    default = ENGINES["ratio-iteration"].solve
    hybrid = ENGINES["hybrid"].solve
    bellman = ENGINES["bellman"].solve
    cases = [
        ("mimicdsp3-K8", lambda: _expanded_constraint_graph(mimic_dsp(3), 8)),
        ("satellite-fullq",
         lambda: _expanded_constraint_graph(satellite_receiver())),
    ]
    rows = []
    for name, build in cases:
        bi = build()

        def timed(solver, rounds=3):
            best = float("inf")
            ratio = None
            for _ in range(rounds):
                bi.invalidate()
                start = time.perf_counter()
                result = solver(bi)
                best = min(best, time.perf_counter() - start)
                ratio = result.ratio
            return best, ratio

        base_time, base_ratio = timed(default)
        hybrid_time, hybrid_ratio = timed(hybrid)
        pure_time, pure_ratio = timed(bellman, rounds=1)
        assert hybrid_ratio == base_ratio == pure_ratio  # exactness
        rows.append((name, base_time, hybrid_time, pure_time,
                     base_time / max(hybrid_time, 1e-12)))
    text = "\n".join(
        f"{name:<16} ratio-iteration {base * 1e3:8.2f}ms   "
        f"hybrid {hyb * 1e3:8.2f}ms   "
        f"bellman(pure-py) {pure * 1e3:8.2f}ms   speedup {speedup:5.2f}x"
        for name, base, hyb, pure, speedup in rows
    )
    write_artifact("ablation_hybrid_vs_default.txt", text)
    largest = rows[-1]
    assert largest[2] < largest[1], (
        f"hybrid ({largest[2]:.4f}s) should beat the default "
        f"ratio-iteration path ({largest[1]:.4f}s) on {largest[0]}:\n{text}"
    )


def test_vectorized_karp_beats_python_karp(results_dir):
    """The vectorized Karp table vs the pure-Python reference row.

    The two engines share the ascending iteration, the oracle contract
    and the exact selection — only the table implementation differs —
    so identical ``Fraction`` λ* is a hard assertion and the wall-clock
    ratio isolates the vectorization. Measured on the largest expanded
    constraint graphs the bundle produces (the K-expanded graphs K-Iter
    grinds on in its final rounds); the gate requires ≥2x on the
    largest instance — in practice the gap is an order of magnitude,
    which is why the generic parametrization above keeps `karp-python`
    (flagged quadratic) off the LARGE instances entirely.
    """
    karp_vec = ENGINES["karp"].solve
    karp_py = ENGINES["karp-python"].solve
    cases = [
        ("mimicdsp3-K4", lambda: _expanded_constraint_graph(mimic_dsp(3), 4)),
        ("satellite-fullq",
         lambda: _expanded_constraint_graph(satellite_receiver())),
    ]
    rows = []
    for name, build in cases:
        bi = build()

        def timed(solver, rounds=2):
            best = float("inf")
            ratio = None
            for _ in range(rounds):
                bi.invalidate()
                start = time.perf_counter()
                result = solver(bi)
                best = min(best, time.perf_counter() - start)
                ratio = result.ratio
            return best, ratio

        vec_time, vec_ratio = timed(karp_vec)
        py_time, py_ratio = timed(karp_py, rounds=1)
        assert vec_ratio == py_ratio  # exactness: identical Fractions
        rows.append((name, bi.node_count, bi.arc_count, vec_time, py_time,
                     py_time / max(vec_time, 1e-12)))
    text = "\n".join(
        f"{name:<16} n={n:<5} m={m:<5} karp(vectorized) {vec * 1e3:9.2f}ms"
        f"   karp-python {py * 1e3:9.2f}ms   speedup {speedup:6.2f}x"
        for name, n, m, vec, py, speedup in rows
    )
    write_artifact("ablation_karp_vectorized.txt", text)
    largest = rows[-1]
    assert largest[5] >= 2.0, (
        f"vectorized karp ({largest[3]:.3f}s) must be ≥2x faster than "
        f"karp-python ({largest[4]:.3f}s) on {largest[0]}:\n{text}"
    )


def test_compiled_cache_amortization(results_dir):
    """One compile, many solves: the cache must make re-solves cheap."""
    graph = INSTANCES["mimicdsp3"]()
    bi, _ = build_constraint_graph(graph)  # emits the compiled form

    start = time.perf_counter()
    bi.invalidate()
    bi.compile()
    cold = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(10):
        bi.compile()
    warm = (time.perf_counter() - start) / 10
    write_artifact(
        "ablation_compile_cache.txt",
        f"cold compile {cold * 1e3:.3f}ms, cached access {warm * 1e6:.1f}us",
    )
    assert warm < cold


def test_karp_on_hsdf_expansion(benchmark):
    graph = mimic_dsp(7)  # moderate Σq keeps Karp's Θ(nm) table small
    hsdf, _ = expand_sdf_to_hsdf(graph, reduced=True)
    # Karp needs unit transits: measure it on a unit-H version of the
    # same topology.
    unit = BiValuedGraph(hsdf.node_count, labels=hsdf.labels)
    for src, dst, cost, transit in hsdf.arcs():
        unit.add_arc(src, dst, cost, 1)
    result = benchmark(lambda: max_cycle_mean(unit))
    reference = max_cycle_ratio(unit)
    assert result.ratio == reference.ratio
