"""Ablation A1: the MCRP engine choice.

Compares the three exact maximum-cycle-ratio engines on the 1-periodic
constraint graphs of Table-1-style instances, plus Karp on HSDF-expanded
graphs. Expected outcome (recorded in EXPERIMENTS.md): ratio iteration
with the utilization warm start wins; Howard's float phase only pays off
on graphs where the warm start is far from λ*; Lawler's bisection is a
constant factor slower (it cannot jump).
"""

import pytest

from repro.analysis import build_constraint_graph, repetition_vector
from repro.baselines.expansion import expand_sdf_to_hsdf
from repro.generators.dsp import samplerate_converter, satellite_receiver
from repro.generators.random_sdf import large_hsdf, mimic_dsp
from repro.mcrp import (
    max_cycle_mean,
    max_cycle_ratio,
    max_cycle_ratio_howard,
    max_cycle_ratio_lawler,
)

INSTANCES = {
    "samplerate": samplerate_converter,
    "satellite": satellite_receiver,
    "mimicdsp3": lambda: mimic_dsp(3),
    "lghsdf2": lambda: large_hsdf(2),
}

ENGINES = {
    "ratio-iteration": max_cycle_ratio,
    "howard": max_cycle_ratio_howard,
    "lawler": max_cycle_ratio_lawler,
}


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("instance", sorted(INSTANCES))
def test_engine_on_constraint_graph(benchmark, engine, instance):
    graph = INSTANCES[instance]()
    bi, _ = build_constraint_graph(graph)
    result = benchmark(lambda: ENGINES[engine](bi))
    assert result.ratio is not None and result.ratio > 0


@pytest.mark.parametrize("instance", ["samplerate", "mimicdsp3"])
def test_engines_agree(benchmark, instance):
    graph = INSTANCES[instance]()
    bi, _ = build_constraint_graph(graph)
    ratios = {name: engine(bi).ratio for name, engine in ENGINES.items()}
    assert len(set(ratios.values())) == 1, ratios
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_karp_on_hsdf_expansion(benchmark):
    graph = mimic_dsp(7)  # moderate Σq keeps Karp's Θ(nm) table small
    hsdf, _ = expand_sdf_to_hsdf(graph, reduced=True)
    # Karp needs unit transits: measure it on the serialization ring of
    # the expansion restricted to delay-1 arcs... simpler: on a unit-H
    # version of the same topology.
    from repro.mcrp.graph import BiValuedGraph

    unit = BiValuedGraph(hsdf.node_count, labels=hsdf.labels)
    for src, dst, cost, transit in hsdf.arcs():
        unit.add_arc(src, dst, cost, 1)
    result = benchmark(lambda: max_cycle_mean(unit))
    reference = max_cycle_ratio(unit)
    assert result.ratio == reference.ratio
