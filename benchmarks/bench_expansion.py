"""Ablation A4: direct (G, K) → CompiledGraph vs the legacy per-round rebuild.

K-Iter rebuilds the K-expanded constraint graph every round. The legacy
path re-materializes ``G̃`` as a ``CsdfGraph``, re-enumerates Theorem 2's
useful pairs from scratch and allocates one ``Fraction`` per arc; the
direct pipeline (:func:`repro.kperiodic.expansion.compile_expansion`)
compiles straight from ``(G, K)`` and caches per-buffer arc blocks under
``(buffer, K_src, K_dst)``, so a *round* — where most tasks' K entries
are unchanged — recomputes only the escalated tasks' blocks.

``test_direct_round_rebuild_beats_legacy`` is the acceptance gate of the
zero-materialization refactor: on the largest K-expanded golden-corpus
graphs the steady-state direct round rebuild (warm block cache — what
every K-Iter round after the first pays) must be ≥2x faster than the
legacy rebuild, with identical compiled arrays and identical certified
λ* ``Fraction``\\ s. The cold (empty-cache) build rides along in the
artifact: it carries the same useful-pair sweeps as the legacy path and
lands at parity or better — the win of this refactor is reuse, and the
second test pins that reuse inside a real K-Iter escalation sequence via
the cache-hit counters.
"""

import json
import time
from fractions import Fraction
from pathlib import Path

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.consistency import repetition_vector
from repro.analysis.constraint_graph import build_constraint_graph
from repro.io import load_graph
from repro.kperiodic.expansion import (
    ExpansionBlockCache,
    compile_expansion,
    expand_graph,
    expanded_repetition_vector,
    expansion_cache_for,
)
from repro.kperiodic.kiter import throughput_kiter
from repro.kperiodic.solver import min_period_for_k

DATA = Path(__file__).resolve().parent.parent / "tests" / "data"
try:
    INDEX = json.loads((DATA / "golden_index.json").read_text())
except FileNotFoundError:  # pragma: no cover - sparse checkout
    pytest.skip(
        "golden corpus not present; regenerate with "
        "tools/make_golden_corpus.py",
        allow_module_level=True,
    )


def _corpus_by_expanded_size():
    """Golden graphs, largest full-q expansion first."""
    rows = []
    for entry in INDEX:
        graph = load_graph(DATA / entry["file"])
        q = repetition_vector(graph)
        size = sum(q[t.name] * t.phase_count for t in graph.tasks())
        rows.append((size, entry["file"], graph))
    rows.sort(key=lambda r: r[0], reverse=True)
    return rows


def _legacy_rebuild(graph, K, q_tilde):
    expanded = expand_graph(graph, K)
    bi, _ = build_constraint_graph(expanded, q_tilde, serialize=True)
    return bi


def test_direct_round_rebuild_beats_legacy(results_dir):
    cases = _corpus_by_expanded_size()[:3]
    rows = []
    for size, name, graph in cases:
        q = repetition_vector(graph)
        K = dict(q)  # the largest expansion the corpus entry ever needs
        q_tilde = expanded_repetition_vector(q, K)
        cache = ExpansionBlockCache()

        def timed(fn, rounds=3):
            best = float("inf")
            out = None
            for _ in range(rounds):
                start = time.perf_counter()
                out = fn()
                best = min(best, time.perf_counter() - start)
            return best, out

        cold_start = time.perf_counter()
        direct_bi, _space = compile_expansion(graph, K, q_tilde, cache=cache)
        cold = time.perf_counter() - cold_start
        warm, warm_out = timed(
            lambda: compile_expansion(graph, K, q_tilde, cache=cache)[0]
        )
        legacy_time, legacy_bi = timed(lambda: _legacy_rebuild(graph, K, q_tilde))

        ref = legacy_bi.compile()
        got = warm_out.compile()
        assert (got.scale, got.src, got.dst, got.cost, got.transit) == (
            ref.scale, ref.src, ref.dst, ref.cost, ref.transit
        ), f"compiled arrays diverge on {name}"

        rows.append((name, size, got.arc_count, legacy_time, cold, warm,
                     legacy_time / max(warm, 1e-12)))

    # identical certified λ* through the full fixed-K solve, both
    # pipelines, on the largest instance
    _, name, graph = cases[0]
    q = repetition_vector(graph)
    K = dict(q)
    direct = min_period_for_k(graph, K, build_schedule=False,
                              repetition=q, pipeline="direct")
    legacy = min_period_for_k(graph, K, build_schedule=False,
                              repetition=q, pipeline="legacy")
    assert isinstance(direct.omega, Fraction)
    assert direct.omega == legacy.omega
    assert direct.omega_expanded == legacy.omega_expanded

    text = "\n".join(
        f"{name:<24} nodes={size:<6} arcs={arcs:<7} "
        f"legacy-rebuild {legacy * 1e3:8.2f}ms   "
        f"direct-cold {cold * 1e3:8.2f}ms   "
        f"direct-warm {warm * 1e3:8.2f}ms   round-speedup {speedup:6.2f}x"
        for name, size, arcs, legacy, cold, warm, speedup in rows
    )
    text += (
        "\n(direct-warm = steady-state K-Iter round rebuild: block cache "
        "populated by the previous round; certified λ* identical across "
        "pipelines)"
    )
    write_artifact("ablation_direct_expansion.txt", text)
    largest = rows[0]
    assert largest[6] >= 2.0, (
        f"direct round rebuild ({largest[5]:.4f}s) must be ≥2x faster "
        f"than the legacy rebuild ({largest[3]:.4f}s) on {largest[0]}:\n"
        f"{text}"
    )


def test_kiter_escalation_reuses_unchanged_tasks_blocks(results_dir):
    """Cache-hit counters across a real (partial) K escalation sequence."""
    graph = load_graph(DATA / "golden_figure2.json")  # 3 rounds, partial
    cache = expansion_cache_for(graph)
    result = throughput_kiter(graph)
    assert len(result.rounds) >= 2, "needs a multi-round instance"

    work = graph.with_serialization_loops()
    expected_hits = 0
    ks = [r.K for r in result.rounds if r.omega is not None]
    for prev, cur in zip(ks, ks[1:]):
        assert prev != cur  # a real escalation happened
        expected_hits += sum(
            1 for b in work.buffers()
            if prev[b.source] == cur[b.source]
            and prev[b.target] == cur[b.target]
        )
    assert expected_hits > 0, "corpus entry no longer partially escalates"
    assert cache.hits >= expected_hits, cache.stats()

    stats = cache.stats()
    write_artifact(
        "ablation_direct_expansion_cache.txt",
        f"golden_figure2 K-Iter: rounds={len(result.rounds)} "
        f"hits={stats['hits']} misses={stats['misses']} "
        f"blocks={stats['blocks']} (unchanged-task blocks expected to "
        f"hit: {expected_hits})",
    )


def test_direct_round_rebuild_benchmark(benchmark):
    """The BENCH_expansion.json trajectory metric: one warm round rebuild."""
    from repro.obs.bench import emit_bench

    _, _, graph = _corpus_by_expanded_size()[0]
    q = repetition_vector(graph)
    K = dict(q)
    q_tilde = expanded_repetition_vector(q, K)
    cache = ExpansionBlockCache()
    compile_expansion(graph, K, q_tilde, cache=cache)  # populate blocks
    result = benchmark(
        lambda: compile_expansion(graph, K, q_tilde, cache=cache)
    )
    assert result is not None
    best = min(
        _timed(lambda: compile_expansion(graph, K, q_tilde, cache=cache))
        for _ in range(5)
    )
    emit_bench(
        "expansion",
        [{"name": "warm_round_rebuild_seconds", "value": best,
          "unit": "s"}],
        extra={"graph_tasks": graph.task_count,
               "timing": {"repeats": 5, "policy": "best"}},
        out_dir=str(Path(__file__).resolve().parent.parent),
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
