"""Figure reproduction benchmarks (the paper's Figures 2–5).

The figures are analytical artifacts of the running example; these
benches regenerate them (writing ``results/figures/``) and time the
pieces that produce them — constraint-graph construction, the MCRP
solve, ASAP recording, and schedule extraction.
"""

from pathlib import Path

import pytest

from benchmarks.conftest import write_artifact
from repro import (
    asap_schedule,
    build_constraint_graph,
    min_period_for_k,
    render_gantt,
    throughput_kiter,
)
from repro.generators.paper import figure2_graph
from repro.io import constraint_graph_to_dot, graph_to_dot
from repro.mcrp import max_cycle_ratio
from repro.scheduling import schedule_to_firings


@pytest.fixture(scope="module")
def graph():
    return figure2_graph()


def test_figure2_graph_dot(benchmark, graph, results_dir):
    dot = benchmark(lambda: graph_to_dot(graph))
    (results_dir / "figure2.dot").write_text(dot)
    assert "A" in dot


def test_figure3_asap_gantt(benchmark, graph):
    records = benchmark(lambda: asap_schedule(graph, iterations=2))
    gantt = render_gantt(records, width=96)
    write_artifact("figure3_asap.txt", gantt)
    assert any(r.task == "D" for r in records)


def test_figure5_constraint_graph(benchmark, graph):
    bi, _ = benchmark(lambda: build_constraint_graph(graph))
    # 7 phase nodes: A1 A2 B1 B2 B3 C1 D1 — exactly the paper's node set
    assert bi.node_count == 7


def test_figure5_critical_circuit(benchmark, graph, results_dir):
    bi, _ = build_constraint_graph(graph)
    result = benchmark(lambda: max_cycle_ratio(bi))
    assert result.ratio == 18  # the 1-periodic period of the example
    dot = constraint_graph_to_dot(bi, critical_arcs=set(result.cycle_arcs))
    (results_dir / "figure5_constraints.dot").write_text(dot)


def test_figure4_kperiodic_schedule(benchmark, graph):
    exact = throughput_kiter(graph)

    def build():
        return min_period_for_k(graph, exact.K)

    result = benchmark(build)
    assert result.omega == 13
    firings = schedule_to_firings(result.schedule, graph,
                                  horizon_iterations=2)
    gantt = render_gantt(firings, width=96)
    write_artifact("figure4_kperiodic.txt", gantt)
    result.schedule.verify(graph, iterations=3)
