"""Mapping benchmarks: cost of evaluating throughput under mapping.

Grading a mapped design is the inner loop of design-space exploration —
the motivating use case of the paper's introduction. The bench measures
the full pipeline (order derivation + graph transformation + K-Iter) per
processor count, and pins the semantic anchors: 1 CPU = sequential
bound, ∞ CPUs = dataflow limit.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis import period_bounds
from repro.bench.reporting import format_table
from repro.generators.dsp import modem, samplerate_converter
from repro.generators.paper import figure2_graph
from repro.kperiodic import throughput_kiter
from repro.mapping import (
    Mapping,
    greedy_load_balance,
    throughput_under_mapping,
)

INSTANCES = {
    "figure2": figure2_graph,
    "samplerate": samplerate_converter,
    "modem": modem,
}


@pytest.mark.parametrize("instance", sorted(INSTANCES))
@pytest.mark.parametrize("processors", [1, 2, 4])
def test_mapping_evaluation(benchmark, instance, processors):
    graph = INSTANCES[instance]()

    def evaluate():
        mapping = greedy_load_balance(graph, processors)
        result, _ = throughput_under_mapping(graph, mapping)
        return result

    result = benchmark(evaluate)
    assert result.period >= throughput_kiter(graph).period


def test_mapping_anchors(benchmark):
    rows = []
    for name, maker in INSTANCES.items():
        graph = maker()
        limit = throughput_kiter(graph).period
        sequential = period_bounds(graph).upper
        one_cpu, _ = throughput_under_mapping(
            graph, greedy_load_balance(graph, 1)
        )
        parallel, _ = throughput_under_mapping(
            graph, Mapping.fully_parallel(graph)
        )
        assert one_cpu.period == sequential
        assert parallel.period == limit
        rows.append(
            [name, str(sequential), str(one_cpu.period),
             str(limit), str(parallel.period)]
        )
    table = format_table(
        ["Instance", "seq bound", "1 CPU", "dataflow limit", "∞ CPUs"],
        rows,
        title="Mapping anchors — 1 CPU = sequential, ∞ CPUs = limit",
    )
    write_artifact("mapping_anchors.txt", table)
    print("\n" + table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
