"""Service-layer benchmark: batched service traffic vs single-shot solves.

The workload replays serving-style traffic: ``REPEATS`` queries over
each of the ten synthetic Table-2 analogues (production λ* traffic is
dominated by repeated graphs — design-space sweeps, dashboards, CI).
Three paths answer it:

* **sequential** — one blocking ``throughput_kiter`` call per request,
  the pre-service workflow: every repeat pays a full solve;
* **service batch** — the same requests through
  ``ThroughputService(workers=2).submit_many`` (the ``repro batch``
  path): in-batch dedup solves each unique job once on the pool and
  fans the outcome out to the repeats;
* **service repeat** — the whole batch again, answered entirely by the
  in-memory result cache.

The serving-layer acceptance gate is the batch path beating sequential
wall time. Dedup alone guarantees that on any machine; on multi-core
hosts the pool adds real parallelism on top, which is asserted
separately when ≥ 2 CPUs are available (CI containers for this repo
may expose a single core, where two workers just time-slice). Results
land in ``results/service_batch_vs_sequential.txt``. The pool is
measured warm (one trivial warm-up job), mirroring a long-lived
service process rather than cold-start CLI latency.
"""

import os
import time

from benchmarks.conftest import SCALE, write_artifact
from repro.bench.reporting import format_table
from repro.generators.synthetic import graph1, graph2, graph3, graph4, graph5
from repro.kperiodic import throughput_kiter
from repro.model import sdf
from repro.service import ThroughputService

WORKERS = 2
REPEATS = 3


def _unique_graphs():
    return [
        maker(scale)
        for maker in (graph1, graph2, graph3, graph4, graph5)
        for scale in (SCALE, SCALE + 1)
    ]


def _traffic(graphs):
    # Interleave the repeats (g0 g1 … g9 g0 g1 …) so the sequential
    # baseline cannot benefit from any incidental warm state either.
    return [g for _ in range(REPEATS) for g in graphs]


def test_service_batch_beats_sequential(benchmark):
    graphs = _unique_graphs()
    requests = _traffic(graphs)

    start = time.perf_counter()
    sequential = [throughput_kiter(g, engine="hybrid") for g in requests]
    sequential_s = time.perf_counter() - start

    with ThroughputService(engine="hybrid", workers=WORKERS) as service:
        service.submit(sdf({"A": 1, "B": 1},
                           [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)]))
        start = time.perf_counter()
        batch = service.submit_many(requests)
        batch_s = time.perf_counter() - start

        start = time.perf_counter()
        cached = service.submit_many(requests)
        cached_s = time.perf_counter() - start
        stats = service.stats()

    for reference, outcome, repeat in zip(sequential, batch, cached):
        assert outcome.status == "OK"
        assert outcome.period == reference.period
        assert repeat.period == reference.period
        assert repeat.cache_hit == "memory"
    solved = stats.solves
    assert solved <= len(graphs) + 1  # dedup: one solve per unique job

    rows = [
        [f"sequential kiter@hybrid ({len(requests)} solves)",
         f"{sequential_s * 1000:.0f}ms", "1.00x"],
        [f"service batch ({WORKERS} workers, {len(graphs)} solves + dedup)",
         f"{batch_s * 1000:.0f}ms", f"{sequential_s / batch_s:.2f}x"],
        ["service repeat (memory cache)", f"{cached_s * 1000:.0f}ms",
         f"{sequential_s / cached_s:.0f}x"],
    ]
    table = format_table(
        ["Path", "wall time", "speedup"],
        rows,
        title=(
            f"Service layer — {len(requests)} requests over "
            f"{len(graphs)} unique synthetic graphs "
            f"(scale {SCALE}..{SCALE + 1}, {os.cpu_count()} CPU(s))"
        ),
    )
    write_artifact("service_batch_vs_sequential.txt", table)
    print("\n" + table)
    assert batch_s < sequential_s, (
        f"service batch ({batch_s:.3f}s) did not beat sequential "
        f"({sequential_s:.3f}s)"
    )
    assert cached_s < batch_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_service_parallel_speedup_on_unique_graphs(benchmark):
    """Pure pool parallelism, no dedup — meaningful only with ≥2 CPUs."""
    import pytest

    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-CPU host: pool workers only time-slice")
    graphs = _unique_graphs()
    start = time.perf_counter()
    sequential = [throughput_kiter(g, engine="hybrid") for g in graphs]
    sequential_s = time.perf_counter() - start
    with ThroughputService(engine="hybrid", workers=WORKERS) as service:
        service.submit(sdf({"A": 1, "B": 1},
                           [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)]))
        start = time.perf_counter()
        batch = service.submit_many(graphs)
        batch_s = time.perf_counter() - start
    for reference, outcome in zip(sequential, batch):
        assert outcome.period == reference.period
    assert batch_s < sequential_s, (
        f"{WORKERS}-worker pool ({batch_s:.3f}s) did not beat "
        f"sequential ({sequential_s:.3f}s) on {os.cpu_count()} CPUs"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
