"""Service-layer benchmark: batched service traffic vs single-shot solves.

The workload replays serving-style traffic: ``REPEATS`` queries over
each of the ten synthetic Table-2 analogues (production λ* traffic is
dominated by repeated graphs — design-space sweeps, dashboards, CI).
Three paths answer it:

* **sequential** — one blocking ``throughput_kiter`` call per request,
  the pre-service workflow: every repeat pays a full solve;
* **service batch** — the same requests through
  ``ThroughputService(workers=2).submit_many`` (the ``repro batch``
  path): in-batch dedup solves each unique job once on the pool and
  fans the outcome out to the repeats;
* **service repeat** — the whole batch again, answered entirely by the
  in-memory result cache.

The serving-layer acceptance gate is the batch path beating sequential
wall time. Dedup alone guarantees that on any machine; on multi-core
hosts the pool adds real parallelism on top, which is asserted
separately when ≥ 2 CPUs are available (CI containers for this repo
may expose a single core, where two workers just time-slice). Results
land in ``results/service_batch_vs_sequential.txt``. The pool is
measured warm (one trivial warm-up job), mirroring a long-lived
service process rather than cold-start CLI latency.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import SCALE, write_artifact
from repro.bench.reporting import format_table
from repro.obs.bench import emit_bench
from repro.generators.synthetic import graph1, graph2, graph3, graph4, graph5
from repro.kperiodic import throughput_kiter
from repro.model import sdf
from repro.service import ThroughputService

WORKERS = 2
REPEATS = 3

REPO_ROOT = Path(__file__).resolve().parent.parent
FLEET_DIR = REPO_ROOT / "tests" / "data" / "fleet"
#: CI gate: batched chunk throughput over the per-graph chunk path, at
#: equal worker count, on the fleet fixture. Locally the batched path
#: lands near 2.8x; the gate leaves margin for noisy CI hosts.
FLEET_GATE_THRESHOLD = 2.0
FLEET_GATE_ENGINES = ("ratio-iteration", "hybrid")
FLEET_ENGINES = ("ratio-iteration", "hybrid", "karp")
FLEET_TIMING_REPEATS = 7


def _unique_graphs():
    return [
        maker(scale)
        for maker in (graph1, graph2, graph3, graph4, graph5)
        for scale in (SCALE, SCALE + 1)
    ]


def _traffic(graphs):
    # Interleave the repeats (g0 g1 … g9 g0 g1 …) so the sequential
    # baseline cannot benefit from any incidental warm state either.
    return [g for _ in range(REPEATS) for g in graphs]


def test_service_batch_beats_sequential(benchmark):
    graphs = _unique_graphs()
    requests = _traffic(graphs)

    start = time.perf_counter()
    sequential = [throughput_kiter(g, engine="hybrid") for g in requests]
    sequential_s = time.perf_counter() - start

    with ThroughputService(engine="hybrid", workers=WORKERS) as service:
        service.submit(sdf({"A": 1, "B": 1},
                           [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)]))
        start = time.perf_counter()
        batch = service.submit_many(requests)
        batch_s = time.perf_counter() - start

        start = time.perf_counter()
        cached = service.submit_many(requests)
        cached_s = time.perf_counter() - start
        stats = service.stats()

    for reference, outcome, repeat in zip(sequential, batch, cached):
        assert outcome.status == "OK"
        assert outcome.period == reference.period
        assert repeat.period == reference.period
        assert repeat.cache_hit == "memory"
    solved = stats.solves
    assert solved <= len(graphs) + 1  # dedup: one solve per unique job

    rows = [
        [f"sequential kiter@hybrid ({len(requests)} solves)",
         f"{sequential_s * 1000:.0f}ms", "1.00x"],
        [f"service batch ({WORKERS} workers, {len(graphs)} solves + dedup)",
         f"{batch_s * 1000:.0f}ms", f"{sequential_s / batch_s:.2f}x"],
        ["service repeat (memory cache)", f"{cached_s * 1000:.0f}ms",
         f"{sequential_s / cached_s:.0f}x"],
    ]
    table = format_table(
        ["Path", "wall time", "speedup"],
        rows,
        title=(
            f"Service layer — {len(requests)} requests over "
            f"{len(graphs)} unique synthetic graphs "
            f"(scale {SCALE}..{SCALE + 1}, {os.cpu_count()} CPU(s))"
        ),
    )
    write_artifact("service_batch_vs_sequential.txt", table)
    print("\n" + table)
    assert batch_s < sequential_s, (
        f"service batch ({batch_s:.3f}s) did not beat sequential "
        f"({sequential_s:.3f}s)"
    )
    assert cached_s < batch_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _fleet_cases():
    index = FLEET_DIR / "fleet_index.json"
    if not index.exists():
        return []
    return json.loads(index.read_text())


def _best_of(fn, repeats=FLEET_TIMING_REPEATS):
    """Best wall time over ``repeats`` runs (damps scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_fleet_chunk_gate(benchmark):
    """CI gate: batched chunk ≥2x over per-graph chunk, equal workers.

    Both configurations run the *same* worker chunk path
    (``service.pool.solve_chunk``, the function every pool/distributed
    worker executes) in this one process — equal worker count by
    construction — over the triple-verified fleet fixture. The only
    difference is the per-payload ``"batched"`` flag, i.e. whether the
    chunk's lockstep rounds go through the stacked batched MCRP kernel
    or the per-graph engines. Both are measured warm (the worker graph
    LRU and expansion/compiled caches carry across chunks, as in any
    long-lived worker); the ``sequential`` row is the pre-service
    one-payload-at-a-time baseline with no warm worker state at all.
    Every path must reproduce the fixture's triple-verified λ* exactly.

    Emits machine-readable ``BENCH_service.json`` (the perf trajectory
    across PRs) plus ``results/ablation_batched_fleet.txt``.
    """
    import pytest

    from repro.io import load_graph
    from repro.kperiodic.kiter import solve_kiter_payload
    from repro.service.pool import solve_chunk

    cases = _fleet_cases()
    if not cases:
        pytest.skip("fleet fixture not generated")
    graphs = {c["file"]: load_graph(FLEET_DIR / c["file"]) for c in cases}

    def payloads(engine, batched):
        out = []
        for c in cases:
            p = {"graph": graphs[c["file"]].to_dict(), "engine": engine,
                 "graph_digest": c["file"]}
            if not batched:
                p["batched"] = False
            out.append(p)
        return out

    def check(outcomes, engine, path):
        for c, o in zip(cases, outcomes):
            assert o["status"] == "OK", (engine, path, c["file"], o)
            assert o["period"] == c["period"], (engine, path, c["file"])

    rows = []
    table_rows = []
    speedups = {}
    for engine in FLEET_ENGINES:
        batched_p = payloads(engine, True)
        pergraph_p = payloads(engine, False)
        sequential_p = payloads(engine, True)
        # Warm the worker state for both chunk configs (graph LRU +
        # expansion block/compiled caches), as any steady-state worker.
        solve_chunk(batched_p)
        solve_chunk(pergraph_p)
        batched_s, batched_out = _best_of(lambda: solve_chunk(batched_p))
        pergraph_s, pergraph_out = _best_of(lambda: solve_chunk(pergraph_p))
        sequential_s, sequential_out = _best_of(
            lambda: [solve_kiter_payload(p) for p in sequential_p],
            repeats=3,
        )
        check(batched_out, engine, "batched")
        check(pergraph_out, engine, "per-graph")
        check(sequential_out, engine, "sequential")
        assert all(o["batched"] for o in batched_out), engine
        assert not any(o["batched"] for o in pergraph_out), engine
        speedup = pergraph_s / batched_s
        speedups[engine] = speedup
        rows.extend([
            {"engine": engine, "path": "sequential",
             "wall_s": sequential_s, "speedup_vs_sequential": 1.0},
            {"engine": engine, "path": "per-graph",
             "wall_s": pergraph_s,
             "speedup_vs_sequential": sequential_s / pergraph_s},
            {"engine": engine, "path": "batched",
             "wall_s": batched_s,
             "speedup_vs_sequential": sequential_s / batched_s,
             "speedup_vs_per_graph": speedup},
        ])
        table_rows.extend([
            [engine, "sequential", f"{sequential_s * 1000:.1f}ms", "", ""],
            [engine, "per-graph chunk", f"{pergraph_s * 1000:.1f}ms",
             f"{sequential_s / pergraph_s:.2f}x", ""],
            [engine, "batched chunk", f"{batched_s * 1000:.1f}ms",
             f"{sequential_s / batched_s:.2f}x", f"{speedup:.2f}x"],
        ])

    table = format_table(
        ["engine", "path", "wall time", "vs sequential", "vs per-graph"],
        table_rows,
        title=(
            f"Batched fleet solving — {len(cases)} fixture graphs per "
            f"chunk, 1 worker per config ({os.cpu_count()} CPU(s)), "
            f"best of {FLEET_TIMING_REPEATS}"
        ),
    )
    write_artifact("ablation_batched_fleet.txt", table)
    print("\n" + table)

    gated = {e: speedups[e] for e in FLEET_GATE_ENGINES}
    emit_bench(
        "service",
        [
            {"name": f"batched_speedup_{engine}", "value": speedup,
             "unit": "x"}
            for engine, speedup in sorted(speedups.items())
        ],
        extra={
            "fixture": str(FLEET_DIR.relative_to(REPO_ROOT)),
            "cases": len(cases),
            "workers": 1,
            "cpu_count": os.cpu_count(),
            "timing": {"repeats": FLEET_TIMING_REPEATS,
                       "policy": "best"},
            "gate": {
                "engines": list(FLEET_GATE_ENGINES),
                "threshold": FLEET_GATE_THRESHOLD,
                "speedups": gated,
                "passed": all(
                    s >= FLEET_GATE_THRESHOLD for s in gated.values()
                ),
            },
            "rows": rows,
        },
        out_dir=str(REPO_ROOT),
    )
    for engine, speedup in gated.items():
        assert speedup >= FLEET_GATE_THRESHOLD, (
            f"batched chunk speedup {speedup:.2f}x for {engine} fell "
            f"below the {FLEET_GATE_THRESHOLD}x gate "
            f"(per-graph {dict(speedups)})"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_service_parallel_speedup_on_unique_graphs(benchmark):
    """Pure pool parallelism, no dedup — meaningful only with ≥2 CPUs."""
    import pytest

    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-CPU host: pool workers only time-slice")
    graphs = _unique_graphs()
    start = time.perf_counter()
    sequential = [throughput_kiter(g, engine="hybrid") for g in graphs]
    sequential_s = time.perf_counter() - start
    with ThroughputService(engine="hybrid", workers=WORKERS) as service:
        service.submit(sdf({"A": 1, "B": 1},
                           [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)]))
        start = time.perf_counter()
        batch = service.submit_many(graphs)
        batch_s = time.perf_counter() - start
    for reference, outcome in zip(sequential, batch):
        assert outcome.period == reference.period
    assert batch_s < sequential_s, (
        f"{WORKERS}-worker pool ({batch_s:.3f}s) did not beat "
        f"sequential ({sequential_s:.3f}s) on {os.cpu_count()} CPUs"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
