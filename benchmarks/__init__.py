"""Benchmark suite package (bench_*.py modules import its conftest)."""
