"""Scheduling-policy bench: every registered policy × MCRP engine.

The gate sweeps the policy registry (``asap``, ``alap``, ``list``,
``force-directed`` today — a newly registered policy joins the matrix
automatically via :func:`repro.bench.runner.schedule_policy_names`)
against two MCRP engines over a fleet-fixture subset. Every cell must
come back ``OK`` with the fixture's triple-verified λ* **bit-identical**
across policies and engines: the policy zoo reshapes *starts*, never
the certified period.

An informational (non-gating) section compares resource-constrained
list scheduling under a two-CPU balanced binding against unconstrained
ASAP: pattern makespan when the binding admits the certified period,
an honest ``N/S`` when it does not (most tight graphs cannot keep λ*
on two processors — that strictness is the policy's contract, see
``docs/scheduling.md``).

Emits machine-readable ``BENCH_scheduling.json`` (the perf trajectory
across PRs) plus ``results/ablation_scheduling_policies.txt``.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import BUDGET, write_artifact
from repro.bench.reporting import format_table
from repro.obs.bench import emit_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
FLEET_DIR = REPO_ROOT / "tests" / "data" / "fleet"

#: Fleet subset: the two paper figures, one rational-period graph
#: (modem, λ* = 43/2), and one graph per random fleet family.
FLEET_SUBSET = (
    "fleet_figure1.json",
    "fleet_figure2.json",
    "fleet_modem.json",
    "fleet_csdf1000.json",
    "fleet_sdf2000.json",
    "fleet_med3000.json",
)
ENGINES = ("ratio-iteration", "hybrid")


def _fleet_cases():
    index = FLEET_DIR / "fleet_index.json"
    if not index.exists():
        return []
    wanted = set(FLEET_SUBSET)
    return [c for c in json.loads(index.read_text())
            if c["file"] in wanted]


def test_policy_engine_matrix(benchmark):
    """CI gate: every policy × engine certifies the fixture λ* exactly."""
    import pytest

    from fractions import Fraction

    from repro.bench.runner import run_schedule_policy, schedule_policy_names
    from repro.io import load_graph

    cases = _fleet_cases()
    if not cases:
        pytest.skip("fleet fixture not generated")
    graphs = {c["file"]: load_graph(FLEET_DIR / c["file"]) for c in cases}
    policies = schedule_policy_names()
    assert len(policies) >= 3, policies

    rows = []
    metrics = []
    for policy in policies:
        for engine in ENGINES:
            start = time.perf_counter()
            for case in cases:
                outcome = run_schedule_policy(
                    policy, graphs[case["file"]], BUDGET, engine=engine
                )
                assert outcome.ok, (policy, engine, case["file"],
                                    outcome.status)
                assert outcome.period == Fraction(*case["period"]), (
                    policy, engine, case["file"], outcome.period
                )
            elapsed = time.perf_counter() - start
            rows.append([policy, engine, len(cases),
                         f"{elapsed * 1000:.0f}ms"])
            metrics.append({
                "name": f"schedule_{policy}_{engine}_s",
                "value": round(elapsed, 4),
                "unit": "s",
            })

    info_rows, info_metrics = _list_vs_asap_rows(graphs, cases)
    table = format_table(
        ["policy", "engine", "graphs", "wall time"],
        rows,
        title=(
            f"Scheduling policies — {len(policies)} policies × "
            f"{len(ENGINES)} engines over {len(cases)} fleet graphs "
            "(every cell certifies the fixture λ* bit-identically)"
        ),
    )
    info = format_table(
        ["graph", "ASAP makespan (unlimited)", "list @ 2 CPUs"],
        info_rows,
        title=(
            "Informational — resource-constrained list scheduling vs "
            "ASAP (balanced 2-CPU binding; N/S = binding cannot hold "
            "the certified period)"
        ),
    )
    text = table + "\n\n" + info
    write_artifact("ablation_scheduling_policies.txt", text)
    print("\n" + text)
    emit_bench(
        "scheduling",
        metrics + info_metrics,
        extra={
            "policies": policies,
            "engines": list(ENGINES),
            "graphs": [c["file"] for c in cases],
        },
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _list_vs_asap_rows(graphs, cases):
    """Per-graph ``(asap makespan, list@2cpu makespan | N/S)`` rows."""
    from repro.exceptions import SchedulingError
    from repro.scheduling import ResourceBinding, build_schedule

    rows = []
    metrics = []
    feasible = 0
    for case in cases:
        graph = graphs[case["file"]]
        asap = build_schedule(graph, "asap")
        asap_span = asap.stats["pattern_makespan"]
        binding = ResourceBinding.balanced(graph, 2)
        try:
            constrained = build_schedule(graph, "list", binding=binding)
        except SchedulingError:
            cell = "N/S"
        else:
            span = constrained.stats["pattern_makespan"]
            cell = f"makespan {span}  peaks {constrained.stats['peaks']}"
            feasible += 1
        rows.append([case["file"], str(asap_span), cell])
    metrics.append({
        "name": "list_2cpu_feasible_graphs",
        "value": feasible,
        "unit": "graphs",
    })
    return rows, metrics
