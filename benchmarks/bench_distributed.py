"""Distributed-fabric benchmark: coordinator + 2 workers vs sequential.

The workload is the serving-layer 30-request traffic replay
(``benchmarks/bench_service.py``'s shape): ``REPEATS`` queries over
``len(_graphs(...))`` unique synthetic Table-2 analogues. Three rows
answer it:

* **single-worker sequential** — one blocking ``throughput_kiter`` per
  request in this process: every repeat pays a full solve;
* **distributed (gated)** — the same requests through
  ``ThroughputService(queue=CoordinatorClient(url))`` against an
  in-process coordinator with **two real worker OS processes**
  (``repro worker --coordinator``): the coordinator dedups the repeats
  and the workers split the unique solves. The acceptance gate is
  **≥ 1.5x** over sequential — in-batch dedup alone guarantees ~3x on
  any machine, so the gate holds even on single-core CI where the two
  workers merely time-slice; multi-core hosts add real parallelism on
  top;
* **distributed replay** — the whole batch again from a fresh client:
  answered entirely by the coordinator's cache (``cache_hit="remote"``).

Ablation artifacts (``results/ablation_distributed.txt``):
**cold start** (spawning the coordinator + both workers and solving a
disjoint warm-up set, daemon boot included) and a **SQLite-vs-disk
cache backend** micro-benchmark (put+get of golden-corpus-sized
outcomes). CI job ``distributed-smoke`` runs this module and uploads
``BENCH_distributed.json`` plus the artifact.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from benchmarks.conftest import SCALE, write_artifact
from repro.bench.reporting import format_table
from repro.obs.bench import emit_bench
from repro.distributed import (
    CoordinatorClient,
    CoordinatorServer,
    DiskCacheBackend,
    MemoryJobQueue,
    SQLiteCacheBackend,
)
from repro.generators.synthetic import graph1, graph2, graph3
from repro.kperiodic import throughput_kiter
from repro.service import ThroughputService

WORKERS = 2
#: 6 unique graphs × 5 repeats = the 30-request replay. Production λ*
#: traffic repeats graphs hard (sweeps, dashboards, CI), and the gate
#: must hold on single-core CI runners where two workers only
#: time-slice — dedup, not parallelism, carries the floor there.
REPEATS = 5
GATE = 1.5


def _graphs(*scales):
    return [
        maker(scale)
        for maker in (graph1, graph2, graph3)
        for scale in scales
    ]


def _traffic(graphs):
    return [g for _ in range(REPEATS) for g in graphs]


def _spawn_worker(url, name, cwd):
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--coordinator", url,
         "--id", name, "--poll", "0.02", "--chunk-size", "2"],
        env=env, cwd=str(cwd),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def test_distributed_replay_beats_single_worker_sequential(
    benchmark, tmp_path
):
    unique = _graphs(SCALE, SCALE + 1)
    requests = _traffic(unique)
    warmup = _graphs(SCALE + 2)  # disjoint set for the cold-start row

    start = time.perf_counter()
    sequential = [throughput_kiter(g, engine="hybrid") for g in requests]
    sequential_s = time.perf_counter() - start

    with CoordinatorServer(
        queue=MemoryJobQueue(visibility_timeout=60)
    ) as server:
        workers = []
        try:
            # Cold start: daemons boot *inside* the measured window.
            start = time.perf_counter()
            workers = [
                _spawn_worker(server.url, f"bench-w{i}", tmp_path)
                for i in range(WORKERS)
            ]
            cold_service = ThroughputService(
                queue=CoordinatorClient(server.url), queue_poll=0.02,
            )
            cold = cold_service.submit_many(warmup)
            cold_s = time.perf_counter() - start
            assert all(o.ok for o in cold)

            # Steady state: the gated 30-request replay. The poll
            # interval is deliberately lazy: on a single-core host an
            # aggressive poller steals CPU from the very workers it is
            # waiting on (HTTP handling happens in this process).
            service = ThroughputService(
                queue=CoordinatorClient(server.url), queue_poll=0.15,
            )
            start = time.perf_counter()
            distributed = service.submit_many(requests)
            distributed_s = time.perf_counter() - start

            # Replay from a fresh client: remote cache only.
            replay_service = ThroughputService(
                queue=CoordinatorClient(server.url), queue_poll=0.02,
            )
            start = time.perf_counter()
            replayed = replay_service.submit_many(requests)
            replay_s = time.perf_counter() - start
        finally:
            for proc in workers:
                proc.terminate()
            for proc in workers:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()

    for reference, outcome, repeat in zip(
        sequential, distributed, replayed
    ):
        assert outcome.status == "OK"
        assert outcome.period == reference.period  # Fraction-exact
        assert repeat.period == reference.period
        assert repeat.cache_hit in ("remote", "memory", "batch")

    backend_rows = _cache_backend_ablation(tmp_path)
    rows = [
        [f"single-worker sequential ({len(requests)} solves)",
         f"{sequential_s * 1000:.0f}ms", "1.00x"],
        [f"distributed ({WORKERS} worker procs, "
         f"{len(unique)} solves + dedup)",
         f"{distributed_s * 1000:.0f}ms",
         f"{sequential_s / distributed_s:.2f}x"],
        ["distributed replay (remote cache)",
         f"{replay_s * 1000:.0f}ms",
         f"{sequential_s / replay_s:.1f}x"],
        [f"cold start (+ {WORKERS} daemon boots, "
         f"{len(warmup)} solves)",
         f"{cold_s * 1000:.0f}ms", "-"],
        *backend_rows,
    ]
    table = format_table(
        ["Path", "wall time", "speedup"],
        rows,
        title=(
            f"Distributed fabric — {len(requests)} requests over "
            f"{len(unique)} unique synthetic graphs "
            f"(scale {SCALE}..{SCALE + 1}, {os.cpu_count()} CPU(s))"
        ),
    )
    write_artifact("ablation_distributed.txt", table)
    print("\n" + table)
    emit_bench(
        "distributed",
        [
            {"name": "distributed_speedup",
             "value": sequential_s / distributed_s, "unit": "x"},
            {"name": "replay_speedup",
             "value": sequential_s / replay_s, "unit": "x"},
            {"name": "cold_start_seconds", "value": cold_s, "unit": "s"},
        ],
        extra={
            "workers": WORKERS,
            "requests": len(requests),
            "unique_graphs": len(unique),
            "cpu_count": os.cpu_count(),
            "gate": {"threshold": GATE,
                     "speedup": sequential_s / distributed_s,
                     "passed": sequential_s / distributed_s >= GATE},
        },
        out_dir=str(Path(repro.__file__).resolve().parents[2]),
    )
    assert sequential_s / distributed_s >= GATE, (
        f"distributed replay ({distributed_s:.3f}s) is only "
        f"{sequential_s / distributed_s:.2f}x over sequential "
        f"({sequential_s:.3f}s); the gate is {GATE}x"
    )
    assert replay_s < distributed_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _cache_backend_ablation(tmp_path):
    """SQLite vs disk persistent tier: put+get micro-benchmark rows."""
    outcome = {
        "status": "OK", "period": [881, 13], "K": {f"t{i}": 2 for i in range(12)},
        "rounds": 7, "engine_iterations": 41, "critical_tasks": ["t3"],
        "engine": "hybrid", "engine_used": "hybrid", "fallback": False,
        "cache_hit": "", "wall_time": 0.173, "worker_pid": 4242,
    }
    count = 300
    digests = [f"{i:x}".rjust(64, "a") for i in range(count)]
    rows = []
    backends = {
        "disk backend": DiskCacheBackend(tmp_path / "ablation-disk"),
        "sqlite backend": SQLiteCacheBackend(
            tmp_path / "ablation-cache.db"
        ),
    }
    for label, backend in backends.items():
        start = time.perf_counter()
        for digest in digests:
            backend.put(digest, outcome)
        for digest in digests:
            assert backend.get(digest)["period"] == [881, 13]
        elapsed = time.perf_counter() - start
        rows.append([
            f"{label} ({count} put+get)",
            f"{elapsed * 1000:.0f}ms",
            f"{count / elapsed:.0f} op-pairs/s",
        ])
        backend.close()
    return rows
