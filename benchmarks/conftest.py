"""Shared configuration for the benchmark suite.

Environment knobs (all optional):

* ``REPRO_BENCH_BUDGET``  — per-method wall-clock budget in seconds
  (default 45 — enough for the hardest cell, the tightly-bounded H264
  analogue; the paper's ``> 1d`` rows appear as ``> budget``);
* ``REPRO_BENCH_COUNT``   — graphs per random Table 1 category
  (default 10; the paper used 100);
* ``REPRO_BENCH_SCALE``   — Σq scale knob for the Table 2 generators
  (default 1).

Table artifacts are written to ``results/`` at the repo root.
"""

import os
from pathlib import Path

import pytest

BUDGET = float(os.environ.get("REPRO_BENCH_BUDGET", "75"))
COUNT = int(os.environ.get("REPRO_BENCH_COUNT", "10"))
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path
