"""Table 2 reproduction: CSDF applications and synthetic graphs.

Layers:

* pytest-benchmark measurements of the three methods on the application
  analogues (unbounded);
* ``test_table2_full`` regenerates all three blocks (unbounded apps,
  tightest-live bounded apps, synthetic graphs), writes
  ``results/table2.txt``, and asserts the paper's shape claims.

Paper shape to reproduce (IB+AG5CSDF, C++):

* unbounded apps: every method succeeds; periodic and K-Iter in
  milliseconds, symbolic orders of magnitude slower (seconds/timeout on
  JPEG2000 and H264);
* bounded apps: periodic degrades (98%/33%/N-S) while K-Iter stays
  optimal; symbolic blows up to seconds/hours;
* synthetic: periodic far from optimal (0.1%–96%) or unknown; K-Iter
  optimal wherever it finishes and never slower than symbolic.
"""

import pytest

from benchmarks.conftest import BUDGET, SCALE, write_artifact
from repro.bench import format_table2, run_table2
from repro.bench.runner import run_method
from repro.generators.csdf_apps import csdf_applications

APPS = dict(csdf_applications(SCALE))


@pytest.mark.parametrize("app", sorted(APPS))
def test_table2_kiter(benchmark, app):
    graph = APPS[app]()
    outcome = benchmark.pedantic(
        lambda: run_method("kiter", graph, BUDGET), rounds=1, iterations=1
    )
    assert outcome.ok


@pytest.mark.parametrize("app", ["BlackScholes", "JPEG2000", "Pdetect"])
def test_table2_periodic(benchmark, app):
    graph = APPS[app]()
    outcome = benchmark(lambda: run_method("periodic", graph, BUDGET))
    assert outcome.status in ("OK", "N/S")


@pytest.mark.parametrize("app", ["BlackScholes", "JPEG2000", "Pdetect"])
def test_table2_symbolic(benchmark, app):
    graph = APPS[app]()
    outcome = benchmark.pedantic(
        lambda: run_method("symbolic", graph, BUDGET), rounds=1, iterations=1
    )
    assert outcome.status in ("OK", "TIMEOUT")


def test_table2_full(benchmark):
    blocks = run_table2(scale=SCALE, budget=BUDGET)
    table = format_table2(blocks)
    path = write_artifact("table2.txt", table)
    print("\n" + table)
    print(f"\n[written to {path}]")

    # Shape assertions -------------------------------------------------
    for block_name, rows in blocks.items():
        for row in rows:
            kiter = row.outcomes["kiter"]
            symbolic = row.outcomes["symbolic"]
            periodic = row.outcomes["periodic"]
            # exact methods agree whenever both finish
            if kiter.ok and symbolic.ok:
                assert kiter.period == symbolic.period, row.name
            # the periodic period is never better than the optimum
            if kiter.ok and periodic.ok:
                assert periodic.period >= kiter.period, row.name

    unbounded = blocks["no buffer size"]
    assert all(r.outcomes["kiter"].ok for r in unbounded), (
        "K-Iter must solve every unbounded application"
    )
    # periodic solves all unbounded apps (the paper reports 100% rows)
    assert all(r.outcomes["periodic"].ok for r in unbounded)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bounded_buffers_degrade_periodic(benchmark):
    """Bounding buffers must *not* degrade K-Iter's exactness."""
    blocks = run_table2(scale=SCALE, budget=BUDGET,
                        include_synthetic=False)
    bounded = blocks["fixed buffer size"]
    solved = [r for r in bounded if r.outcomes["kiter"].ok]
    assert solved, "K-Iter should solve at least one bounded app"
    # and wherever symbolic also finished, they agree exactly
    for row in solved:
        symbolic = row.outcomes["symbolic"]
        if symbolic.ok:
            assert symbolic.period == row.outcomes["kiter"].period
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
