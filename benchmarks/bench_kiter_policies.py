"""Ablation A2: K-Iter's update policy.

Algorithm 1 raises K conservatively (``K_t ← lcm(K_t, q̄_t)``); the
obvious alternative jumps the critical circuit straight to ``K_t = q_t``.
The paper's design bet is that the conservative rule keeps expansions —
and therefore constraint graphs — much smaller on the way to the
certificate. The bench measures both policies on the application
analogues; ``results/ablation_kiter_policies.txt`` records rounds,
largest constraint graph, and wall time.
"""

import time

import pytest

from benchmarks.conftest import BUDGET, write_artifact
from repro.bench.reporting import format_table
from repro.generators.csdf_apps import h264_encoder, jpeg2000, pdetect
from repro.generators.paper import figure2_graph
from repro.kperiodic import throughput_kiter

INSTANCES = {
    "figure2": figure2_graph,
    "jpeg2000": jpeg2000,
    "pdetect": pdetect,
    "h264": h264_encoder,
}


@pytest.mark.parametrize("policy", ["lcm", "full-q"])
@pytest.mark.parametrize("instance", ["figure2", "jpeg2000", "pdetect"])
def test_policy(benchmark, policy, instance):
    graph = INSTANCES[instance]()
    result = benchmark.pedantic(
        lambda: throughput_kiter(graph, update_policy=policy),
        rounds=1, iterations=2,
    )
    assert result.period is not None


def test_policy_comparison_table(benchmark):
    rows = []
    for name, maker in INSTANCES.items():
        graph = maker()
        cells = [name]
        baseline = None
        for policy in ("lcm", "full-q"):
            start = time.perf_counter()
            result = throughput_kiter(
                graph, update_policy=policy, time_budget=BUDGET
            )
            elapsed = time.perf_counter() - start
            peak = max(
                (r.graph_arcs for r in result.rounds), default=0
            )
            cells.append(
                f"{result.iteration_count}r / {peak} arcs / "
                f"{elapsed * 1000:.0f}ms"
            )
            if baseline is None:
                baseline = result.period
            else:
                assert result.period == baseline, (
                    f"policies disagree on {name}"
                )
        rows.append(cells)
    table = format_table(
        ["Instance", "lcm (Algorithm 1)", "full-q jump"],
        rows,
        title="Ablation A2 — K-Iter update policy",
    )
    write_artifact("ablation_kiter_policies.txt", table)
    print("\n" + table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
