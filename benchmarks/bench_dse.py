"""Ablation A6: incremental re-solve (DseSession) vs cold re-submission.

A design-space exploration is a *sequence* of near-identical solves:
probe i+1 differs from probe i by one capacity or one task's
durations. The cold baseline pays the full pipeline per probe —
repetition vector, serialization copy, every buffer's expansion
blocks, the whole K escalation ladder; the session re-solves
incrementally, recomputing only the touched buffers' blocks and
re-entering K-Iter at the previously certified K (seeded with the
previous λ* when the edit was monotone).

``test_sizing_sweep_beats_cold_submission`` is the acceptance gate of
the incremental engine: the identical probe sequence — a uniform
capacity-scale descent plus per-buffer shrinks, the shape of
``minimize_total_storage``'s search — must run ≥5x faster through one
``DseSession`` than through cold ``ThroughputService.submit_many``
calls (workers=0: inline solves, no pool overhead in the baseline),
with **bit-identical certified λ*** on every probe. The duration
sensitivity sweep rides along as an informational row.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import BUDGET, write_artifact
from repro.analysis.consistency import repetition_vector
from repro.buffers.capacity import bound_all_buffers, minimal_buffer_capacity
from repro.dse import DseSession
from repro.exceptions import DeadlockError
from repro.io import load_graph

DATA = Path(__file__).resolve().parent.parent / "tests" / "data"
try:
    INDEX = json.loads((DATA / "golden_index.json").read_text())
except FileNotFoundError:  # pragma: no cover - sparse checkout
    pytest.skip(
        "golden corpus not present; regenerate with "
        "tools/make_golden_corpus.py",
        allow_module_level=True,
    )


def _corpus_by_expanded_size():
    """Golden graphs, largest full-q expansion first."""
    rows = []
    for entry in INDEX:
        graph = load_graph(DATA / entry["file"])
        q = repetition_vector(graph)
        size = sum(q[t.name] * t.phase_count for t in graph.tasks())
        rows.append((size, entry["file"], graph))
    rows.sort(key=lambda r: r[0], reverse=True)
    return rows


def _probe_sequence(graph, *, base_scale=16, per_buffer_limit=48):
    """The sizing-search probe shape: scale descent + per-buffer shrinks.

    Every probe is a *full* capacity map (what ``minimize_total_storage``
    evaluates), so the session and the cold baseline see byte-identical
    design points. The descent stops at ``base_scale`` (live on every
    corpus entry — capacity monotonicity keeps the whole ladder live);
    the per-buffer phase then halves one buffer at a time against the
    ``base_scale`` background, the exact inner loop of the local
    shrinking search.
    """
    floors = {
        b.name: minimal_buffer_capacity(b)
        for b in graph.buffers() if not b.is_self_loop()
    }
    probes = []
    for scale in (base_scale + 4, base_scale + 2, base_scale):
        probes.append({name: scale * floor
                       for name, floor in floors.items()})
    trial = {name: base_scale * floor for name, floor in floors.items()}
    for name in sorted(floors)[:per_buffer_limit]:
        trial = dict(trial)
        trial[name] = (base_scale // 2) * floors[name]
        probes.append(trial)
    return probes


def _session_sweep(graph, probes):
    """All probes through one session; returns (seconds, periods, stats)."""
    start = time.perf_counter()
    session = DseSession(bound_all_buffers(graph, probes[0]))
    periods = []
    for caps in probes:
        session.set_capacities(caps)
        try:
            periods.append(session.solve().period)
        except DeadlockError:
            periods.append(None)
    return time.perf_counter() - start, periods, session.stats()


def _cold_sweep(graph, probes):
    """The same probes, one cold service submission each."""
    from repro.service import ThroughputService

    periods = []
    with ThroughputService(workers=0) as service:
        start = time.perf_counter()
        for caps in probes:
            outcome = service.submit_many(
                [bound_all_buffers(graph, caps)])[0]
            periods.append(
                outcome.period if outcome.status == "OK" else None)
        elapsed = time.perf_counter() - start
    return elapsed, periods


def test_sizing_sweep_beats_cold_submission(results_dir):
    from repro.obs.bench import emit_bench

    rows = []
    deadline = time.perf_counter() + BUDGET
    # Smallest of the top-3 first: the per-probe cold cost grows with
    # the expansion while the session's incremental cost grows slower,
    # so under a tight budget the most informative cell still runs.
    for size, name, graph in reversed(_corpus_by_expanded_size()[:3]):
        probes = _probe_sequence(graph)
        warm_s, warm_periods, stats = _session_sweep(graph, probes)
        cold_s, cold_periods = _cold_sweep(graph, probes)
        assert warm_periods == cold_periods, (
            f"exactness violated on {name}: session sweep diverged from "
            f"cold submissions"
        )
        rows.append((name, size, len(probes), cold_s, warm_s,
                     cold_s / max(warm_s, 1e-12), stats))
        if time.perf_counter() > deadline:
            break

    sensitivity_row = _sensitivity_sweep()

    text = "\n".join(
        f"{name:<24} nodes={size:<6} probes={n:<3} "
        f"cold-submit {cold * 1e3:9.2f}ms   "
        f"session {warm * 1e3:9.2f}ms   speedup {speedup:6.2f}x   "
        f"(blocks dropped {stats['invalidated_blocks']}, warm "
        f"{stats['warm_starts']})"
        for name, size, n, cold, warm, speedup, stats in rows
    )
    text += "\n" + sensitivity_row
    text += (
        "\n(identical probe sequences, bit-identical certified λ* per "
        "probe; cold = one ThroughputService(workers=0) submission per "
        "design point)"
    )
    write_artifact("ablation_dse.txt", text)

    best = max(rows, key=lambda r: r[5])
    emit_bench(
        "dse",
        [{"name": "sizing_sweep_speedup", "value": best[5], "unit": "x"},
         {"name": "sizing_sweep_session_seconds", "value": best[4],
          "unit": "s"},
         {"name": "sizing_sweep_cold_seconds", "value": best[3],
          "unit": "s"}],
        extra={"graph": best[0], "probes": best[2]},
        out_dir=str(Path(__file__).resolve().parent.parent),
    )
    assert best[5] >= 5.0, (
        f"incremental sizing sweep ({best[4]:.4f}s) must be ≥5x faster "
        f"than cold re-submission ({best[3]:.4f}s) on {best[0]}:\n{text}"
    )


def _sensitivity_sweep():
    """Informational: duration_sensitivity (session) vs cold per-probe."""
    from repro.analysis.sensitivity import duration_sensitivity
    from repro.kperiodic.kiter import throughput_kiter
    from repro.model.graph import CsdfGraph
    from repro.transforms.surgery import with_task_durations

    _, name, graph = _corpus_by_expanded_size()[2]
    start = time.perf_counter()
    warm_out = duration_sensitivity(graph)
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    cold = {}
    base = throughput_kiter(
        CsdfGraph.from_dict(graph.to_dict())).period
    for task in graph.task_names():
        original = graph.task(task).durations
        pair = []
        for scaled in (tuple(d // 2 for d in original),
                       tuple(d * 2 for d in original)):
            probe = with_task_durations(graph, task, scaled)
            pair.append(throughput_kiter(
                CsdfGraph.from_dict(probe.to_dict())).period)
        cold[task] = tuple(pair)
    cold_s = time.perf_counter() - start

    for task, sens in warm_out.items():
        assert sens.base_period == base
        assert (sens.period_when_faster,
                sens.period_when_slower) == cold[task], (
            f"sensitivity parity violated for task {task!r} on {name}"
        )
    return (
        f"{name:<24} sensitivity ({2 * len(cold) + 1} solves)    "
        f"cold {cold_s * 1e3:9.2f}ms   session {warm_s * 1e3:9.2f}ms   "
        f"speedup {cold_s / max(warm_s, 1e-12):6.2f}x"
    )
