"""Ablation A3: constraint-graph construction and parallel-arc merging.

Measures Theorem 2 constraint generation (the vectorized α/β sweep) and
quantifies how much the dominant-arc merge shrinks graphs with parallel
buffers (bounded-buffer graphs double every channel, so they profit
most). Also times the K-expansion itself.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis import build_constraint_graph, repetition_vector
from repro.bench.reporting import format_table
from repro.buffers import bound_all_buffers
from repro.buffers.capacity import minimal_buffer_capacity
from repro.generators.csdf_apps import echo, jpeg2000, pdetect
from repro.generators.paper import figure2_graph
from repro.kperiodic import expand_graph
from repro.kperiodic.expansion import expanded_repetition_vector

INSTANCES = {
    "figure2": figure2_graph,
    "jpeg2000": jpeg2000,
    "pdetect": pdetect,
    "echo": echo,
}


@pytest.mark.parametrize("instance", sorted(INSTANCES))
def test_build_constraint_graph(benchmark, instance):
    graph = INSTANCES[instance]()
    bi, _ = benchmark(lambda: build_constraint_graph(graph))
    assert bi.node_count == graph.total_phase_count()


@pytest.mark.parametrize("instance", ["figure2", "jpeg2000"])
def test_build_expanded_constraint_graph(benchmark, instance):
    graph = INSTANCES[instance]()
    q = repetition_vector(graph)
    K = {t: min(4, q[t]) if q[t] % min(4, q[t]) == 0 else 1 for t in q}
    expanded = expand_graph(graph, K)
    q_tilde = expanded_repetition_vector(q, K)
    bi, _ = benchmark(
        lambda: build_constraint_graph(expanded, q_tilde)
    )
    assert bi.arc_count > 0


def test_merge_parallel_shrinks_bounded_graphs(benchmark):
    rows = []
    for name in ("jpeg2000", "pdetect"):
        graph = INSTANCES[name]()
        bounded = bound_all_buffers(
            graph,
            {
                b.name: 4 * minimal_buffer_capacity(b)
                for b in graph.buffers() if not b.is_self_loop()
            },
        )
        merged, _ = build_constraint_graph(bounded, merge_parallel=True)
        raw, _ = build_constraint_graph(bounded, merge_parallel=False)
        assert merged.arc_count <= raw.arc_count
        rows.append(
            [name, str(raw.arc_count), str(merged.arc_count),
             f"{100 * (1 - merged.arc_count / raw.arc_count):.1f}%"]
        )
    table = format_table(
        ["Instance (bounded)", "arcs (raw)", "arcs (merged)", "saved"],
        rows,
        title="Ablation A3 — parallel-arc merging",
    )
    write_artifact("ablation_constraint_graph.txt", table)
    print("\n" + table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_merging_does_not_change_period(benchmark):
    from repro.mcrp import max_cycle_ratio

    graph = figure2_graph()
    merged, _ = build_constraint_graph(graph, merge_parallel=True)
    raw, _ = build_constraint_graph(graph, merge_parallel=False)
    assert max_cycle_ratio(merged).ratio == max_cycle_ratio(raw).ratio
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
