"""Scaling ablation: how each method's cost grows with Σq.

The paper's central claim is asymptotic: symbolic execution and
expansion methods pay for the repetition vector (state count / node
count grows with Σq) while K-Iter pays only for the K its optimality
certificate needs. This bench sweeps the Σq knob of a fixed topology
(rate-scaled BlackScholes batches and a two-task multirate cycle) and
records the per-method wall time — the closest thing to a "figure" the
paper's evaluation implies but does not plot.

Writes ``results/ablation_scaling.txt``.
"""

import time

import pytest

from benchmarks.conftest import BUDGET, write_artifact
from repro.analysis import repetition_vector_sum
from repro.bench.reporting import format_table
from repro.bench.runner import run_method
from repro.generators.csdf_apps import blackscholes
from repro.model import sdf

METHODS = ("periodic", "kiter", "symbolic")


def multirate_cycle(rate: int):
    """Two-task cycle with coprime-ish rates: Σq grows linearly."""
    return sdf(
        {"A": 3, "B": 2},
        [
            ("A", "B", rate, rate + 1, 0),
            ("B", "A", rate + 1, rate, 2 * (rate + 1) * rate),
        ],
        name=f"cycle_r{rate}",
    )


@pytest.mark.parametrize("rate", [3, 9, 27])
def test_cycle_scaling_kiter(benchmark, rate):
    graph = multirate_cycle(rate)
    outcome = benchmark(lambda: run_method("kiter", graph, BUDGET))
    assert outcome.ok


@pytest.mark.parametrize("rate", [3, 9, 27])
def test_cycle_scaling_symbolic(benchmark, rate):
    graph = multirate_cycle(rate)
    outcome = benchmark(
        lambda: run_method("symbolic", graph, BUDGET)
    )
    assert outcome.status in ("OK", "TIMEOUT")


def test_scaling_table(benchmark):
    rows = []
    for rate in (3, 9, 27, 81, 243):
        graph = multirate_cycle(rate)
        cells = [f"cycle r={rate}", str(repetition_vector_sum(graph))]
        exact = None
        for method in METHODS:
            outcome = run_method(method, graph, BUDGET)
            if method == "kiter" and outcome.ok:
                exact = outcome.period
            cells.append(
                outcome.time_text()
                if outcome.status in ("OK", "TIMEOUT")
                else outcome.status
            )
            if method == "symbolic" and outcome.ok and exact is not None:
                assert outcome.period == exact
        rows.append(cells)
    for scale in (1, 4, 16):
        graph = blackscholes(scale)
        cells = [f"blackscholes s={scale}",
                 str(repetition_vector_sum(graph))]
        for method in METHODS:
            outcome = run_method(method, graph, BUDGET)
            cells.append(
                outcome.time_text()
                if outcome.status in ("OK", "TIMEOUT")
                else outcome.status
            )
        rows.append(cells)
    table = format_table(
        ["Instance", "Σq", "periodic", "K-Iter", "symbolic"],
        rows,
        title="Scaling ablation — wall time vs Σq",
    )
    write_artifact("ablation_scaling.txt", table)
    print("\n" + table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
