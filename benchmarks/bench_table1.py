"""Table 1 reproduction: optimal SDF methods across four categories.

Two layers:

* per-category pytest-benchmark measurements of each method on a
  representative instance (stable, comparable numbers);
* ``test_table1_full`` regenerates the whole table (all graphs, all
  methods, with budgets) and writes ``results/table1.txt``.

Paper reference values (Intel i5-4570, C++):

    ActualDSP    K-Iter 29.82ms   [6] 2.42ms    [8] 38.32ms
    MimicDSP     K-Iter  0.24ms   [6] 2.99ms    [8] 5.30ms
    LgHSDF       K-Iter  0.69ms   [6] 0.40ms    [8] 1110.31ms
    LgTransient  K-Iter  0.03ms   [6] 70.13ms   [8] 320.00ms

The *shape* to reproduce: K-Iter beats symbolic execution by 1–3 orders
of magnitude on MimicDSP/LgHSDF/LgTransient and is slower only on
ActualDSP (the H263 decoder instance). Our stand-in for [6] is the
classical expansion with arc reduction — unlike de Groote's
cycle-induced-subgraph method it materializes all Σq copies, so it is
slow on large-Σq categories (documented deviation, EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import BUDGET, COUNT, write_artifact
from repro.bench import format_table1, run_table1
from repro.bench.runner import run_method
from repro.generators.dsp import actual_dsp_graphs, samplerate_converter
from repro.generators.random_sdf import large_hsdf, large_transient, mimic_dsp

REPRESENTATIVES = {
    "ActualDSP": samplerate_converter,
    "MimicDSP": lambda: mimic_dsp(3),
    "LgHSDF": lambda: large_hsdf(1),
    "LgTransient": lambda: large_transient(0),
}


@pytest.mark.parametrize("category", sorted(REPRESENTATIVES))
def test_table1_kiter(benchmark, category):
    graph = REPRESENTATIVES[category]()
    outcome = benchmark(lambda: run_method("kiter", graph, BUDGET))
    assert outcome.ok


@pytest.mark.parametrize("category", sorted(REPRESENTATIVES))
def test_table1_symbolic(benchmark, category):
    graph = REPRESENTATIVES[category]()
    outcome = benchmark(lambda: run_method("symbolic", graph, BUDGET))
    assert outcome.status in ("OK", "TIMEOUT")


@pytest.mark.parametrize("category", ["MimicDSP", "LgTransient"])
def test_table1_expansion(benchmark, category):
    graph = REPRESENTATIVES[category]()
    outcome = benchmark(lambda: run_method("expansion", graph, BUDGET))
    assert outcome.status in ("OK", "TIMEOUT")


def test_table1_full(benchmark):
    """Regenerate Table 1 and check the headline shape claims."""
    rows = run_table1(graphs_per_category=COUNT, budget=BUDGET)
    table = format_table1(rows)
    path = write_artifact("table1.txt", table)
    print("\n" + table)
    print(f"\n[written to {path}]")

    by_name = {r.category: r for r in rows}
    for row in rows:
        assert row.disagreements == 0, (
            f"exact methods disagreed in {row.category}"
        )

    def avg_ms(row, method) -> float:
        return float(row.avg_times[method].split()[0])

    # Headline shape: K-Iter beats symbolic on the three scaling
    # categories (the paper's 1–3 orders of magnitude).
    for category in ("MimicDSP", "LgHSDF"):
        assert avg_ms(by_name[category], "kiter") < avg_ms(
            by_name[category], "symbolic"
        ), f"K-Iter should beat symbolic on {category}"
    # trivial benchmark() use so pytest-benchmark accepts the test
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_actualdsp_h263_is_kiters_worst_case(benchmark):
    """The paper singles out H263 as K-Iter's slowest SDF3 instance."""
    graphs = {g.name: g for g in actual_dsp_graphs()}
    times = {}
    for name, g in graphs.items():
        outcome = run_method("kiter", g, BUDGET)
        assert outcome.ok
        times[name] = outcome.seconds
    assert max(times, key=times.get) == "h263decoder"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
