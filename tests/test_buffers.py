"""Unit tests for the bounded-buffer transformation and sizing helpers."""

from fractions import Fraction

import pytest

from repro.buffers import (
    bound_all_buffers,
    bound_buffer,
    minimal_feasible_scale,
    throughput_storage_curve,
)
from repro.buffers.capacity import minimal_buffer_capacity
from repro.exceptions import ModelError
from repro.kperiodic import throughput_kiter
from repro.baselines import throughput_symbolic
from repro.analysis import is_live
from repro.model import sdf


@pytest.fixture
def pipeline():
    return sdf({"A": 2, "B": 3}, [("A", "B", 2, 1, 0)], name="pipe")


class TestBoundBuffer:
    def test_reverse_arc_created(self, pipeline):
        bounded = bound_buffer(pipeline, "A_B_0", 8)
        space = bounded.buffer("__space_A_B_0")
        assert space.source == "B" and space.target == "A"
        assert space.initial_tokens == 8

    def test_capacity_below_marking_rejected(self):
        g = sdf({"A": 1, "B": 1}, [("A", "B", 1, 1, 5)])
        with pytest.raises(ModelError):
            bound_buffer(g, "A_B_0", 4)

    def test_bound_all_uniform(self, pipeline):
        bounded = bound_all_buffers(pipeline, 100)
        assert bounded.buffer_count == 2

    def test_bound_all_skips_self_loops(self):
        g = sdf({"A": 1}, [("A", "A", 1, 1, 1)])
        bounded = bound_all_buffers(g, 10)
        assert bounded.buffer_count == 1

    def test_mapping_selects_buffers(self, pipeline):
        bounded = bound_all_buffers(pipeline, {"A_B_0": 9})
        assert bounded.buffer("__space_A_B_0").initial_tokens == 9

    def test_minimal_capacity_fits_one_exchange(self, pipeline):
        b = pipeline.buffer("A_B_0")
        assert minimal_buffer_capacity(b) == 3  # max in + max out


class TestSemantics:
    def test_bounding_slows_pipeline(self, pipeline):
        unbounded = throughput_kiter(pipeline).period
        tight = bound_all_buffers(pipeline, 3)
        bounded_period = throughput_kiter(tight).period
        assert bounded_period >= unbounded

    def test_bounded_matches_symbolic(self, pipeline):
        tight = bound_all_buffers(pipeline, 3)
        assert (
            throughput_symbolic(tight).period
            == throughput_kiter(tight).period
        )

    def test_generous_capacity_restores_throughput(self, pipeline):
        unbounded = throughput_kiter(pipeline).period
        roomy = bound_all_buffers(pipeline, 1000)
        assert throughput_kiter(roomy).period == unbounded

    def test_too_tight_capacity_deadlocks(self):
        # a 2-token exchange cannot happen through a 1-token buffer;
        # bound_all_buffers raises the capacity to the structural
        # minimum, so build the reverse arc by hand to model it.
        from repro.model import Buffer, CsdfGraph, Task

        g = CsdfGraph("tight")
        g.add_task(Task("A", (1,)))
        g.add_task(Task("B", (1,)))
        g.add_buffer(Buffer("ab", "A", "B", (2,), (2,), 0))
        g.add_buffer(Buffer("space", "B", "A", (2,), (2,), 1))
        assert not is_live(g)


class TestSizing:
    def test_storage_curve_monotone(self, pipeline):
        curve = throughput_storage_curve(pipeline, [1, 2, 4])
        values = [Fraction(-1) if th is None else th for _s, th in curve]
        assert values == sorted(values)

    def test_minimal_feasible_scale_is_live(self, pipeline):
        scale = minimal_feasible_scale(pipeline)
        assert scale >= 1

    def test_minimal_scale_for_target_throughput(self, pipeline):
        best = throughput_kiter(pipeline).throughput
        scale = minimal_feasible_scale(
            pipeline,
            predicate=lambda th: th is not None and th >= best,
        )
        # the scale below must fail the predicate (minimality)
        if scale > 1:
            from repro.buffers.sizing import _capacities_at_scale

            smaller = bound_all_buffers(
                pipeline, _capacities_at_scale(pipeline, scale - 1)
            )
            try:
                worse = throughput_kiter(smaller).throughput
            except Exception:
                worse = None
            assert worse is None or worse < best

    def test_minimize_total_storage_meets_target(self, pipeline):
        from repro.buffers import minimize_total_storage

        caps = minimize_total_storage(pipeline)
        bounded = bound_all_buffers(pipeline, caps)
        assert (
            throughput_kiter(bounded).period
            == throughput_kiter(pipeline).period
        )

    def test_minimize_total_storage_is_locally_minimal(self, pipeline):
        from repro.buffers import minimize_total_storage
        from repro.buffers.capacity import minimal_buffer_capacity
        from repro.exceptions import DeadlockError

        target = throughput_kiter(pipeline).throughput
        caps = minimize_total_storage(pipeline)
        floors = {
            b.name: minimal_buffer_capacity(b)
            for b in pipeline.buffers() if not b.is_self_loop()
        }
        for name in caps:
            if caps[name] <= floors[name]:
                continue
            trial = dict(caps)
            trial[name] -= 1
            bounded = bound_all_buffers(pipeline, trial)
            try:
                th = throughput_kiter(bounded).throughput
            except DeadlockError:
                th = None
            assert th is None or th < target, (
                f"buffer {name} could still shrink"
            )

    def test_minimize_storage_on_cycle(self, multirate_cycle=None):
        from repro.buffers import minimize_total_storage
        from repro.model import sdf

        g = sdf({"A": 1, "B": 2},
                [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)])
        caps = minimize_total_storage(g)
        assert set(caps) == {"A_B_0", "B_A_0"}

    def test_bad_scale_rejected(self, pipeline):
        with pytest.raises(ModelError):
            throughput_storage_curve(pipeline, [0])

    def test_unreachable_predicate_rejected(self, pipeline):
        with pytest.raises(ModelError):
            minimal_feasible_scale(
                pipeline, max_scale=2,
                predicate=lambda th: False,
            )
