"""Property-based tests (hypothesis) on the core data structures.

Each property is an invariant documented in DESIGN.md §6:

* Theorem 2 soundness: the earliest K-periodic schedule produced from
  the constraint graph replays over the token semantics without a
  negative buffer;
* consistency scaling invariance and balance;
* K-expansion algebra (Theorem 3's bookkeeping);
* MCRP engine agreement on arbitrary bi-valued graphs;
* throughput monotonicity in buffer capacity;
* rounding-operator algebra (the ``⌈·⌉^γ``/``⌊·⌋^γ`` pair).
"""

import random
from fractions import Fraction
from math import gcd

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import is_live, repetition_vector
from repro.baselines import throughput_symbolic
from repro.exceptions import DeadlockError
from repro.kperiodic import expand_graph, min_period_for_k, throughput_kiter
from repro.mcrp import (
    BiValuedGraph,
    max_cycle_ratio,
    max_cycle_ratio_howard,
    max_cycle_ratio_lawler,
)
from repro.model import Buffer, CsdfGraph, Task
from repro.utils.rational import ceil_to_multiple, floor_to_multiple
from tests.conftest import make_random_live_graph

LIMITED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# rounding operators
# ----------------------------------------------------------------------
@given(st.integers(-10**9, 10**9), st.integers(1, 10**6))
def test_floor_ceil_to_multiple_algebra(alpha, gamma):
    lo = floor_to_multiple(alpha, gamma)
    hi = ceil_to_multiple(alpha, gamma)
    assert lo % gamma == 0 and hi % gamma == 0
    assert lo <= alpha <= hi
    assert hi - lo in (0, gamma)
    assert (hi == lo) == (alpha % gamma == 0)


# ----------------------------------------------------------------------
# consistency
# ----------------------------------------------------------------------
@st.composite
def consistent_two_task_graph(draw):
    i_b = draw(st.integers(1, 40))
    o_b = draw(st.integers(1, 40))
    m0 = draw(st.integers(0, 100))
    d_a = draw(st.integers(0, 9))
    d_b = draw(st.integers(0, 9))
    g = CsdfGraph("prop")
    g.add_task(Task("A", (d_a,)))
    g.add_task(Task("B", (d_b,)))
    g.add_buffer(Buffer("ab", "A", "B", (i_b,), (o_b,), m0))
    return g


@LIMITED
@given(consistent_two_task_graph(), st.integers(2, 7))
def test_repetition_scaling_invariance(graph, factor):
    q1 = repetition_vector(graph)
    scaled = CsdfGraph("scaled")
    for t in graph.tasks():
        scaled.add_task(t)
    for b in graph.buffers():
        scaled.add_buffer(
            Buffer(b.name, b.source, b.target,
                   tuple(r * factor for r in b.production),
                   tuple(r * factor for r in b.consumption),
                   b.initial_tokens)
        )
    assert repetition_vector(scaled) == q1


@LIMITED
@given(consistent_two_task_graph())
def test_repetition_balance(graph):
    q = repetition_vector(graph)
    for b in graph.buffers():
        assert q[b.source] * b.total_production == \
            q[b.target] * b.total_consumption
    assert gcd(q["A"], q["B"]) == 1


# ----------------------------------------------------------------------
# K-expansion algebra
# ----------------------------------------------------------------------
@LIMITED
@given(st.integers(0, 10**6), st.integers(1, 6), st.integers(1, 6),
       st.data())
def test_expansion_preserves_consistency_and_marking(seed, ka, kb, data):
    g = make_random_live_graph(seed % 50, tasks=3)
    K = {t.name: data.draw(st.integers(1, 4)) for t in g.tasks()}
    expanded = expand_graph(g, K)
    q = repetition_vector(g)
    q_expanded = repetition_vector(expanded)
    for b in g.buffers():
        eb = expanded.buffer(b.name)
        assert eb.initial_tokens == b.initial_tokens
        assert eb.total_production == K[b.source] * b.total_production
    # minimal q of G̃ is proportional to q_t/K_t
    names = g.task_names()
    ratios = {
        t: Fraction(q[t], K[t]) / Fraction(q_expanded[t])
        for t in names
    }
    assert len(set(ratios.values())) == 1


# ----------------------------------------------------------------------
# Theorem 2 soundness via schedule replay
# ----------------------------------------------------------------------
@LIMITED
@given(st.integers(0, 10**6), st.data())
def test_min_period_schedule_is_token_sound(seed, data):
    g = make_random_live_graph(seed % 200, tasks=4)
    q = repetition_vector(g)
    K = {t: data.draw(st.sampled_from(sorted(_divisors(q[t]))))
         for t in q}
    try:
        result = min_period_for_k(g, K)
    except DeadlockError:
        return  # small-K infeasibility: nothing to replay
    if result.schedule is not None:
        result.schedule.verify(g, iterations=3)


def _divisors(n: int):
    return {d for d in range(1, n + 1) if n % d == 0}


# ----------------------------------------------------------------------
# MCRP engines agree on arbitrary graphs
# ----------------------------------------------------------------------
@LIMITED
@given(st.integers(0, 10**9))
def test_mcrp_engines_agree(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 10)
    g = BiValuedGraph(n)
    for _ in range(rng.randint(0, 3 * n)):
        g.add_arc(
            rng.randrange(n), rng.randrange(n),
            rng.randint(0, 10),
            Fraction(rng.randint(-2, 6), rng.randint(1, 3)),
        )
    outcomes = []
    for engine in (max_cycle_ratio, max_cycle_ratio_howard,
                   max_cycle_ratio_lawler):
        try:
            outcomes.append(engine(g).ratio)
        except DeadlockError:
            outcomes.append("deadlock")
    assert outcomes[0] == outcomes[1] == outcomes[2]


# ----------------------------------------------------------------------
# ASAP simulation never goes negative & throughput equivalence
# ----------------------------------------------------------------------
@LIMITED
@given(st.integers(0, 10**6))
def test_symbolic_equals_kiter(seed):
    g = make_random_live_graph(seed % 300, tasks=4)
    exact = throughput_kiter(g).period
    assert throughput_symbolic(g, max_states=300_000).period == exact


# ----------------------------------------------------------------------
# capacity monotonicity
# ----------------------------------------------------------------------
@LIMITED
@given(st.integers(0, 10**6), st.integers(1, 3))
def test_throughput_monotone_in_capacity(seed, step):
    from repro.buffers import throughput_storage_curve

    g = make_random_live_graph(seed % 100, tasks=3)
    curve = throughput_storage_curve(g, [1, 1 + step, 1 + 2 * step])
    values = [
        (Fraction(-1) if th is None else th) for _scale, th in curve
    ]
    assert values == sorted(values)
