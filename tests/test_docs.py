"""The documentation surface: presence, links, and honest examples.

The CI ``docs`` job runs ``tools/check_links.py`` and the doctests;
this module runs the same link check inside tier-1 so a broken doc
reference fails locally before CI, and pins the claims the README and
engine guide make against the actual registry/CLI surface (a renamed
engine or command must break these tests, not just go stale).
"""

import re
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_links import check_links  # noqa: E402


def test_no_broken_relative_links():
    broken = check_links(ROOT)
    assert not broken, "\n".join(broken)


def test_readme_exists_and_covers_quickstart():
    readme = (ROOT / "README.md").read_text()
    for command in ("repro throughput", "repro batch", "repro engines",
                    "python -m pytest"):
        assert command in readme, f"README must document `{command}`"
    assert "ARCHITECTURE.md" in readme
    assert "docs/engines.md" in readme


def test_engine_guide_names_every_registered_engine():
    from repro.mcrp import engine_names

    guide = (ROOT / "docs" / "engines.md").read_text()
    readme = (ROOT / "README.md").read_text()
    for name in engine_names():
        assert f"`{name}`" in guide, f"docs/engines.md must cover {name}"
        assert f"`{name}`" in readme, f"README engine table must list {name}"


def test_service_guide_backend_tables_match_registries():
    """docs/service.md's backend matrix is pinned to the live
    registries — a renamed or added backend must break this test, not
    silently go stale."""
    from repro.distributed import CACHE_BACKENDS, QUEUE_BACKENDS

    guide = (ROOT / "docs" / "service.md").read_text()
    for name in CACHE_BACKENDS:
        row = re.search(rf"^\| `{re.escape(name)}` \|.*$", guide,
                        re.MULTILINE)
        assert row, f"docs/service.md cache table must list {name}"
    for name in QUEUE_BACKENDS:
        assert f"`{name}`" in guide, (
            f"docs/service.md queue table must list {name}"
        )
    # every CLI verb of the fabric is documented
    for command in ("repro serve", "repro worker",
                    "repro batch", "repro serve-stats"):
        assert command.split()[1] in guide, (
            f"docs/service.md must document `{command}`"
        )


def test_service_guide_is_linked_from_readme_and_architecture():
    readme = (ROOT / "README.md").read_text()
    architecture = (ROOT / "ARCHITECTURE.md").read_text()
    assert "docs/service.md" in readme
    assert "docs/service.md" in architecture


def test_observability_guide_metric_table_matches_registry():
    """docs/observability.md's metric table is pinned to the live
    declaration table — adding, renaming, retyping or relabeling a
    family must update the doc, not let it go stale."""
    from repro.obs.metrics import METRICS

    guide = (ROOT / "docs" / "observability.md").read_text()
    for name, spec in METRICS.items():
        row = re.search(rf"^\| `{re.escape(name)}` \|.*$", guide,
                        re.MULTILINE)
        assert row, f"docs/observability.md must list {name}"
        assert f"| {spec.type} |" in row.group(0), (
            f"docs/observability.md row for {name} disagrees with the "
            f"declared type {spec.type}"
        )
        labels = ", ".join(spec.labels) if spec.labels else "—"
        assert f"| {labels} |" in row.group(0), (
            f"docs/observability.md row for {name} disagrees with the "
            f"declared labels {spec.labels}"
        )
    # no documented ghosts: every table row is a declared family
    for row in re.findall(r"^\| `(repro_[a-z_]+)` \|", guide,
                          re.MULTILINE):
        assert row in METRICS, (
            f"docs/observability.md documents {row}, which is not in "
            f"repro.obs.METRICS"
        )


def test_observability_guide_covers_spans_and_surfaces():
    guide = (ROOT / "docs" / "observability.md").read_text()
    for name in ("service.batch", "client.job", "pool.chunk",
                 "job.solve", "kiter.round", "fleet.round",
                 "worker.solve", "worker.nack", "coordinator.enqueue",
                 "coordinator.result"):
        assert f"`{name}`" in guide, (
            f"docs/observability.md span taxonomy must cover {name}"
        )
    for surface in ("REPRO_TRACE", "--trace", "repro trace",
                    "/metrics", "/trace/", "repro-bench/1",
                    "REPRO_PROFILE", "--profile", "repro profile",
                    "repro-profile/1", "REPRO_SLOWLOG", "repro replay",
                    "results/slowlog", "REPRO_BENCH_HISTORY",
                    "repro bench-report", "bench_history.jsonl",
                    "repro report", "/report"):
        assert surface in guide, (
            f"docs/observability.md must document {surface}"
        )
    readme = (ROOT / "README.md").read_text()
    architecture = (ROOT / "ARCHITECTURE.md").read_text()
    assert "docs/observability.md" in readme
    assert "docs/observability.md" in architecture


def test_cli_observatory_verbs_exist():
    from repro.cli import build_parser

    parser = build_parser()
    text = parser.format_help()
    for verb in ("profile", "replay", "bench-report", "report"):
        assert verb in text


def test_cli_distributed_verbs_exist():
    from repro.cli import build_parser

    parser = build_parser()
    text = parser.format_help()
    for verb in ("serve", "worker", "batch", "serve-stats"):
        assert verb in text


def test_architecture_engine_table_matches_registry():
    from repro.mcrp import all_engines

    text = (ROOT / "ARCHITECTURE.md").read_text()
    for info in all_engines():
        row = re.search(rf"^\| `{re.escape(info.name)}` \|.*$", text,
                        re.MULTILINE)
        assert row, f"ARCHITECTURE.md engine table must list {info.name}"
        assert ("vectorized" in row.group(0)) == info.vectorized, (
            f"ARCHITECTURE.md row for {info.name} disagrees with the "
            f"registry's vectorized={info.vectorized} capability"
        )
        assert ("batched" in row.group(0)) == info.batched, (
            f"ARCHITECTURE.md row for {info.name} disagrees with the "
            f"registry's batched={info.batched} capability"
        )


def test_engine_guide_batched_section_matches_registry():
    """docs/engines.md's batched-solving claims are pinned to the live
    registry and the fleet kernel's oracle table — an engine gaining or
    losing the `batched` capability must break this test."""
    from repro.mcrp import all_engines
    from repro.mcrp.batched import BATCHED_ORACLES

    guide = (ROOT / "docs" / "engines.md").read_text()
    assert "## Batched solving" in guide
    batched = {info.name for info in all_engines() if info.batched}
    assert batched == set(BATCHED_ORACLES), (
        "registry batched flags disagree with BATCHED_ORACLES"
    )
    for name in batched:
        assert f"`{name}`" in guide
    # the escape hatch and the fallback contract are documented
    assert "--no-batched" in guide
    assert "per-graph" in guide


def test_scheduling_guide_policy_table_matches_registry():
    """docs/scheduling.md's policy table is pinned to the live policy
    registry — adding, renaming or reflagging a policy must update the
    doc, not let it go stale."""
    from repro.scheduling import all_policies, policy_names

    guide = (ROOT / "docs" / "scheduling.md").read_text()
    for info in all_policies():
        row = re.search(rf"^\| `{re.escape(info.name)}` \|.*$", guide,
                        re.MULTILINE)
        assert row, f"docs/scheduling.md must list {info.name}"
        assert ("resource-constrained" in row.group(0)) == (
            info.resource_constrained
        ), (
            f"docs/scheduling.md row for {info.name} disagrees with the "
            f"registry's resource_constrained={info.resource_constrained}"
        )
        assert ("refinement" in row.group(0)) == info.refinement, (
            f"docs/scheduling.md row for {info.name} disagrees with the "
            f"registry's refinement={info.refinement}"
        )
    # no documented ghosts: every table row is a registered policy
    for row in re.findall(r"^\| `([a-z-]+)` \|", guide, re.MULTILINE):
        assert row in policy_names(), (
            f"docs/scheduling.md documents {row}, which is not a "
            f"registered scheduling policy"
        )


def test_scheduling_guide_covers_cli_and_contract():
    guide = (ROOT / "docs" / "scheduling.md").read_text()
    for surface in ("repro policies", "repro schedule", "--policy",
                    "--resources", "--priority", "repro gantt"):
        assert surface in guide, (
            f"docs/scheduling.md must document `{surface}`"
        )
    # the honest-N/S binding contract and its escalation path
    for term in ("SchedulingError", "apply_mapping", "mobility"):
        assert term in guide


def test_scheduling_guide_is_linked_and_policies_named():
    from repro.scheduling import policy_names

    readme = (ROOT / "README.md").read_text()
    architecture = (ROOT / "ARCHITECTURE.md").read_text()
    assert "docs/scheduling.md" in readme
    assert "docs/scheduling.md" in architecture
    for name in policy_names():
        assert f"`{name}`" in readme, (
            f"README policy-zoo section must name {name}"
        )
        assert f"`{name}`" in architecture, (
            f"ARCHITECTURE.md policy-zoo section must name {name}"
        )


def test_cli_schedule_policy_verbs_exist():
    from repro.cli import build_parser

    parser = build_parser()
    assert "policies" in parser.format_help()


def test_dse_guide_edit_table_matches_session():
    """docs/dse.md's edit-method table is pinned to
    ``DseSession.EDIT_METHODS`` — adding, renaming or removing an edit
    method must update the doc, not let it go stale."""
    from repro.dse import DseSession

    guide = (ROOT / "docs" / "dse.md").read_text()
    for name in DseSession.EDIT_METHODS:
        row = re.search(rf"^\| `{re.escape(name)}\(", guide,
                        re.MULTILINE)
        assert row, f"docs/dse.md edit table must list {name}"
        assert callable(getattr(DseSession, name)), (
            f"EDIT_METHODS names {name}, which is not a DseSession "
            "method"
        )
    # no documented ghosts: every edit-table row is a real edit method
    for row in re.findall(r"^\| `([a-z_]+)\(", guide, re.MULTILINE):
        assert row in DseSession.EDIT_METHODS, (
            f"docs/dse.md documents {row}(), which is not in "
            "DseSession.EDIT_METHODS"
        )


def test_dse_guide_covers_cli_and_contract():
    guide = (ROOT / "docs" / "dse.md").read_text()
    for surface in ("repro explore", "--check", "--no-warm",
                    "ThroughputService.explore", "reset"):
        assert surface in guide, f"docs/dse.md must document `{surface}`"
    # the exactness contract and the downgrade rule are stated
    for term in ("bit-identical", "downgrade", "warm"):
        assert term in guide


def test_dse_guide_is_linked_from_readme_and_architecture():
    readme = (ROOT / "README.md").read_text()
    architecture = (ROOT / "ARCHITECTURE.md").read_text()
    assert "docs/dse.md" in readme
    assert "docs/dse.md" in architecture


def test_cli_explore_verb_exists():
    from repro.cli import build_parser

    parser = build_parser()
    assert "explore" in parser.format_help()


def test_check_links_flags_breakage(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/real.md) [bad](docs/gone.md) "
        "[anchor](docs/real.md#missing) [ext](https://example.com)\n"
    )
    (tmp_path / "ARCHITECTURE.md").write_text("# Title\n")
    (tmp_path / "docs" / "real.md").write_text("# Real\n")
    broken = check_links(tmp_path)
    assert len(broken) == 2
    assert any("docs/gone.md" in row for row in broken)
    assert any("missing anchor" in row for row in broken)


def test_cli_engines_output_matches_docs_claims(capsys):
    from repro.cli import main
    from repro.mcrp import engine_names

    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    for name in engine_names():
        assert name in out
    assert "vectorized" in out


@pytest.mark.parametrize("snippet_graph_period", [2])
def test_readme_python_snippet_is_honest(snippet_graph_period):
    # the README's inline Python example, executed verbatim in spirit
    from fractions import Fraction

    from repro import sdf, throughput_kiter
    from repro.service import ThroughputService

    g = sdf({"A": 1, "B": 1}, [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
    assert throughput_kiter(g, engine="hybrid").period == Fraction(
        snippet_graph_period
    )
    with ThroughputService(workers=0) as service:
        outcomes = service.submit_many([g])
    assert outcomes[0].period == Fraction(snippet_graph_period)
