"""Unit + semantic tests for the mapping subsystem."""

from fractions import Fraction

import pytest

from repro.analysis import is_live, period_bounds, repetition_vector
from repro.exceptions import DeadlockError, ModelError
from repro.generators.paper import figure2_graph
from repro.kperiodic import throughput_kiter
from repro.mapping import (
    Mapping,
    admissible_static_order,
    apply_mapping,
    greedy_load_balance,
    throughput_under_mapping,
)
from repro.model import sdf


@pytest.fixture
def chain():
    return sdf(
        {"A": 2, "B": 3, "C": 1},
        [("A", "B", 1, 1, 0), ("B", "C", 1, 2, 0)],
        name="chain",
    )


class TestMappingModel:
    def test_validate_coverage(self, chain):
        q = repetition_vector(chain)
        bad = Mapping(assignment={"A": "p0"}, orders={"p0": ["A"] * q["A"]})
        with pytest.raises(ModelError):
            bad.validate(chain, q)

    def test_validate_multiplicities(self, chain):
        q = repetition_vector(chain)
        mapping = Mapping.single_processor(chain, ["A", "B", "C"])
        # q = [2, 2, 1]: one occurrence of A is missing
        if q["A"] != 1:
            with pytest.raises(ModelError):
                mapping.validate(chain, q)

    def test_fully_parallel_valid(self, chain):
        q = repetition_vector(chain)
        Mapping.fully_parallel(chain).validate(chain, q)


class TestAdmissibleOrder:
    def test_pass_multiplicities(self, chain):
        q = repetition_vector(chain)
        order = admissible_static_order(chain)
        for t, qt in q.items():
            assert order.count(t) == qt

    def test_figure2_needs_phase_granularity(self):
        """The running example is live only through phase interleaving:
        no iteration-granular sequential order exists."""
        with pytest.raises(DeadlockError):
            admissible_static_order(figure2_graph())
        order = admissible_static_order(
            figure2_graph(), granularity="phase"
        )
        # Σ q_t·ϕ(t) = 3·2 + 4·3 + 6·1 + 1·1 = 25 phase firings
        assert len(order) == 25

    def test_deadlocked_graph_rejected(self, deadlocked_cycle):
        with pytest.raises(DeadlockError):
            admissible_static_order(deadlocked_cycle)
        with pytest.raises(DeadlockError):
            admissible_static_order(deadlocked_cycle, granularity="phase")


class TestTransform:
    def test_scheduler_task_added(self, chain):
        order = admissible_static_order(chain)
        mapped = apply_mapping(chain, Mapping.single_processor(chain, order))
        assert mapped.has_task("__sched_cpu0")
        sched = mapped.task("__sched_cpu0")
        assert sched.phase_count == len(order)
        assert sched.iteration_duration == 0

    def test_single_task_processor_untouched(self, chain):
        mapped = apply_mapping(chain, Mapping.fully_parallel(chain))
        assert mapped.task_count == chain.task_count

    def test_mapped_graph_consistent_and_live(self, chain):
        order = admissible_static_order(chain)
        mapped = apply_mapping(chain, Mapping.single_processor(chain, order))
        assert repetition_vector(mapped)["__sched_cpu0"] == 1
        assert is_live(mapped)


class TestSemantics:
    def test_single_processor_hits_sequential_bound(self, chain):
        """One processor: the period equals the total workload."""
        order = admissible_static_order(chain)
        mapping = Mapping.single_processor(chain, order)
        result, _ = throughput_under_mapping(chain, mapping)
        assert result.period == period_bounds(chain).upper

    def test_fully_parallel_equals_unmapped(self, chain):
        result, _ = throughput_under_mapping(
            chain, Mapping.fully_parallel(chain)
        )
        assert result.period == throughput_kiter(chain).period

    def test_mapping_never_helps(self):
        g = figure2_graph()
        unmapped = throughput_kiter(g).period
        for procs in (1, 2, 3):
            mapping = greedy_load_balance(g, procs)
            result, _ = throughput_under_mapping(g, mapping)
            assert result.period >= unmapped

    def test_more_processors_never_hurt_greedy(self, chain):
        periods = []
        for procs in (1, 2, 3):
            mapping = greedy_load_balance(chain, procs)
            result, _ = throughput_under_mapping(chain, mapping)
            periods.append(result.period)
        # LPT with more processors can in pathological cases regress, but
        # on a simple chain the trend must be monotone.
        assert periods[0] >= periods[1] >= periods[2]

    def test_inadmissible_order_detected(self):
        # B scheduled entirely before A on one processor, but B needs
        # A's tokens: inadmissible.
        g = sdf({"A": 1, "B": 1}, [("A", "B", 1, 1, 0)], name="ab")
        mapping = Mapping.single_processor(g, ["B", "A"])
        with pytest.raises(DeadlockError):
            throughput_under_mapping(g, mapping)


class TestGreedyBalance:
    def test_processor_count_respected(self):
        g = figure2_graph()
        mapping = greedy_load_balance(g, 2)
        assert len(mapping.processors()) <= 2

    def test_zero_processors_rejected(self, chain):
        with pytest.raises(ModelError):
            greedy_load_balance(chain, 0)

    def test_orders_are_restrictions(self, chain):
        mapping = greedy_load_balance(chain, 2)
        q = repetition_vector(chain)
        mapping.validate(chain, q)
