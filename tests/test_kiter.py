"""Unit + behavioural tests for the K-Iter algorithm (Algorithm 1)."""

from fractions import Fraction

import pytest

from repro.analysis import repetition_vector
from repro.exceptions import BudgetExceededError, DeadlockError
from repro.generators.paper import figure2_graph
from repro.kperiodic import min_period_for_k, throughput_kiter
from repro.kperiodic.kiter import throughput_via_full_expansion
from repro.model import csdf, sdf


class TestBasics:
    def test_unit_cycle(self, two_task_cycle):
        r = throughput_kiter(two_task_cycle)
        assert r.period == 2
        assert r.throughput == Fraction(1, 2)
        assert r.iteration_count == 1  # HSDF: 1-periodic already optimal

    def test_deadlock_detected(self, deadlocked_cycle):
        with pytest.raises(DeadlockError):
            throughput_kiter(deadlocked_cycle)

    def test_matches_full_expansion(self, multirate_cycle):
        exact = throughput_via_full_expansion(multirate_cycle).omega
        assert throughput_kiter(multirate_cycle).period == exact

    def test_k_stays_within_q(self, multirate_cycle):
        q = repetition_vector(multirate_cycle)
        r = throughput_kiter(multirate_cycle)
        for t, k in r.K.items():
            assert q[t] % k == 0, "K entries must divide q"

    def test_schedule_on_request(self, multirate_cycle):
        r = throughput_kiter(multirate_cycle, build_schedule=True)
        assert r.schedule is not None
        assert r.schedule.omega == r.period
        r.schedule.verify(multirate_cycle, iterations=3)

    def test_no_schedule_by_default(self, multirate_cycle):
        assert throughput_kiter(multirate_cycle).schedule is None


class TestFigure2:
    """The paper's running example, end to end."""

    def test_convergence_trace(self):
        r = throughput_kiter(figure2_graph())
        assert r.period == 13
        assert r.rounds[0].K == {"A": 1, "B": 1, "C": 1, "D": 1}
        assert r.rounds[0].omega == 18  # the 1-periodic bound
        assert not r.rounds[0].passed
        assert r.rounds[-1].passed
        # every round's bound is a valid lower bound on the true period
        for rd in r.rounds:
            if rd.omega is not None:
                assert rd.omega <= 13 or rd.omega >= 13  # monotone check below

    def test_first_critical_circuit(self):
        # At K = 1 the running example has two critical circuits of
        # ratio 18: the paper reports {A, D, C}; {A, B, C} ties. Which
        # one the engine certifies is a tie-break, so accept either.
        r = throughput_kiter(figure2_graph())
        assert r.rounds[0].critical_tasks in ({"A", "C", "D"}, {"A", "B", "C"})

    def test_round_bounds_monotone_nonincreasing_wait_no(self):
        # periods over rounds never *increase* past the optimum; each K
        # refinement can only lower the min period (superset constraints
        # argument) — and the final one is the exact optimum.
        r = throughput_kiter(figure2_graph())
        omegas = [rd.omega for rd in r.rounds if rd.omega is not None]
        assert all(
            earlier >= later
            for earlier, later in zip(omegas, omegas[1:])
        )
        assert omegas[-1] == 13


class TestInitialK:
    def test_starting_from_q_is_one_round(self, multirate_cycle):
        q = repetition_vector(multirate_cycle)
        r = throughput_kiter(multirate_cycle, initial_k=dict(q))
        assert r.iteration_count == 1

    def test_initial_k_does_not_change_answer(self):
        g = figure2_graph()
        base = throughput_kiter(g).period
        seeded = throughput_kiter(
            g, initial_k={"A": 3, "B": 1, "C": 1, "D": 1}
        ).period
        assert seeded == base


class TestInfeasibleKEscalation:
    """Live graphs whose small-K formulations are infeasible (N/S rows).

    The fixture is a 10-task cyclo-static ring (minimized from a pdetect
    generator instance): the cycle is unmarked except for one buffer, and
    is live only because of zero-rate phases that let tokens percolate —
    but no *strictly periodic* schedule exists, the paper's ``N/S``
    phenomenon. K-Iter must escalate K along the infeasible circuit and
    still land on the exact throughput.
    """

    def _tight_graph(self):
        return csdf(
            {
                "a": [2, 1], "b": [4, 2], "c": [4], "d": [3, 2],
                "e": [4], "f": [3], "g": [3, 3, 4], "h": [3, 2],
                "i": [9, 8], "j": [3],
            },
            [
                ("a", "b", [0, 4], [0, 3], 0),
                ("b", "c", [0, 1], [4], 0),
                ("c", "d", [2], [1, 0], 0),
                ("d", "e", [3, 0], [2], 0),
                ("e", "f", [4], [3], 0),
                ("f", "g", [1], [1, 1, 2], 4),
                ("g", "h", [1, 2, 7], [1, 0], 0),
                ("h", "i", [0, 1], [1, 0], 0),
                ("i", "j", [0, 1], [1], 0),
                ("j", "a", [3], [3, 7], 0),
            ],
            name="ns_ring",
        )

    def test_periodic_infeasible_but_live(self):
        from repro.analysis import is_live
        from repro.baselines import throughput_periodic

        g = self._tight_graph()
        assert is_live(g)
        assert not throughput_periodic(g).feasible

    def test_kiter_still_exact(self):
        g = self._tight_graph()
        r = throughput_kiter(g)
        exact = throughput_via_full_expansion(g).omega
        assert r.period == exact == 204
        # the trace records the infeasible round(s)
        assert any(rd.omega is None for rd in r.rounds)

    def test_symbolic_agrees(self):
        from repro.baselines import throughput_symbolic

        g = self._tight_graph()
        assert throughput_symbolic(g).period == 204


class TestBudget:
    def test_time_budget_raises(self):
        from repro.generators.csdf_apps import pdetect

        with pytest.raises(BudgetExceededError):
            throughput_kiter(pdetect(), time_budget=1e-9)


class TestUnboundedThroughput:
    def test_zero_durations_everywhere(self):
        g = sdf({"A": 0, "B": 0},
                [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
        r = throughput_kiter(g)
        assert r.period == 0
        assert r.throughput is None
