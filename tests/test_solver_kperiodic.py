"""Unit tests for min_period_for_k (Theorem 2 + MCRP + schedules)."""

from fractions import Fraction

import pytest

from repro.analysis import repetition_vector
from repro.exceptions import DeadlockError, SolverError
from repro.generators.paper import figure2_graph
from repro.kperiodic import min_period_for_k
from repro.model import csdf, sdf


class TestSingleTask:
    def test_utilization_bound(self):
        # serialization alone forces Ω ≥ q_t · Σ d = 1·5
        g = sdf({"A": 5}, [])
        r = min_period_for_k(g, {"A": 1})
        assert r.omega == 5
        assert r.critical_tasks == {"A"}

    def test_multiphase_utilization(self):
        g = csdf({"A": [2, 3, 4]}, [])
        assert min_period_for_k(g, {"A": 1}).omega == 9

    def test_k_does_not_change_pure_utilization(self):
        g = csdf({"A": [2, 3]}, [])
        assert min_period_for_k(g, {"A": 1}).omega == 5
        assert min_period_for_k(g, {"A": 4}).omega == 5


class TestTwoTaskCycle:
    def test_unit_cycle(self, two_task_cycle):
        r = min_period_for_k(two_task_cycle, {"A": 1, "B": 1})
        assert r.omega == 2

    def test_deadlock_raises_with_tasks(self, deadlocked_cycle):
        with pytest.raises(DeadlockError) as err:
            min_period_for_k(deadlocked_cycle, {"A": 1, "B": 1})
        assert err.value.critical_tasks == {"A", "B"}

    def test_k_improves_multirate_cycle(self, multirate_cycle):
        # q = [3, 2]: the 1-periodic bound is pessimistic, K = q exact
        q = repetition_vector(multirate_cycle)
        loose = min_period_for_k(multirate_cycle, {"A": 1, "B": 1}).omega
        tight = min_period_for_k(multirate_cycle, q).omega
        assert tight <= loose

    def test_monotone_in_k(self, multirate_cycle):
        # refining K never worsens the optimal period
        omega_11 = min_period_for_k(multirate_cycle, {"A": 1, "B": 1}).omega
        omega_31 = min_period_for_k(multirate_cycle, {"A": 3, "B": 1}).omega
        omega_32 = min_period_for_k(multirate_cycle, {"A": 3, "B": 2}).omega
        assert omega_32 <= omega_31 <= omega_11


class TestSchedules:
    def test_schedule_achieves_omega(self, multirate_cycle):
        r = min_period_for_k(multirate_cycle, {"A": 1, "B": 1})
        s = r.schedule
        assert s is not None
        assert s.omega == r.omega
        s.verify(multirate_cycle, iterations=4)

    def test_schedule_start_extrapolation(self, two_task_cycle):
        s = min_period_for_k(two_task_cycle, {"A": 1, "B": 1}).schedule
        mu = s.task_periods["A"]
        assert s.start_time("A", 1, 5) == s.start_time("A", 1, 1) + 4 * mu

    def test_schedule_skipped_when_not_requested(self, two_task_cycle):
        r = min_period_for_k(
            two_task_cycle, {"A": 1, "B": 1}, build_schedule=False
        )
        assert r.schedule is None

    def test_k_periodic_schedule_verifies(self, multirate_cycle):
        q = repetition_vector(multirate_cycle)
        r = min_period_for_k(multirate_cycle, q)
        r.schedule.verify(multirate_cycle, iterations=4)

    def test_figure2_schedules_verify_at_each_k(self):
        g = figure2_graph()
        for K in (
            {"A": 1, "B": 1, "C": 1, "D": 1},
            {"A": 3, "B": 1, "C": 6, "D": 1},
            {"A": 3, "B": 4, "C": 6, "D": 1},
        ):
            r = min_period_for_k(g, K)
            r.schedule.verify(g, iterations=3)


class TestResultMetadata:
    def test_graph_sizes_reported(self, multirate_cycle):
        r = min_period_for_k(multirate_cycle, {"A": 3, "B": 2})
        # expanded phases: 3·1 + 2·1 = 5 nodes
        assert r.graph_nodes == 5
        assert r.graph_arcs > 0

    def test_throughput_inverse(self, two_task_cycle):
        r = min_period_for_k(two_task_cycle, {"A": 1, "B": 1})
        assert r.throughput == Fraction(1, 2)

    def test_unknown_engine_rejected(self, two_task_cycle):
        with pytest.raises(SolverError):
            min_period_for_k(two_task_cycle, {"A": 1, "B": 1}, engine="nope")

    @pytest.mark.parametrize("engine", ["ratio-iteration", "howard", "lawler"])
    def test_engines_agree(self, multirate_cycle, engine):
        r = min_period_for_k(multirate_cycle, {"A": 1, "B": 1}, engine=engine)
        assert r.omega == min_period_for_k(
            multirate_cycle, {"A": 1, "B": 1}
        ).omega


class TestTheorem3Normalization:
    def test_expanded_period_is_lcm_multiple(self, multirate_cycle):
        K = {"A": 3, "B": 2}
        r = min_period_for_k(multirate_cycle, K)
        assert r.omega_expanded == r.omega * 6  # lcm(3,2)
