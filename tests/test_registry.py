"""The compiled core and the engine registry, cross-checked end to end.

Three layers of guarantees:

* **registry** — all six built-in engines are registered with sane
  metadata, unknown names fail with the choice list, and every engine
  is reachable from the k-periodic solver, K-Iter, the bench runner and
  the CLI (the seed only exposed three of five);
* **cross-engine property** — on a corpus of random live SDF/CSDF
  graphs, every registered engine returns the *same exact* ``λ*`` on
  the 1-periodic constraint graph and a critical circuit whose exact
  ``Σ L / Σ H`` equals that ratio;
* **compiled core** — ``BiValuedGraph.compile()`` round-trips the arc
  data exactly, takes the integer fast path when all weights are
  integral, and is cached until mutation.
"""

from fractions import Fraction

import pytest

from repro.analysis import build_constraint_graph
from repro.exceptions import SolverError
from repro.kperiodic import min_period_for_k, throughput_kiter
from repro.mcrp import (
    BiValuedGraph,
    all_engines,
    engine_names,
    get_engine,
    max_cycle_ratio,
    solve_mcrp,
)
from tests.conftest import make_random_live_graph

BUILTIN_ENGINES = {
    "bellman", "howard", "hybrid", "karp", "lawler", "ratio-iteration",
}


# ----------------------------------------------------------------------
# registry surface
# ----------------------------------------------------------------------
def test_all_builtin_engines_registered():
    assert BUILTIN_ENGINES.issubset(set(engine_names()))


def test_engine_metadata_is_sane():
    for info in all_engines():
        assert info.exact, "all built-in engines certify exactly"
        assert callable(info.solve)
        assert info.summary
    assert get_engine("hybrid").float_prefilter
    assert get_engine("howard").float_prefilter
    assert get_engine("karp").quadratic


def test_unknown_engine_everywhere():
    g = BiValuedGraph(1)
    with pytest.raises(SolverError, match="ratio-iteration"):
        solve_mcrp(g, "nope")
    with pytest.raises(SolverError, match="nope"):
        get_engine("nope")


def test_duplicate_registration_rejected():
    from repro.mcrp.registry import register_engine

    with pytest.raises(ValueError, match="duplicate"):
        register_engine("hybrid")(lambda g: None)


# ----------------------------------------------------------------------
# cross-engine property: identical exact λ*, consistent certificates
# ----------------------------------------------------------------------
_DEADLOCK = object()


def _outcome(solve, bi):
    """``λ*`` of ``bi`` under ``solve``, or the deadlock marker."""
    from repro.exceptions import DeadlockError

    try:
        return solve(bi).ratio
    except DeadlockError:
        return _DEADLOCK


@pytest.mark.parametrize("seed", range(20))
def test_all_engines_agree_on_random_graphs(seed):
    g = make_random_live_graph(seed, tasks=4 + seed % 4)
    bi, _ = build_constraint_graph(g)
    reference = _outcome(max_cycle_ratio, bi)
    for info in all_engines():
        outcome = _outcome(info.solve, bi)
        assert outcome is reference or outcome == reference, (
            f"engine {info.name} disagrees on seed {seed}: "
            f"{outcome} != {reference}"
        )
        if outcome is _DEADLOCK or outcome is None:
            continue
        # The critical circuit must certify the claimed ratio.
        result = info.solve(bi)
        bi.check_cycle(result.cycle_arcs)
        total_l, total_h = bi.cycle_values(result.cycle_arcs)
        assert Fraction(total_l, 1) / total_h == result.ratio


@pytest.mark.parametrize("seed", range(20))
def test_solve_mcrp_pipeline_agrees(seed):
    g = make_random_live_graph(seed + 50, tasks=5)
    bi, _ = build_constraint_graph(g)
    reference = _outcome(max_cycle_ratio, bi)
    for name in engine_names():
        outcome = _outcome(lambda b, n=name: solve_mcrp(b, n), bi)
        assert outcome is reference or outcome == reference, name


# ----------------------------------------------------------------------
# engine parity through the solver layers (the seed gap: karp/bellman
# were implemented but unreachable)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", sorted(BUILTIN_ENGINES))
def test_min_period_reachable_for_every_engine(engine, multirate_cycle):
    result = min_period_for_k(
        multirate_cycle, {"A": 1, "B": 1}, engine=engine
    )
    assert result.omega == Fraction(6, 1)


@pytest.mark.parametrize("engine", sorted(BUILTIN_ENGINES))
@pytest.mark.parametrize("seed", [3, 11])
def test_kiter_reachable_for_every_engine(engine, seed):
    g = make_random_live_graph(seed, tasks=4)
    reference = throughput_kiter(g).period
    assert throughput_kiter(g, engine=engine).period == reference


@pytest.mark.parametrize("engine", sorted(BUILTIN_ENGINES))
def test_bench_runner_enumerates_registry(engine, two_task_cycle):
    from repro.bench.runner import method_names, run_method

    assert f"kiter@{engine}" in method_names()
    outcome = run_method(f"kiter@{engine}", two_task_cycle, budget=30.0)
    assert outcome.ok and outcome.period == 2


def test_cli_engines_subcommand(capsys):
    from repro.cli import main

    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    for name in BUILTIN_ENGINES:
        assert name in out


def test_cli_throughput_engine_flag(tmp_path, capsys):
    from repro.cli import main
    from repro.io import save_graph
    from tests.conftest import make_random_live_graph as factory

    g = factory(7, tasks=4)
    path = tmp_path / "g.json"
    save_graph(g, str(path))
    assert main(["throughput", str(path), "--engine", "hybrid"]) == 0
    assert "engine: hybrid" in capsys.readouterr().out


# ----------------------------------------------------------------------
# compiled core
# ----------------------------------------------------------------------
def _fractional_graph() -> BiValuedGraph:
    g = BiValuedGraph(3)
    g.add_arc(0, 1, 3, Fraction(1, 2))
    g.add_arc(1, 2, 5, Fraction(-2, 3))
    g.add_arc(2, 0, 1, Fraction(7, 6))
    g.add_arc(1, 0, 0, Fraction(1, 1))
    return g


def test_compile_round_trips_exact_values():
    g = _fractional_graph()
    c = g.compile()
    assert c.node_count == 3 and c.arc_count == 4
    assert c.src == g.arc_src and c.dst == g.arc_dst
    for i in range(c.arc_count):
        assert Fraction(c.cost[i], c.scale) == g.arc_cost[i]
        assert Fraction(c.transit[i], c.scale) == g.arc_transit[i]
        assert c.cost_float[i] == pytest.approx(float(g.arc_cost[i]))
        assert c.transit_float[i] == pytest.approx(float(g.arc_transit[i]))
    # CSR adjacency matches the mutable graph's adjacency
    for v in range(3):
        assert sorted(c.out_arcs_of(v)) == sorted(g.out_arcs(v))
        span = range(c.indptr[v], c.indptr[v + 1])
        assert sorted(c.csr_arcs[i] for i in span) == sorted(g.out_arcs(v))


def test_compile_integer_fast_path():
    g = BiValuedGraph(2)
    g.add_arc(0, 1, 4, 1)
    g.add_arc(1, 0, 2, 3)
    c = g.compile()
    assert c.integral and c.scale == 1
    assert c.cost == [4, 2] and c.transit == [1, 3]
    frac = _fractional_graph().compile()
    assert not frac.integral and frac.scale == 6


def test_compile_parametric_weights_are_exact():
    g = _fractional_graph()
    c = g.compile()
    lam = Fraction(7, 5)
    weights = c.parametric_weights(lam.numerator, lam.denominator)
    bound = c.parametric_weight_bound(lam.numerator, lam.denominator)
    for i, w in enumerate(weights):
        # w / (b·scale) == L − λ·H exactly
        expected = g.arc_cost[i] - lam * g.arc_transit[i]
        assert Fraction(w, lam.denominator * c.scale) == expected
        assert abs(w) <= bound


def test_compile_cache_and_invalidation():
    g = _fractional_graph()
    c = g.compile()
    assert g.compile() is c  # cached
    g.add_arc(0, 2, 1, 1)
    c2 = g.compile()
    assert c2 is not c and c2.arc_count == 5
    # in-place edits require explicit invalidation
    g.arc_transit[0] = Fraction(9, 2)
    assert g.compile() is c2
    g.invalidate()
    c3 = g.compile()
    assert c3 is not c2
    assert Fraction(c3.transit[0], c3.scale) == Fraction(9, 2)


def test_huge_lambda_falls_back_cleanly():
    """A λ whose integers exceed int64 must not crash the fast path.

    With an all-zero cost column, λ's denominator does not show up in
    the weight bound, so the vectorized branch must gate on λ itself
    and fall back to the arbitrary-precision oracle.
    """
    from repro.mcrp.bellman import ScaledGraph, find_positive_cycle

    g = BiValuedGraph(70)
    for i in range(70):
        g.add_arc(i, (i + 1) % 70, 0, 1)  # zero costs, λ* = 0
    scaled = ScaledGraph(g)
    assert find_positive_cycle(scaled, 1, 1 << 70) is None
    assert find_positive_cycle(scaled, -(1 << 70), 1) is not None
    assert max_cycle_ratio(g, lower_bound=Fraction(1, 1 << 70)).ratio == 0


def test_compiled_numpy_mirrors_when_available():
    numpy = pytest.importorskip("numpy")
    g = BiValuedGraph(2)
    g.add_arc(0, 1, 4, 1)
    g.add_arc(1, 0, 2, 3)
    c = g.compile()
    assert c.np_cost is None  # lazily built
    assert c.ensure_numpy() and c.ensure_numpy()  # idempotent
    assert c.np_cost is not None
    assert c.np_cost.dtype == numpy.int64
    assert list(c.np_cost) == c.cost and list(c.np_transit) == c.transit
    # astronomically scaled weights must decline the int64 mirror
    big = BiValuedGraph(2)
    big.add_arc(0, 1, 1 << 70, 1)
    big.add_arc(1, 0, 1, 1)
    cb = big.compile()
    assert cb.ensure_numpy()  # topology/float mirrors still build
    assert cb.np_cost is None  # integer fast path soundly disabled
    assert max_cycle_ratio(big).ratio == Fraction((1 << 70) + 1, 2)


def test_plugin_engine_module_via_env_var(tmp_path, monkeypatch):
    """The REPRO_ENGINE_MODULES plugin channel registers at first lookup."""
    import sys

    from repro.mcrp import registry

    plugin = tmp_path / "plugin_engine_mod.py"
    plugin.write_text(
        "from repro.mcrp.ratio_iteration import max_cycle_ratio\n"
        "from repro.mcrp.registry import register_engine\n"
        "\n"
        "@register_engine('plugin-engine', supports_lower_bound=True,\n"
        "                 summary='test plugin')\n"
        "def solve(graph, *, lower_bound=None):\n"
        "    return max_cycle_ratio(graph, lower_bound=lower_bound)\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setenv(registry.PLUGIN_ENV_VAR, "plugin_engine_mod")
    monkeypatch.setattr(registry, "_PLUGINS_LOADED", False)
    try:
        assert "plugin-engine" in engine_names()
        g = make_random_live_graph(11)
        assert (
            throughput_kiter(g, engine="plugin-engine").period
            == throughput_kiter(g, engine="ratio-iteration").period
        )
    finally:
        registry._REGISTRY.pop("plugin-engine", None)
        sys.modules.pop("plugin_engine_mod", None)


def test_broken_plugin_module_raises_clearly(monkeypatch):
    from repro.mcrp import registry

    monkeypatch.setenv(registry.PLUGIN_ENV_VAR, "definitely_no_such_module")
    monkeypatch.setattr(registry, "_PLUGINS_LOADED", False)
    try:
        with pytest.raises(SolverError, match="definitely_no_such_module"):
            engine_names()
    finally:
        # a failed load must not latch: the next lookup (clean env) works
        monkeypatch.setenv(registry.PLUGIN_ENV_VAR, "")
        monkeypatch.setattr(registry, "_PLUGINS_LOADED", False)
        assert "hybrid" in engine_names()
