"""The vectorized Karp fast path and the numpy potentials pass.

Two families of guarantees for the compiled fast paths added on top of
the oracle:

* **Karp table** — the numpy table (``_best_mean_cycle_numpy``) and the
  pure-Python reference (``_best_mean_cycle_python``) return identical
  exact ``Fraction`` means and verified critical cycles on random
  graphs, the golden corpus, and the edge cases (acyclic, single-node
  SCC, dead walks, int64 overflow fallback); the ``karp`` and
  ``karp-python`` engines certify identical λ* everywhere.
* **Longest-path potentials** — the Jacobi numpy pass and the
  queue-based reference produce identical exact potentials, agree on
  the seeded partial-convergence handoff, and both reject uncertified
  ratios (a positive cycle at the given λ) with ``SolverError``, which
  also covers deadlock-shaped cycles (positive at *every* λ).
"""

from fractions import Fraction

import pytest

import repro.kperiodic.solver as solver_mod
import repro.mcrp.karp as karp_mod
from repro.analysis import build_constraint_graph
from repro.exceptions import SolverError
from repro.io import load_graph
from repro.kperiodic import min_period_for_k, throughput_kiter
from repro.kperiodic.solver import longest_path_potentials
from repro.mcrp import (
    BiValuedGraph,
    get_engine,
    max_cycle_mean,
    solve_mcrp,
)
from tests.conftest import golden_corpus_cases, make_random_live_graph

GOLDEN = golden_corpus_cases()
DATA_DIR = __import__("pathlib").Path(__file__).parent / "data"

numpy = pytest.importorskip("numpy")


@pytest.fixture
def force_vectorized(monkeypatch):
    """Engage the numpy fast paths regardless of instance size."""
    monkeypatch.setattr(karp_mod, "_MIN_VECTOR_NODES", 1)
    monkeypatch.setattr(solver_mod, "_MIN_VECTOR_NODES", 1)


# ----------------------------------------------------------------------
# Karp table: exact parity, vectorized vs reference
# ----------------------------------------------------------------------
def _assert_table_parity(graph: BiValuedGraph):
    compiled = graph.compile()
    weights = list(compiled.cost)
    ref_mean, ref_cycle = karp_mod._best_mean_cycle_python(compiled, weights)
    assert compiled.ensure_numpy()
    vec_mean, vec_cycle = karp_mod._best_mean_cycle_numpy(compiled, weights)
    assert ref_mean == vec_mean
    if ref_mean is None:
        assert ref_cycle is None and vec_cycle is None
        return
    for cycle in (ref_cycle, vec_cycle):
        graph.check_cycle(cycle)
        total = sum(weights[a] for a in cycle)
        assert Fraction(total, len(cycle)) == ref_mean


@pytest.mark.parametrize("seed", range(12))
def test_table_parity_on_random_digraphs(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(1, 24)
    g = BiValuedGraph(n)
    for _ in range(rng.randint(0, 4 * n)):
        g.add_arc(rng.randrange(n), rng.randrange(n),
                  rng.randint(-9, 30), 1)
    _assert_table_parity(g)


def test_table_parity_acyclic():
    g = BiValuedGraph(70)
    for i in range(69):
        g.add_arc(i, i + 1, 5, 1)  # a chain: no cycle at all
    _assert_table_parity(g)
    assert max_cycle_mean(g).ratio is None


def test_table_parity_single_node_scc(force_vectorized):
    g = BiValuedGraph(1)
    g.add_arc(0, 0, 7, 1)
    _assert_table_parity(g)
    assert max_cycle_mean(g).ratio == 7


def test_table_parity_dead_walks(force_vectorized):
    # walks die out before length n: row k>2 is all -inf in the table
    g = BiValuedGraph(5)
    g.add_arc(0, 1, 3, 1)
    g.add_arc(1, 2, 2, 1)  # node 2 has no out-arcs
    g.add_arc(3, 4, 1, 1)
    _assert_table_parity(g)
    assert max_cycle_mean(g).ratio is None


def test_vector_gate_declines_int64_overflow():
    g = BiValuedGraph(80)
    for i in range(80):
        g.add_arc(i, (i + 1) % 80, 1 << 70, 1)
    compiled = g.compile()
    assert not karp_mod._vector_gate(compiled, compiled.max_abs_cost)
    # the engine still answers exactly through the reference table
    assert max_cycle_mean(g).ratio == (1 << 70)
    assert get_engine("karp").solve(g).ratio == (1 << 70)


def test_max_cycle_mean_fractional_costs_vectorized(force_vectorized):
    # the scaled-integer table must map the mean back through the scale
    g = BiValuedGraph(2)
    g.add_arc(0, 1, Fraction(1, 3), 1)
    g.add_arc(1, 0, Fraction(1, 2), 1)
    assert max_cycle_mean(g).ratio == Fraction(5, 12)


@pytest.mark.parametrize("seed", range(8))
def test_karp_engines_agree_on_constraint_graphs(seed, force_vectorized):
    g = make_random_live_graph(seed, tasks=4 + seed % 3)
    bi, _ = build_constraint_graph(g)
    vec = solve_mcrp(bi, "karp")
    ref = solve_mcrp(bi, "karp-python")
    assert vec.ratio == ref.ratio
    if vec.ratio is not None:
        bi.check_cycle(vec.cycle_arcs)
        total_l, total_h = bi.cycle_values(vec.cycle_arcs)
        assert total_l / total_h == vec.ratio


# ----------------------------------------------------------------------
# Golden corpus: cross-engine exact-Fraction parity
# ----------------------------------------------------------------------
@pytest.mark.skipif(not GOLDEN, reason="golden corpus not present")
@pytest.mark.parametrize("filename,period", GOLDEN,
                         ids=[c[0] for c in GOLDEN])
def test_karp_golden_corpus_parity(filename, period, force_vectorized):
    graph = load_graph(DATA_DIR / filename)
    assert throughput_kiter(graph, engine="karp").period == period
    assert throughput_kiter(graph, engine="karp-python").period == period


# ----------------------------------------------------------------------
# numpy longest-path potentials
# ----------------------------------------------------------------------
def _expanded_bi_graph(graph):
    from repro.analysis import repetition_vector
    from repro.kperiodic.expansion import (
        expand_graph,
        expanded_repetition_vector,
    )

    q = repetition_vector(graph)
    expanded = expand_graph(graph, q)
    q_tilde = expanded_repetition_vector(q, q)
    bi, _ = build_constraint_graph(expanded, q_tilde, serialize=True)
    return bi


@pytest.mark.parametrize("seed", [2, 9])
def test_potentials_numpy_python_parity(seed, monkeypatch):
    bi = _expanded_bi_graph(make_random_live_graph(seed, tasks=5))
    lam = solve_mcrp(bi, "ratio-iteration").ratio
    monkeypatch.setattr(solver_mod, "_MIN_VECTOR_NODES", 1)
    vec = longest_path_potentials(bi, lam)
    monkeypatch.setattr(solver_mod, "_MIN_VECTOR_NODES", 10 ** 9)
    ref = longest_path_potentials(bi, lam)
    assert vec == ref
    # fixpoint: every arc is satisfied (dist[dst] ≥ dist[src] + w)
    for i in range(bi.arc_count):
        w = bi.arc_cost[i] - lam * bi.arc_transit[i]
        assert vec[bi.arc_dst[i]] >= vec[bi.arc_src[i]] + w


def test_potentials_seeded_handoff(monkeypatch):
    # exhaust the Jacobi budget so the queue engine finishes from the
    # partially converged state; the fixpoint must be unchanged
    bi = _expanded_bi_graph(make_random_live_graph(4, tasks=5))
    lam = solve_mcrp(bi, "ratio-iteration").ratio
    reference = longest_path_potentials(bi, lam)
    monkeypatch.setattr(solver_mod, "_MIN_VECTOR_NODES", 1)
    monkeypatch.setattr(solver_mod, "_MAX_JACOBI_SWEEPS", 1)
    assert longest_path_potentials(bi, lam) == reference


@pytest.mark.parametrize("vectorized", [True, False])
def test_potentials_reject_uncertified_ratio(vectorized, monkeypatch):
    # λ below λ* leaves a positive (in scheduling terms: negative
    # slack) cycle: both relaxations must refuse to "converge"
    monkeypatch.setattr(
        solver_mod, "_MIN_VECTOR_NODES", 1 if vectorized else 10 ** 9
    )
    n = 80
    g = BiValuedGraph(n)
    for i in range(n):
        g.add_arc(i, (i + 1) % n, 2, 1)  # one big cycle, λ* = 2
    with pytest.raises(SolverError, match="positive cycle"):
        longest_path_potentials(g, Fraction(1))
    assert longest_path_potentials(g, Fraction(2))[0] == 0


@pytest.mark.parametrize("vectorized", [True, False])
def test_potentials_reject_deadlock_cycle(vectorized, monkeypatch):
    # a positive-cost cycle with non-positive transit stays positive at
    # every λ — no potentials exist at any candidate period
    monkeypatch.setattr(
        solver_mod, "_MIN_VECTOR_NODES", 1 if vectorized else 10 ** 9
    )
    g = BiValuedGraph(2)
    g.add_arc(0, 1, 1, 0)
    g.add_arc(1, 0, 1, 0)
    for lam in (Fraction(0), Fraction(7), Fraction(999)):
        with pytest.raises(SolverError, match="positive cycle"):
            longest_path_potentials(g, lam)


def test_potentials_single_node_scc(monkeypatch):
    monkeypatch.setattr(solver_mod, "_MIN_VECTOR_NODES", 1)
    g = BiValuedGraph(1)
    g.add_arc(0, 0, 3, 1)  # self-loop, λ* = 3: zero-weight at λ*
    assert longest_path_potentials(g, Fraction(3)) == [0]
    with pytest.raises(SolverError, match="positive cycle"):
        longest_path_potentials(g, Fraction(2))


@pytest.mark.parametrize("engine", ["karp", "hybrid"])
def test_schedule_from_vectorized_paths_verifies(engine, force_vectorized,
                                                 multirate_cycle):
    # end to end: vectorized oracle + vectorized potentials produce a
    # schedule the token-replay ground truth accepts
    result = min_period_for_k(
        multirate_cycle, {"A": 1, "B": 1}, engine=engine
    )
    assert result.omega == Fraction(6)
    result.schedule.verify(multirate_cycle, iterations=3)
