"""The flight recorder: metrics registry, span tracer, summarizer.

Four layers of coverage:

* **Registry semantics** — declaration enforcement, parent chaining
  (a child cell increment IS a parent increment — the no-drift
  property behind every ``stats()`` view), snapshots, cross-process
  merging, and the Prometheus text rendering.
* **Tracer semantics** — contextvar span nesting, payload-context
  adoption, the disabled no-op path, and the ``REPRO_TRACE`` env
  bootstrap that pool children rely on.
* **Overhead guard** — the golden-corpus batch with tracing on must
  stay within 5% of tracing off, with byte-identical λ* outcomes.
* **Distributed propagation** — two in-process workers against a live
  coordinator: every solved job's spans reconstruct one
  client → coordinator → worker tree under a single trace id, a
  nack/retry survives inside the same trace, and ``GET /metrics``
  exposes solver, cache, queue, and worker families.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.model import sdf
from repro.obs.bench import BENCH_SCHEMA, emit_bench
from repro.obs.metrics import (
    METRICS,
    REGISTRY,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs import trace as trace_mod
from repro.obs.trace import (
    collect_events,
    configure_tracing,
    current_trace,
    new_trace_id,
    span,
    trace_path,
    tracing_enabled,
)
from repro.obs.summary import (
    aggregate,
    build_trees,
    load_events,
    render_summary,
)
from repro.service import ThroughputService

from tests.conftest import golden_corpus_cases

DATA = Path(__file__).parent / "data"
CASES = golden_corpus_cases()


@contextmanager
def _tracing(path):
    """Enable tracing to ``path`` (or disable with None), then restore
    whatever the suite-level setting was (e.g. the CI tracing job)."""
    prior = trace_path() if tracing_enabled() else None
    collect_events(clear=True)
    configure_tracing(str(path) if path else None)
    try:
        yield
    finally:
        configure_tracing(prior)
        collect_events(clear=True)


@pytest.fixture
def traced(tmp_path):
    out = tmp_path / "trace.jsonl"
    with _tracing(out):
        yield out


def ring(delay, name):
    return sdf(
        {"A": 1, "B": 1},
        [("A", "B", 1, 1, 0), ("B", "A", 1, 1, delay)],
        name=name,
    )


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_only_declared_metrics_exist():
    reg = MetricsRegistry()
    with pytest.raises(KeyError):
        reg.counter("repro_made_up_total")
    with pytest.raises(TypeError):
        reg.gauge("repro_worker_acks_total")  # declared as a counter


def test_child_registry_cell_is_the_parent_cell():
    parent = MetricsRegistry()
    child = MetricsRegistry(parent=parent)
    cell = child.counter("repro_worker_acks_total").labels()
    cell.inc()
    cell.inc(2)
    # the no-drift property: one increment, both views
    assert child.value("repro_worker_acks_total") == 3
    assert parent.value("repro_worker_acks_total") == 3
    # labelled families keep cells separate per label set
    hits = child.counter("repro_result_cache_hits_total")
    hits.labels(tier="memory").inc()
    hits.labels(tier="disk").inc(5)
    assert parent.value("repro_result_cache_hits_total", tier="disk") == 5
    assert parent.samples("repro_result_cache_hits_total") == {
        ("memory",): 1, ("disk",): 5,
    }


def test_histogram_observations_and_snapshot_roundtrip():
    reg = MetricsRegistry()
    hist = reg.histogram("repro_solver_seconds")
    for value in (0.001, 0.5, 1000.0):  # 1000s overflows into +Inf
        hist.observe(value)
    snap = reg.snapshot()
    json.dumps(snap)  # heartbeat-shippable
    ((labels, data),) = snap["repro_solver_seconds"]["samples"]
    assert labels == {}
    assert data["count"] == 3
    assert data["sum"] == pytest.approx(1000.501)
    assert sum(data["buckets"]) == 3
    assert data["buckets"][-1] == 1  # the +Inf bucket


def test_merge_snapshots_sums_counters_last_writes_gauges():
    a, b = MetricsRegistry(), MetricsRegistry()
    for reg, n in ((a, 2), (b, 3)):
        reg.counter("repro_worker_jobs_total").inc(n)
        reg.gauge("repro_workers_known").set(n)
        reg.histogram("repro_solver_seconds").observe(0.25)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    ((_, jobs),) = merged["repro_worker_jobs_total"]["samples"]
    assert jobs == 5
    ((_, known),) = merged["repro_workers_known"]["samples"]
    assert known == 3  # gauge: last write wins
    ((_, hist),) = merged["repro_solver_seconds"]["samples"]
    assert hist["count"] == 2 and hist["sum"] == pytest.approx(0.5)


def test_render_prometheus_format():
    reg = MetricsRegistry()
    reg.counter("repro_result_cache_hits_total").labels(
        tier='we"ird\\tier').inc()
    reg.histogram("repro_solver_seconds").observe(0.25)
    reg.gauge("repro_queue_depth").labels(state="pending").set(7)
    text = render_prometheus(reg.snapshot())
    assert "# HELP repro_result_cache_hits_total " in text
    assert "# TYPE repro_result_cache_hits_total counter" in text
    assert "# TYPE repro_solver_seconds histogram" in text
    assert '\\"ird\\\\tier' in text  # label escaping
    assert 'repro_queue_depth{state="pending"} 7' in text
    assert "repro_solver_seconds_count 3" not in text
    assert "repro_solver_seconds_count 1" in text
    assert 'le="+Inf"} 1' in text
    # cumulative le buckets never decrease
    buckets = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
               if line.startswith("repro_solver_seconds_bucket")]
    assert buckets == sorted(buckets) and buckets[-1] == 1
    # every sample line parses as <name>{labels}? <number>
    sample = re.compile(
        r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9.e+-]*$")
    for line in text.strip().splitlines():
        if not line.startswith("#"):
            assert sample.match(line), line


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_span_is_noop_when_disabled(tmp_path):
    with _tracing(None):
        assert not tracing_enabled()
        before = len(collect_events())
        with span("kiter.round", K=3) as sp:
            sp.attrs["extra"] = 1  # throwaway dict: must not raise
            assert sp.ctx() == {}
            assert current_trace() is None
        assert len(collect_events()) == before


def test_span_nesting_adoption_and_error(traced):
    with span("outer", a=1) as outer:
        assert current_trace() == {
            "trace_id": outer.trace_id, "parent_id": outer.span_id,
        }
        with span("inner") as inner:
            pass
    assert inner.trace_id == outer.trace_id
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None

    ctx = {"trace_id": "t" * 16, "parent_id": "p" * 16}
    with span("adopted", trace=ctx) as adopted:
        pass
    assert adopted.trace_id == "t" * 16
    assert adopted.parent_id == "p" * 16

    with pytest.raises(ValueError):
        with span("boom"):
            raise ValueError("nope")

    events = load_events(traced)
    by_name = {e["name"]: e for e in events}
    assert set(by_name) == {"outer", "inner", "adopted", "boom"}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["attrs"] == {"a": 1}
    assert by_name["boom"]["attrs"]["error"] == "ValueError"
    assert by_name["outer"]["dur"] >= by_name["inner"]["dur"] >= 0
    for event in events:
        assert event["pid"] == os.getpid()
        assert len(event["span_id"]) == 16


def test_collect_events_filters_and_drains(traced):
    keep, ship = new_trace_id(), new_trace_id()
    trace_mod.emit_event("a", trace_id=keep)
    trace_mod.emit_event("b", trace_id=ship)
    shipped = collect_events([ship], clear=True)
    assert [e["name"] for e in shipped] == ["b"]
    left = collect_events()
    assert [e["name"] for e in left] == ["a"]


def test_env_bootstrap_enables_tracing_in_children(tmp_path):
    out = tmp_path / "child.jsonl"
    env = dict(os.environ)
    env["REPRO_TRACE"] = str(out)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[1] / "src")
    code = (
        "from repro.obs.trace import span, tracing_enabled\n"
        "assert tracing_enabled()\n"
        "with span('child.work'):\n"
        "    pass\n"
    )
    subprocess.run([sys.executable, "-c", code], check=True, env=env,
                   cwd=tmp_path)
    events = load_events(out)
    assert [e["name"] for e in events] == ["child.work"]


# ----------------------------------------------------------------------
# Summarizer
# ----------------------------------------------------------------------
def _fake_events():
    return [
        {"trace_id": "t1", "span_id": "r", "parent_id": None,
         "name": "client.job", "t0": 0.0, "wall": 1.0, "dur": 1.0,
         "pid": 1, "attrs": {}},
        {"trace_id": "t1", "span_id": "c1", "parent_id": "r",
         "name": "job.solve", "t0": 0.1, "wall": 1.1, "dur": 0.6,
         "pid": 1, "attrs": {"engine": "hybrid"}},
        {"trace_id": "t1", "span_id": "c2", "parent_id": "r",
         "name": "coordinator.result", "t0": 0.8, "wall": 1.8,
         "dur": 0.1, "pid": 2, "attrs": {}},
        # orphan: its parent was recorded by a non-tracing process
        {"trace_id": "t2", "span_id": "x", "parent_id": "gone",
         "name": "worker.solve", "t0": 0.0, "wall": 2.0, "dur": 0.5,
         "pid": 3, "attrs": {}},
    ]


def test_build_trees_links_children_and_roots_orphans():
    trees = build_trees(_fake_events())
    (root,) = trees["t1"]
    assert root.name == "client.job"
    assert [c.name for c in root.children] == [
        "job.solve", "coordinator.result"]
    assert root.self_time == pytest.approx(0.3)
    (orphan,) = trees["t2"]
    assert orphan.name == "worker.solve" and not orphan.children


def test_aggregate_and_render_summary():
    events = _fake_events()
    rows = {r["name"]: r for r in aggregate(events)}
    assert rows["job.solve"]["self"] == pytest.approx(0.6)
    assert rows["client.job"]["total"] == pytest.approx(1.0)
    assert rows["client.job"]["self"] == pytest.approx(0.3)
    text = render_summary(events, top=3)
    assert "trace t1" in text and "client.job" in text
    assert "top 3 spans by self time:" in text
    assert render_summary([]) == "no trace events\n"


def test_load_events_skips_malformed_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"name": "ok", "trace_id": "t"}\nnot json\n\n'
                    '{"no_name": 1}\n', encoding="utf-8")
    assert [e["name"] for e in load_events(path)] == ["ok"]


# ----------------------------------------------------------------------
# Bench emission schema
# ----------------------------------------------------------------------
def test_emit_bench_schema_and_gauge(tmp_path):
    emit_bench(
        "selftest",
        [{"name": "speedup", "value": 2.5, "unit": "x"}],
        extra={"cases": 4},
        out_dir=str(tmp_path),
    )
    data = json.loads((tmp_path / "BENCH_selftest.json").read_text())
    assert data["bench"] == "selftest"
    assert data["schema"] == BENCH_SCHEMA
    assert data["cases"] == 4
    (row,) = data["metrics"]
    assert set(row) == {"name", "value", "unit", "commit"}
    assert row["commit"] == data["commit"]
    assert REGISTRY.value(
        "repro_bench_value", bench="selftest", name="speedup") == 2.5


# ----------------------------------------------------------------------
# Service stats ride the registry (no ad-hoc counter drift)
# ----------------------------------------------------------------------
def test_service_stats_equal_registry_cells():
    service = ThroughputService()
    service.submit_many([ring(1, "r1"), ring(2, "r2"), ring(1, "r1")])
    stats = service.stats()
    reg = service._registry
    assert stats.by_status == {"OK": 3}
    assert stats.jobs == reg.value("repro_service_jobs_total", status="OK")
    assert stats.solves == reg.value("repro_service_solves_total")
    assert stats.batch_dedup == reg.value("repro_service_batch_dedup_total")
    assert stats.cache == service.cache.stats.as_dict()


# ----------------------------------------------------------------------
# Overhead guard: tracing must be ≤5% on the golden corpus
# ----------------------------------------------------------------------
@pytest.mark.skipif(not CASES, reason="golden corpus not present")
def test_tracing_overhead_within_five_percent(tmp_path):
    from repro.io import load_graph

    graphs = [load_graph(DATA / name) for name, _ in CASES]

    def batch(trace_file):
        with _tracing(trace_file):
            service = ThroughputService()  # fresh → cold cache each run
            start = time.perf_counter()
            outcomes = service.submit_many(graphs)
            elapsed = time.perf_counter() - start
        digest = json.dumps(
            [[o.status, str(o.period)] for o in outcomes])
        return elapsed, digest

    batch(None)  # warm process-level state once (imports, JITed paths)
    plain, traced_t = [], []
    reference = None
    for round_ in range(3):  # interleaved, best-of-3 damps noise
        off_s, off_digest = batch(None)
        on_s, on_digest = batch(tmp_path / f"t{round_}.jsonl")
        assert on_digest == off_digest  # byte-identical λ* outcomes
        reference = reference or off_digest
        assert off_digest == reference
        plain.append(off_s)
        traced_t.append(on_s)

    events = load_events(tmp_path / "t0.jsonl")
    names = {e["name"] for e in events}
    assert "service.batch" in names  # tracing really was on
    assert min(traced_t) <= min(plain) * 1.05 + 0.05, (
        f"tracing overhead too high: traced {traced_t} vs {plain}"
    )


# ----------------------------------------------------------------------
# Distributed propagation: one trace id across client/coordinator/worker
# ----------------------------------------------------------------------
REQUIRED_SPANS = {
    "client.job", "coordinator.enqueue", "worker.solve", "job.solve",
    "coordinator.result",
}


def _await_trace(client, trace_id, names=REQUIRED_SPANS, timeout=10.0):
    """Workers ship spans just after acking results — poll briefly."""
    deadline = time.monotonic() + timeout
    events = []
    while time.monotonic() < deadline:
        events = client.trace(trace_id)
        if names <= {e["name"] for e in events}:
            return events
        time.sleep(0.05)
    return events


def test_two_worker_trace_propagation_with_nack_retry(
        traced, monkeypatch):
    from repro.distributed import (
        CoordinatorClient, CoordinatorServer, MemoryJobQueue, Worker,
    )
    from repro.service import pool as pool_mod

    real_solve_chunk = pool_mod.solve_chunk
    lock = threading.Lock()
    sabotaged = []

    def flaky_solve_chunk(payloads):
        with lock:
            if not sabotaged:  # exactly one chunk fails, then retries
                sabotaged.append(len(payloads))
                raise RuntimeError("injected chunk failure")
        return real_solve_chunk(payloads)

    monkeypatch.setattr(pool_mod, "solve_chunk", flaky_solve_chunk)

    graphs = [ring(d, f"ring{d}") for d in (1, 2, 3, 4)]
    with CoordinatorServer(
        queue=MemoryJobQueue(visibility_timeout=30)
    ) as server:
        workers = [
            Worker(CoordinatorClient(server.url), worker_id=f"tw{i}",
                   poll_interval=0.02, chunk_size=2)
            for i in range(2)
        ]
        threads = [w.run_in_thread() for w in workers]
        try:
            from repro.service import ThroughputService as Service
            service = Service(
                queue=CoordinatorClient(server.url), queue_poll=0.02,
            )
            outcomes = service.submit_many(graphs)
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=10)

        assert all(o.ok for o in outcomes)
        assert sabotaged, "the injected chunk failure never fired"
        assert sum(w.stats.nacks for w in workers) == sabotaged[0]

        client = CoordinatorClient(server.url)
        nacks_seen = 0
        for outcome in outcomes:
            assert outcome.trace_id, "outcome lost its trace id"
            events = _await_trace(client, outcome.trace_id)
            by_name = {}
            for event in events:
                assert event["trace_id"] == outcome.trace_id
                by_name.setdefault(event["name"], event)
            assert REQUIRED_SPANS <= set(by_name), (
                outcome.trace_id, sorted(by_name))
            root = by_name["client.job"]["span_id"]
            # coordinator milestones and the worker chunk span hang
            # off the client's per-job root; the solve nests under
            # the worker span — client → coordinator → worker.
            assert by_name["coordinator.enqueue"]["parent_id"] == root
            assert by_name["coordinator.result"]["parent_id"] == root
            assert by_name["worker.solve"]["parent_id"] == root
            assert (by_name["job.solve"]["parent_id"]
                    == by_name["worker.solve"]["span_id"])
            assert by_name["coordinator.result"]["attrs"]["state"] == "OK"
            if "worker.nack" in by_name:
                nacks_seen += 1
                assert by_name["worker.nack"]["parent_id"] == root
        assert nacks_seen == sabotaged[0], (
            "every nacked job's retry must stay in its original trace")

        # /metrics over live HTTP: all four families, parseable text
        text = client.metrics_text()
        for family in ("repro_solver_jobs_total",
                       "repro_result_cache_misses_total",
                       "repro_queue_depth",
                       "repro_worker_acks_total",
                       "repro_coordinator_jobs_submitted_total"):
            assert f"# TYPE {family} " in text, family
        sample = re.compile(
            r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9.e+-]*$")
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert sample.match(line), line
