"""Second property suite: cross-subsystem invariants.

Complements ``test_properties.py`` with the invariants of the modules
added after the core build: unfolding/max-plus agreement, transform
homogeneity, mapping anchors, and serialization exactness.
"""

import random
from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import period_bounds
from repro.baselines.unfolding import throughput_unfolding
from repro.io import (
    graph_from_json,
    graph_to_json,
    schedule_from_json,
    schedule_to_json,
)
from repro.kperiodic import min_period_for_k, throughput_kiter
from repro.maxplus import MaxPlusMatrix, throughput_maxplus
from repro.transforms import merge_graphs, scale_durations, scale_rates
from tests.conftest import make_random_live_graph

LIMITED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@LIMITED
@given(st.integers(0, 10**6))
def test_unfolding_agrees_with_kiter(seed):
    g = make_random_live_graph(seed % 400, tasks=4)
    assert throughput_unfolding(g).period == throughput_kiter(g).period


@LIMITED
@given(st.integers(0, 10**6))
def test_maxplus_agrees_with_kiter(seed):
    g = make_random_live_graph(seed % 150, tasks=3)
    assert throughput_maxplus(g).period == throughput_kiter(g).period


@LIMITED
@given(st.integers(0, 10**6), st.integers(2, 9))
def test_duration_scaling_homogeneity(seed, factor):
    g = make_random_live_graph(seed % 200, tasks=4)
    base = throughput_kiter(g).period
    assert throughput_kiter(scale_durations(g, factor)).period \
        == factor * base


@LIMITED
@given(st.integers(0, 10**6), st.integers(2, 6))
def test_rate_scaling_invariance(seed, factor):
    g = make_random_live_graph(seed % 200, tasks=4)
    assert throughput_kiter(scale_rates(g, factor)).period \
        == throughput_kiter(g).period


@LIMITED
@given(st.integers(0, 10**6), st.integers(0, 10**6))
def test_merge_preserves_per_task_throughput(seed_a, seed_b):
    """Merging rescales what one "graph iteration" means (the merged
    repetition vector is a common integer refinement of the parts'), so
    the invariant is per-*task* throughput ``q_t/Ω``, not the period."""
    from repro.analysis import repetition_vector

    a = make_random_live_graph(seed_a % 100, tasks=3)
    b = make_random_live_graph(seed_b % 100 + 100, tasks=3)
    b = b.copy("other")
    merged = merge_graphs([a, b])
    merged_period = throughput_kiter(merged).period
    q_merged = repetition_vector(merged)
    for part in (a, b):
        part_period = throughput_kiter(part).period
        q_part = repetition_vector(part)
        task = part.task_names()[0]
        merged_name = f"{part.name}.{task}"
        if part_period == 0:
            continue
        assert Fraction(q_merged[merged_name], merged_period) <= \
            Fraction(q_part[task], part_period)
    # and the slowest part's per-task rate is exactly attained somewhere
    rates_equal = []
    for part in (a, b):
        part_period = throughput_kiter(part).period
        if part_period == 0:
            continue
        q_part = repetition_vector(part)
        task = part.task_names()[0]
        merged_name = f"{part.name}.{task}"
        rates_equal.append(
            Fraction(q_merged[merged_name], merged_period)
            == Fraction(q_part[task], part_period)
        )
    assert any(rates_equal)


@LIMITED
@given(st.integers(0, 10**6))
def test_period_within_analytic_bounds(seed):
    g = make_random_live_graph(seed % 300, tasks=5)
    period = throughput_kiter(g).period
    assert period_bounds(g).contains(period)


@LIMITED
@given(st.integers(0, 10**6))
def test_graph_json_roundtrip_preserves_throughput(seed):
    g = make_random_live_graph(seed % 300, tasks=4)
    back = graph_from_json(graph_to_json(g))
    assert throughput_kiter(back).period == throughput_kiter(g).period


@LIMITED
@given(st.integers(0, 10**6))
def test_schedule_json_roundtrip_exact(seed):
    from repro.analysis import repetition_vector

    g = make_random_live_graph(seed % 100, tasks=3)
    result = throughput_kiter(g)
    if result.period == 0:
        return
    schedule = min_period_for_k(g, result.K).schedule
    back = schedule_from_json(schedule_to_json(schedule))
    assert back.starts == schedule.starts
    back.verify(g, iterations=2)


@LIMITED
@given(st.integers(0, 10**6), st.integers(2, 5))
def test_maxplus_power_associativity(seed, k):
    rng = random.Random(seed)
    n = rng.randint(1, 6)
    rows = [
        [
            None if rng.random() < 0.4
            else Fraction(rng.randint(-5, 9))
            for _ in range(n)
        ]
        for _ in range(n)
    ]
    a = MaxPlusMatrix(rows)
    assert a.power(k) == a.power(k - 1) @ a
