"""Unit tests for graph surgery transforms (semantic contracts)."""

import pytest

from repro.analysis import is_live, repetition_vector
from repro.exceptions import ModelError
from repro.generators.paper import figure2_graph
from repro.kperiodic import throughput_kiter
from repro.model import sdf
from repro.transforms import (
    merge_graphs,
    relabel_graph,
    scale_durations,
    scale_rates,
)


class TestRelabel:
    def test_rename_endpoint_consistency(self, multirate_cycle):
        out = relabel_graph(multirate_cycle, {"A": "alpha"})
        assert out.has_task("alpha")
        assert out.buffer("A_B_0").source == "alpha"

    def test_collision_rejected(self, multirate_cycle):
        with pytest.raises(ModelError):
            relabel_graph(multirate_cycle, {"A": "B"})

    def test_semantics_preserved(self):
        g = figure2_graph()
        out = relabel_graph(g, {"A": "alpha", "D": "delta"})
        assert throughput_kiter(out).period == throughput_kiter(g).period


class TestMerge:
    def test_disjoint_union_counts(self, two_task_cycle, multirate_cycle):
        merged = merge_graphs([two_task_cycle, multirate_cycle])
        assert merged.task_count == 4
        assert merged.has_task("two_task_cycle.A")
        assert merged.has_task("multirate_cycle.A")

    def test_slowest_component_binds(self, two_task_cycle):
        slow = sdf({"X": 9, "Y": 9},
                   [("X", "Y", 1, 1, 0), ("Y", "X", 1, 1, 1)],
                   name="slow")
        merged = merge_graphs([two_task_cycle, slow])
        assert throughput_kiter(merged).period == 18

    def test_merged_liveness(self, two_task_cycle, deadlocked_cycle):
        merged = merge_graphs([two_task_cycle, deadlocked_cycle])
        assert not is_live(merged)


class TestScaleDurations:
    def test_period_scales_linearly(self):
        g = figure2_graph()
        base = throughput_kiter(g).period
        scaled = scale_durations(g, 7)
        assert throughput_kiter(scaled).period == 7 * base

    def test_zero_factor_rejected(self, two_task_cycle):
        with pytest.raises(ModelError):
            scale_durations(two_task_cycle, 0)


class TestScaleRates:
    def test_period_invariant(self):
        g = figure2_graph()
        base = throughput_kiter(g).period
        assert throughput_kiter(scale_rates(g, 5)).period == base

    def test_repetition_invariant(self):
        g = figure2_graph()
        assert repetition_vector(scale_rates(g, 3)) == repetition_vector(g)

    def test_liveness_invariant(self, two_task_cycle, deadlocked_cycle):
        assert is_live(scale_rates(two_task_cycle, 4))
        assert not is_live(scale_rates(deadlocked_cycle, 4))
