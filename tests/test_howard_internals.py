"""Targeted tests for Howard policy-iteration internals."""

import random
from fractions import Fraction

import pytest

from repro.mcrp import BiValuedGraph, max_cycle_ratio, max_cycle_ratio_howard
from repro.mcrp.howard import _howard_float_hint, _policy_cycle


class TestPolicyCycle:
    def test_functional_ring(self):
        g = BiValuedGraph(3)
        a0 = g.add_arc(0, 1, 1, 1)
        a1 = g.add_arc(1, 2, 1, 1)
        a2 = g.add_arc(2, 0, 1, 1)
        cycle = _policy_cycle(g, [a0, a1, a2])
        assert cycle is not None
        assert sorted(cycle) == [a0, a1, a2]

    def test_tail_into_cycle(self):
        g = BiValuedGraph(3)
        a0 = g.add_arc(0, 1, 1, 1)   # tail
        a1 = g.add_arc(1, 2, 1, 1)
        a2 = g.add_arc(2, 1, 1, 1)   # 2-cycle on {1, 2}
        cycle = _policy_cycle(g, [a0, a1, a2])
        assert sorted(cycle) == [a1, a2]

    def test_no_cycle(self):
        g = BiValuedGraph(2)
        a0 = g.add_arc(0, 1, 1, 1)
        assert _policy_cycle(g, [a0, None]) is None


class TestFloatHint:
    def test_hint_is_certified_lower_bound(self):
        rng = random.Random(3)
        g = BiValuedGraph(8)
        for _ in range(24):
            g.add_arc(rng.randrange(8), rng.randrange(8),
                      rng.randint(1, 9), Fraction(rng.randint(1, 4)))
        hint = _howard_float_hint(g, 100)
        exact = max_cycle_ratio(g).ratio
        assert hint is not None
        assert hint <= exact

    def test_hint_none_on_acyclic(self):
        g = BiValuedGraph(2)
        g.add_arc(0, 1, 5, 1)
        assert _howard_float_hint(g, 50) is None

    def test_hint_often_exact_on_simple_graphs(self):
        g = BiValuedGraph(2)
        g.add_arc(0, 1, 3, 1)
        g.add_arc(1, 0, 5, 1)
        assert _howard_float_hint(g, 50) == 4  # (3+5)/2


class TestEndToEnd:
    def test_explicit_lower_bound_parameter(self):
        g = BiValuedGraph(2)
        g.add_arc(0, 1, 3, 1)
        g.add_arc(1, 0, 5, 1)
        result = max_cycle_ratio_howard(g, lower_bound=Fraction(7, 2))
        assert result.ratio == 4

    @pytest.mark.parametrize("seed", range(10))
    def test_howard_equals_exact_on_hard_mixed_graphs(self, seed):
        rng = random.Random(seed + 77)
        n = rng.randint(3, 14)
        g = BiValuedGraph(n)
        for _ in range(rng.randint(n, 5 * n)):
            g.add_arc(
                rng.randrange(n), rng.randrange(n),
                rng.randint(0, 11),
                Fraction(rng.randint(-1, 7), rng.randint(1, 3)),
            )
        from repro.exceptions import DeadlockError

        try:
            exact = max_cycle_ratio(g).ratio
        except DeadlockError:
            with pytest.raises(DeadlockError):
                max_cycle_ratio_howard(g)
            return
        assert max_cycle_ratio_howard(g).ratio == exact
