"""Unit tests for repro.utils (rational helpers, timing budgets)."""

import time
from fractions import Fraction

import pytest

from repro.exceptions import BudgetExceededError
from repro.utils import (
    Stopwatch,
    TimeBudget,
    ceil_to_multiple,
    floor_to_multiple,
    gcd_list,
    lcm_list,
    normalize_fractions,
)
from repro.utils.rational import as_fraction, ceil_div, floor_div


class TestDivisions:
    def test_floor_div_negative(self):
        assert floor_div(-7, 2) == -4
        assert floor_div(7, 2) == 3

    def test_ceil_div_negative(self):
        assert ceil_div(-7, 2) == -3
        assert ceil_div(7, 2) == 4
        assert ceil_div(6, 3) == 2


class TestGcdLcm:
    def test_gcd_list(self):
        assert gcd_list([12, 18, 24]) == 6
        assert gcd_list([]) == 0
        assert gcd_list([0, 5]) == 5

    def test_lcm_list(self):
        assert lcm_list([4, 6]) == 12
        assert lcm_list([]) == 1
        assert lcm_list([7]) == 7

    def test_lcm_zero_rejected(self):
        with pytest.raises(ValueError):
            lcm_list([2, 0])


class TestNormalizeFractions:
    def test_minimal_integers(self):
        values = [Fraction(1, 2), Fraction(3, 4), Fraction(1)]
        assert normalize_fractions(values) == [2, 3, 4]

    def test_already_integral(self):
        assert normalize_fractions([Fraction(4), Fraction(6)]) == [2, 3]

    def test_empty(self):
        assert normalize_fractions([]) == []


class TestAsFraction:
    def test_accepts_int_str_fraction(self):
        assert as_fraction(3) == 3
        assert as_fraction("2/7") == Fraction(2, 7)
        assert as_fraction(Fraction(1, 3)) == Fraction(1, 3)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            as_fraction(0.5)


class TestTiming:
    def test_stopwatch_context(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.005

    def test_stopwatch_lap_requires_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().lap()

    def test_budget_unlimited(self):
        budget = TimeBudget(None)
        budget.check()  # never raises
        assert budget.remaining() is None
        assert not budget.exhausted()

    def test_budget_exhaustion(self):
        budget = TimeBudget(1e-9, label="tiny")
        time.sleep(0.002)
        assert budget.exhausted()
        with pytest.raises(BudgetExceededError) as err:
            budget.check()
        assert "tiny" in str(err.value)
        assert err.value.elapsed is not None

    def test_budget_remaining_decreases(self):
        budget = TimeBudget(10.0)
        first = budget.remaining()
        time.sleep(0.002)
        assert budget.remaining() < first


class TestDoctests:
    def test_module_doctests(self):
        """Run the doctest examples embedded in key public modules."""
        import doctest

        import repro.analysis.bounds
        import repro.analysis.consistency
        import repro.analysis.liveness
        import repro.baselines.expansion
        import repro.baselines.periodic
        import repro.baselines.unfolding
        import repro.kperiodic.expansion
        import repro.kperiodic.kiter
        import repro.kperiodic.optimality
        import repro.model.builder
        import repro.model.buffer
        import repro.model.task
        import repro.utils.rational

        failures = 0
        for module in (
            repro.model.task,
            repro.model.buffer,
            repro.model.builder,
            repro.analysis.consistency,
            repro.analysis.liveness,
            repro.analysis.bounds,
            repro.kperiodic.expansion,
            repro.kperiodic.optimality,
            repro.kperiodic.kiter,
            repro.baselines.periodic,
            repro.baselines.expansion,
            repro.baselines.unfolding,
        ):
            result = doctest.testmod(module, verbose=False)
            failures += result.failed
        assert failures == 0
