"""Unit tests for repro.model.builder."""

import pytest

from repro.exceptions import ModelError
from repro.model import GraphBuilder, build_graph, csdf, hsdf, sdf


class TestBuildGraph:
    def test_scalar_rates_replicated(self):
        g = build_graph("g", {"A": [1, 1], "B": 2}, [("A", "B", 3, 5, 0)])
        assert g.buffer("A_B_0").production == (3, 3)
        assert g.buffer("A_B_0").consumption == (5,)

    def test_vector_rates(self):
        g = build_graph("g", {"A": [1, 1]}, [("A", "A", [1, 0], [0, 1], 1)])
        assert g.buffer("A_A_0").production == (1, 0)

    def test_rate_length_checked(self):
        with pytest.raises(ModelError):
            build_graph("g", {"A": [1, 1], "B": 1}, [("A", "B", [3], 1, 0)])

    def test_bad_edge_arity(self):
        with pytest.raises(ModelError):
            build_graph("g", {"A": 1, "B": 1}, [("A", "B", 1, 1)])

    def test_parallel_edges_get_distinct_names(self):
        g = build_graph(
            "g", {"A": 1, "B": 1},
            [("A", "B", 1, 1, 0), ("A", "B", 2, 2, 0)],
        )
        assert g.has_buffer("A_B_0") and g.has_buffer("A_B_1")


class TestShorthands:
    def test_sdf_rejects_vector_durations(self):
        with pytest.raises(ModelError):
            sdf({"A": [1, 2]}, [])

    def test_sdf_builds_single_phase(self):
        g = sdf({"A": 3}, [])
        assert g.task("A").durations == (3,)

    def test_hsdf_unit_rates(self):
        g = hsdf({"A": 1, "B": 1}, [("A", "B", 4)])
        b = g.buffer("A_B_0")
        assert b.production == (1,) and b.consumption == (1,)
        assert b.initial_tokens == 4
        assert g.is_hsdf()

    def test_csdf_shorthand(self):
        g = csdf({"A": [1, 2]}, [("A", "A", [1, 1], [1, 1], 2)], name="x")
        assert g.name == "x"
        assert g.task("A").phase_count == 2


class TestGraphBuilder:
    def test_fluent_chain(self):
        g = (
            GraphBuilder("fb")
            .task("A", [1, 1])
            .task("B")
            .buffer("A", "B", [1, 2], 3, tokens=4)
            .build()
        )
        assert g.buffer("A_B_0").initial_tokens == 4
        assert g.buffer("A_B_0").consumption == (3,)

    def test_build_twice_rejected(self):
        b = GraphBuilder().task("A")
        b.build()
        with pytest.raises(ModelError):
            b.build()

    def test_custom_buffer_name(self):
        g = (
            GraphBuilder()
            .task("A")
            .buffer("A", "A", 1, 1, tokens=1, name="loop")
            .build()
        )
        assert g.has_buffer("loop")
