"""Unit tests for KPeriodicSchedule (start-time algebra + verification)."""

from fractions import Fraction

import pytest

from repro.exceptions import ModelError
from repro.kperiodic import KPeriodicSchedule, min_period_for_k
from repro.model import sdf


def manual_schedule() -> KPeriodicSchedule:
    """Hand-built schedule for a single 2-execution pattern."""
    return KPeriodicSchedule(
        K={"A": 2},
        omega=Fraction(10),
        task_periods={"A": Fraction(10)},  # q_A = 2, K_A = 2
        starts={
            ("A", 1, 1): Fraction(0),
            ("A", 1, 2): Fraction(3),
        },
    )


class TestStartTimes:
    def test_pattern_executions(self):
        s = manual_schedule()
        assert s.start_time("A", 1, 1) == 0
        assert s.start_time("A", 1, 2) == 3

    def test_periodic_extrapolation(self):
        s = manual_schedule()
        assert s.start_time("A", 1, 3) == 10
        assert s.start_time("A", 1, 4) == 13
        assert s.start_time("A", 1, 7) == 30

    def test_bad_execution_index(self):
        with pytest.raises(ModelError):
            manual_schedule().start_time("A", 1, 0)

    def test_throughput(self):
        assert manual_schedule().throughput == Fraction(1, 10)
        zero = KPeriodicSchedule({"A": 1}, Fraction(0), {"A": Fraction(0)},
                                 {("A", 1, 1): Fraction(0)})
        assert zero.throughput is None

    def test_shifted(self):
        s = manual_schedule().shifted(Fraction(5))
        assert s.start_time("A", 1, 1) == 5
        assert s.start_time("A", 1, 3) == 15


class TestVerification:
    def test_valid_schedule_passes(self, multirate_cycle):
        r = min_period_for_k(multirate_cycle, {"A": 1, "B": 1})
        r.schedule.verify(multirate_cycle, iterations=5)

    def test_too_fast_schedule_fails(self, multirate_cycle):
        r = min_period_for_k(multirate_cycle, {"A": 1, "B": 1})
        s = r.schedule
        # compress the period: the same starts with a smaller µ must
        # eventually drive some buffer negative
        rushed = KPeriodicSchedule(
            K=dict(s.K),
            omega=s.omega / 2,
            task_periods={t: p / 2 for t, p in s.task_periods.items()},
            starts=dict(s.starts),
        )
        with pytest.raises(ModelError):
            rushed.verify(multirate_cycle, iterations=6)

    def test_causality_violation_detected(self):
        g = sdf({"A": 1, "B": 1}, [("A", "B", 1, 1, 0)])
        bad = KPeriodicSchedule(
            K={"A": 1, "B": 1},
            omega=Fraction(2),
            task_periods={"A": Fraction(2), "B": Fraction(2)},
            starts={
                ("A", 1, 1): Fraction(5),
                ("B", 1, 1): Fraction(0),  # consumes before any production
            },
        )
        with pytest.raises(ModelError):
            bad.verify(g, iterations=2)

    def test_exact_completion_start_is_legal(self):
        # consumer starting exactly at producer completion must be OK
        g = sdf({"A": 3, "B": 1}, [("A", "B", 1, 1, 0)])
        tight = KPeriodicSchedule(
            K={"A": 1, "B": 1},
            omega=Fraction(3),
            task_periods={"A": Fraction(3), "B": Fraction(3)},
            starts={("A", 1, 1): Fraction(0), ("B", 1, 1): Fraction(3)},
        )
        tight.verify(g, iterations=4)


def _registry_policies():
    from repro.scheduling import policy_names

    return policy_names()


@pytest.mark.parametrize("policy", _registry_policies())
class TestEveryPolicyYieldsAValidSchedule:
    """The schedule algebra holds for every registered policy's output,
    not just the solver's ASAP potentials."""

    def test_verifies_and_extrapolates(self, policy, multirate_cycle):
        from repro.scheduling import build_schedule

        s = build_schedule(multirate_cycle, policy).schedule
        s.verify(multirate_cycle, iterations=4)
        for (task, phase, beta), start in s.starts.items():
            k_t = s.K[task]
            assert s.start_time(task, phase, beta + k_t) == (
                start + s.task_periods[task]
            )

    def test_shifted_stays_valid(self, policy, multirate_cycle):
        from repro.scheduling import build_schedule

        s = build_schedule(multirate_cycle, policy).schedule
        s.shifted(Fraction(7)).verify(multirate_cycle, iterations=3)
