"""Job digests are remote cache keys: they must never drift.

``tests/data/job_digests.json`` pins the canonical-JSON job digest of
every golden-corpus graph (plus two inline reference graphs that need
no corpus files) under the service's default solve parameters. A
distributed deployment shares these digests across hosts, Python
versions and code revisions — if current code computes a different
byte sequence, every remote cache entry silently misses and every
in-flight dedup breaks. Any *intentional* change must bump
``CACHE_SCHEMA_VERSION`` and regenerate the fixture
(``python tools/make_golden_corpus.py --digests-only``); this module
exists to make the unintentional kind loud.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.io import load_graph
from repro.model import sdf
from repro.service import CACHE_SCHEMA_VERSION, ThroughputJob

DATA = Path(__file__).parent / "data"
FIXTURE = DATA / "job_digests.json"

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))


def _fixture():
    if not FIXTURE.exists():
        pytest.skip("job digest fixture not present")
    return json.loads(FIXTURE.read_text())


def _job_options(fixture):
    options = dict(fixture["job_defaults"])
    options["fallback_engines"] = tuple(options["fallback_engines"])
    return options


def _inline_graphs():
    # Kept in lockstep with tools/make_golden_corpus.py's
    # inline_reference_graphs(); built here independently so the pin
    # holds even without the corpus files.
    return {
        "inline:two_cycle": sdf(
            {"A": 1, "B": 1},
            [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)],
            name="two_cycle",
        ),
        "inline:multirate": sdf(
            {"A": 1, "B": 2},
            [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)],
            name="multirate",
        ),
    }


def test_fixture_matches_live_schema_version():
    fixture = _fixture()
    assert fixture["cache_schema_version"] == CACHE_SCHEMA_VERSION, (
        "CACHE_SCHEMA_VERSION changed without regenerating "
        "tests/data/job_digests.json"
    )


def test_fixture_defaults_match_service_defaults():
    from repro.service import ThroughputService

    fixture = _fixture()
    service = ThroughputService()
    defaults = fixture["job_defaults"]
    assert defaults["engine"] == service.engine
    assert tuple(defaults["fallback_engines"]) == service.fallback_engines
    assert defaults["update_policy"] == service.update_policy
    assert defaults["warm_start"] == service.warm_start


def test_corpus_job_digests_are_stable():
    fixture = _fixture()
    options = _job_options(fixture)
    checked = 0
    for entry in fixture["jobs"]:
        if entry["source"].startswith("inline:"):
            continue
        path = DATA / entry["source"]
        if not path.exists():
            continue  # sparse checkout
        job = ThroughputJob.from_graph(load_graph(path), **options)
        assert job.graph_digest == entry["graph_digest"], entry["source"]
        assert job.digest == entry["digest"], entry["source"]
        checked += 1
    if checked == 0:
        pytest.skip("no corpus graphs present")


def test_inline_job_digests_are_stable():
    fixture = _fixture()
    options = _job_options(fixture)
    inline = _inline_graphs()
    pinned = {
        e["source"]: e for e in fixture["jobs"]
        if e["source"].startswith("inline:")
    }
    assert set(pinned) == set(inline), "inline case sets diverged"
    for source, graph in inline.items():
        job = ThroughputJob.from_graph(graph, **options)
        assert job.graph_digest == pinned[source]["graph_digest"], source
        assert job.digest == pinned[source]["digest"], source


def test_regenerator_reproduces_the_checked_in_fixture(tmp_path):
    """`--digests-only` output is byte-identical to the fixture."""
    import make_golden_corpus

    if not (DATA / "golden_index.json").exists():
        pytest.skip("golden corpus not present")
    before = FIXTURE.read_bytes()
    try:
        make_golden_corpus.write_job_digests()
        assert FIXTURE.read_bytes() == before, (
            "tools/make_golden_corpus.py regenerates a different "
            "job_digests.json than the one checked in"
        )
    finally:
        FIXTURE.write_bytes(before)
