"""Shared fixtures and graph factories for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.model import Buffer, CsdfGraph, Task, csdf, sdf


@pytest.fixture
def two_task_cycle() -> CsdfGraph:
    """A→B→A unit-rate cycle with one token: exact period 2."""
    return sdf(
        {"A": 1, "B": 1},
        [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)],
        name="two_task_cycle",
    )


@pytest.fixture
def multirate_cycle() -> CsdfGraph:
    """A 2↔3 rate cycle (q = [3, 2])."""
    return sdf(
        {"A": 1, "B": 2},
        [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)],
        name="multirate_cycle",
    )


@pytest.fixture
def csdf_pipeline() -> CsdfGraph:
    """A genuinely cyclo-static two-task pipeline (Figure 1 rates)."""
    return csdf(
        {"t": [1, 2, 1], "u": [3, 1]},
        [("t", "u", [2, 3, 1], [2, 5], 0)],
        name="csdf_pipeline",
    )


@pytest.fixture
def deadlocked_cycle() -> CsdfGraph:
    """Tokenless cycle: consistent but dead."""
    return sdf(
        {"A": 1, "B": 1},
        [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 0)],
        name="deadlocked",
    )


def golden_corpus_cases():
    """``(filename, exact period)`` rows of ``tests/data/golden_index.json``.

    Returns ``[]`` when the corpus is absent (sparse checkout) so
    callers can parametrize/skip cleanly; the schema lives in one place
    instead of per-module copies.
    """
    import json
    from fractions import Fraction
    from pathlib import Path

    data = Path(__file__).parent / "data"
    try:
        index = json.loads((data / "golden_index.json").read_text())
    except FileNotFoundError:
        return []
    return [(entry["file"], Fraction(*entry["period"])) for entry in index]


def make_random_live_graph(seed: int, tasks: int = 5, csdf_phases: int = 2):
    """Small random live CSDFG for cross-engine integration tests.

    Kept deliberately tiny (Σq small) so the exponential oracles finish
    instantly.
    """
    from repro.generators._machinery import GraphSpec, random_q_vector

    rng = random.Random(seed)
    spec = GraphSpec(f"rand{seed}", rng)
    q_values = random_q_vector(rng, tasks, max_q=4)
    for i, q in enumerate(q_values):
        spec.add_task(
            f"t{i}", q, phases=rng.randint(1, csdf_phases),
            duration_range=(0, 6),
        )
    names = [f"t{i}" for i in range(tasks)]
    for i in range(1, tasks):
        spec.connect(names[rng.randrange(i)], names[i],
                     rate_scale=rng.randint(1, 2))
    # one or two marked feedback arcs to create non-trivial cycles
    for _ in range(rng.randint(1, 2)):
        j = rng.randrange(1, tasks)
        i = rng.randrange(j)
        spec.connect(names[j], names[i], rate_scale=1)
    return spec.build()
