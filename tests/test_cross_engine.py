"""Integration: every throughput engine agrees on random live CSDFGs.

This is the library's strongest correctness statement, mirroring the
validation strategy in DESIGN.md §6: on graphs small enough for all
engines,

    K-Iter == symbolic execution == full expansion (K = q)

exactly (Fractions), the 1-periodic method is an upper bound on the
period, and the certified K-periodic schedule replays without driving
any buffer negative.
"""

import pytest

from repro.analysis import is_live, repetition_vector
from repro.baselines import (
    throughput_expansion,
    throughput_periodic,
    throughput_symbolic,
)
from repro.kperiodic import throughput_kiter
from repro.kperiodic.kiter import throughput_via_full_expansion
from tests.conftest import make_random_live_graph


@pytest.mark.parametrize("seed", range(25))
def test_exact_engines_agree(seed):
    g = make_random_live_graph(seed, tasks=4 + seed % 4)
    assert is_live(g)

    kiter = throughput_kiter(g)
    expansion = throughput_via_full_expansion(g)
    assert kiter.period == expansion.omega, "K-Iter vs full expansion"

    symbolic = throughput_symbolic(g, max_states=500_000)
    assert symbolic.period == kiter.period, "K-Iter vs symbolic"


@pytest.mark.parametrize("seed", range(25))
def test_periodic_is_a_relaxation(seed):
    g = make_random_live_graph(seed, tasks=4 + seed % 4)
    exact = throughput_kiter(g).period
    periodic = throughput_periodic(g)
    if periodic.feasible and exact > 0:
        assert periodic.period >= exact


@pytest.mark.parametrize("seed", range(12))
def test_certified_schedule_replays(seed):
    g = make_random_live_graph(seed, tasks=4)
    r = throughput_kiter(g, build_schedule=True)
    if r.schedule is not None:
        r.schedule.verify(g, iterations=3)


@pytest.mark.parametrize("seed", range(12))
def test_mcrp_engine_choice_is_irrelevant(seed):
    g = make_random_live_graph(seed + 100, tasks=5)
    base = throughput_kiter(g, engine="ratio-iteration").period
    assert throughput_kiter(g, engine="howard").period == base
    assert throughput_kiter(g, engine="lawler").period == base


@pytest.mark.parametrize("seed", range(15))
def test_sdf_expansion_agrees(seed):
    from repro.generators.random_sdf import random_connected_sdf

    g = random_connected_sdf(seed + 900, tasks=5, max_q=5,
                             duration_range=(1, 8))
    assert throughput_expansion(g).period == throughput_kiter(g).period


def test_kiter_rounds_bounded_by_q_divisor_chain():
    """K only moves up the divisor lattice of q, so rounds stay tiny."""
    for seed in range(10):
        g = make_random_live_graph(seed, tasks=6)
        q = repetition_vector(g)
        r = throughput_kiter(g)
        assert r.iteration_count <= 2 * len(q) + 4
        for t, k in r.K.items():
            assert q[t] % k == 0
