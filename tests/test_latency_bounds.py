"""Unit tests for latency metrics and analytic period bounds."""

from fractions import Fraction

import pytest

from repro.analysis.bounds import period_bounds
from repro.analysis.latency import (
    asap_source_sink_latency,
    iteration_makespan,
    schedule_latency_by_task,
)
from repro.exceptions import DeadlockError, ModelError
from repro.generators.paper import figure2_graph
from repro.kperiodic import min_period_for_k, throughput_kiter
from repro.model import sdf
from tests.conftest import make_random_live_graph


class TestBounds:
    def test_two_stage(self):
        g = sdf({"A": 2, "B": 3}, [("A", "B", 1, 1, 0)])
        b = period_bounds(g)
        assert b.lower == 3 and b.upper == 5
        assert b.bottleneck_task == "B"

    def test_bracket_exact_period(self):
        for seed in range(10):
            g = make_random_live_graph(seed, tasks=4)
            exact = throughput_kiter(g).period
            bounds = period_bounds(g)
            assert bounds.contains(exact), (seed, exact, bounds)

    def test_single_task_tight(self):
        g = sdf({"A": 7}, [])
        b = period_bounds(g)
        assert b.is_tight and b.lower == 7

    def test_multirate_weighting(self):
        # q = [3, 2]: A's workload 3·1, B's 2·5
        g = sdf({"A": 1, "B": 5}, [("A", "B", 2, 3, 0)])
        b = period_bounds(g)
        assert b.lower == 10 and b.bottleneck_task == "B"


class TestIterationMakespan:
    def test_two_task_cycle(self, two_task_cycle):
        s = min_period_for_k(two_task_cycle, {"A": 1, "B": 1}).schedule
        assert iteration_makespan(s, two_task_cycle) == 2

    def test_steady_state_constant(self):
        g = figure2_graph()
        r = throughput_kiter(g, build_schedule=True)
        spans = {
            it: iteration_makespan(r.schedule, g, iteration=it)
            for it in (2, 3, 5)
        }
        assert len(set(spans.values())) == 1

    def test_bad_iteration_rejected(self, two_task_cycle):
        s = min_period_for_k(two_task_cycle, {"A": 1, "B": 1}).schedule
        with pytest.raises(ModelError):
            iteration_makespan(s, two_task_cycle, iteration=0)

    def test_makespan_at_least_period(self):
        # one iteration cannot finish faster than the period when work
        # from the bottleneck fills it
        g = figure2_graph()
        r = throughput_kiter(g, build_schedule=True)
        assert iteration_makespan(r.schedule, g) >= r.period

    def test_by_task_spans(self, multirate_cycle):
        s = min_period_for_k(multirate_cycle, {"A": 1, "B": 1}).schedule
        spans = schedule_latency_by_task(s, multirate_cycle)
        assert set(spans) == {"A", "B"}
        assert all(v > 0 for v in spans.values())


class TestAsapLatency:
    def test_pipeline_latency_adds_up(self):
        g = sdf({"A": 2, "B": 3, "C": 4},
                [("A", "B", 1, 1, 0), ("B", "C", 1, 1, 0)])
        assert asap_source_sink_latency(g, "A", "C") == 9

    def test_initial_tokens_cut_latency(self):
        g = sdf({"A": 2, "B": 3}, [("A", "B", 1, 1, 1)])
        # B fires immediately off the initial token
        assert asap_source_sink_latency(g, "A", "B") == 3

    def test_deadlock_reported(self, deadlocked_cycle):
        with pytest.raises(DeadlockError):
            asap_source_sink_latency(deadlocked_cycle, "A", "B")

    def test_unknown_task_rejected(self, two_task_cycle):
        with pytest.raises(ModelError):
            asap_source_sink_latency(two_task_cycle, "A", "nope")
