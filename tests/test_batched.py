"""Batched multi-graph solving: kernel edge cases + fleet parity.

The exactness contract under test: for every graph in a batch, the
batched kernel's ``λ*`` is the *bit-identical* ``Fraction`` the
per-graph engine certifies (rare paths delegate to that engine, so the
contract holds by construction). Iteration traces may differ — the
batched oracle can surface a different, equally valid critical circuit —
so parity asserts values, statuses and errors, never probe counts.
"""

import json
import random
from fractions import Fraction
from pathlib import Path

import pytest

from repro.exceptions import DeadlockError
from repro.mcrp import (
    BiValuedGraph,
    batched_solve_mcrp,
    get_engine,
    solve_mcrp,
)
from repro.mcrp.batched import BATCHED_ORACLES, batching_available
from repro.kperiodic.fleet import fleet_eligible, solve_fleet_payloads
from repro.kperiodic.kiter import solve_kiter_payload
from repro.model.builder import sdf

pytestmark = pytest.mark.skipif(
    not batching_available(), reason="batched kernels require numpy"
)

ENGINES = sorted(BATCHED_ORACLES)
FLEET_DIR = Path(__file__).parent / "data" / "fleet"


def ring(n: int, costs, transits) -> BiValuedGraph:
    """An n-cycle with per-arc (cost, transit) patterns."""
    g = BiValuedGraph(n)
    for i in range(n):
        g.add_arc(i, (i + 1) % n, costs[i % len(costs)],
                  transits[i % len(transits)])
    return g


def random_bivalued(seed: int, nodes: int = 8) -> BiValuedGraph:
    rng = random.Random(seed)
    g = BiValuedGraph(nodes)
    for i in range(nodes):  # a live backbone cycle
        g.add_arc(i, (i + 1) % nodes, rng.randint(0, 9),
                  Fraction(rng.randint(1, 4), rng.choice((1, 2, 3))))
    for _ in range(nodes):
        g.add_arc(rng.randrange(nodes), rng.randrange(nodes),
                  rng.randint(0, 6), Fraction(rng.randint(1, 3)))
    return g


def reference(graph: BiValuedGraph, engine: str):
    return solve_mcrp(graph, get_engine(engine))


# ----------------------------------------------------------------------
# Kernel edge cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_empty_chunk(engine):
    assert batched_solve_mcrp([], engine=engine) == []


@pytest.mark.parametrize("engine", ENGINES)
def test_single_graph_chunk_matches_per_graph(engine):
    graph = random_bivalued(1)
    (outcome,) = batched_solve_mcrp([graph], engine=engine)
    assert outcome.error is None
    assert outcome.result.ratio == reference(graph, engine).ratio


@pytest.mark.parametrize("engine", ENGINES)
def test_deadlock_mixed_into_healthy_fleet(engine):
    healthy = [random_bivalued(seed) for seed in range(4)]
    dead = ring(3, costs=[5], transits=[0])  # positive cost, zero transit
    fleet = healthy[:2] + [dead] + healthy[2:]
    outcomes = batched_solve_mcrp(fleet, engine=engine)
    assert isinstance(outcomes[2].error, DeadlockError)
    assert outcomes[2].error.cycle_nodes  # certificate survives batching
    for graph, outcome in zip(healthy, outcomes[:2] + outcomes[3:]):
        assert outcome.error is None
        assert outcome.result.ratio == reference(graph, engine).ratio


@pytest.mark.parametrize("engine", ENGINES)
def test_mixed_per_graph_scales(engine):
    # Distinct denominators per graph → distinct compiled integer
    # scales; the stacked kernel must keep them segregated per segment.
    fleet = [
        ring(4, costs=[3, 1], transits=[Fraction(1, 2)]),
        ring(5, costs=[2], transits=[Fraction(1, 3), Fraction(2, 3)]),
        ring(3, costs=[Fraction(7, 5)], transits=[1]),
        random_bivalued(7),
    ]
    outcomes = batched_solve_mcrp(fleet, engine=engine)
    for graph, outcome in zip(fleet, outcomes):
        assert outcome.error is None
        assert outcome.result.ratio == reference(graph, engine).ratio


@pytest.mark.parametrize("engine", ENGINES)
def test_int64_overflow_forces_per_graph_fallback_mid_batch(engine):
    huge = ring(4, costs=[10 ** 18, 3 * 10 ** 17], transits=[1])
    fleet = [random_bivalued(11), huge, random_bivalued(12)]
    outcomes = batched_solve_mcrp(fleet, engine=engine)
    assert outcomes[1].batched is False  # overflow → delegated
    for graph, outcome in zip(fleet, outcomes):
        assert outcome.error is None
        assert outcome.result.ratio == reference(graph, engine).ratio
    assert outcomes[1].result.ratio == Fraction(26 * 10 ** 17, 4)


@pytest.mark.parametrize("engine", ENGINES)
def test_retirement_order_independence(engine):
    # Graphs converge after different probe counts; whatever order the
    # convergence masks retire them in, each answer is its own.
    fleet = [random_bivalued(seed, nodes=4 + seed % 5)
             for seed in range(10)]
    expected = [reference(g, engine).ratio for g in fleet]
    for shuffle_seed in range(4):
        order = list(range(len(fleet)))
        random.Random(shuffle_seed).shuffle(order)
        outcomes = batched_solve_mcrp([fleet[i] for i in order],
                                      engine=engine)
        for position, original in enumerate(order):
            assert outcomes[position].result.ratio == expected[original]


def test_empty_graph_member():
    fleet = [BiValuedGraph(0), random_bivalued(3)]
    outcomes = batched_solve_mcrp(fleet)
    assert outcomes[0].result.ratio is None
    assert outcomes[1].result.ratio is not None


# ----------------------------------------------------------------------
# Fleet driver (payload level)
# ----------------------------------------------------------------------
def two_cycle():
    return sdf({"A": 1, "B": 1},
               [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)],
               name="two_cycle")


def test_fleet_payload_schema_and_opt_out():
    payloads = [
        {"graph": two_cycle().to_dict(), "engine": "ratio-iteration"},
        {"graph": two_cycle().to_dict(), "engine": "ratio-iteration",
         "batched": False},
        {"graph": two_cycle().to_dict(), "engine": "bellman"},
    ]
    assert fleet_eligible(payloads[0])
    assert not fleet_eligible(payloads[1])
    assert not fleet_eligible(payloads[2])
    outcomes = solve_fleet_payloads(payloads)
    for outcome in outcomes:
        assert outcome["status"] == "OK"
        assert outcome["period"] == [2, 1]
        assert "batched" in outcome
    assert outcomes[1]["batched"] is False
    assert outcomes[2]["batched"] is False


def test_fleet_deadlock_payload_mixed_in():
    dead = sdf({"A": 1, "B": 1},
               [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 0)],
               name="dead")
    payloads = [
        {"graph": two_cycle().to_dict()},
        {"graph": dead.to_dict()},
        {"graph": two_cycle().to_dict()},
    ]
    outcomes = solve_fleet_payloads(payloads)
    assert [o["status"] for o in outcomes] == ["OK", "DEADLOCK", "OK"]
    solo = solve_kiter_payload(payloads[1])
    assert outcomes[1]["error"] == solo["error"]


def test_fleet_empty_chunk():
    assert solve_fleet_payloads([]) == []


# ----------------------------------------------------------------------
# Fleet fixture: bit-identical λ* on the triple-verified corpus
# ----------------------------------------------------------------------
def fleet_fixture_cases():
    index = FLEET_DIR / "fleet_index.json"
    if not index.exists():  # sparse checkout
        return []
    return json.loads(index.read_text())


@pytest.mark.skipif(not fleet_fixture_cases(),
                    reason="fleet fixture not generated")
@pytest.mark.parametrize("engine", ENGINES)
def test_fleet_fixture_bit_identical(engine):
    from repro.io import load_graph

    cases = fleet_fixture_cases()
    payloads = []
    for entry in cases:
        graph = load_graph(FLEET_DIR / entry["file"])
        payloads.append({"graph": graph.to_dict(), "engine": engine})
    outcomes = solve_fleet_payloads(payloads)
    batched = 0
    for entry, outcome in zip(cases, outcomes):
        assert outcome["status"] == "OK", (entry["file"], outcome)
        assert outcome["period"] == entry["period"], entry["file"]
        batched += bool(outcome["batched"])
    # The fixture is sized for the batched path: the vast majority of
    # solves must actually ride it, not the fallback.
    assert batched >= len(cases) * 3 // 4


# ----------------------------------------------------------------------
# Distributed worker: inherits the batched kernel with zero protocol
# changes, and its stats say so.
# ----------------------------------------------------------------------
def test_worker_stats_count_batched_solves():
    from repro.distributed.jobqueue import MemoryJobQueue
    from repro.distributed.worker import Worker
    from repro.service import ThroughputService

    queue = MemoryJobQueue()
    worker = Worker(queue, worker_id="batched-test", chunk_size=4,
                    poll_interval=0.01)
    thread = worker.run_in_thread()
    try:
        service = ThroughputService(
            engine="ratio-iteration", queue=queue, queue_poll=0.01,
        )
        outcome = service.submit(two_cycle())
        assert outcome.ok and outcome.period == 2
        assert outcome.batched is True
    finally:
        worker.stop()
        thread.join(timeout=10)
    assert worker.stats.acks == 1
    assert worker.stats.batched == 1
    assert worker.stats.as_dict()["batched"] == 1
