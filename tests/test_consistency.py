"""Unit tests for repetition-vector computation."""

import pytest

from repro.analysis import (
    is_consistent,
    repetition_vector,
    repetition_vector_sum,
)
from repro.exceptions import InconsistentGraphError, ModelError
from repro.generators.paper import figure2_graph
from repro.model import CsdfGraph, csdf, sdf


class TestSdfRepetition:
    def test_two_task_ratio(self):
        g = sdf({"A": 1, "B": 1}, [("A", "B", 2, 3, 0)])
        assert repetition_vector(g) == {"A": 3, "B": 2}

    def test_chain_propagation(self):
        g = sdf(
            {"A": 1, "B": 1, "C": 1},
            [("A", "B", 2, 3, 0), ("B", "C", 5, 10, 0)],
        )
        assert repetition_vector(g) == {"A": 3, "B": 2, "C": 1}

    def test_minimality(self):
        g = sdf({"A": 1, "B": 1}, [("A", "B", 4, 6, 0)])
        assert repetition_vector(g) == {"A": 3, "B": 2}

    def test_large_rates_no_overflow(self):
        # the paper fixed an integer overflow in SDF3's computation;
        # arbitrary precision must shrug at huge rates.
        big = 10**12 + 39
        g = sdf({"A": 1, "B": 1}, [("A", "B", big, big + 1, 0)])
        q = repetition_vector(g)
        assert q == {"A": big + 1, "B": big}

    def test_inconsistent_triangle(self):
        g = sdf(
            {"A": 1, "B": 1, "C": 1},
            [
                ("A", "B", 1, 1, 0),
                ("B", "C", 1, 1, 0),
                ("C", "A", 2, 1, 0),
            ],
        )
        with pytest.raises(InconsistentGraphError):
            repetition_vector(g)
        assert not is_consistent(g)

    def test_disconnected_components_scaled_independently(self):
        g = sdf(
            {"A": 1, "B": 1, "C": 1, "D": 1},
            [("A", "B", 2, 3, 0), ("C", "D", 1, 5, 0)],
        )
        q = repetition_vector(g)
        assert q["A"] * 2 == q["B"] * 3
        assert q["C"] * 1 == q["D"] * 5

    def test_empty_graph_rejected(self):
        with pytest.raises(ModelError):
            repetition_vector(CsdfGraph("empty"))

    def test_isolated_task(self):
        g = sdf({"A": 7}, [])
        assert repetition_vector(g) == {"A": 1}


class TestCsdfRepetition:
    def test_figure1_rates(self):
        g = csdf(
            {"t": [1, 1, 1], "u": [1, 1]},
            [("t", "u", [2, 3, 1], [2, 5], 0)],
        )
        # q_t·6 = q_u·7
        assert repetition_vector(g) == {"t": 7, "u": 6}

    def test_figure2_derived_vector(self):
        # DESIGN.md documents why this is [3,4,6,1] (not the prose's value)
        assert repetition_vector(figure2_graph()) == {
            "A": 3, "B": 4, "C": 6, "D": 1,
        }

    def test_self_loop_consistent(self):
        g = csdf({"A": [1, 1]}, [("A", "A", [1, 1], [2, 0], 2)])
        assert repetition_vector(g) == {"A": 1}

    def test_self_loop_inconsistent(self):
        with pytest.raises(InconsistentGraphError):
            repetition_vector(
                csdf({"A": [1, 1]}, [("A", "A", [1, 1], [3, 0], 2)])
            )

    def test_sum_helper(self):
        assert repetition_vector_sum(figure2_graph()) == 14


class TestScalingInvariance:
    def test_rate_scaling_preserves_vector(self):
        g1 = sdf({"A": 1, "B": 1}, [("A", "B", 2, 3, 0)])
        g2 = sdf({"A": 1, "B": 1}, [("A", "B", 20, 30, 0)])
        assert repetition_vector(g1) == repetition_vector(g2)
