"""Parity and cache suite for the direct (G, K) → CompiledGraph pipeline.

The direct pipeline (:func:`repro.kperiodic.expansion.compile_expansion`)
must be indistinguishable from the legacy ``expand_graph`` +
``build_constraint_graph`` reference: identical compiled
``scale``/``cost``/``transit``/``src``/``dst`` arrays (not just equal
λ*), identical labels and node index, identical certified periods and
schedules. The block cache must hit exactly when ``(buffer, K_src,
K_dst)`` is unchanged and respect its LRU cell budget.
"""

import random
from fractions import Fraction
from pathlib import Path

import pytest

from repro.analysis.consistency import repetition_vector
from repro.analysis.constraint_graph import (
    build_constraint_graph,
    merge_parallel_candidates,
)
from repro.analysis.precedence import (
    expanded_useful_pair_arrays,
    useful_pair_arrays,
)
from repro.exceptions import SolverError
from repro.kperiodic.expansion import (
    ExpansionBlockCache,
    _duplicate,
    compile_expansion,
    expand_graph,
    expanded_repetition_vector,
    expansion_cache_for,
)
from repro.kperiodic.kiter import solve_kiter_payload, throughput_kiter
from repro.kperiodic.solver import min_period_for_k
from repro.mcrp.graph import FrozenBiValuedGraph, ScaledFractionView
from repro.model import Buffer, CsdfGraph, Task

from tests.conftest import golden_corpus_cases, make_random_live_graph

np = pytest.importorskip("numpy")

DATA = Path(__file__).parent / "data"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def assert_compiled_parity(graph, K):
    """Direct and legacy pipelines must produce identical compiled arrays."""
    q = repetition_vector(graph)
    q_tilde = expanded_repetition_vector(q, K)
    expanded = expand_graph(graph, K)
    legacy, legacy_index = build_constraint_graph(
        expanded, q_tilde, serialize=True
    )
    built = compile_expansion(graph, K, q_tilde)
    assert built is not None
    direct, space = built
    ref = legacy.compile()
    got = direct.compile()
    assert got.scale == ref.scale
    assert got.src == ref.src
    assert got.dst == ref.dst
    assert got.cost == ref.cost
    assert got.transit == ref.transit
    assert got.out_arcs == ref.out_arcs
    assert list(direct.labels) == list(legacy.labels)
    assert space.node_index() == legacy_index
    return direct, legacy


def random_k_vectors(graph, rng):
    q = repetition_vector(graph)
    yield {t: 1 for t in q}
    yield dict(q)
    yield {t: rng.choice([1, 2, min(3, q[t]), q[t]]) for t in q}


# ----------------------------------------------------------------------
# The affine-tile sweep
# ----------------------------------------------------------------------
def test_expanded_pair_arrays_match_materialized_expansion():
    rng = random.Random(11)
    for _ in range(100):
        production = [rng.randint(0, 5) for _ in range(rng.randint(1, 4))]
        consumption = [rng.randint(0, 5) for _ in range(rng.randint(1, 4))]
        if not sum(production):
            production[0] = 1
        if not sum(consumption):
            consumption[0] = 1
        base = Buffer(
            "b", "s", "t", tuple(production), tuple(consumption),
            rng.randint(0, 8),
        )
        k_src, k_dst = rng.randint(1, 5), rng.randint(1, 5)
        materialized = Buffer(
            "b", "s", "t",
            _duplicate(base.production, k_src),
            _duplicate(base.consumption, k_dst),
            base.initial_tokens,
        )
        ref = useful_pair_arrays(materialized)
        got = expanded_useful_pair_arrays(base, k_src, k_dst)
        for r, g in zip(ref, got):
            assert np.array_equal(np.asarray(r), np.asarray(g))


def test_all_ones_self_loop_closed_form_matches_generic_sweep():
    """The serialization-loop shortcut vs the generic α ≤ β sweep."""
    for phi in range(1, 5):
        for k in range(1, 5):
            for m0 in range(0, 2 * phi * k + 2):
                ones = (1,) * phi
                base = Buffer("loop", "t", "t", ones, ones, m0)
                materialized = Buffer(
                    "loop", "t", "t",
                    _duplicate(ones, k), _duplicate(ones, k), m0,
                )
                ref = useful_pair_arrays(materialized)
                got = expanded_useful_pair_arrays(base, k, k)
                for r, g in zip(ref, got):
                    assert np.array_equal(np.asarray(r), np.asarray(g)), (
                        phi, k, m0,
                    )


# ----------------------------------------------------------------------
# Compiled-array parity
# ----------------------------------------------------------------------
def test_parity_on_random_graphs():
    rng = random.Random(5)
    for seed in range(12):
        graph = make_random_live_graph(seed)
        for K in random_k_vectors(graph, rng):
            assert_compiled_parity(graph, K)


@pytest.mark.parametrize(
    "filename,period",
    golden_corpus_cases()[:6],
    ids=[c[0] for c in golden_corpus_cases()[:6]],
)
def test_parity_on_golden_corpus(filename, period):
    from repro.io import load_graph

    graph = load_graph(DATA / filename)
    q = repetition_vector(graph)
    for K in ({t: 1 for t in q}, {t: min(q[t], 3) for t in q}):
        assert_compiled_parity(graph, K)


def test_parity_along_kiter_escalation_sequence():
    """Every K vector an actual K-Iter run visits must be parity-clean."""
    from repro.io import load_graph

    graph = load_graph(DATA / "golden_figure2.json")
    result = throughput_kiter(graph)
    assert len(result.rounds) >= 2  # the escalation sequence is real
    for rnd in result.rounds:
        assert_compiled_parity(graph, rnd.K)


def test_min_period_direct_matches_legacy_including_schedule():
    for seed in (0, 4, 9):
        graph = make_random_live_graph(seed)
        q = repetition_vector(graph)
        K = {t: min(q[t], 2) for t in q}
        direct = min_period_for_k(graph, K, pipeline="direct")
        legacy = min_period_for_k(graph, K, pipeline="legacy")
        assert direct.omega == legacy.omega
        assert direct.omega_expanded == legacy.omega_expanded
        assert direct.graph_nodes == legacy.graph_nodes
        assert direct.graph_arcs == legacy.graph_arcs
        if legacy.schedule is not None:
            assert direct.schedule.starts == legacy.schedule.starts
            assert direct.schedule.task_periods == legacy.schedule.task_periods
            direct.schedule.verify(graph)


def test_kiter_periods_identical_across_pipelines():
    for seed in (1, 3, 7):
        graph = make_random_live_graph(seed)
        direct = throughput_kiter(graph, pipeline="direct")
        legacy = throughput_kiter(graph, pipeline="legacy")
        assert direct.period == legacy.period
        assert direct.K == legacy.K


def test_invalid_pipeline_rejected():
    graph = make_random_live_graph(0)
    q = repetition_vector(graph)
    with pytest.raises(SolverError, match="pipeline"):
        min_period_for_k(graph, {t: 1 for t in q}, pipeline="warp")


def test_direct_pipeline_falls_back_without_numpy(monkeypatch):
    import repro.kperiodic.expansion as expansion

    graph = make_random_live_graph(2)
    q = repetition_vector(graph)
    K = {t: 1 for t in q}
    reference = min_period_for_k(graph, K, pipeline="legacy")
    monkeypatch.setattr(expansion, "_np", None)
    assert compile_expansion(
        graph, K, expanded_repetition_vector(q, K)
    ) is None
    fallback = min_period_for_k(graph, K, pipeline="direct")
    assert fallback.omega == reference.omega


# ----------------------------------------------------------------------
# The block cache
# ----------------------------------------------------------------------
def test_cache_hits_when_k_unchanged_and_misses_on_escalation():
    graph = make_random_live_graph(3)
    q = repetition_vector(graph)
    K = {t: 1 for t in q}
    q_tilde = expanded_repetition_vector(q, K)
    cache = ExpansionBlockCache()
    compile_expansion(graph, K, q_tilde, cache=cache)
    buffers = cache.misses  # one block per buffer incl. serialization loops
    assert buffers > 0 and cache.hits == 0

    # Same K: every block hits.
    compile_expansion(graph, K, q_tilde, cache=cache)
    assert cache.hits == buffers and cache.misses == buffers

    # Escalate one task: exactly its incident buffers (with the
    # serialization loop) recompute, the rest still hit.
    work = graph.with_serialization_loops()
    task = next(t for t in q if q[t] > 1)
    K2 = dict(K, **{task: q[task]})
    touched = sum(
        1 for b in work.buffers() if task in (b.source, b.target)
    )
    compile_expansion(
        graph, K2, expanded_repetition_vector(q, K2), cache=cache
    )
    assert cache.misses == buffers + touched
    assert cache.hits == 2 * buffers - touched


def test_cache_respects_cell_budget_with_lru_eviction():
    graph = make_random_live_graph(1)
    q = repetition_vector(graph)
    K = {t: 1 for t in q}
    q_tilde = expanded_repetition_vector(q, K)
    cache = ExpansionBlockCache(max_cells=8)  # far below one round's blocks
    compile_expansion(graph, K, q_tilde, cache=cache)
    assert cache.evictions > 0
    assert cache.stats()["cells"] <= 8 or len(cache) == 1


def test_kiter_reuses_blocks_across_rounds():
    from repro.io import load_graph

    graph = load_graph(DATA / "golden_figure2.json")
    cache = expansion_cache_for(graph)
    base_hits = cache.hits
    result = throughput_kiter(graph)
    assert len(result.rounds) >= 2
    assert cache.hits > base_hits, cache.stats()
    # a second identical run hits on every block of every round
    misses_before = cache.misses
    throughput_kiter(graph)
    assert cache.misses == misses_before


def test_payload_worker_path_shares_blocks_per_graph_object():
    """The service-pool worker contract: one graph object, one cache."""
    graph = make_random_live_graph(6)
    payload = {"graph": graph.to_dict(), "engine": "ratio-iteration"}
    cache = expansion_cache_for(graph)
    first = solve_kiter_payload(payload, graph=graph)
    assert first["status"] == "OK"
    hits_before, misses_before = cache.hits, cache.misses
    assert misses_before > 0
    second = solve_kiter_payload(payload, graph=graph)
    assert second["status"] == "OK"
    assert second["period"] == first["period"]
    assert cache.misses == misses_before  # nothing recomputed
    # The repeat solve replays the same deterministic K sequence, so it
    # reuses whole assembled constraint graphs — it never even reaches
    # the per-buffer block layer (hits stay flat, compiled memo hits).
    assert cache.hits == hits_before
    assert cache.compiled_hits > 0


def test_payload_rejects_unknown_pipeline():
    graph = make_random_live_graph(0)
    outcome = solve_kiter_payload(
        {"graph": graph.to_dict(), "pipeline": "warp"}
    )
    assert outcome["status"] == "ERROR"
    assert "pipeline" in outcome["error"]


def test_payload_legacy_pipeline_runs():
    graph = make_random_live_graph(0)
    direct = solve_kiter_payload({"graph": graph.to_dict()})
    legacy = solve_kiter_payload(
        {"graph": graph.to_dict(), "pipeline": "legacy"}
    )
    assert direct["status"] == legacy["status"] == "OK"
    assert direct["period"] == legacy["period"]


# ----------------------------------------------------------------------
# The vectorized parallel-arc merge
# ----------------------------------------------------------------------
def test_merge_exact_across_mixed_denominators():
    # Two candidates on the same node pair: β/den = 3/6 vs 2/4 — the
    # Fractions tie exactly (H = −1/2), so the first stays; a third
    # with H = −2/3 < −1/2 must win.
    srcs = np.array([0, 0, 0, 1], dtype=np.int64)
    dsts = np.array([1, 1, 1, 0], dtype=np.int64)
    costs = np.array([7, 7, 7, 5], dtype=np.int64)
    betas = np.array([3, 2, 4, 1], dtype=np.int64)
    dens = np.array([6, 4, 6, 3], dtype=np.int64)
    out = merge_parallel_candidates(srcs, dsts, costs, betas, dens, 2)
    assert out is not None
    o_src, o_dst, o_cost, o_beta, o_den = out
    assert o_src.tolist() == [0, 1] and o_dst.tolist() == [1, 0]
    assert o_cost.tolist() == [7, 5]
    got = [Fraction(-int(b), int(d)) for b, d in zip(o_beta, o_den)]
    assert got == [Fraction(-2, 3), Fraction(-1, 3)]


def test_merge_keeps_first_occurrence_order():
    srcs = np.array([2, 0, 2, 1], dtype=np.int64)
    dsts = np.array([0, 1, 0, 2], dtype=np.int64)
    costs = np.array([1, 2, 1, 3], dtype=np.int64)
    betas = np.array([5, 1, 9, 2], dtype=np.int64)
    dens = np.array([2, 2, 2, 2], dtype=np.int64)
    out = merge_parallel_candidates(srcs, dsts, costs, betas, dens, 3)
    o_src, o_dst, _, o_beta, _ = out
    assert list(zip(o_src.tolist(), o_dst.tolist())) == [
        (2, 0), (0, 1), (1, 2)
    ]
    assert o_beta.tolist()[0] == 9  # min H = max β at equal denominators


def test_merge_overflow_returns_none():
    big = (1 << 61) + 1
    srcs = np.array([0, 0], dtype=np.int64)
    dsts = np.array([1, 1], dtype=np.int64)
    costs = np.array([1, 1], dtype=np.int64)
    betas = np.array([big, 3], dtype=np.int64)
    dens = np.array([7, 5], dtype=np.int64)  # lcm 35, factors 5 and 7
    assert merge_parallel_candidates(srcs, dsts, costs, betas, dens, 2) is None


def test_build_constraint_graph_merge_matches_streaming_reference():
    """The legacy builder must be byte-identical through the new merge."""
    from repro.analysis import constraint_graph as cg

    g = CsdfGraph("parallel")
    g.add_task(Task("A", (1, 2)))
    g.add_task(Task("B", (3,)))
    g.add_buffer(Buffer("ab1", "A", "B", (2, 1), (3,), 2))
    g.add_buffer(Buffer("ab2", "A", "B", (1, 1), (2,), 5))
    g.add_buffer(Buffer("aa", "A", "A", (1, 0), (0, 1), 1))
    g.add_buffer(Buffer("ba", "B", "A", (3,), (2, 1), 4))
    for merge in (True, False):
        vectorized, _ = build_constraint_graph(g, merge_parallel=merge)
        work = g.with_serialization_loops()
        rep = repetition_vector(work)
        from repro.mcrp.graph import BiValuedGraph

        labels = []
        base_of = {}
        pair_count = {}
        for t in work.tasks():
            base_of[t.name] = len(labels)
            labels.extend((t.name, p) for p in range(1, t.phase_count + 1))
        for b in work.buffers():
            key = (b.source, b.target)
            pair_count[key] = pair_count.get(key, 0) + 1
        reference = BiValuedGraph(len(labels), labels=labels)
        cg._build_arcs_streaming(
            work, rep, reference, base_of, pair_count, merge
        )
        assert vectorized.arc_src == reference.arc_src
        assert vectorized.arc_dst == reference.arc_dst
        assert list(vectorized.arc_cost) == list(reference.arc_cost)
        assert list(vectorized.arc_transit) == list(reference.arc_transit)
        ref_c = reference.compile()
        got_c = vectorized.compile()
        assert got_c.scale == ref_c.scale
        assert got_c.cost == ref_c.cost
        assert got_c.transit == ref_c.transit


# ----------------------------------------------------------------------
# Frozen graph + fraction views
# ----------------------------------------------------------------------
def test_frozen_graph_is_immutable_and_lazy():
    graph = make_random_live_graph(0)
    q = repetition_vector(graph)
    K = {t: 1 for t in q}
    built = compile_expansion(graph, K, expanded_repetition_vector(q, K))
    frozen, _space = built
    assert isinstance(frozen, FrozenBiValuedGraph)
    assert isinstance(frozen.arc_cost, ScaledFractionView)
    compiled = frozen.compile()
    assert frozen.arc_cost[0] == Fraction(compiled.cost[0], compiled.scale)
    assert frozen.arc_transit[-1] == Fraction(
        compiled.transit[-1], compiled.scale
    )
    with pytest.raises(TypeError):
        frozen.add_arc(0, 0, 1, 1)
    with pytest.raises(TypeError):
        frozen.extend_arcs([0], [0], [1], [1])
    with pytest.raises(TypeError):
        frozen.add_node()
    frozen.invalidate()  # no-op, must not drop the compiled form
    assert frozen.compile() is compiled


def test_scaled_fraction_view_sequence_protocol():
    view = ScaledFractionView([6, -3, 0], 6)
    assert len(view) == 3
    assert list(view) == [Fraction(1), Fraction(-1, 2), Fraction(0)]
    assert view[-1] == Fraction(0)
    assert view[0:2] == [Fraction(1), Fraction(-1, 2)]


def test_subgraph_slice_matches_python_path(monkeypatch):
    """SCC subgraphs sliced from compiled arrays equal the Fraction copy."""
    from repro.mcrp import decompose

    graph = make_random_live_graph(8)
    q = repetition_vector(graph)
    K = dict(q)
    built = compile_expansion(graph, K, expanded_repetition_vector(q, K))
    bi, _space = built
    fast = decompose.max_cycle_ratio_sccs(bi)
    monkeypatch.setattr(decompose, "_MIN_SLICE_ARCS", 1 << 62)
    slow = decompose.max_cycle_ratio_sccs(bi)
    assert fast.ratio == slow.ratio
    assert fast.cycle_arcs == slow.cycle_arcs
    assert fast.cycle_nodes == slow.cycle_nodes
