"""Property tests for the mobility (ASAP/ALAP slack) analysis.

Hypothesis drives random live CSDFGs through the certified solve and
checks the lattice facts the resource-aware policies depend on:

* ALAP dominates ASAP instance-wise (slack ≥ 0, exact Fractions);
* every instance of the certified critical circuit has slack 0, and
  the circuit is never empty (something must limit throughput);
* arc reversal is an involution on the bi-valued constraint graph;
* anchoring the latest-start relaxation at the ASAP vector returns
  ASAP *exactly* — ASAP is itself a solution, so the greatest solution
  below it is itself (reversal-of-reversal is the identity on the
  schedule lattice).
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.exceptions import DeadlockError, SchedulingError
from repro.scheduling import (
    latest_path_potentials,
    mobility_from_context,
    reverse_bi_graph,
    schedule_context,
)
from tests.conftest import make_random_live_graph

SETTINGS = settings(deadline=None, max_examples=25)


def _context(seed: int, tasks: int):
    graph = make_random_live_graph(seed, tasks=tasks)
    try:
        return graph, schedule_context(graph)
    except (DeadlockError, SchedulingError):
        return graph, None


@given(seed=st.integers(0, 400), tasks=st.integers(3, 6))
@SETTINGS
def test_alap_dominates_asap_instancewise(seed, tasks):
    _graph, ctx = _context(seed, tasks)
    assume(ctx is not None)
    report = mobility_from_context(ctx)
    assert report.instances
    for m in report.instances:
        assert m.alap >= m.asap, m
        assert m.slack >= 0, m
        assert m.slack == m.alap - m.asap


@given(seed=st.integers(0, 400), tasks=st.integers(3, 6))
@SETTINGS
def test_critical_circuit_has_zero_slack(seed, tasks):
    _graph, ctx = _context(seed, tasks)
    assume(ctx is not None)
    report = mobility_from_context(ctx)
    critical = report.critical_instances()
    assert critical, "certified solve must name a critical circuit"
    for m in critical:
        assert m.slack == 0, (m.key, m.slack)


@given(seed=st.integers(0, 400), tasks=st.integers(3, 6))
@SETTINGS
def test_reverse_is_an_involution(seed, tasks):
    _graph, ctx = _context(seed, tasks)
    assume(ctx is not None)
    bi = ctx.bi_graph
    back = reverse_bi_graph(reverse_bi_graph(bi))
    assert back.node_count == bi.node_count
    assert list(back.arc_src) == list(bi.arc_src)
    assert list(back.arc_dst) == list(bi.arc_dst)
    assert list(back.arc_cost) == list(bi.arc_cost)
    assert list(back.arc_transit) == list(bi.arc_transit)


@given(seed=st.integers(0, 400), tasks=st.integers(3, 6))
@SETTINGS
def test_alap_anchored_at_asap_returns_asap(seed, tasks):
    _graph, ctx = _context(seed, tasks)
    assume(ctx is not None)
    asap = ctx.asap_potentials()
    anchored = latest_path_potentials(
        ctx.bi_graph, ctx.omega_expanded, asap
    )
    assert anchored == asap


@given(seed=st.integers(0, 400), tasks=st.integers(3, 6))
@SETTINGS
def test_alap_vector_is_itself_feasible(seed, tasks):
    """The ALAP start vector solves every constraint arc, so it yields
    a verifiable schedule at the same certified Ω."""
    graph, ctx = _context(seed, tasks)
    assume(ctx is not None)
    alap = ctx.alap_potentials()
    weights = ctx.arc_weights()
    bi = ctx.bi_graph
    for arc in range(bi.arc_count):
        src, dst = bi.arc_src[arc], bi.arc_dst[arc]
        assert alap[dst] - alap[src] >= weights[arc], arc
    schedule = ctx.schedule_from_starts(alap)
    schedule.verify(graph, iterations=2)
    assert schedule.omega == ctx.omega


def test_mobility_two_task_cycle_exact(two_task_cycle):
    """Pinned tiny case: the unit cycle is all critical — every window
    degenerates and Ω = 2 exactly."""
    report = mobility_from_context(schedule_context(two_task_cycle))
    assert report.omega == Fraction(2)
    assert report.max_slack == 0
    assert {m.key for m in report.instances} == report.critical_keys
