"""The scheduling-policy registry, mirrored on ``tests/test_registry.py``.

Same three-layer shape as the MCRP engine registry tests:

* **registry surface** — the built-in policy set is pinned, metadata
  (capability flags, summaries) is sane, duplicate names are rejected
  at registration time, unknown names fail with the choice list;
* **reachability** — every registered policy is buildable through the
  ``build_schedule`` facade, the bench runner, and the ``repro
  policies`` / ``repro schedule --policy`` CLI surfaces;
* **option hygiene** — policies reject options they do not understand
  (a typo must fail loudly, not silently fall back to defaults).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.cli import main
from repro.exceptions import SchedulingError
from repro.scheduling import (
    all_policies,
    build_schedule,
    get_policy,
    policy_names,
    priority_names,
)

BUILTIN_POLICIES = {"alap", "asap", "force-directed", "list"}


# ----------------------------------------------------------------------
# registry surface
# ----------------------------------------------------------------------
def test_all_builtin_policies_registered():
    assert set(policy_names()) == BUILTIN_POLICIES


def test_policy_metadata_is_sane():
    for info in all_policies():
        assert callable(info.build)
        assert info.summary
    assert get_policy("list").resource_constrained
    assert not get_policy("list").refinement
    assert get_policy("force-directed").refinement
    assert not get_policy("asap").resource_constrained
    assert not get_policy("alap").resource_constrained


def test_unknown_policy_names_choices():
    with pytest.raises(SchedulingError, match="alap"):
        get_policy("nope")
    with pytest.raises(SchedulingError, match="nope"):
        get_policy("nope")


def test_duplicate_registration_rejected():
    from repro.scheduling import register_policy

    with pytest.raises(ValueError, match="duplicate"):
        register_policy("asap")(lambda ctx, **kw: None)


def test_priority_registry_surface():
    assert set(priority_names()) == {"critical-path", "mobility"}
    from repro.scheduling.list_scheduling import get_priority

    with pytest.raises(SchedulingError, match="mobility"):
        get_priority("alphabetical")


# ----------------------------------------------------------------------
# reachability: facade, bench runner, CLI
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", sorted(BUILTIN_POLICIES))
def test_every_policy_reachable_from_facade(policy, multirate_cycle):
    outcome = build_schedule(multirate_cycle, policy)
    assert outcome.omega == Fraction(5)
    outcome.schedule.verify(multirate_cycle, iterations=2)


@pytest.mark.parametrize("policy", sorted(BUILTIN_POLICIES))
def test_every_policy_reachable_from_bench_runner(policy, multirate_cycle):
    from repro.bench.runner import run_schedule_policy, schedule_policy_names

    assert policy in schedule_policy_names()
    outcome = run_schedule_policy(policy, multirate_cycle, 60.0)
    assert outcome.ok
    assert outcome.period == Fraction(5)


def test_unknown_policy_fails_fast_in_bench_runner(multirate_cycle):
    from repro.bench.runner import run_schedule_policy

    with pytest.raises(SchedulingError, match="nope"):
        run_schedule_policy("nope", multirate_cycle, 60.0)


def test_cli_policies_lists_the_zoo(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in BUILTIN_POLICIES:
        assert name in out
    assert "resource-constrained" in out
    assert "refinement" in out
    assert "certified-period" in out
    assert "list-scheduling priorities: critical-path, mobility" in out


def test_cli_schedule_rejects_unknown_policy(tmp_path, capsys):
    graph = tmp_path / "g.json"
    from repro.io import save_graph
    from repro.model import sdf

    save_graph(
        sdf({"A": 1, "B": 1}, [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)]),
        graph,
    )
    code = main(["schedule", str(graph), "--policy", "nope",
                 "-o", str(tmp_path / "s.json")])
    assert code == 2
    err = capsys.readouterr().err
    assert "nope" in err and "alap" in err


# ----------------------------------------------------------------------
# option hygiene
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", sorted(BUILTIN_POLICIES))
def test_policies_reject_unknown_options(policy, multirate_cycle):
    with pytest.raises(SchedulingError, match="typo_option"):
        build_schedule(multirate_cycle, policy, typo_option=1)


def test_list_rejects_unknown_priority(multirate_cycle):
    with pytest.raises(SchedulingError, match="alphabetical"):
        build_schedule(multirate_cycle, "list", priority="alphabetical")
