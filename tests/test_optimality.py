"""Unit tests for the Theorem 4 optimality test and the K update rule."""

import pytest

from repro.exceptions import ModelError
from repro.kperiodic.optimality import (
    critical_qbar,
    optimality_test,
    update_periodicity,
)


class TestQbar:
    def test_gcd_normalization(self):
        q = {"A": 6, "B": 12, "C": 6, "D": 1}
        assert critical_qbar(q, ["A", "C", "D"]) == {"A": 6, "C": 6, "D": 1}
        assert critical_qbar(q, ["A", "B", "C"]) == {"A": 1, "B": 2, "C": 1}

    def test_empty_circuit_rejected(self):
        with pytest.raises(ModelError):
            critical_qbar({"A": 1}, [])

    def test_single_task_circuit(self):
        # gcd of one value is itself → q̄ = 1: self-loops always pass
        assert critical_qbar({"A": 42}, ["A"]) == {"A": 1}


class TestOptimalityTest:
    def test_passes_when_k_multiple(self):
        ok, _ = optimality_test(
            {"A": 2, "B": 4}, {"A": 1, "B": 2}, ["A", "B"]
        )
        assert ok

    def test_fails_otherwise(self):
        ok, qbar = optimality_test(
            {"A": 6, "B": 12}, {"A": 1, "B": 1}, ["A", "B"]
        )
        assert not ok
        assert qbar == {"A": 1, "B": 2}

    def test_k_equal_q_always_passes(self):
        q = {"A": 6, "B": 9, "C": 4}
        for circuit in (["A"], ["A", "B"], ["A", "B", "C"]):
            ok, _ = optimality_test(q, dict(q), circuit)
            assert ok

    def test_non_circuit_tasks_ignored(self):
        # B's K is irrelevant when the circuit is {A}
        ok, _ = optimality_test({"A": 4, "B": 5}, {"A": 1, "B": 1}, ["A"])
        assert ok


class TestUpdateRule:
    def test_lcm_update(self):
        K = {"A": 2, "B": 3, "C": 1}
        qbar = {"A": 3, "B": 2}
        updated = update_periodicity(K, qbar)
        assert updated == {"A": 6, "B": 6, "C": 1}

    def test_update_preserves_divisibility_of_q(self):
        # K entries stay divisors of q when they start as divisors
        q = {"A": 12, "B": 18}
        K = {"A": 2, "B": 3}
        qbar = critical_qbar(q, ["A", "B"])
        updated = update_periodicity(K, qbar)
        for t in q:
            assert q[t] % updated[t] == 0

    def test_update_makes_test_pass(self):
        q = {"A": 6, "B": 12, "C": 6}
        K = {"A": 1, "B": 1, "C": 1}
        ok, qbar = optimality_test(q, K, ["A", "B", "C"])
        assert not ok
        K2 = update_periodicity(K, qbar)
        ok2, _ = optimality_test(q, K2, ["A", "B", "C"])
        assert ok2

    def test_original_k_untouched(self):
        K = {"A": 1}
        update_periodicity(K, {"A": 5})
        assert K == {"A": 1}
