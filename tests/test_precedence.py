"""Unit tests for the Theorem 2 machinery (Q, α, β, useful pairs).

Includes a brute-force oracle: a pair (p, p') should generate a
constraint precisely when the dependency between some executions of the
two phases is "tight" within the gcd-window the theorem describes; the
oracle instead checks the generated constraint set is *sound and
sufficient* by verifying schedules (see test_schedule/test_solver for the
schedule-level ground truth). Here we test the published formulas'
arithmetic identities and hand-computed cases.
"""

from fractions import Fraction

import pytest

from repro.analysis.precedence import (
    PrecedenceConstraint,
    buffer_constraints,
    constraint_window,
    graph_constraints,
    q_value,
    token_balance,
    useful_pairs,
)
from repro.model import Buffer, csdf
from repro.utils.rational import ceil_to_multiple, floor_to_multiple


@pytest.fixture
def figure1() -> Buffer:
    return Buffer("b", "t", "u", (2, 3, 1), (2, 5), 0)


class TestRounding:
    def test_floor_to_multiple(self):
        assert floor_to_multiple(7, 3) == 6
        assert floor_to_multiple(-1, 3) == -3
        assert floor_to_multiple(6, 3) == 6

    def test_ceil_to_multiple(self):
        assert ceil_to_multiple(7, 3) == 9
        assert ceil_to_multiple(-1, 3) == 0
        assert ceil_to_multiple(6, 3) == 6

    def test_bad_gamma(self):
        with pytest.raises(ValueError):
            floor_to_multiple(1, 0)
        with pytest.raises(ValueError):
            ceil_to_multiple(1, -2)


class TestTokenBalance:
    def test_paper_example(self, figure1):
        # §3.1: ⟨t'_2,1⟩ executable at completion of ⟨t_1,2⟩ (margin ≥ 0)
        assert token_balance(figure1, 1, 2, 2, 1) == 1

    def test_insufficient(self, figure1):
        # ⟨t'_2,1⟩ after only ⟨t_1,1⟩: 0 + 2 − 7 < 0
        assert token_balance(figure1, 1, 1, 2, 1) == -5


class TestQValue:
    def test_definition_expanded(self, figure1):
        # Q(p,p') = Oa⟨u_{p'},1⟩ − Ia⟨t_p,1⟩ − M0 + in(p)
        assert q_value(figure1, 1, 1) == 2 - 2 - 0 + 2
        assert q_value(figure1, 2, 2) == 7 - 5 - 0 + 3
        assert q_value(figure1, 3, 1) == 2 - 6 - 0 + 1


class TestSelfLoopWindows:
    """The hand-verified anchors from the module docstring."""

    def test_single_phase_self_loop(self):
        b = Buffer("loop", "t", "t", (1,), (1,), 1)
        alpha, beta = constraint_window(b, 1, 1)
        assert (alpha, beta) == (-1, -1)

    def test_two_phase_self_loop_windows(self):
        b = Buffer("loop", "t", "t", (1, 1), (1, 1), 1)
        # (1,2): chaining constraint, β = 0
        assert constraint_window(b, 1, 2) == (0, 0)
        # (2,1): wrap-around, β = −2 = −i_b
        assert constraint_window(b, 2, 1) == (-2, -2)
        # (1,1), (2,2): no constraint (α > β)
        a11, b11 = constraint_window(b, 1, 1)
        assert a11 > b11
        a22, b22 = constraint_window(b, 2, 2)
        assert a22 > b22

    def test_useful_pairs_of_self_loop(self):
        b = Buffer("loop", "t", "t", (1, 1), (1, 1), 1)
        pairs = {(p, pp): beta for p, pp, beta in useful_pairs(b)}
        assert pairs == {(1, 2): 0, (2, 1): -2}


class TestBufferConstraints:
    def test_duration_and_coefficient(self):
        g = csdf(
            {"t": [4, 7], "u": [1]},
            [("t", "u", [1, 1], [2], 0)],
        )
        q = {"t": 1, "u": 1}
        constraints = buffer_constraints(g, g.buffer("t_u_0"), q)
        assert constraints, "at least one useful pair expected"
        for c in constraints:
            assert c.duration == g.task("t").duration(c.source_phase)
            assert c.omega_coeff == Fraction(c.beta, q["t"] * 2)
            assert c.height == -c.omega_coeff

    def test_tokens_weaken_constraints(self):
        def betas(m0: int):
            b = Buffer("b", "t", "u", (1,), (1,), m0)
            return [beta for _, _, beta in useful_pairs(b)]

        # more initial tokens → smaller (more negative) β → looser arcs
        assert max(betas(0)) > max(betas(3))

    def test_graph_constraints_covers_all_buffers(self):
        g = csdf(
            {"t": [1, 1], "u": [1]},
            [("t", "u", [1, 1], [2], 0), ("u", "t", [2], [1, 1], 2)],
        )
        q = {"t": 1, "u": 1}
        names = {c.buffer_name for c in graph_constraints(g, q)}
        assert names == {"t_u_0", "u_t_0"}


class TestUsefulPairArrays:
    """The vectorized sweep must match the streaming reference exactly."""

    def test_figure1_equivalence(self):
        from repro.analysis.precedence import useful_pair_arrays

        b = Buffer("b", "t", "u", (2, 3, 1), (2, 5), 4)
        p0, pp0, betas = useful_pair_arrays(b)
        vectorized = {
            (int(p) + 1, int(pp) + 1, int(beta))
            for p, pp, beta in zip(p0, pp0, betas)
        }
        streamed = set(useful_pairs(b))
        assert vectorized == streamed

    def test_random_buffers_equivalence(self):
        import random

        from repro.analysis.precedence import useful_pair_arrays

        rng = random.Random(17)
        for _ in range(50):
            phi_p = rng.randint(1, 6)
            phi_c = rng.randint(1, 6)
            prod = [rng.randint(0, 5) for _ in range(phi_p)]
            cons = [rng.randint(0, 5) for _ in range(phi_c)]
            if sum(prod) == 0 or sum(cons) == 0:
                continue
            b = Buffer("b", "t", "u", tuple(prod), tuple(cons),
                       rng.randint(0, 12))
            p0, pp0, betas = useful_pair_arrays(b)
            vectorized = {
                (int(p) + 1, int(pp) + 1, int(beta))
                for p, pp, beta in zip(p0, pp0, betas)
            }
            assert vectorized == set(useful_pairs(b))

    def test_zero_rate_phases(self):
        from repro.analysis.precedence import useful_pair_arrays

        b = Buffer("b", "t", "u", (0, 3), (1, 0, 2), 1)
        p0, pp0, betas = useful_pair_arrays(b)
        vectorized = {
            (int(p) + 1, int(pp) + 1, int(beta))
            for p, pp, beta in zip(p0, pp0, betas)
        }
        assert vectorized == set(useful_pairs(b))


class TestUsefulPairsStreaming:
    def test_matches_window_filter(self):
        b = Buffer("b", "t", "u", (2, 3, 1), (2, 5), 4)
        streamed = {(p, pp, beta) for p, pp, beta in useful_pairs(b)}
        direct = set()
        for p in (1, 2, 3):
            for pp in (1, 2):
                alpha, beta = constraint_window(b, p, pp)
                if alpha <= beta:
                    direct.add((p, pp, beta))
        assert streamed == direct
