"""Unit tests for the three baseline methods."""

from fractions import Fraction

import pytest

from repro.baselines import (
    expand_sdf_to_hsdf,
    throughput_expansion,
    throughput_periodic,
    throughput_symbolic,
)
from repro.exceptions import BudgetExceededError, DeadlockError, ModelError
from repro.generators.paper import figure2_graph
from repro.kperiodic import throughput_kiter
from repro.model import csdf, hsdf, sdf


class TestPeriodic:
    def test_periodic_upper_bounds_period(self, multirate_cycle):
        exact = throughput_kiter(multirate_cycle).period
        periodic = throughput_periodic(multirate_cycle)
        assert periodic.feasible
        assert periodic.period >= exact

    def test_figure2_pessimism(self):
        # Ω_periodic = 18 > Ω* = 13 on the running example
        r = throughput_periodic(figure2_graph())
        assert r.period == 18

    def test_infeasible_reported_not_raised(self, deadlocked_cycle):
        r = throughput_periodic(deadlocked_cycle)
        assert not r.feasible
        assert r.throughput is None

    def test_schedule_extraction(self, two_task_cycle):
        r = throughput_periodic(two_task_cycle, build_schedule=True)
        assert r.schedule is not None
        r.schedule.verify(two_task_cycle, iterations=3)


class TestSymbolic:
    def test_exact_on_figure2(self):
        assert throughput_symbolic(figure2_graph()).period == 13

    def test_scc_decomposition_on_dag(self):
        # two independent slow/fast SCCs bridged by a DAG edge: the
        # slower one binds.
        g = sdf(
            {"A": 5, "B": 5, "C": 1, "D": 1},
            [
                ("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1),   # period 10
                ("B", "C", 1, 1, 0),                          # bridge
                ("C", "D", 1, 1, 0), ("D", "C", 1, 1, 1),   # period 2
            ],
        )
        r = throughput_symbolic(g)
        assert r.period == 10
        assert r.scc_count == 2  # {A,B} and {C,D}

    def test_deadlock_detected(self, deadlocked_cycle):
        with pytest.raises(DeadlockError):
            throughput_symbolic(deadlocked_cycle)

    def test_state_budget(self):
        g = sdf({"A": 1, "B": 1},
                [("A", "B", 97, 89, 0), ("B", "A", 89, 97, 97 * 89)])
        with pytest.raises(BudgetExceededError):
            throughput_symbolic(g, max_states=10)

    def test_zero_duration_source(self):
        g = sdf({"S": 0, "A": 2}, [("S", "A", 1, 1, 0)])
        assert throughput_symbolic(g).period == 2


class TestExpansion:
    def test_rejects_csdf(self, csdf_pipeline):
        with pytest.raises(ModelError):
            throughput_expansion(csdf_pipeline)

    def test_exact_on_sdf(self, multirate_cycle):
        exact = throughput_kiter(multirate_cycle).period
        assert throughput_expansion(multirate_cycle).period == exact

    def test_hsdf_sizes(self, multirate_cycle):
        full, _ = expand_sdf_to_hsdf(multirate_cycle, reduced=False)
        red, _ = expand_sdf_to_hsdf(multirate_cycle, reduced=True)
        assert full.node_count == red.node_count == 5  # q = [3, 2]
        assert red.arc_count <= full.arc_count

    def test_reduction_preserves_period(self):
        for seed in range(8):
            from repro.generators.random_sdf import random_connected_sdf

            g = random_connected_sdf(seed + 40, tasks=4, max_q=4)
            full = throughput_expansion(g, reduced=False).period
            red = throughput_expansion(g, reduced=True).period
            assert full == red

    def test_hsdf_expansion_is_identity_sized(self):
        g = hsdf({"A": 1, "B": 1}, [("A", "B", 0), ("B", "A", 2)])
        expanded, index = expand_sdf_to_hsdf(g)
        assert expanded.node_count == 2
        assert ("A", 1) in index and ("B", 1) in index

    def test_initial_tokens_delay_arcs(self):
        # M0 covering a full iteration pushes the dependency one
        # iteration back (delay-1 arc), leaving throughput limited only
        # by utilization.
        g = sdf({"A": 2, "B": 3},
                [("A", "B", 1, 1, 1), ("B", "A", 1, 1, 0)])
        assert throughput_expansion(g).period == throughput_kiter(g).period


class TestThreeWayAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_sdf_graphs(self, seed):
        from repro.generators.random_sdf import random_connected_sdf

        g = random_connected_sdf(seed + 300, tasks=5, max_q=4,
                                 duration_range=(1, 9))
        kiter = throughput_kiter(g).period
        assert throughput_expansion(g).period == kiter
        assert throughput_symbolic(g).period == kiter
        periodic = throughput_periodic(g)
        if periodic.feasible:
            assert periodic.period >= kiter
