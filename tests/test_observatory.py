"""The performance observatory: profiler, slowlog, history, report.

Five layers of coverage:

* **Quantile math and merge edges** — exact rolling-quantile values,
  empty/unknown/mismatched snapshot merging, and the snapshot-identity
  dedupe that fixes the in-process ``/metrics`` double-count.
* **Trace drops** — a full ring buffer counts evictions instead of
  losing them silently, and summaries surface the count.
* **Sampling profiler** — span attribution, the JSONL envelope
  round-trip, the profile-without-tracing path, and the ≤5 % overhead
  guard with bit-identical λ* on the golden corpus.
* **Slowlog** — outlier capture against the rolling threshold, the
  entry bound, and `repro replay` reproducing captured λ* exactly
  (nonzero exit when a tampered capture diverges).
* **Bench history + report** — emit_bench appends trajectories,
  `repro bench-report` flags a synthetic 30 % regression while passing
  on honest numbers, and the HTML ops report renders locally and from
  a live coordinator's ``GET /report``.
"""

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.cli import main
from repro.model import sdf
from repro.obs import trace as trace_mod
from repro.obs.bench import emit_bench
from repro.obs.history import (
    append_history,
    bench_report,
    history_path,
    load_history,
    metric_direction,
    render_bench_report,
)
from repro.obs.metrics import (
    METRICS,
    REGISTRY,
    MetricsRegistry,
    SNAPSHOT_IDENTITY_KEY,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.profiler import (
    configure_profiling,
    profiling_enabled,
    take_profile,
    write_profile,
)
from repro.obs.report import build_report
from repro.obs.slowlog import (
    RollingQuantile,
    configure_slowlog,
    observe_solve,
    replay_entry,
    slowlog_entries,
)
from repro.obs.summary import load_profiles, render_profile, render_summary
from repro.obs.trace import collect_events, configure_tracing, span

from tests.conftest import golden_corpus_cases

DATA = Path(__file__).parent / "data"
CASES = golden_corpus_cases()


def ring(delay, name):
    return sdf(
        {"A": 1, "B": 1},
        [("A", "B", 1, 1, 0), ("B", "A", 1, 1, delay)],
        name=name,
    )


def ring_payload(delay=1, **extra):
    payload = {
        "graph": ring(delay, f"ring{delay}").to_dict(),
        "engine": "ratio-iteration",
        "digest": f"digest-{delay}",
    }
    payload.update(extra)
    return payload


@contextmanager
def _profiling(path, interval=0.001):
    prior = os.environ.get("REPRO_PROFILE")
    configure_profiling(str(path) if path else None, interval=interval)
    try:
        yield
    finally:
        configure_profiling(None)
        take_profile(clear=True)
        if prior is not None:  # pragma: no cover - suite-level profiling
            os.environ["REPRO_PROFILE"] = prior


@contextmanager
def _slowlog(root, **options):
    configure_slowlog(str(root) if root else None, **options)
    try:
        yield
    finally:
        configure_slowlog(None)


# ----------------------------------------------------------------------
# Rolling quantile: exact math
# ----------------------------------------------------------------------
def test_rolling_quantile_exact_interpolation():
    rq = RollingQuantile(window=8)
    assert rq.quantile(0.5) is None
    for value in (1.0, 2.0, 3.0, 4.0):
        rq.add(value)
    assert rq.quantile(0.0) == 1.0
    assert rq.quantile(1.0) == 4.0
    assert rq.quantile(0.5) == pytest.approx(2.5)
    assert rq.quantile(0.25) == pytest.approx(1.75)
    assert rq.quantile(0.99) == pytest.approx(3.97)


def test_rolling_quantile_window_eviction_and_validation():
    rq = RollingQuantile(window=3)
    for value in (10.0, 1.0, 2.0, 3.0):
        rq.add(value)  # the 10.0 falls out of the window
    assert len(rq) == 3
    assert rq.quantile(1.0) == 3.0
    assert rq.quantile(0.5) == 2.0
    with pytest.raises(ValueError):
        rq.quantile(1.5)
    with pytest.raises(ValueError):
        RollingQuantile(window=0)


# ----------------------------------------------------------------------
# merge_snapshots / render_prometheus edge cases
# ----------------------------------------------------------------------
def test_merge_empty_snapshots():
    assert merge_snapshots([]) == {}
    assert merge_snapshots([{}, {}]) == {}
    reg = MetricsRegistry()
    # an untouched registry still stamps its identity, nothing else
    snap = reg.snapshot()
    assert set(snap) == {SNAPSHOT_IDENTITY_KEY}
    assert merge_snapshots([snap]) == {}


def test_merge_unknown_family_from_newer_worker():
    newer = {
        "repro_future_widgets_total": {
            "type": "counter", "samples": [[{"kind": "x"}, 7]],
        },
    }
    merged = merge_snapshots([newer, newer])
    assert merged["repro_future_widgets_total"]["samples"] == [
        [{"kind": "x"}, 14],
    ]
    text = render_prometheus(merged)
    assert "# TYPE repro_future_widgets_total counter" in text
    assert 'repro_future_widgets_total{kind="x"} 14' in text


def test_merge_histogram_bucket_length_mismatch():
    short = {"repro_solver_seconds": {
        "type": "histogram",
        "samples": [[{}, {"buckets": [1, 2], "sum": 0.5, "count": 3}]],
    }}
    longer = {"repro_solver_seconds": {
        "type": "histogram",
        "samples": [[{}, {"buckets": [1, 1, 4], "sum": 1.0, "count": 6}]],
    }}
    merged = merge_snapshots([short, longer])
    value = merged["repro_solver_seconds"]["samples"][0][1]
    assert value["buckets"] == [2, 3, 4]
    assert value["sum"] == pytest.approx(1.5)
    assert value["count"] == 9


def test_merge_dedupes_same_registry_last_ship_wins():
    reg = MetricsRegistry()
    cell = reg.counter("repro_worker_acks_total").labels()
    cell.inc(3)
    stale = reg.snapshot()
    cell.inc(2)
    live = reg.snapshot()
    other = MetricsRegistry()
    other.counter("repro_worker_acks_total").labels().inc(10)
    merged = merge_snapshots([stale, other.snapshot(), live])
    samples = dict(
        (tuple(sorted(labels.items())), value)
        for labels, value in merged["repro_worker_acks_total"]["samples"]
    )
    # stale ship of the same registry dedupes away; distinct one sums
    assert samples[()] == 15


def test_snapshot_identity_distinct_per_instance_and_json_safe():
    a, b = MetricsRegistry(), MetricsRegistry()
    ida = a.snapshot()[SNAPSHOT_IDENTITY_KEY]
    idb = b.snapshot()[SNAPSHOT_IDENTITY_KEY]
    assert ida != idb
    assert ida == a.snapshot()[SNAPSHOT_IDENTITY_KEY]  # stable
    json.dumps(a.snapshot())  # heartbeat-shippable


def test_coordinator_metrics_dedupe_own_registry_exact_value():
    """The PR-7 caveat, closed: an in-process worker shipping the
    global registry must not double the coordinator's scrape."""
    from repro.distributed.server import Coordinator

    label = "observatory-dedupe-test"
    cell = REGISTRY.counter(
        "repro_kiter_escalations_total").labels(kind=label)
    base = cell.value
    cell.inc(7)
    coordinator = Coordinator()
    # the worker ships a snapshot of the SAME global registry twice
    coordinator._store_worker_metrics("w0", REGISTRY.snapshot())
    coordinator._store_worker_metrics("w1", REGISTRY.snapshot())
    text = coordinator.metrics_text()
    expected = int(base + 7)
    assert (f'repro_kiter_escalations_total{{kind="{label}"}} '
            f'{expected}') in text


# ----------------------------------------------------------------------
# Trace ring-buffer drops
# ----------------------------------------------------------------------
def test_ring_buffer_counts_drops(tmp_path):
    tracer = trace_mod._Tracer(buffer_size=4)
    tracer.configure(str(tmp_path / "t.jsonl"))
    dropped_before = REGISTRY.value("repro_trace_dropped_total")
    for index in range(7):
        tracer.emit({"trace_id": "t", "span_id": str(index),
                     "name": "x", "dur": 0.0})
    assert tracer.dropped == 3
    assert len(tracer.buffer) == 4
    assert REGISTRY.value("repro_trace_dropped_total") \
        == dropped_before + 3
    # the file still has every event — only the ring buffer evicts
    lines = (tmp_path / "t.jsonl").read_text().strip().splitlines()
    assert len(lines) == 7
    tracer.configure(None)


def test_render_summary_surfaces_drops():
    events = [{"trace_id": "t", "span_id": "s", "parent_id": None,
               "name": "job.solve", "t0": 0.0, "wall": 0.0,
               "dur": 0.01, "attrs": {}}]
    text = render_summary(events, dropped=5)
    assert "dropped 5 events" in text
    assert "dropped" not in render_summary(events)
    assert "dropped 2" in render_summary([], dropped=2)


def test_coordinator_stats_expose_trace_dropped():
    from repro.distributed.server import Coordinator

    stats = Coordinator().stats()
    assert "trace_dropped" in stats
    assert stats["trace_dropped"] == trace_mod.trace_dropped_total()


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
def _spin(seconds):
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(index * index for index in range(200))
    return total


def test_profiler_attributes_samples_to_spans(tmp_path):
    with _profiling(tmp_path / "p.jsonl"):
        assert profiling_enabled()
        with span("job.solve", profile=True):
            _spin(0.15)
        envelope = take_profile()
    assert envelope["schema"] == "repro-profile/1"
    spans = envelope["spans"]
    assert "job.solve" in spans
    assert spans["job.solve"]["samples"] > 0
    frames = spans["job.solve"]["frames"]
    assert frames, "no frames attributed"
    assert all(len(row) == 3 for row in frames)
    assert REGISTRY.value(
        "repro_profile_samples_total", span="job.solve") > 0


def test_profiler_envelope_roundtrip_and_render(tmp_path):
    path = tmp_path / "p.jsonl"
    with _profiling(path):
        with span("job.solve", profile=True):
            _spin(0.1)
        assert write_profile() == str(path)
    envelopes = load_profiles(path)
    assert len(envelopes) == 1
    text = render_profile(envelopes)
    assert "span job.solve" in text
    assert "samples" in text
    # a second write after reset appends nothing (already flushed)
    assert write_profile(str(path)) is None


def test_profile_without_tracing_emits_no_events(tmp_path):
    collect_events(clear=True)
    with _profiling(tmp_path / "p.jsonl"):
        assert not trace_mod.tracing_enabled()
        opened = span("job.solve", profile=True)
        assert isinstance(opened, trace_mod._ProfileOnlySpan)
        with opened:
            _spin(0.05)
    assert collect_events() == []  # profiled, never traced


def test_unprofiled_spans_stay_noop_when_disabled():
    assert span("job.solve", profile=True) is trace_mod._NOOP
    assert span("job.solve") is trace_mod._NOOP


@pytest.mark.skipif(not CASES, reason="golden corpus not present")
def test_profiling_overhead_within_five_percent(tmp_path):
    from repro.io import load_graph
    from repro.service import ThroughputService

    graphs = [load_graph(DATA / name) for name, _ in CASES]

    def batch(profile_file):
        if profile_file:
            configure_profiling(str(profile_file), interval=0.005)
        try:
            service = ThroughputService()  # fresh → cold cache each run
            start = time.perf_counter()
            outcomes = service.submit_many(graphs)
            elapsed = time.perf_counter() - start
        finally:
            if profile_file:
                write_profile()
                configure_profiling(None)
        digest = json.dumps(
            [[o.status, str(o.period)] for o in outcomes])
        return elapsed, digest

    batch(None)  # warm process-level state once (imports, JITed paths)
    plain, profiled = [], []
    reference = None
    for round_ in range(3):  # interleaved, best-of-3 damps noise
        off_s, off_digest = batch(None)
        on_s, on_digest = batch(tmp_path / f"p{round_}.jsonl")
        assert on_digest == off_digest  # bit-identical λ* outcomes
        reference = reference or off_digest
        assert off_digest == reference
        plain.append(off_s)
        profiled.append(on_s)

    assert min(profiled) <= min(plain) * 1.05 + 0.05, (
        f"profiling overhead too high: {profiled} vs {plain}"
    )


# ----------------------------------------------------------------------
# Slowlog capture + replay
# ----------------------------------------------------------------------
def _capture_one(root, **options):
    """Warm the tracker with fast observations, then inject one slow."""
    from repro.kperiodic.kiter import solve_kiter_payload

    defaults = dict(warmup=3, min_seconds=0.0, factor=2.0, window=8,
                    max_entries=5)
    defaults.update(options)
    payload = ring_payload(1)
    with _slowlog(root, **defaults):
        outcome = solve_kiter_payload(dict(payload))
        for _ in range(4):
            observe_solve(0.001, payload, outcome)
        observe_solve(5.0, payload, outcome)
        entries = slowlog_entries()
    return entries


def test_slowlog_captures_outliers(tmp_path):
    entries_before = REGISTRY.value("repro_slowlog_entries_total")
    entries = _capture_one(tmp_path / "slowlog")
    assert len(entries) == 1
    entry = json.loads(entries[0].read_text())
    assert entry["schema"] == "repro-slowlog/1"
    assert entry["seconds"] == 5.0
    assert entry["seconds"] > entry["threshold"]
    assert entry["payload"]["digest"] == "digest-1"
    assert "trace" not in entry["payload"]
    assert entry["outcome"]["status"] == "OK"
    assert SNAPSHOT_IDENTITY_KEY in entry["metrics"]
    assert REGISTRY.value("repro_slowlog_entries_total") \
        == entries_before + 1


def test_slowlog_respects_warmup_and_bound(tmp_path):
    from repro.kperiodic.kiter import solve_kiter_payload

    root = tmp_path / "slowlog"
    payload = ring_payload(2)
    with _slowlog(root, warmup=100, min_seconds=0.0, window=8):
        outcome = solve_kiter_payload(dict(payload))
        observe_solve(10.0, payload, outcome)  # tracker not warm yet
        assert slowlog_entries() == []
    with _slowlog(root, warmup=2, min_seconds=0.0, factor=1.5,
                  window=16, max_entries=3):
        for _ in range(3):
            observe_solve(0.001, payload, outcome)
        # each outlier feeds the tracker, so escalate past the new p99
        for seconds in (5.0, 50.0, 500.0, 5000.0):
            observe_solve(seconds, payload, outcome)
        assert len(slowlog_entries()) == 3  # four captures, bound of 3


def test_slowlog_disabled_is_a_noop(tmp_path):
    assert observe_solve(100.0, ring_payload(1), {"status": "OK"}) is None
    assert slowlog_entries(tmp_path / "nowhere") == []


def test_replay_reproduces_captured_lambda_exactly(tmp_path, capsys):
    entries = _capture_one(tmp_path / "slowlog")
    report = replay_entry(entries[0])
    assert report["match"]
    assert report["captured"]["period"] == [2, 1]
    assert report["replayed"]["period"] == [2, 1]
    assert report["replayed"]["status"] == "OK"
    # the replay traced itself even with tracing globally off
    names = {row["name"] for row in report["replayed_self_time"]}
    assert "job.solve" in names
    assert not trace_mod.tracing_enabled()
    # the CLI wrapper: exit 0 and a MATCH verdict
    assert main(["replay", str(entries[0])]) == 0
    out = capsys.readouterr().out
    assert "replay: MATCH" in out
    assert REGISTRY.value("repro_slowlog_replays_total",
                          outcome="match") >= 1


def test_replay_flags_tampered_capture(tmp_path, capsys):
    entries = _capture_one(tmp_path / "slowlog")
    entry = json.loads(entries[0].read_text())
    entry["outcome"]["period"] = [3, 1]  # tamper: λ* cannot match
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(entry))
    assert main(["replay", str(tampered), "--no-trace"]) == 1
    assert "replay: MISMATCH" in capsys.readouterr().out


def test_replay_rejects_non_slowlog_files(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "nope"}))
    assert main(["replay", str(bogus)]) == 2  # ReproError exit


# ----------------------------------------------------------------------
# Bench history + bench-report
# ----------------------------------------------------------------------
def test_emit_bench_appends_history(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
    emit_bench("observatory", [
        {"name": "wall_s", "value": 1.0, "unit": "s"},
        {"name": "speedup", "value": 2.0, "unit": "x"},
        {"name": "label", "value": "text", "unit": ""},  # non-numeric
    ])
    rows = load_history(history_path())
    assert len(rows) == 2  # the text row cannot trend
    assert {row["name"] for row in rows} == {"wall_s", "speedup"}
    assert all(row["bench"] == "observatory" for row in rows)
    assert all("ts" in row and "commit" in row for row in rows)


def test_history_env_disable_and_redirect(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_HISTORY", "0")
    assert history_path() is None
    assert append_history({"metrics": [
        {"name": "x", "value": 1.0, "unit": "s"}]}) is None
    target = tmp_path / "custom.jsonl"
    monkeypatch.setenv("REPRO_BENCH_HISTORY", str(target))
    assert history_path() == target
    append_history({"bench": "b", "metrics": [
        {"name": "x", "value": 1.0, "unit": "s"}]})
    assert len(load_history(target)) == 1


def test_metric_direction_inference():
    assert metric_direction({"unit": "s"}) == "lower"
    assert metric_direction({"unit": "ms", "name": "lat"}) == "lower"
    assert metric_direction({"unit": "", "name": "cold_wall_seconds"}) \
        == "lower"
    assert metric_direction({"unit": "x", "name": "speedup"}) == "higher"
    assert metric_direction({"unit": "s", "direction": "higher"}) \
        == "higher"


def test_bench_report_flags_synthetic_regression(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
    emit_bench("gate", [{"name": "wall_s", "value": 1.0, "unit": "s"},
                        {"name": "speedup", "value": 3.0, "unit": "x"}])
    assert main(["bench-report"]) == 0  # current == best: passes

    # a 30 % regression on the time metric must trip the gate
    emit_bench("gate", [{"name": "wall_s", "value": 1.35, "unit": "s"}])
    assert main(["bench-report"]) == 1
    assert main(["bench-report", "--informational"]) == 0
    assert main(["bench-report", "--threshold", "50"]) == 0

    # an improvement (and a higher-better regression) behave by direction
    emit_bench("gate", [{"name": "wall_s", "value": 0.5, "unit": "s"},
                        {"name": "speedup", "value": 1.5, "unit": "x"}])
    rows = load_history(history_path())
    report = bench_report(sorted(Path(".").glob("BENCH_*.json")), rows)
    by_name = {row["name"]: row for row in report}
    assert not by_name["wall_s"]["regressed"]  # 0.5s beats best 1.0s
    assert by_name["speedup"]["regressed"]  # 1.5x vs best 3.0x = -50 %
    text = render_bench_report(report)
    assert "REGRESSED" in text


def test_bench_report_skips_foreign_json(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "BENCH_pytest.json").write_text(
        json.dumps({"machine_info": {}, "benchmarks": []}))
    assert main(["bench-report"]) == 0  # not repro-bench/1 → ignored
    assert "no repro-bench/1 files" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The ops report
# ----------------------------------------------------------------------
def test_build_report_renders_all_sections():
    events = [{"trace_id": "t", "span_id": "s", "parent_id": None,
               "name": "job.solve", "t0": 0.0, "wall": 1.0,
               "dur": 0.25, "attrs": {"engine": "hybrid"}}]
    history = [
        {"bench": "gate", "name": "wall_s", "value": v, "unit": "s",
         "commit": "", "ts": float(index)}
        for index, v in enumerate((1.0, 0.9, 1.1))
    ]
    slow = [{"captured_at": 1754650000.0, "seconds": 1.5,
             "threshold": 0.2, "outcome": {"status": "OK"},
             "payload": {"digest": "abcdef123456"}, "trace": events}]
    html = build_report(snapshot=REGISTRY.snapshot(), events=events,
                        slowlog_entries=slow, history_rows=history,
                        dropped=3)
    for marker in ("Metric families", "Spans", "Slowlog",
                   "Bench trajectories", "job.solve", "abcdef123456",
                   "<svg", "dropped 3"):
        assert marker in html, marker
    assert "__process__" not in html.replace(
        str(REGISTRY.snapshot()[SNAPSHOT_IDENTITY_KEY]), "")


def test_build_report_empty_observatory_is_valid():
    html = build_report()
    assert "no metrics recorded" in html
    assert "no trace events" in html
    assert "no slow-solve captures" in html
    assert "no bench history recorded" in html


def test_cli_report_writes_html(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "report.html"
    assert main(["report", "-o", str(out)]) == 0
    html = out.read_text()
    assert html.startswith("<!doctype html>")
    assert "Metric families" in html


def test_coordinator_serves_report(tmp_path):
    from repro.distributed import CoordinatorClient, CoordinatorServer
    from repro.distributed.client import http_text
    from repro.service import ThroughputService

    with CoordinatorServer() as server:
        status, body = http_text(f"{server.url}/report")
        assert status == 200
        assert body.startswith("<!doctype html>")
        assert "repro coordinator report" in body
        # the CLI fetch path writes the served page verbatim
        out = tmp_path / "coord.html"
        assert main(["report", "--coordinator", server.url,
                     "-o", str(out)]) == 0
        assert out.read_text() == body
