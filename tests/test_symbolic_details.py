"""Detailed tests of the symbolic-execution machinery."""

from fractions import Fraction

import pytest

from repro.analysis import repetition_vector
from repro.baselines.symbolic import SymbolicResult, throughput_symbolic
from repro.model import csdf, sdf
from repro.scheduling.asap import AsapSimulator


class TestRecurrenceDetails:
    def test_cycle_time_is_period_multiple(self, multirate_cycle):
        sim = AsapSimulator(multirate_cycle)
        q = repetition_vector(multirate_cycle)
        result = sim.run_until_recurrence(q)
        # Δτ = r·Ω for the whole number of iterations r in the cycle
        assert result.cycle_time % result.period == 0

    def test_states_stored_positive(self, two_task_cycle):
        sim = AsapSimulator(two_task_cycle)
        result = sim.run_until_recurrence(
            repetition_vector(two_task_cycle)
        )
        assert result.states_stored >= 1
        assert result.throughput == Fraction(1, 2)

    def test_transient_skipped(self):
        # heavy initial marking far from steady state: transient > 0
        g = sdf({"A": 3, "B": 5},
                [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 7)])
        sim = AsapSimulator(g)
        result = sim.run_until_recurrence(repetition_vector(g))
        # with 7 tokens of slack B's utilization binds (Ω = 5)
        from repro.kperiodic import throughput_kiter

        assert result.period == throughput_kiter(g).period == 5


class TestSymbolicResult:
    def test_zero_period_throughput(self):
        r = SymbolicResult(period=Fraction(0), states_explored=0,
                           scc_count=1)
        assert r.throughput is None

    def test_multi_scc_counts(self):
        g = sdf(
            {"A": 1, "B": 1, "C": 2},
            [("A", "B", 1, 1, 1), ("B", "A", 1, 1, 1),
             ("B", "C", 1, 1, 0)],
        )
        r = throughput_symbolic(g)
        assert r.scc_count == 2  # {A,B} and {C}
        assert r.period == 2  # C alone: q_C=1, Σd=2; cycle: 2/2=...
        from repro.kperiodic import throughput_kiter

        assert r.period == throughput_kiter(g).period


class TestCsdfPhaseStates:
    def test_phase_cursor_in_state(self):
        """Two configurations differing only in phase cursor must be
        distinct states (otherwise periods come out wrong)."""
        g = csdf(
            {"A": [1, 3]},
            [("A", "A", [1, 1], [1, 1], 1)],
        )
        r = throughput_symbolic(g)
        assert r.period == 4  # full iteration duration

    def test_zero_phase_interleaving_graph(self):
        g = csdf(
            {"A": [1, 1], "B": [1]},
            [("A", "B", [1, 0], [1], 0), ("B", "A", [1], [0, 1], 0)],
        )
        from repro.kperiodic import throughput_kiter

        assert throughput_symbolic(g).period == \
            throughput_kiter(g).period
