"""Unit tests for throughput sensitivity analysis."""

from fractions import Fraction

import pytest

from repro.analysis.sensitivity import (
    critical_tasks,
    duration_sensitivity,
)
from repro.exceptions import ModelError
from repro.generators.paper import figure2_graph
from repro.kperiodic import throughput_kiter
from repro.model import sdf


class TestCriticalTasks:
    def test_bottleneck_identified(self):
        g = sdf({"A": 8, "B": 2},
                [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 2)])
        # with 2 tokens the cycle is slack; A's utilization binds
        assert critical_tasks(g) == {"A"}

    def test_cycle_critical(self, two_task_cycle):
        assert critical_tasks(two_task_cycle) == {"A", "B"}


class TestDurationSensitivity:
    def test_bottleneck_has_largest_gain(self):
        g = sdf({"A": 8, "B": 2},
                [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
        s = duration_sensitivity(g)
        assert s["A"].speedup_gain > s["B"].speedup_gain
        assert s["A"].is_critical

    def test_off_circuit_task_is_insensitive(self):
        # C hangs off the side with a tiny duration: never critical
        g = sdf(
            {"A": 9, "B": 9, "C": 1},
            [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1),
             ("B", "C", 1, 1, 0)],
        )
        s = duration_sensitivity(g, tasks=["C"])
        assert s["C"].speedup_gain == 0
        # doubling C (1 → 2) still stays below the cycle bound of 18
        assert not s["C"].is_critical

    def test_slowdown_monotonicity(self):
        g = figure2_graph()
        s = duration_sensitivity(g)
        for sensitivity in s.values():
            assert sensitivity.period_when_faster <= \
                sensitivity.base_period <= sensitivity.period_when_slower

    def test_some_figure2_task_is_critical(self):
        s = duration_sensitivity(figure2_graph())
        assert any(v.is_critical for v in s.values())

    def test_task_selection(self, two_task_cycle):
        s = duration_sensitivity(two_task_cycle, tasks=["A"])
        assert set(s) == {"A"}

    def test_unknown_task_rejected(self, two_task_cycle):
        with pytest.raises(ModelError):
            duration_sensitivity(two_task_cycle, tasks=["nope"])

    def test_base_period_consistent(self, multirate_cycle):
        s = duration_sensitivity(multirate_cycle)
        base = throughput_kiter(multirate_cycle).period
        assert all(v.base_period == base for v in s.values())
