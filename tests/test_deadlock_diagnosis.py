"""Unit tests for deadlock diagnosis."""

import pytest

from repro.analysis.deadlock import explain_deadlock
from repro.buffers import bound_all_buffers
from repro.model import Buffer, CsdfGraph, Task, csdf, sdf


class TestLiveGraphs:
    def test_live_returns_none(self, two_task_cycle):
        assert explain_deadlock(two_task_cycle) is None

    def test_dag_returns_none(self):
        g = sdf({"A": 1, "B": 1}, [("A", "B", 3, 2, 0)])
        assert explain_deadlock(g) is None


class TestCircularWaits:
    def test_two_task_circle(self, deadlocked_cycle):
        diag = explain_deadlock(deadlocked_cycle)
        assert diag is not None
        assert len(diag.cycle) == 2
        tasks = {s.task for s in diag.cycle}
        assert tasks == {"A", "B"}
        assert all(s.missing == 1 for s in diag.cycle)

    def test_three_task_circle(self):
        g = sdf(
            {"A": 1, "B": 1, "C": 1},
            [("A", "B", 1, 1, 0), ("B", "C", 1, 1, 0), ("C", "A", 1, 1, 0)],
        )
        diag = explain_deadlock(g)
        assert {s.task for s in diag.cycle} == {"A", "B", "C"}

    def test_partial_progress_reported(self):
        # tokens allow some firings before the cycle starves
        g = sdf(
            {"A": 1, "B": 1},
            [("A", "B", 2, 3, 2), ("B", "A", 3, 2, 1)],
        )
        diag = explain_deadlock(g)
        if diag is not None:
            assert 0.0 <= diag.completed_fraction < 1.0

    def test_describe_mentions_cycle(self, deadlocked_cycle):
        text = explain_deadlock(deadlocked_cycle).describe()
        assert "waits for" in text
        assert "A" in text and "B" in text


class TestCapacityInducedDeadlock:
    def test_undersized_buffer_diagnosed(self):
        # producer needs 2 slots, capacity hand-built at 1
        g = CsdfGraph("tight")
        g.add_task(Task("A", (1,)))
        g.add_task(Task("B", (1,)))
        g.add_buffer(Buffer("ab", "A", "B", (2,), (2,), 0))
        g.add_buffer(Buffer("space", "B", "A", (2,), (2,), 1))
        diag = explain_deadlock(g)
        assert diag is not None
        starved_buffers = {s.buffer for s in diag.starvations}
        assert "space" in starved_buffers or "ab" in starved_buffers

    def test_self_loop_starvation(self):
        g = csdf({"A": [1, 1]}, [("A", "A", [1, 1], [2, 0], 1)])
        diag = explain_deadlock(g)
        assert diag is not None
        assert diag.cycle[0].task == "A"
        assert diag.cycle[0].missing == 1


class TestAgreementWithIsLive:
    @pytest.mark.parametrize("seed", range(10))
    def test_diagnosis_iff_not_live(self, seed):
        from repro.analysis import is_live
        from tests.conftest import make_random_live_graph

        g = make_random_live_graph(seed)
        assert (explain_deadlock(g) is None) == is_live(g)
