"""Equivalence tests: numpy Jacobi sweep vs. queue-based cycle finder.

The two positive-cycle engines must agree on *existence* for every
input (the concrete cycle may differ — both are verified before being
returned). Hypothesis drives random graphs and weights through both.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mcrp.bellman import (
    ScaledGraph,
    _find_cycle_numpy,
    _FALLBACK,
    _find_positive_weight_cycle_python,
    find_positive_weight_cycle,
)
from repro.mcrp.graph import BiValuedGraph


def random_instance(seed: int, n_lo=2, n_hi=40):
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    g = BiValuedGraph(n)
    for _ in range(rng.randint(n, 4 * n)):
        g.add_arc(rng.randrange(n), rng.randrange(n),
                  rng.randint(0, 9), Fraction(rng.randint(-3, 9)))
    scaled = ScaledGraph(g)
    weights = [
        rng.randint(-20, 20) for _ in range(g.arc_count)
    ]
    return scaled, weights


def cycle_weight(cycle, weights):
    return sum(weights[a] for a in cycle)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10**9))
def test_engines_agree_on_existence(seed):
    scaled, weights = random_instance(seed)
    python_cycle = _find_positive_weight_cycle_python(scaled, weights)
    numpy_out = _find_cycle_numpy(scaled, weights)
    if numpy_out is _FALLBACK:
        return  # fast path declined; dispatcher would use python
    if python_cycle is None:
        assert numpy_out is None
    else:
        assert numpy_out is not None
        assert cycle_weight(numpy_out, weights) > 0
        assert cycle_weight(python_cycle, weights) > 0


@pytest.mark.parametrize("seed", range(20))
def test_returned_cycles_are_closed(seed):
    scaled, weights = random_instance(seed, n_lo=64, n_hi=100)
    cycle = find_positive_weight_cycle(scaled, weights)
    if cycle is None:
        return
    # closed walk over real arcs
    for a, b in zip(cycle, cycle[1:]):
        assert scaled.arc_dst[a] == scaled.arc_src[b]
    assert scaled.arc_dst[cycle[-1]] == scaled.arc_src[cycle[0]]
    assert cycle_weight(cycle, weights) > 0


def test_numpy_path_declines_on_overflow_risk():
    g = BiValuedGraph(70)
    for i in range(70):
        g.add_arc(i, (i + 1) % 70, 1, 1)
    scaled = ScaledGraph(g)
    huge = [1 << 61] * g.arc_count
    assert _find_cycle_numpy(scaled, huge) is _FALLBACK
    # the dispatcher still answers correctly via the python engine
    assert find_positive_weight_cycle(scaled, huge) is not None


def test_empty_graph():
    g = BiValuedGraph(0)
    scaled = ScaledGraph(g)
    assert find_positive_weight_cycle(scaled, []) is None
