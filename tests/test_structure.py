"""Unit tests for SCC / connectivity analysis."""

from repro.analysis import (
    is_strongly_connected,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.model import CsdfGraph, hsdf, sdf


class TestScc:
    def test_single_cycle(self):
        g = hsdf({"A": 1, "B": 1}, [("A", "B", 0), ("B", "A", 1)])
        assert strongly_connected_components(g) == [["A", "B"]]
        assert is_strongly_connected(g)

    def test_chain_is_singletons(self):
        g = hsdf({"A": 1, "B": 1, "C": 1}, [("A", "B", 0), ("B", "C", 0)])
        sccs = strongly_connected_components(g)
        assert sorted(map(tuple, sccs)) == [("A",), ("B",), ("C",)]
        assert not is_strongly_connected(g)

    def test_two_cycles_bridged(self):
        g = hsdf(
            {"A": 1, "B": 1, "C": 1, "D": 1},
            [
                ("A", "B", 0), ("B", "A", 1),
                ("B", "C", 0),
                ("C", "D", 0), ("D", "C", 1),
            ],
        )
        sccs = {tuple(c) for c in strongly_connected_components(g)}
        assert sccs == {("A", "B"), ("C", "D")}

    def test_reverse_topological_order(self):
        g = hsdf({"A": 1, "B": 1}, [("A", "B", 0)])
        sccs = strongly_connected_components(g)
        # Tarjan emits sinks first
        assert sccs[0] == ["B"]

    def test_self_loop_ignored(self):
        g = hsdf({"A": 1}, [("A", "A", 1)])
        assert strongly_connected_components(g) == [["A"]]

    def test_empty_graph(self):
        assert strongly_connected_components(CsdfGraph("e")) == []
        assert not is_strongly_connected(CsdfGraph("e"))

    def test_deep_chain_no_recursion_limit(self):
        n = 5000
        tasks = {f"t{i}": 1 for i in range(n)}
        edges = [(f"t{i}", f"t{i+1}", 0) for i in range(n - 1)]
        g = hsdf(tasks, edges)
        assert len(strongly_connected_components(g)) == n


class TestWeakComponents:
    def test_direction_ignored(self):
        g = hsdf({"A": 1, "B": 1, "C": 1}, [("A", "B", 0), ("C", "B", 0)])
        assert weakly_connected_components(g) == [["A", "B", "C"]]

    def test_disconnected(self):
        g = sdf({"A": 1, "B": 1}, [])
        comps = weakly_connected_components(g)
        assert sorted(map(tuple, comps)) == [("A",), ("B",)]
