"""Warm-started K-Iter rounds (ROADMAP: K-Iter-level reuse).

Round ``i+1`` seeds its engine with round ``i``'s certified ``λ*`` on
top of the utilization bound. The contract under test:

* exactness is untouched — warm and cold runs certify identical
  periods, K vectors and round counts, even when a seed overshoots
  (the engines detect an uncertified start and restart);
* on the golden corpus, warm-starting never *increases* the total
  engine probe count (the satellite's acceptance gate);
* the seed genuinely engages: re-solving a fixed K with its own ``λ*``
  as the seed certifies in fewer-or-equal probes.
"""

from fractions import Fraction
from pathlib import Path

import pytest

from repro.analysis.consistency import repetition_vector
from repro.io import load_graph
from repro.kperiodic import throughput_kiter
from repro.kperiodic.solver import min_period_for_k
from tests.conftest import golden_corpus_cases, make_random_live_graph

DATA = Path(__file__).parent / "data"
CASES = golden_corpus_cases()


@pytest.mark.parametrize("filename,period", CASES,
                         ids=[c[0] for c in CASES])
def test_warm_start_exact_and_never_more_probes_golden(filename, period):
    graph = load_graph(DATA / filename)
    warm = throughput_kiter(graph, warm_start=True)
    cold = throughput_kiter(graph, warm_start=False)
    assert warm.period == cold.period == period
    assert warm.K == cold.K
    assert warm.iteration_count == cold.iteration_count
    assert warm.engine_iteration_count <= cold.engine_iteration_count


@pytest.mark.parametrize("seed", range(0, 40))
def test_warm_start_exact_on_random_graphs(seed):
    graph = make_random_live_graph(seed)
    warm = throughput_kiter(graph, warm_start=True)
    cold = throughput_kiter(graph, warm_start=False)
    assert warm.period == cold.period
    assert warm.engine_iteration_count <= cold.engine_iteration_count


def test_warm_start_reduces_probes_on_multiround_instance():
    # Regression for the seeding actually engaging: this instance needs
    # several K-Iter rounds and the previous round's λ* beats the
    # utilization seed, saving a probe (found by sweeping the random
    # graph family; deterministic because the generator is seeded).
    graph = make_random_live_graph(49)
    warm = throughput_kiter(graph, warm_start=True)
    cold = throughput_kiter(graph, warm_start=False)
    assert warm.period == cold.period
    assert warm.engine_iteration_count < cold.engine_iteration_count


def test_min_period_warm_start_with_own_lambda_certifies_fast():
    graph = load_graph(DATA / CASES[1][0]) if CASES else None
    if graph is None:
        pytest.skip("golden corpus not present")
    q = repetition_vector(graph)
    K = {t: 1 for t in q}
    base = min_period_for_k(graph, K, build_schedule=False)
    reseeded = min_period_for_k(
        graph, K, build_schedule=False, warm_start=base.omega_expanded
    )
    assert reseeded.omega == base.omega
    assert reseeded.engine_iterations <= base.engine_iterations


@pytest.mark.parametrize("engine", ["ratio-iteration", "hybrid", "howard"])
def test_min_period_warm_start_overshoot_is_sound(engine):
    graph = make_random_live_graph(7)
    q = repetition_vector(graph)
    K = {t: 1 for t in q}
    base = min_period_for_k(graph, K, engine=engine, build_schedule=False)
    for seed in (base.omega_expanded + 1000, Fraction(1, 7)):
        r = min_period_for_k(
            graph, K, engine=engine, build_schedule=False, warm_start=seed
        )
        assert r.omega == base.omega
        assert {t for t, _ in r.critical_nodes} == r.critical_tasks
