"""Unit tests for the bench harness (runner, reporting, table drivers)."""

from fractions import Fraction

import pytest

from repro.bench import format_table, run_method
from repro.bench.runner import MethodOutcome
from repro.bench.table1 import run_table1, format_table1
from repro.bench.table2 import (
    format_table2,
    run_table2,
    tightest_live_bounding,
)
from repro.generators.csdf_apps import jpeg2000
from repro.model import sdf


@pytest.fixture
def cycle():
    return sdf({"A": 1, "B": 1},
               [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])


class TestRunner:
    def test_ok_outcome(self, cycle):
        outcome = run_method("kiter", cycle, budget=10)
        assert outcome.ok
        assert outcome.period == 2

    def test_all_methods_run(self, cycle):
        for method in ("kiter", "kiter-fullq", "periodic", "symbolic",
                       "expansion", "expansion-full", "unfolding",
                       "maxplus"):
            assert run_method(method, cycle, budget=10).period == 2

    def test_unknown_method(self, cycle):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError, match="unknown method"):
            run_method("magic", cycle, budget=1)

    def test_conflicting_engine_spellings_rejected(self, cycle):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError, match="conflicting"):
            run_method("kiter@howard", cycle, budget=1, engine="lawler")
        # agreeing spellings are fine
        assert run_method(
            "kiter@howard", cycle, budget=10, engine="howard"
        ).period == 2

    def test_deadlock_status(self, deadlocked_cycle):
        assert run_method(
            "kiter", deadlocked_cycle, budget=10
        ).status == "DEADLOCK"

    def test_ns_status(self):
        # periodic N/S on the live ns_ring fixture shape (tiny variant)
        from tests.test_kiter import TestInfeasibleKEscalation

        g = TestInfeasibleKEscalation()._tight_graph()
        assert run_method("periodic", g, budget=10).status == "N/S"
        assert run_method("kiter", g, budget=30).ok

    def test_timeout_status(self, cycle):
        from repro.generators.csdf_apps import pdetect

        outcome = run_method("kiter", pdetect(), budget=1e-9)
        assert outcome.status == "TIMEOUT"
        assert "> " in outcome.time_text()


class TestOutcomeFormatting:
    def test_time_text_ranges(self):
        assert MethodOutcome("OK", None, 0.0123).time_text() == "12.30ms"
        assert MethodOutcome("OK", None, 0.5).time_text() == "500ms"
        assert MethodOutcome("OK", None, 42.0).time_text() == "42.0s"

    def test_optimality_text(self):
        o = MethodOutcome("OK", Fraction(20), 0.1)
        assert o.optimality_text(Fraction(10)) == "50%"
        assert o.optimality_text(None) == "??%"
        assert MethodOutcome("N/S", None, 0.1).optimality_text(
            Fraction(1)
        ) == "N/S"


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["a", "bbbb"], [["xx", "y"], ["1", "22222"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbbb" in lines[2]
        assert "-+-" in lines[3]  # header rule
        assert all("|" in line for line in lines[4:])


class TestTableDrivers:
    def test_table1_tiny(self):
        rows = run_table1(graphs_per_category=2, budget=10,
                          categories=("MimicDSP",))
        assert len(rows) == 1
        assert rows[0].disagreements == 0
        text = format_table1(rows)
        assert "MimicDSP" in text

    def test_table2_single_block(self):
        blocks = run_table2(budget=15, include_bounded=False,
                            include_synthetic=False)
        rows = blocks["no buffer size"]
        assert len(rows) == 5
        text = format_table2(blocks)
        assert "BlackScholes" in text

    def test_tightest_live_bounding(self):
        g = jpeg2000()
        bounded, scale = tightest_live_bounding(g)
        assert scale >= 1
        assert bounded.buffer_count > g.buffer_count
        from repro.analysis import is_live

        assert is_live(bounded)
