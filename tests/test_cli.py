"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.generators.paper import figure2_graph
from repro.io import save_graph


@pytest.fixture
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    save_graph(figure2_graph(), path)
    return str(path)


class TestInfo:
    def test_reports_everything(self, fig2_json, capsys):
        assert main(["info", fig2_json]) == 0
        out = capsys.readouterr().out
        assert "repetition vector" in out
        assert "live: yes" in out
        assert "period bounds" in out

    def test_dead_graph_flagged(self, tmp_path, capsys, deadlocked_cycle):
        path = tmp_path / "dead.json"
        save_graph(deadlocked_cycle, path)
        assert main(["info", str(path)]) == 0
        assert "no (deadlock)" in capsys.readouterr().out

    def test_unknown_format(self, tmp_path, capsys):
        bad = tmp_path / "g.yaml"
        bad.write_text("x")
        assert main(["info", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestThroughput:
    @pytest.mark.parametrize("method", ["kiter", "periodic", "symbolic"])
    def test_methods(self, fig2_json, capsys, method):
        assert main(["throughput", fig2_json, "--method", method]) == 0
        out = capsys.readouterr().out
        assert "period:" in out

    def test_kiter_exact_value(self, fig2_json, capsys):
        main(["throughput", fig2_json])
        assert "period: 13" in capsys.readouterr().out


class TestConvert:
    def test_json_to_xml_roundtrip(self, fig2_json, tmp_path, capsys):
        xml = tmp_path / "fig2.xml"
        back = tmp_path / "back.json"
        assert main(["convert", fig2_json, str(xml)]) == 0
        assert main(["convert", str(xml), str(back)]) == 0
        original = json.loads(open(fig2_json).read())
        rebuilt = json.loads(back.read_text())
        assert len(original["tasks"]) == len(rebuilt["tasks"])
        assert len(original["buffers"]) == len(rebuilt["buffers"])

    def test_dot_export(self, fig2_json, tmp_path):
        dot = tmp_path / "fig2.dot"
        assert main(["convert", fig2_json, str(dot)]) == 0
        assert dot.read_text().startswith("digraph")


class TestGantt:
    def test_asap(self, fig2_json, capsys):
        assert main(["gantt", fig2_json, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "as-soon-as-possible" in out
        assert "A" in out

    def test_kperiodic(self, fig2_json, capsys):
        assert main(["gantt", fig2_json, "--kperiodic"]) == 0
        out = capsys.readouterr().out
        assert "Ω = 13" in out


class TestGenerate:
    def test_named_graph(self, tmp_path, capsys):
        out_path = tmp_path / "g.json"
        assert main(["generate", "figure2", "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert "4 tasks" in capsys.readouterr().out

    def test_seeded_graph(self, tmp_path):
        out_path = tmp_path / "m.json"
        assert main(["generate", "mimic-dsp", "--seed", "5",
                     "-o", str(out_path)]) == 0

    def test_unknown_generator(self, tmp_path, capsys):
        assert main(["generate", "nope", "-o", str(tmp_path / "x.json")]) == 2
        assert "unknown generator" in capsys.readouterr().err


class TestSchedule:
    def test_export_and_reload(self, fig2_json, tmp_path, capsys):
        out_path = tmp_path / "sched.json"
        assert main(["schedule", fig2_json, "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "period: 13" in out
        assert "verified" in out
        from repro.io import load_schedule

        schedule = load_schedule(out_path)
        assert schedule.omega == 13


class TestMap:
    def test_processor_sweep(self, fig2_json, capsys):
        assert main(["map", fig2_json, "--processors", "2"]) == 0
        out = capsys.readouterr().out
        assert "dataflow-limited period" in out
        assert "1 processor(s): period 25" in out  # sequential bound

    def test_deadlock_diagnosis_in_info(self, tmp_path, capsys,
                                         deadlocked_cycle):
        from repro.io import save_graph

        path = tmp_path / "dead.json"
        save_graph(deadlocked_cycle, path)
        main(["info", str(path)])
        out = capsys.readouterr().out
        assert "starvation cycle" in out


class TestBenchCommand:
    def test_table1_smoke(self, capsys):
        assert main(["bench", "table1", "--count", "1",
                     "--budget", "5"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestBatch:
    @pytest.fixture
    def manifest(self, tmp_path):
        from repro.model import sdf

        for name, tokens in (("a.json", 1), ("b.json", 2)):
            save_graph(
                sdf({"A": 1, "B": 1},
                    [("A", "B", 1, 1, 0), ("B", "A", 1, 1, tokens)],
                    name=name),
                tmp_path / name,
            )
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps([
            {"file": "a.json", "period": [2, 1]},
            {"file": "b.json", "period": [1, 1]},
            "a.json",
        ]))
        return path

    def test_batch_check_and_cache(self, manifest, tmp_path, capsys):
        out = tmp_path / "out.jsonl"
        cache = tmp_path / "cache"
        assert main(["batch", str(manifest), "-o", str(out),
                     "--check", "--cache-dir", str(cache)]) == 0
        text = capsys.readouterr().out
        assert "3 job(s), 3 OK" in text
        assert "check: 2/2 exact period match(es)" in text
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["period"] for r in records] == [[2, 1], [1, 1], [2, 1]]
        # third entry is the same graph again: deduplicated in-batch
        assert records[2]["cache_hit"] == "batch"

        # second run is answered from the disk tier
        assert main(["batch", str(manifest), "-o", str(out),
                     "--check", "--cache-dir", str(cache)]) == 0
        text = capsys.readouterr().out
        assert "2 disk hit(s)" in text
        assert "0 solve(s)" in text

    def test_batch_detects_mismatch(self, manifest, tmp_path, capsys):
        bad = tmp_path / "bad_manifest.json"
        bad.write_text(json.dumps([{"file": "a.json", "period": [7, 1]}]))
        out = tmp_path / "out.jsonl"
        assert main(["batch", str(bad), "-o", str(out), "--check"]) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_batch_with_workers(self, manifest, tmp_path, capsys):
        out = tmp_path / "out.jsonl"
        assert main(["batch", str(manifest), "-o", str(out),
                     "--workers", "2", "--check"]) == 0
        assert "pool: 2 worker(s)" in capsys.readouterr().out

    def test_serve_stats(self, manifest, tmp_path, capsys):
        out = tmp_path / "out.jsonl"
        cache = tmp_path / "cache"
        main(["batch", str(manifest), "-o", str(out),
              "--cache-dir", str(cache)])
        capsys.readouterr()
        assert main(["serve-stats", "--cache-dir", str(cache)]) == 0
        text = capsys.readouterr().out
        assert "entries: 2" in text
        assert "OK=2" in text

    def test_bad_manifest(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        bad.write_text("{}")
        assert main(["batch", str(bad), "-o",
                     str(tmp_path / "o.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
