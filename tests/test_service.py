"""The throughput service: cache semantics, pool fault handling, parity.

Covers the serving-layer contract end to end:

* two-tier cache hit/miss semantics (memory LRU, disk promotion,
  non-cacheable statuses never stored);
* batch results equal sequential K-Iter on the golden corpus, with
  in-batch dedup for repeated graphs;
* pool fault containment — a crashing worker poisons only its chunk, a
  hung worker is timed out and the batch continues on a recycled
  executor, cancellation stops between chunks;
* no-``fork``-assumption smoke test: the full service path under an
  explicit ``spawn`` context;
* engine fallback: a failing primary engine falls through to the next
  one in the chain.

The fault-injection workers are module-level functions (picklable); the
fault tests pin the ``fork`` start method so they do not depend on this
test module being importable from a fresh interpreter.
"""

import json
import multiprocessing
import os
import threading
import time
from fractions import Fraction
from pathlib import Path

import pytest

import repro
from repro.io import load_graph
from repro.kperiodic import solve_kiter_payload, throughput_kiter
from repro.model import sdf
from repro.service import (
    ResultCache,
    SolverPool,
    ThroughputJob,
    ThroughputService,
    graph_digest,
)

from tests.conftest import golden_corpus_cases

DATA = Path(__file__).parent / "data"
HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
CASES = golden_corpus_cases()


def two_cycle():
    return sdf(
        {"A": 1, "B": 1},
        [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)],
        name="two_cycle",
    )


# ----------------------------------------------------------------------
# Fault-injection worker functions (must be top-level for pickling)
# ----------------------------------------------------------------------
def _stub_outcome():
    return {
        "status": "OK", "period": [2, 1], "K": {}, "rounds": 1,
        "engine_iterations": 0, "critical_tasks": [],
        "engine_used": "stub", "fallback": False,
        "wall_time": 0.0, "worker_pid": os.getpid(),
    }


def flaky_chunk(payloads):
    if any(p.get("crash") for p in payloads):
        os._exit(23)
    return [_stub_outcome() for _ in payloads]


def sleepy_chunk(payloads):
    if any(p.get("sleep") for p in payloads):
        time.sleep(30)
    return [_stub_outcome() for _ in payloads]


def slow_chunk(payloads):
    time.sleep(0.4)
    return [_stub_outcome() for _ in payloads]


# ----------------------------------------------------------------------
# Cache semantics
# ----------------------------------------------------------------------
def test_memory_cache_hit_and_miss():
    service = ThroughputService()
    first = service.submit(two_cycle())
    assert first.ok and first.period == 2 and first.cache_hit == ""
    second = service.submit(two_cycle())
    assert second.ok and second.period == 2
    assert second.cache_hit == "memory"
    stats = service.stats()
    assert stats.solves == 1
    assert stats.cache["memory_hits"] == 1
    assert stats.cache["misses"] == 1


def test_disk_cache_survives_process_state(tmp_path):
    with ThroughputService(cache=ResultCache(disk_root=tmp_path)) as first:
        assert first.submit(two_cycle()).cache_hit == ""
    # A brand-new service (fresh memory tier) over the same directory:
    with ThroughputService(cache=ResultCache(disk_root=tmp_path)) as second:
        hit = second.submit(two_cycle())
        assert hit.ok and hit.period == 2
        assert hit.cache_hit == "disk"
        # promoted to memory on the way through
        assert second.submit(two_cycle()).cache_hit == "memory"


def test_lru_eviction_bounds_memory_tier():
    cache = ResultCache(memory_size=2)
    for digest in ("a" * 64, "b" * 64, "c" * 64):
        cache.put(digest, {"status": "OK"})
    assert cache.get("a" * 64) is None  # evicted
    assert cache.get("c" * 64) is not None


def test_timeouts_are_never_cached():
    slow = DATA / "golden_synthetic2.json"
    if not slow.exists():
        pytest.skip("golden corpus not present")
    graph = load_graph(slow)
    service = ThroughputService()
    timed_out = service.submit(graph, time_budget=1e-9)
    assert timed_out.status == "TIMEOUT"
    assert not timed_out.cacheable
    # Same digest (budgets are excluded from it), but the poisoned
    # outcome was not stored: the retry really solves.
    solved = service.submit(graph, time_budget=None)
    assert solved.ok
    assert solved.cache_hit == ""


def test_deadlock_is_deterministic_and_cached():
    dead = sdf(
        {"A": 1, "B": 1},
        [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 0)],
        name="dead",
    )
    service = ThroughputService()
    first = service.submit(dead)
    assert first.status == "DEADLOCK" and first.cacheable
    assert service.submit(dead).cache_hit == "memory"


# ----------------------------------------------------------------------
# Batch = sequential on the golden corpus; dedup
# ----------------------------------------------------------------------
@pytest.mark.skipif(not CASES, reason="golden corpus not present")
def test_batch_matches_golden_corpus_with_pool():
    graphs = [load_graph(DATA / name) for name, _ in CASES]
    with ThroughputService(workers=2, chunk_size=3) as service:
        outcomes = service.submit_many(graphs)
    assert [o.period for o in outcomes] == [p for _, p in CASES]
    assert all(o.ok for o in outcomes)
    # exact Fraction identity with the direct solver, not just equality
    direct = throughput_kiter(graphs[0]).period
    assert outcomes[0].period == direct


@pytest.mark.skipif(not CASES, reason="golden corpus not present")
def test_in_batch_dedup_solves_once():
    graphs = [load_graph(DATA / name) for name, _ in CASES[:4]]
    doubled = graphs + list(reversed(graphs))
    service = ThroughputService()
    outcomes = service.submit_many(doubled)
    assert [o.period for o in outcomes[:4]] == [p for _, p in CASES[:4]]
    assert [o.period for o in outcomes[4:]] == [
        p for _, p in reversed(CASES[:4])
    ]
    assert all(o.cache_hit == "batch" for o in outcomes[4:])
    assert service.stats().solves == 4


def test_mutating_an_outcome_does_not_poison_the_cache():
    service = ThroughputService()
    first = service.submit(two_cycle())
    first.K["A"] = 999  # caller scribbles on its own copy
    again = service.submit(two_cycle())
    assert again.cache_hit == "memory"
    assert again.K == {"A": 1, "B": 1}


def test_payload_carries_graph_digest_for_worker_reuse():
    graph = two_cycle()
    a = ThroughputJob.from_graph(graph, engine="hybrid")
    b = ThroughputJob.from_graph(graph, engine="ratio-iteration")
    assert a.digest != b.digest  # different jobs...
    assert a.graph_digest == b.graph_digest == graph_digest(graph)
    assert a.payload()["graph_digest"] == a.graph_digest


def test_bad_update_policy_fails_once_without_engine_blame():
    service = ThroughputService(update_policy="typo")
    outcome = service.submit(two_cycle())
    assert outcome.status == "ERROR"
    assert "update_policy" in outcome.error
    assert outcome.engine_used == ""
    assert not outcome.fallback


def test_digest_distinguishes_solve_parameters():
    graph = two_cycle()
    base = ThroughputJob.from_graph(graph)
    assert base.digest == ThroughputJob.from_graph(graph).digest
    assert base.digest != ThroughputJob.from_graph(
        graph, engine="ratio-iteration"
    ).digest
    assert base.digest != ThroughputJob.from_graph(
        graph, update_policy="full-q"
    ).digest
    # labels and budgets are reporting-only
    assert base.digest == ThroughputJob.from_graph(
        graph, label="elsewhere", time_budget=5.0
    ).digest


# ----------------------------------------------------------------------
# Pool fault handling
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_worker_crash_poisons_only_its_chunk():
    with SolverPool(1, chunk_size=1, worker_fn=flaky_chunk,
                    mp_context="fork") as pool:
        results = pool.solve([{}, {"crash": True}, {}])
    assert [r["status"] for r in results] == ["OK", "ERROR", "OK"]
    assert "crashed" in results[1]["error"]
    assert pool.stats.crashes == 1
    assert pool.stats.recycles == 1


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_hung_worker_times_out_and_batch_continues():
    start = time.perf_counter()
    with SolverPool(1, chunk_size=1, job_timeout=0.5,
                    worker_fn=sleepy_chunk, mp_context="fork") as pool:
        results = pool.solve([{"sleep": True}, {}])
    elapsed = time.perf_counter() - start
    assert [r["status"] for r in results] == ["TIMEOUT", "OK"]
    assert elapsed < 20, "timeout did not preempt the 30s sleep"
    assert pool.stats.timeouts == 1
    assert pool.stats.recycles == 1


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_cancellation_stops_between_chunks():
    with SolverPool(1, chunk_size=1, worker_fn=slow_chunk,
                    mp_context="fork") as pool:
        timer = threading.Timer(0.2, pool.cancel)
        timer.start()
        try:
            results = pool.solve([{} for _ in range(8)])
        finally:
            timer.cancel()
    statuses = [r["status"] for r in results]
    assert statuses[0] == "OK"
    assert "CANCELLED" in statuses
    assert len(results) == 8


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_pool_survives_crash_then_solves_real_jobs():
    with SolverPool(1, chunk_size=1, worker_fn=flaky_chunk,
                    mp_context="fork") as pool:
        broken = pool.solve([{"crash": True}])
        assert broken[0]["status"] == "ERROR"
    job = ThroughputJob.from_graph(two_cycle(), engine="ratio-iteration")
    with SolverPool(1, mp_context="fork") as pool:
        result = pool.solve([job.payload()])
    assert result[0]["status"] == "OK"
    assert Fraction(*result[0]["period"]) == 2


# ----------------------------------------------------------------------
# spawn-context smoke test (no fork assumptions anywhere in the path)
# ----------------------------------------------------------------------
def test_service_under_spawn_context(monkeypatch):
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv(
        "PYTHONPATH",
        src_dir + (os.pathsep + existing if existing else ""),
    )
    graphs = [
        two_cycle(),
        sdf({"A": 1, "B": 2}, [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)],
            name="multirate"),
    ]
    with ThroughputService(workers=2, mp_context="spawn") as service:
        outcomes = service.submit_many(graphs)
    assert [o.status for o in outcomes] == ["OK", "OK"]
    assert [o.period for o in outcomes] == [
        throughput_kiter(g).period for g in graphs
    ]
    pids = {o.worker_pid for o in outcomes}
    assert os.getpid() not in pids, "jobs ran inline, not in the pool"


# ----------------------------------------------------------------------
# Engine fallback and the worker entry point
# ----------------------------------------------------------------------
def test_engine_fallback_on_solver_error():
    service = ThroughputService(
        engine="no-such-engine",
        fallback_engines=("ratio-iteration",),
    )
    outcome = service.submit(two_cycle())
    assert outcome.ok and outcome.period == 2
    assert outcome.fallback
    assert outcome.engine_used == "ratio-iteration"
    assert outcome.engine == "no-such-engine"


def test_exhausted_fallback_chain_reports_error():
    service = ThroughputService(
        engine="no-such-engine", fallback_engines=(),
    )
    outcome = service.submit(two_cycle())
    assert outcome.status == "ERROR"
    assert "no-such-engine" in outcome.error
    assert not outcome.cacheable


def test_solve_kiter_payload_round_trips_plain_dicts():
    payload = ThroughputJob.from_graph(
        two_cycle(), engine="hybrid"
    ).payload()
    result = solve_kiter_payload(json.loads(json.dumps(payload)))
    assert result["status"] == "OK"
    assert Fraction(*result["period"]) == 2
    assert result["engine_used"] == "hybrid"
    assert result["K"] == {"A": 1, "B": 1}


def test_submit_async_resolves_and_caches():
    service = ThroughputService()
    outcome = service.submit_async(two_cycle()).result(timeout=30)
    assert outcome.ok and outcome.period == 2
    again = service.submit_async(two_cycle()).result(timeout=30)
    assert again.cache_hit == "memory"


def test_map_streams_in_order():
    graphs = [two_cycle() for _ in range(5)]
    service = ThroughputService()
    outcomes = list(service.map(graphs, batch_size=2))
    assert len(outcomes) == 5
    assert all(o.period == 2 for o in outcomes)


def test_graph_digest_insertion_order_independent_service_view():
    g1 = sdf({"A": 1, "B": 2}, [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)])
    g2 = sdf({"B": 2, "A": 1}, [("B", "A", 3, 2, 6), ("A", "B", 2, 3, 0)])
    assert graph_digest(g1) == graph_digest(g2)
    service = ThroughputService()
    assert service.submit(g1).cache_hit == ""
    assert service.submit(g2).cache_hit == "memory"
