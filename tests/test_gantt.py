"""Unit tests for Gantt rendering and schedule→firing expansion."""

from fractions import Fraction

import pytest

from repro.kperiodic import min_period_for_k
from repro.scheduling import (
    policy_gantt,
    policy_names,
    render_gantt,
    schedule_to_firings,
)
from repro.scheduling.asap import FiringRecord
from repro.generators.paper import figure2_graph
from repro.model import sdf


class TestRenderGantt:
    def test_empty(self):
        assert "empty" in render_gantt([])

    def test_rows_per_task(self):
        records = [
            FiringRecord("A", 1, 1, 0, 2),
            FiringRecord("B", 1, 1, 2, 3),
        ]
        text = render_gantt(records, width=40)
        lines = text.splitlines()
        assert len(lines) == 3  # axis + two task rows
        assert lines[1].startswith("A")
        assert lines[2].startswith("B")

    def test_task_order_respected(self):
        records = [
            FiringRecord("Z", 1, 1, 0, 1),
            FiringRecord("A", 1, 1, 0, 1),
        ]
        text = render_gantt(records, task_order=["A", "Z"])
        lines = text.splitlines()
        assert lines[1].startswith("A")

    def test_zero_duration_marker(self):
        records = [FiringRecord("A", 1, 1, 5, 5)]
        assert "|" in render_gantt(records, width=40)

    def test_phase_labels(self):
        records = [FiringRecord("A", 2, 1, 0, 4)]
        text = render_gantt(records, width=40)
        assert "2" in text.splitlines()[1]

    def test_wide_horizon_scales_down(self):
        records = [FiringRecord("A", 1, 1, 0, 10_000)]
        text = render_gantt(records, width=50)
        assert max(len(line) for line in text.splitlines()) <= 70


class TestScheduleToFirings:
    def test_integer_scaling(self):
        g = sdf({"A": 1, "B": 1},
                [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)])
        r = min_period_for_k(g, {"A": 1, "B": 1})
        firings = schedule_to_firings(r.schedule, g, horizon_iterations=2)
        assert firings, "expected firings"
        # q = [3,2]: two iterations = 6 A firings + 4 B firings
        assert sum(1 for f in firings if f.task == "A") == 6
        assert sum(1 for f in firings if f.task == "B") == 4
        assert all(isinstance(f.start, int) for f in firings)

    def test_figure2_render_has_all_tasks(self):
        g = figure2_graph()
        r = min_period_for_k(g, {"A": 3, "B": 4, "C": 6, "D": 1})
        firings = schedule_to_firings(r.schedule, g, horizon_iterations=1)
        text = render_gantt(firings, width=90)
        for task in ("A", "B", "C", "D"):
            assert any(line.startswith(task) for line in text.splitlines())


@pytest.mark.parametrize("policy", policy_names())
class TestPolicyGantt:
    """Every registered policy renders through the same Gantt path."""

    def test_header_names_policy_and_period(self, policy, multirate_cycle):
        text = policy_gantt(multirate_cycle, policy, width=60)
        header = text.splitlines()[0]
        assert f"policy={policy}" in header
        assert "Ω = 5" in header

    def test_all_firings_render(self, policy):
        g = figure2_graph()
        text = policy_gantt(g, policy, horizon_iterations=1, width=90)
        for task in ("A", "B", "C", "D"):
            assert any(line.startswith(task)
                       for line in text.splitlines()[1:])
