"""Unit tests for JSON / SDF3-XML / DOT serialization."""

import pytest

from repro.exceptions import ModelError
from repro.generators.paper import figure2_graph
from repro.io import (
    constraint_graph_to_dot,
    graph_from_json,
    graph_to_dot,
    graph_to_json,
    load_graph,
    read_sdf3_xml,
    save_graph,
    write_sdf3_xml,
)
from repro.model import csdf, sdf


def graphs_equal(a, b) -> bool:
    if a.task_names() != b.task_names():
        return False
    if a.buffer_names() != b.buffer_names():
        return False
    for t in a.tasks():
        if b.task(t.name).durations != t.durations:
            return False
    for buf in a.buffers():
        other = b.buffer(buf.name)
        if (other.production, other.consumption, other.initial_tokens) != (
            buf.production, buf.consumption, buf.initial_tokens
        ):
            return False
    return True


class TestJson:
    def test_roundtrip_figure2(self):
        g = figure2_graph()
        assert graphs_equal(g, graph_from_json(graph_to_json(g)))

    def test_roundtrip_file(self, tmp_path):
        g = figure2_graph()
        path = tmp_path / "fig2.json"
        save_graph(g, path)
        assert graphs_equal(g, load_graph(path))

    def test_bad_json_rejected(self):
        with pytest.raises(ModelError):
            graph_from_json("{not json")

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(ModelError):
            graph_from_json('{"format": "something-else", "version": 1}')

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelError):
            graph_from_json('{"format": "repro-csdf", "version": 99}')


class TestSdf3Xml:
    def test_roundtrip_sdf(self, multirate_cycle):
        text = write_sdf3_xml(multirate_cycle)
        back = read_sdf3_xml(text)
        assert graphs_equal(multirate_cycle, back)

    def test_roundtrip_csdf(self):
        g = figure2_graph()
        back = read_sdf3_xml(write_sdf3_xml(g))
        assert graphs_equal(g, back)

    def test_file_roundtrip(self, tmp_path, csdf_pipeline):
        path = tmp_path / "g.xml"
        write_sdf3_xml(csdf_pipeline, path)
        assert graphs_equal(csdf_pipeline, read_sdf3_xml(path))

    def test_type_attribute(self, multirate_cycle):
        assert 'type="sdf"' in write_sdf3_xml(multirate_cycle)
        assert 'type="csdf"' in write_sdf3_xml(figure2_graph())

    def test_star_rate_shorthand(self):
        xml = """
        <sdf3 type="csdf" version="1.0">
          <applicationGraph name="app">
            <csdf name="g" type="g">
              <actor name="a" type="a">
                <port type="out" name="p" rate="2*3,1"/>
              </actor>
              <actor name="b" type="b">
                <port type="in" name="q" rate="7"/>
              </actor>
              <channel name="c" srcActor="a" srcPort="p"
                       dstActor="b" dstPort="q" initialTokens="5"/>
            </csdf>
          </applicationGraph>
        </sdf3>
        """
        g = read_sdf3_xml(xml)
        assert g.buffer("c").production == (2, 2, 2, 1)
        assert g.buffer("c").initial_tokens == 5

    def test_missing_root_rejected(self):
        with pytest.raises(ModelError):
            read_sdf3_xml("<wrong/>")

    def test_throughput_survives_roundtrip(self):
        from repro.kperiodic import throughput_kiter

        g = figure2_graph()
        back = read_sdf3_xml(write_sdf3_xml(g))
        assert throughput_kiter(back).period == throughput_kiter(g).period


class TestScheduleFormat:
    def _schedule(self):
        from repro.kperiodic import min_period_for_k, throughput_kiter

        g = figure2_graph()
        exact = throughput_kiter(g)
        return g, min_period_for_k(g, exact.K).schedule

    def test_roundtrip_exact(self):
        from repro.io import schedule_from_json, schedule_to_json

        _g, schedule = self._schedule()
        back = schedule_from_json(schedule_to_json(schedule))
        assert back.omega == schedule.omega
        assert back.K == schedule.K
        assert back.starts == schedule.starts
        assert back.task_periods == schedule.task_periods

    def test_roundtrip_still_verifies(self):
        from repro.io import schedule_from_json, schedule_to_json

        g, schedule = self._schedule()
        back = schedule_from_json(schedule_to_json(schedule))
        back.verify(g, iterations=3)

    def test_file_roundtrip(self, tmp_path):
        from repro.io import load_schedule, save_schedule

        _g, schedule = self._schedule()
        path = tmp_path / "sched.json"
        save_schedule(schedule, path)
        assert load_schedule(path).omega == schedule.omega

    def test_wrong_tag_rejected(self):
        from repro.io import schedule_from_json

        with pytest.raises(ModelError):
            schedule_from_json('{"format": "nope", "version": 1}')


class TestDot:
    def test_graph_dot_mentions_everything(self):
        text = graph_to_dot(figure2_graph())
        assert '"A" -> "B"' in text
        assert "M0=4" in text
        assert text.startswith("digraph")

    def test_constraint_graph_dot(self):
        from repro.analysis import build_constraint_graph

        bi, _ = build_constraint_graph(figure2_graph())
        text = constraint_graph_to_dot(bi)
        assert "A1" in text and "B3" in text
        assert "->" in text

    def test_critical_highlight(self):
        from repro.analysis import build_constraint_graph
        from repro.mcrp import max_cycle_ratio

        bi, _ = build_constraint_graph(figure2_graph())
        result = max_cycle_ratio(bi)
        text = constraint_graph_to_dot(
            bi, critical_arcs=set(result.cycle_arcs)
        )
        assert "color=red" in text
