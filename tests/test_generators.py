"""Unit tests for the benchmark generators (statistics + invariants)."""

import pytest

from repro.analysis import (
    is_consistent,
    is_live,
    repetition_vector,
    repetition_vector_sum,
)
from repro.generators import (
    actual_dsp_graphs,
    blackscholes,
    csdf_applications,
    echo,
    figure1_buffer,
    figure2_graph,
    h263_decoder,
    h264_encoder,
    jpeg2000,
    large_hsdf,
    large_transient,
    mimic_dsp,
    pdetect,
    synthetic_graphs,
)


class TestPaperGraphs:
    def test_figure1(self):
        g = figure1_buffer()
        b = g.buffer("b")
        assert b.total_production == 6 and b.total_consumption == 7

    def test_figure2_q(self):
        assert repetition_vector(figure2_graph()) == {
            "A": 3, "B": 4, "C": 6, "D": 1
        }

    def test_figure2_live(self):
        assert is_live(figure2_graph())


class TestActualDsp:
    def test_category_statistics(self):
        graphs = actual_dsp_graphs()
        assert len(graphs) == 5
        tasks = [g.task_count for g in graphs]
        assert min(tasks) == 4 and max(tasks) == 22  # paper: 4/12/22
        sums = [repetition_vector_sum(g) for g in graphs]
        assert max(sums) == 4754  # the H263 decoder

    def test_h263_repetition(self):
        q = repetition_vector(h263_decoder())
        assert q["iq"] == q["idct"] == 2376
        assert q["vld"] == q["mc"] == 1

    def test_all_live_and_consistent(self):
        for g in actual_dsp_graphs():
            assert is_consistent(g), g.name
            assert is_live(g), g.name


class TestRandomCategories:
    @pytest.mark.parametrize("seed", range(5))
    def test_mimic_dsp_invariants(self, seed):
        g = mimic_dsp(seed)
        assert 3 <= g.task_count <= 25
        assert is_live(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_large_hsdf_has_large_expansion(self, seed):
        g = large_hsdf(seed)
        assert 6 <= g.task_count <= 15
        assert repetition_vector_sum(g) > 50 * g.task_count
        assert is_live(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_large_transient_is_homogeneous(self, seed):
        g = large_transient(seed)
        assert 181 <= g.task_count <= 300
        assert repetition_vector_sum(g) == g.task_count  # q ≡ 1
        assert is_live(g)

    def test_determinism(self):
        a, b = mimic_dsp(11), mimic_dsp(11)
        assert a.summary() == b.summary()


class TestCsdfApplications:
    def test_published_counts(self):
        expected = {
            "BlackScholes": (41, 40),
            "Echo": (240, 703),
            "JPEG2000": (38, 82),
            "Pdetect": (58, 76),
            "H264 Encoder": (665, 3128),
        }
        for name, thunk in csdf_applications(1):
            g = thunk()
            assert (g.task_count, g.buffer_count) == expected[name], name

    @pytest.mark.parametrize(
        "maker", [blackscholes, echo, jpeg2000, pdetect]
    )
    def test_small_apps_live(self, maker):
        g = maker()
        assert is_consistent(g)
        assert is_live(g)

    def test_h264_live(self):
        g = h264_encoder()
        assert is_live(g)

    def test_genuinely_cyclostatic(self):
        # at least one task with >1 phase in every app
        for name, thunk in csdf_applications(1):
            g = thunk()
            assert any(t.phase_count > 1 for t in g.tasks()), name

    def test_scale_knob_raises_sum_q(self):
        small = repetition_vector_sum(blackscholes(1))
        large = repetition_vector_sum(blackscholes(4))
        assert large > small


class TestSynthetic:
    def test_published_counts(self):
        expected = {
            "graph1": (90, 617),
            "graph2": (70, 473),
            "graph3": (154, 671),
            "graph4": (2426, 2900),
            "graph5": (2767, 4894),
        }
        for name, thunk in synthetic_graphs(1):
            g = thunk()
            assert (g.task_count, g.buffer_count) == expected[name], name

    def test_small_synthetic_live(self):
        for name, thunk in synthetic_graphs(1)[:3]:
            assert is_live(thunk()), name
