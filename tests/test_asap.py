"""Unit tests for the self-timed (ASAP) event simulator."""

from fractions import Fraction

import pytest

from repro.analysis import repetition_vector
from repro.exceptions import BudgetExceededError, DeadlockError
from repro.generators.paper import figure2_graph
from repro.model import csdf, sdf
from repro.scheduling import AsapSimulator, asap_schedule


class TestSimulatorMechanics:
    def test_tokens_consumed_at_start(self, two_task_cycle):
        sim = AsapSimulator(two_task_cycle)
        sim.step()
        # B->A buffer held 1 token; A starts at t=0 and consumes it
        b_idx = sim._buffer_names.index("B_A_0")
        assert sim.tokens[b_idx] == 0

    def test_serialized_firing(self):
        # one task, duration 5: firings must not overlap
        g = sdf({"A": 5}, [])
        records = asap_schedule(g, iterations=3)
        starts = sorted(r.start for r in records)
        assert starts == [0, 5, 10]

    def test_phase_order(self, csdf_pipeline):
        records = [r for r in asap_schedule(csdf_pipeline, 1)
                   if r.task == "t"]
        assert [r.phase for r in records[:3]] == [1, 2, 3]

    def test_consumer_starts_at_completion_instant(self):
        g = sdf({"A": 4, "B": 1}, [("A", "B", 1, 1, 0)])
        records = asap_schedule(g, iterations=1)
        a = next(r for r in records if r.task == "A")
        b = next(r for r in records if r.task == "B")
        assert b.start == a.end

    def test_deadlock_reported(self, deadlocked_cycle):
        with pytest.raises(DeadlockError):
            asap_schedule(deadlocked_cycle, iterations=1)

    def test_deadlock_predicate(self, deadlocked_cycle):
        sim = AsapSimulator(deadlocked_cycle)
        assert sim.is_deadlocked()

    def test_zero_duration_chain_guard(self):
        g = sdf({"A": 0}, [])
        sim = AsapSimulator(g)
        with pytest.raises(BudgetExceededError):
            sim.step(max_zero_duration_chain=10)


class TestRecurrence:
    def test_two_task_cycle_period(self, two_task_cycle):
        sim = AsapSimulator(two_task_cycle)
        q = repetition_vector(two_task_cycle)
        result = sim.run_until_recurrence(q)
        assert result.period == 2

    def test_multirate_cycle_period(self, multirate_cycle):
        from repro.kperiodic.kiter import throughput_via_full_expansion

        sim = AsapSimulator(multirate_cycle)
        q = repetition_vector(multirate_cycle)
        result = sim.run_until_recurrence(q)
        assert result.period == throughput_via_full_expansion(
            multirate_cycle
        ).omega

    def test_state_budget(self, multirate_cycle):
        sim = AsapSimulator(multirate_cycle)
        q = repetition_vector(multirate_cycle)
        with pytest.raises(BudgetExceededError):
            sim.run_until_recurrence(q, max_states=1)

    def test_deadlock_in_recurrence(self, deadlocked_cycle):
        sim = AsapSimulator(deadlocked_cycle)
        with pytest.raises(DeadlockError):
            sim.run_until_recurrence({"A": 1, "B": 1})


class TestAsapIsOptimal:
    """ASAP achieves the exact maximum throughput (the classic result)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_kiter_on_random_graphs(self, seed):
        from tests.conftest import make_random_live_graph
        from repro.kperiodic import throughput_kiter
        from repro.baselines import throughput_symbolic

        g = make_random_live_graph(seed)
        exact = throughput_kiter(g).period
        assert throughput_symbolic(g).period == exact

    def test_figure2(self):
        from repro.baselines import throughput_symbolic

        assert throughput_symbolic(figure2_graph()).period == 13


class TestRecorder:
    def test_record_counts(self, two_task_cycle):
        records = asap_schedule(two_task_cycle, iterations=2)
        a_records = [r for r in records if r.task == "A"]
        assert len(a_records) >= 2
        assert all(r.end - r.start == 1 for r in records)

    def test_never_negative_tokens(self, csdf_pipeline):
        # replay the recorded schedule through the exact event check
        records = asap_schedule(csdf_pipeline, iterations=3)
        events = []
        buffers = {b.name: b for b in csdf_pipeline.buffers()}
        for r in records:
            b = buffers["t_u_0"]
            if r.task == "t":
                events.append((r.end, 0, b.production[r.phase - 1]))
            else:
                events.append((r.start, 1, -b.consumption[r.phase - 1]))
        events.sort()
        level = 0
        for _t, _o, delta in events:
            level += delta
            assert level >= 0
