"""Graph dict/JSON round-trips and canonical-digest stability.

The service layer's content addressing requires: (1) ``to_dict`` /
``from_dict`` is a lossless round-trip (including the ``serialization``
flag self-loops carry); (2) the canonical form — and therefore
:func:`repro.service.job.graph_digest` — is invariant under task and
buffer *insertion order* and under renaming that does not change the
semantics (graph name, buffer labels).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io import graph_from_json, graph_to_json
from repro.model import Buffer, CsdfGraph, Task
from repro.service import graph_digest
from tests.conftest import make_random_live_graph

LIMITED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_graph(seed: int) -> CsdfGraph:
    """A small random graph, deliberately including parallel buffers."""
    rng = random.Random(seed)
    g = CsdfGraph(f"g{seed}")
    names = [f"t{i}" for i in range(rng.randint(2, 6))]
    for name in names:
        phases = rng.randint(1, 3)
        g.add_task(Task(name, tuple(rng.randint(0, 5) for _ in range(phases))))
    for b in range(rng.randint(1, 8)):
        src = rng.choice(names)
        dst = rng.choice(names)
        prod = tuple(
            rng.randint(0, 4) for _ in range(g.task(src).phase_count)
        )
        cons = tuple(
            rng.randint(0, 4) for _ in range(g.task(dst).phase_count)
        )
        if sum(prod) == 0 or sum(cons) == 0:
            continue
        g.add_buffer(Buffer(f"b{b}", src, dst, prod, cons, rng.randint(0, 9)))
    return g


def _reinserted(graph: CsdfGraph, rng: random.Random) -> CsdfGraph:
    """The same graph rebuilt in a shuffled insertion order."""
    shuffled = CsdfGraph(graph.name)
    tasks = list(graph.tasks())
    buffers = list(graph.buffers())
    rng.shuffle(tasks)
    rng.shuffle(buffers)
    for t in tasks:
        shuffled.add_task(t)
    for b in buffers:
        shuffled.add_buffer(b)
    return shuffled


def _same_graph(a: CsdfGraph, b: CsdfGraph) -> bool:
    return (
        a.name == b.name
        and {t.name: t for t in a.tasks()} == {t.name: t for t in b.tasks()}
        and {x.name: x for x in a.buffers()}
        == {x.name: x for x in b.buffers()}
    )


@LIMITED
@given(st.integers(0, 10**6))
def test_dict_round_trip(seed):
    graph = _random_graph(seed)
    assert _same_graph(graph, CsdfGraph.from_dict(graph.to_dict()))
    assert _same_graph(
        graph, CsdfGraph.from_dict(graph.to_dict(canonical=True))
    )


@LIMITED
@given(st.integers(0, 10**6))
def test_json_round_trip(seed):
    graph = _random_graph(seed)
    assert _same_graph(graph, graph_from_json(graph_to_json(graph)))


@LIMITED
@given(st.integers(0, 10**6), st.integers(0, 10**6))
def test_digest_stable_across_insertion_order(seed, shuffle_seed):
    graph = _random_graph(seed)
    shuffled = _reinserted(graph, random.Random(shuffle_seed))
    assert (
        graph.to_dict(canonical=True) == shuffled.to_dict(canonical=True)
    )
    assert graph_digest(graph) == graph_digest(shuffled)


@LIMITED
@given(st.integers(0, 10**6))
def test_digest_ignores_labels_but_not_structure(seed):
    graph = _random_graph(seed)

    renamed = CsdfGraph("a-different-name")
    for t in graph.tasks():
        renamed.add_task(t)
    for i, b in enumerate(graph.buffers()):
        renamed.add_buffer(
            Buffer(f"relabeled{i}", b.source, b.target, b.production,
                   b.consumption, b.initial_tokens, b.serialization)
        )
    assert graph_digest(graph) == graph_digest(renamed)

    if graph.buffer_count:
        first = next(iter(graph.buffers()))
        bumped = CsdfGraph(graph.name)
        for t in graph.tasks():
            bumped.add_task(t)
        for b in graph.buffers():
            tokens = b.initial_tokens + (1 if b.name == first.name else 0)
            bumped.add_buffer(
                Buffer(b.name, b.source, b.target, b.production,
                       b.consumption, tokens, b.serialization)
            )
        assert graph_digest(graph) != graph_digest(bumped)


def test_serialization_flag_round_trips():
    graph = make_random_live_graph(3).with_serialization_loops()
    back = CsdfGraph.from_dict(graph.to_dict())
    loops = [b.name for b in back.buffers() if b.serialization]
    assert loops == [b.name for b in graph.buffers() if b.serialization]
    assert loops  # the fixture really has serialization loops
    # The flagged copy and the bare graph are semantically different
    # and must not collide in the cache.
    assert graph_digest(graph) != graph_digest(
        graph.without_serialization_loops()
    )


def test_digest_works_on_dict_input():
    graph = make_random_live_graph(5)
    assert graph_digest(graph) == graph_digest(graph.to_dict())
