"""Cross-policy conformance: every registered scheduling policy must
produce a *certified* K-periodic schedule.

The contract, enforced for every policy × every golden-corpus graph
(plus a band of random live CSDFGs):

* the schedule verifies against token semantics (precedence-feasible);
* its period is **bit-identical** (exact Fraction) to the corpus
  oracle λ* — policies reshape starts, never the certified period;
* its K-vector and per-task periods match the ASAP baseline;
* resource-constrained policies never exceed their binding's capacity,
  and report an honest ``SchedulingError`` when the binding cannot
  hold the certified period (no silent period stretching).
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from pathlib import Path

import pytest

from repro.exceptions import DeadlockError, SchedulingError
from repro.scheduling import (
    ResourceBinding,
    build_from_context,
    build_schedule,
    periodic_peaks,
    policy_names,
    schedule_context,
)
from tests.conftest import golden_corpus_cases, make_random_live_graph

DATA = Path(__file__).parent / "data"
GOLDEN = golden_corpus_cases()
POLICIES = policy_names()
RANDOM_SEEDS = [11, 23, 37, 58]


@lru_cache(maxsize=None)
def _golden_case(file: str):
    from repro.io import load_graph

    graph = load_graph(DATA / file)
    return graph, schedule_context(graph)


@lru_cache(maxsize=None)
def _random_case(seed: int):
    graph = make_random_live_graph(seed)
    try:
        return graph, schedule_context(graph)
    except (DeadlockError, SchedulingError):
        return graph, None


def _check_policy(graph, ctx, policy, oracle=None):
    outcome = build_from_context(ctx, policy)
    assert outcome.policy == policy
    assert outcome.omega == ctx.omega  # exact Fraction equality
    if oracle is not None:
        assert outcome.omega == oracle
    schedule = outcome.schedule
    schedule.verify(graph, iterations=2)
    baseline = ctx.schedule_from_starts(ctx.asap_potentials())
    assert schedule.K == baseline.K
    assert schedule.task_periods == baseline.task_periods
    return outcome


@pytest.mark.skipif(not GOLDEN, reason="golden corpus not generated")
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("file,period", GOLDEN,
                         ids=[f for f, _ in GOLDEN])
def test_golden_corpus_conformance(file, period, policy):
    graph, ctx = _golden_case(file)
    _check_policy(graph, ctx, policy, oracle=period)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_random_graph_conformance(seed, policy):
    graph, ctx = _random_case(seed)
    if ctx is None:
        pytest.skip("random graph deadlocked or unbounded")
    _check_policy(graph, ctx, policy)


@pytest.mark.skipif(not GOLDEN, reason="golden corpus not generated")
@pytest.mark.parametrize("file", [f for f, _ in GOLDEN
                                  if "synthetic" not in f])
def test_list_with_unlimited_binding_is_asap(file):
    """Unlimited capacity never delays anything: list ≡ ASAP, start for
    start (the propagation can only re-derive the ASAP fixpoint)."""
    graph, ctx = _golden_case(file)
    asap = build_from_context(ctx, "asap")
    unlimited = build_from_context(
        ctx, "list", binding=ResourceBinding.unlimited(graph)
    )
    assert unlimited.schedule.starts == asap.schedule.starts
    assert unlimited.stats["reopened"] == 0


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_list_with_unlimited_binding_is_asap_random(seed):
    graph, ctx = _random_case(seed)
    if ctx is None:
        pytest.skip("random graph deadlocked or unbounded")
    asap = build_from_context(ctx, "asap")
    unlimited = build_from_context(
        ctx, "list", binding=ResourceBinding.unlimited(graph)
    )
    assert unlimited.schedule.starts == asap.schedule.starts


@pytest.mark.skipif(not GOLDEN, reason="golden corpus not generated")
def test_list_respects_tight_binding_capacity():
    """figure1 fits on two unit-capacity CPUs at the certified period;
    the periodic occupancy oracle confirms no capacity overshoot."""
    graph, ctx = _golden_case("golden_figure1.json")
    binding = ResourceBinding.balanced(graph, 2)
    outcome = build_from_context(ctx, "list", binding=binding)
    outcome.schedule.verify(graph, iterations=2)
    assert outcome.omega == ctx.omega
    peaks = periodic_peaks(ctx, outcome.schedule, binding)
    for resource, peak in peaks.items():
        assert peak <= binding.capacity_of(resource), (resource, peaks)


@pytest.mark.skipif(not GOLDEN, reason="golden corpus not generated")
def test_list_reports_infeasible_binding_honestly():
    """figure2 cannot hold λ* on two CPUs: the policy must refuse with
    a SchedulingError pointing at the mapping layer, not stretch the
    certified period."""
    graph, ctx = _golden_case("golden_figure2.json")
    binding = ResourceBinding.balanced(graph, 2)
    with pytest.raises(SchedulingError, match="apply_mapping"):
        build_from_context(ctx, "list", binding=binding)


def test_list_tight_binding_on_two_task_cycle(two_task_cycle):
    """Both tasks on one unit CPU: the cycle serializes naturally at
    the certified period 2 (durations 1+1 exactly fill it)."""
    binding = ResourceBinding(
        {"A": "cpu", "B": "cpu"}, {"cpu": 1}
    )
    outcome = build_schedule(two_task_cycle, "list", binding=binding)
    outcome.schedule.verify(two_task_cycle, iterations=3)
    assert outcome.omega == Fraction(2)
    assert max(outcome.stats["peaks"].values()) <= 1


@pytest.mark.skipif(not GOLDEN, reason="golden corpus not generated")
@pytest.mark.parametrize("file", ["golden_figure1.json",
                                  "golden_figure2.json",
                                  "golden_modem.json"])
def test_force_directed_never_worsens_peak(file):
    """The refinement contract: peak ≤ ASAP peak, period untouched."""
    graph, ctx = _golden_case(file)
    binding = ResourceBinding.unlimited(graph)
    outcome = build_from_context(ctx, "force-directed", binding=binding)
    outcome.schedule.verify(graph, iterations=2)
    assert outcome.omega == ctx.omega
    assert outcome.stats["peak_after"] <= outcome.stats["peak_before"]


@pytest.mark.parametrize("policy", POLICIES)
def test_build_schedule_entry_point(policy, multirate_cycle):
    """The one-call facade solves, builds, and certifies any policy."""
    outcome = build_schedule(multirate_cycle, policy)
    outcome.schedule.verify(multirate_cycle, iterations=3)
    assert outcome.omega == Fraction(5)
