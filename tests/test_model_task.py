"""Unit tests for repro.model.task."""

import pytest

from repro.exceptions import ModelError
from repro.model import Task


class TestTaskConstruction:
    def test_single_phase_default(self):
        t = Task("A")
        assert t.phase_count == 1
        assert t.durations == (1,)

    def test_multi_phase(self):
        t = Task("B", (1, 2, 3))
        assert t.phase_count == 3
        assert t.iteration_duration == 6

    def test_durations_coerced_to_ints(self):
        t = Task("C", [True, 2])  # bools are ints; list accepted
        assert t.durations == (1, 2)

    def test_zero_duration_allowed(self):
        assert Task("D", (0, 0)).iteration_duration == 0

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Task("", (1,))

    def test_empty_durations_rejected(self):
        with pytest.raises(ModelError):
            Task("E", ())

    def test_negative_duration_rejected(self):
        with pytest.raises(ModelError):
            Task("F", (1, -1))


class TestTaskAccessors:
    def test_duration_is_one_based(self):
        t = Task("A", (5, 7))
        assert t.duration(1) == 5
        assert t.duration(2) == 7

    def test_duration_out_of_range(self):
        t = Task("A", (5,))
        with pytest.raises(ModelError):
            t.duration(0)
        with pytest.raises(ModelError):
            t.duration(2)

    def test_is_sdf(self):
        assert Task("A", (3,)).is_sdf()
        assert not Task("A", (3, 3)).is_sdf()

    def test_with_durations(self):
        t = Task("A", (1, 2))
        u = t.with_durations((9, 9))
        assert u.name == "A" and u.durations == (9, 9)
        assert t.durations == (1, 2)  # original untouched

    def test_equality_and_hash(self):
        assert Task("A", (1, 2)) == Task("A", (1, 2))
        assert hash(Task("A", (1, 2))) == hash(Task("A", (1, 2)))
        assert Task("A", (1, 2)) != Task("A", (2, 1))
