"""Unit + agreement tests for the MCRP engines.

The three general engines (ratio iteration, Howard-accelerated, Lawler)
and Karp (unit transit) are independent implementations; disagreement on
any input is a bug by construction, which makes agreement a powerful
oracle (also exercised with random graphs in test_properties.py).
"""

import random
from fractions import Fraction

import pytest

from repro.exceptions import DeadlockError, SolverError
from repro.mcrp import (
    BiValuedGraph,
    max_cycle_mean,
    max_cycle_ratio,
    max_cycle_ratio_howard,
    max_cycle_ratio_lawler,
)

ENGINES = [max_cycle_ratio, max_cycle_ratio_howard, max_cycle_ratio_lawler]


def ring(values):
    """A simple ring with given (L, H) per arc."""
    g = BiValuedGraph(len(values))
    for i, (cost, transit) in enumerate(values):
        g.add_arc(i, (i + 1) % len(values), cost, transit)
    return g


class TestSimpleCycles:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_single_self_arc(self, engine):
        g = BiValuedGraph(1)
        g.add_arc(0, 0, 6, Fraction(2))
        result = engine(g)
        assert result.ratio == 3
        assert result.cycle_arcs == [0]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_unit_self_arc_at_the_bisection_gap_boundary(self, engine):
        # Regression: cost 1 / transit 1 makes Lawler's candidate gap
        # (1/B² = 1) exactly equal to the initial search interval; the
        # bisection used to stop at hi - lo == gap with lo still 0 and
        # then die certifying. λ* = 1 must come out of every engine.
        g = BiValuedGraph(3)
        g.add_arc(1, 1, 1, Fraction(1))
        result = engine(g)
        assert result.ratio == 1
        assert result.cycle_nodes == [1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_rings_max_wins(self, engine):
        g = BiValuedGraph(4)
        g.add_arc(0, 1, 1, 1)
        g.add_arc(1, 0, 1, 1)      # ratio 1
        g.add_arc(2, 3, 5, 1)
        g.add_arc(3, 2, 5, 1)      # ratio 5
        result = engine(g)
        assert result.ratio == 5
        assert set(result.cycle_nodes) == {2, 3}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fractional_ratio(self, engine):
        g = ring([(3, Fraction(1, 2)), (4, Fraction(5, 3))])
        assert engine(g).ratio == Fraction(7) / (Fraction(1, 2) + Fraction(5, 3))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_acyclic_returns_none(self, engine):
        g = BiValuedGraph(3)
        g.add_arc(0, 1, 5, 1)
        g.add_arc(1, 2, 5, 1)
        result = engine(g)
        assert result.is_acyclic

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_graph(self, engine):
        assert engine(BiValuedGraph(0)).is_acyclic


class TestNegativeTransit:
    """Arcs may carry negative H as long as every cycle stays positive."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mixed_sign_cycle_ok(self, engine):
        g = ring([(2, Fraction(3)), (2, Fraction(-1))])
        assert engine(g).ratio == Fraction(4, 2)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deadlock_zero_transit(self, engine):
        g = ring([(1, Fraction(1)), (1, Fraction(-1))])
        with pytest.raises(DeadlockError) as err:
            engine(g)
        assert err.value.cycle_nodes is not None

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deadlock_negative_transit(self, engine):
        g = ring([(0, Fraction(-1)), (0, Fraction(0))])
        with pytest.raises(DeadlockError):
            engine(g)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_hidden_deadlock_beside_zero_ratio_cycle(self, engine):
        """Regression (hypothesis seed 874): a zero-cost negative-transit
        cycle forbids all periods even when another cycle would certify
        ratio 0 — the deadlock must win."""
        g = BiValuedGraph(2)
        g.add_arc(0, 0, 0, Fraction(-1))  # deadlock cycle
        g.add_arc(1, 1, 0, Fraction(1))   # would certify ratio 0
        with pytest.raises(DeadlockError):
            engine(g)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_vacuous_zero_cycle_not_deadlock(self, engine):
        g = ring([(0, 0), (0, 0)])
        result = engine(g)
        assert result.ratio is None

    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_ratio_cycle_certified(self, engine):
        g = ring([(0, 1), (0, 2)])
        result = engine(g)
        assert result.ratio == 0
        assert result.cycle_arcs

    @pytest.mark.parametrize("engine", [max_cycle_ratio, max_cycle_ratio_lawler])
    def test_negative_cost_rejected(self, engine):
        g = ring([(-1, 1), (1, 1)])
        with pytest.raises(SolverError):
            engine(g)


class TestCertificates:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_cycle_is_closed_and_achieves_ratio(self, engine):
        rng = random.Random(7)
        g = BiValuedGraph(8)
        for _ in range(24):
            u, v = rng.randrange(8), rng.randrange(8)
            g.add_arc(u, v, rng.randint(0, 9), Fraction(rng.randint(1, 5)))
        result = engine(g)
        g.check_cycle(result.cycle_arcs)
        cost, transit = g.cycle_values(result.cycle_arcs)
        assert Fraction(cost, transit) == result.ratio

    def test_lower_bound_hint_correct(self):
        g = ring([(10, 1), (10, 1)])
        assert max_cycle_ratio(g, lower_bound=Fraction(3)).ratio == 10

    def test_overshooting_hint_recovers(self):
        g = ring([(10, 1), (10, 1)])
        assert max_cycle_ratio(g, lower_bound=Fraction(999)).ratio == 10


class TestRandomAgreement:
    @pytest.mark.parametrize("seed", range(30))
    def test_three_engines_agree(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 12)
        g = BiValuedGraph(n)
        for _ in range(rng.randint(n, 4 * n)):
            u, v = rng.randrange(n), rng.randrange(n)
            g.add_arc(
                u, v,
                rng.randint(0, 12),
                Fraction(rng.randint(1, 8), rng.randint(1, 4)),
            )
        results = [engine(g).ratio for engine in ENGINES]
        assert results[0] == results[1] == results[2]


class TestKarp:
    def test_matches_ratio_engine_on_unit_transit(self):
        rng = random.Random(11)
        for _ in range(20):
            n = rng.randint(2, 10)
            g = BiValuedGraph(n)
            for _ in range(rng.randint(n, 3 * n)):
                g.add_arc(rng.randrange(n), rng.randrange(n),
                          rng.randint(0, 20), 1)
            mean = max_cycle_mean(g)
            ratio = max_cycle_ratio(g)
            assert mean.ratio == ratio.ratio

    def test_karp_certificate(self):
        g = BiValuedGraph(3)
        g.add_arc(0, 1, 2, 1)
        g.add_arc(1, 0, 4, 1)   # mean 3
        g.add_arc(2, 2, 5, 1)   # mean 5
        result = max_cycle_mean(g)
        assert result.ratio == 5
        assert result.cycle_nodes == [2]

    def test_karp_acyclic(self):
        g = BiValuedGraph(2)
        g.add_arc(0, 1, 9, 1)
        assert max_cycle_mean(g).is_acyclic

    def test_karp_ignores_transit(self):
        g = BiValuedGraph(1)
        g.add_arc(0, 0, 8, Fraction(99))
        assert max_cycle_mean(g).ratio == 8  # mean over 1 arc
