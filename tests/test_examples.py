"""Smoke tests: every example script runs end to end.

Examples are user-facing documentation; breaking one silently is worse
than breaking an internal module. Each script is executed in-process
(fresh ``__main__``-style globals) with a temp working directory so
artifact writes stay sandboxed.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.name for p in EXAMPLES])
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_example_inventory():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert "paper_figures.py" in names
    assert len(names) >= 4  # quickstart + ≥3 domain scenarios
