"""Unit tests for repro.model.buffer (incl. the paper's Figure 1 numbers)."""

import pytest

from repro.exceptions import ModelError
from repro.model import Buffer


@pytest.fixture
def figure1() -> Buffer:
    """The paper's Figure 1 buffer: in=[2,3,1], out=[2,5], M0=0."""
    return Buffer("b", "t", "u", (2, 3, 1), (2, 5), 0)


class TestConstruction:
    def test_totals(self, figure1):
        assert figure1.total_production == 6
        assert figure1.total_consumption == 7

    def test_rate_gcd(self, figure1):
        assert figure1.rate_gcd == 1

    def test_rate_gcd_nontrivial(self):
        b = Buffer("b", "t", "u", (4, 2), (3,), 0)
        assert b.rate_gcd == 3

    def test_empty_rates_rejected(self):
        with pytest.raises(ModelError):
            Buffer("b", "t", "u", (), (1,), 0)

    def test_negative_rates_rejected(self):
        with pytest.raises(ModelError):
            Buffer("b", "t", "u", (1, -1), (1,), 0)

    def test_all_zero_production_rejected(self):
        with pytest.raises(ModelError):
            Buffer("b", "t", "u", (0, 0), (1,), 0)

    def test_negative_marking_rejected(self):
        with pytest.raises(ModelError):
            Buffer("b", "t", "u", (1,), (1,), -1)

    def test_zero_phase_rates_allowed(self):
        b = Buffer("b", "t", "u", (0, 2), (1, 0), 0)
        assert b.total_production == 2


class TestCumulativeCounts:
    def test_produced_prefix(self, figure1):
        assert figure1.produced_upto(1, 1) == 2
        assert figure1.produced_upto(2, 1) == 5
        assert figure1.produced_upto(3, 1) == 6

    def test_produced_across_iterations(self, figure1):
        # Ia⟨t_1, 2⟩ = 2 + 6 = 8 (used in the paper's §3.1 example)
        assert figure1.produced_upto(1, 2) == 8

    def test_consumed_prefix(self, figure1):
        assert figure1.consumed_upto(1, 1) == 2
        assert figure1.consumed_upto(2, 1) == 7

    def test_paper_executability_example(self, figure1):
        # ⟨t'_2,1⟩ can be done at the completion of ⟨t_1,2⟩:
        # M0 + Ia⟨t_1,2⟩ − Oa⟨t'_2,1⟩ = 0 + 8 − 7 ≥ 0 (but only just).
        margin = (
            figure1.initial_tokens
            + figure1.produced_upto(1, 2)
            - figure1.consumed_upto(2, 1)
        )
        assert margin == 1

    def test_bad_phase_rejected(self, figure1):
        with pytest.raises(ModelError):
            figure1.produced_upto(4, 1)
        with pytest.raises(ModelError):
            figure1.consumed_upto(3, 1)
        with pytest.raises(ModelError):
            figure1.produced_upto(1, 0)


class TestReversal:
    def test_reversed_swaps_roles(self, figure1):
        rev = figure1.reversed("rb", 9)
        assert rev.source == "u" and rev.target == "t"
        assert rev.production == (2, 5)
        assert rev.consumption == (2, 3, 1)
        assert rev.initial_tokens == 9

    def test_self_loop_detection(self):
        assert Buffer("b", "t", "t", (1,), (1,), 1).is_self_loop()
        assert not Buffer("b", "t", "u", (1,), (1,), 1).is_self_loop()
