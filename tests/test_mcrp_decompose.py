"""Unit tests for SCC-decomposed MCRP solving."""

import random
from fractions import Fraction

import pytest

from repro.exceptions import DeadlockError
from repro.mcrp import BiValuedGraph, max_cycle_ratio
from repro.mcrp.decompose import (
    max_cycle_ratio_sccs,
    strongly_connected_node_sets,
)


def two_rings_bridged():
    """ring(0,1) ratio 2, bridge, ring(3,4) ratio 7."""
    g = BiValuedGraph(5)
    g.add_arc(0, 1, 2, 1)
    g.add_arc(1, 0, 2, 1)
    g.add_arc(1, 2, 100, 1)  # bridge arcs never matter
    g.add_arc(2, 3, 100, 1)
    g.add_arc(3, 4, 7, 1)
    g.add_arc(4, 3, 7, 1)
    return g


class TestSccSets:
    def test_components_found(self):
        comps = strongly_connected_node_sets(two_rings_bridged())
        sets = {frozenset(c) for c in comps}
        assert frozenset({0, 1}) in sets
        assert frozenset({3, 4}) in sets

    def test_largest_first(self):
        g = BiValuedGraph(4)
        g.add_arc(0, 1, 1, 1)
        g.add_arc(1, 2, 1, 1)
        g.add_arc(2, 0, 1, 1)
        g.add_arc(3, 3, 1, 1)
        comps = strongly_connected_node_sets(g)
        assert len(comps[0]) == 3


class TestDecomposedSolve:
    def test_matches_monolithic(self):
        g = two_rings_bridged()
        assert max_cycle_ratio_sccs(g).ratio == max_cycle_ratio(g).ratio == 7

    def test_circuit_indices_are_global(self):
        g = two_rings_bridged()
        result = max_cycle_ratio_sccs(g)
        g.check_cycle(result.cycle_arcs)
        assert set(result.cycle_nodes) == {3, 4}

    def test_champion_pruning_with_seed(self):
        g = two_rings_bridged()
        # a certified seed just under the answer must not change it
        result = max_cycle_ratio_sccs(g, lower_bound=Fraction(13, 2))
        assert result.ratio == 7

    def test_seed_above_small_ring_skips_it(self):
        g = two_rings_bridged()
        result = max_cycle_ratio_sccs(g, lower_bound=Fraction(3))
        assert result.ratio == 7

    def test_acyclic(self):
        g = BiValuedGraph(3)
        g.add_arc(0, 1, 5, 1)
        g.add_arc(1, 2, 5, 1)
        assert max_cycle_ratio_sccs(g).is_acyclic

    def test_deadlock_nodes_remapped(self):
        g = BiValuedGraph(4)
        g.add_arc(0, 1, 1, 1)  # healthy ring in nodes 0,1
        g.add_arc(1, 0, 1, 1)
        g.add_arc(2, 3, 1, Fraction(-1))  # deadlocked ring in 2,3
        g.add_arc(3, 2, 1, 0)
        with pytest.raises(DeadlockError) as err:
            max_cycle_ratio_sccs(g)
        assert set(err.value.cycle_nodes) <= {2, 3}

    @pytest.mark.parametrize("seed", range(25))
    def test_random_agreement_with_monolithic(self, seed):
        rng = random.Random(seed + 5_000)
        n = rng.randint(2, 16)
        g = BiValuedGraph(n)
        for _ in range(rng.randint(n, 4 * n)):
            g.add_arc(
                rng.randrange(n), rng.randrange(n),
                rng.randint(0, 9),
                Fraction(rng.randint(-1, 6), rng.randint(1, 3)),
            )
        try:
            mono = max_cycle_ratio(g).ratio
        except DeadlockError:
            with pytest.raises(DeadlockError):
                max_cycle_ratio_sccs(g)
            return
        assert max_cycle_ratio_sccs(g).ratio == mono
