"""Unit tests for liveness analysis."""

import pytest

from repro.analysis import is_live
from repro.exceptions import DeadlockError
from repro.generators.paper import figure2_graph
from repro.model import csdf, sdf


class TestBasicLiveness:
    def test_marked_cycle_live(self, two_task_cycle):
        assert is_live(two_task_cycle)

    def test_unmarked_cycle_dead(self, deadlocked_cycle):
        assert not is_live(deadlocked_cycle)

    def test_dag_always_live(self):
        g = sdf({"A": 1, "B": 1, "C": 1},
                [("A", "B", 3, 2, 0), ("B", "C", 1, 4, 0)])
        assert is_live(g)

    def test_inconsistent_not_live(self):
        g = sdf({"A": 1, "B": 1},
                [("A", "B", 1, 1, 0), ("B", "A", 2, 1, 4)])
        assert not is_live(g)

    def test_figure2_live(self):
        assert is_live(figure2_graph())

    def test_undermarked_multirate_cycle(self):
        # with 3 tokens A fires once then everything starves; 4 tokens
        # let the full iteration (3 A firings, 2 B firings) complete
        g = sdf({"A": 1, "B": 1},
                [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 3)])
        assert not is_live(g)
        g_ok = sdf({"A": 1, "B": 1},
                   [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 4)])
        assert is_live(g_ok)

    def test_self_loop_needs_tokens(self):
        g = csdf({"A": [1, 1]}, [("A", "A", [1, 1], [1, 1], 0)])
        assert not is_live(g)
        g_ok = csdf({"A": [1, 1]}, [("A", "A", [1, 1], [1, 1], 1)])
        assert is_live(g_ok)

    def test_zero_rate_phases_enable_liveness(self):
        # unmarked 2-cycle that is live thanks to a zero first phase
        g = csdf(
            {"A": [1, 1], "B": [1]},
            [("A", "B", [1, 0], [1], 0), ("B", "A", [1], [0, 1], 0)],
        )
        assert is_live(g)


class TestLivenessMatchesMcrp:
    """Liveness and Theorem 2 feasibility must agree at K = q."""

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_on_random_graphs(self, seed):
        from tests.conftest import make_random_live_graph
        from repro.analysis import repetition_vector
        from repro.kperiodic import min_period_for_k

        g = make_random_live_graph(seed)
        assert is_live(g)
        q = repetition_vector(g)
        min_period_for_k(g, q)  # must not raise DeadlockError

    def test_dead_graph_raises_at_full_k(self, deadlocked_cycle):
        from repro.kperiodic import min_period_for_k

        with pytest.raises(DeadlockError):
            min_period_for_k(deadlocked_cycle, {"A": 1, "B": 1})
