"""Unit tests for the K-expansion G → G̃ (paper §3.2, Theorem 3's setup)."""

import pytest

from repro.analysis import repetition_vector
from repro.exceptions import ModelError
from repro.generators.paper import figure2_graph
from repro.kperiodic import expand_graph, expanded_repetition_vector
from repro.model import csdf, sdf


class TestExpandGraph:
    def test_duration_duplication(self):
        g = csdf({"A": [1, 2]}, [("A", "A", [1, 1], [1, 1], 2)])
        e = expand_graph(g, {"A": 3})
        assert e.task("A").durations == (1, 2, 1, 2, 1, 2)

    def test_rate_duplication_per_endpoint(self):
        g = csdf(
            {"A": [1], "B": [1, 1]},
            [("A", "B", [4], [1, 3], 5)],
        )
        e = expand_graph(g, {"A": 3, "B": 2})
        b = e.buffer("A_B_0")
        assert b.production == (4, 4, 4)
        assert b.consumption == (1, 3, 1, 3)
        assert b.initial_tokens == 5

    def test_unit_k_is_identity(self):
        g = figure2_graph()
        e = expand_graph(g, {t.name: 1 for t in g.tasks()})
        for t in g.tasks():
            assert e.task(t.name).durations == t.durations
        for b in g.buffers():
            eb = e.buffer(b.name)
            assert eb.production == b.production
            assert eb.consumption == b.consumption

    def test_expansion_totals_scale(self):
        g = figure2_graph()
        K = {"A": 2, "B": 1, "C": 3, "D": 1}
        e = expand_graph(g, K)
        for b in g.buffers():
            eb = e.buffer(b.name)
            assert eb.total_production == K[b.source] * b.total_production
            assert eb.total_consumption == K[b.target] * b.total_consumption

    def test_expanded_graph_is_consistent(self):
        g = figure2_graph()
        K = {"A": 3, "B": 2, "C": 2, "D": 1}
        e = expand_graph(g, K)
        assert repetition_vector(e)  # raises if inconsistent

    def test_missing_task_rejected(self):
        g = sdf({"A": 1}, [])
        with pytest.raises(ModelError):
            expand_graph(g, {})

    def test_non_positive_k_rejected(self):
        g = sdf({"A": 1}, [])
        with pytest.raises(ModelError):
            expand_graph(g, {"A": 0})


class TestExpandedRepetition:
    def test_paper_formula(self):
        # q̃_t = q_t · lcm(K) / K_t
        q = {"A": 3, "B": 4, "C": 6, "D": 1}
        K = {"A": 2, "B": 1, "C": 3, "D": 1}
        q_tilde = expanded_repetition_vector(q, K)
        assert q_tilde == {"A": 9, "B": 24, "C": 12, "D": 6}

    def test_unit_k_identity(self):
        q = {"A": 3, "B": 4}
        assert expanded_repetition_vector(q, {"A": 1, "B": 1}) == q

    def test_q_as_k_gives_constant(self):
        q = {"A": 3, "B": 4, "C": 6}
        q_tilde = expanded_repetition_vector(q, q)
        assert set(q_tilde.values()) == {12}  # lcm(3,4,6)

    def test_balance_preserved(self):
        g = figure2_graph()
        q = repetition_vector(g)
        K = {"A": 3, "B": 2, "C": 1, "D": 1}
        q_tilde = expanded_repetition_vector(q, K)
        e = expand_graph(g, K)
        for b in e.buffers():
            assert (
                q_tilde[b.source] * b.total_production
                == q_tilde[b.target] * b.total_consumption
            )
