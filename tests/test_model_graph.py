"""Unit tests for repro.model.graph."""

import pytest

from repro.exceptions import ModelError
from repro.model import Buffer, CsdfGraph, Task


def small_graph() -> CsdfGraph:
    g = CsdfGraph("g")
    g.add_task(Task("A", (1, 1)))
    g.add_task(Task("B", (2,)))
    g.add_buffer(Buffer("ab", "A", "B", (1, 2), (3,), 0))
    return g


class TestInsertion:
    def test_counts(self):
        g = small_graph()
        assert g.task_count == 2
        assert g.buffer_count == 1

    def test_duplicate_task_rejected(self):
        g = small_graph()
        with pytest.raises(ModelError):
            g.add_task(Task("A", (1,)))

    def test_duplicate_buffer_rejected(self):
        g = small_graph()
        with pytest.raises(ModelError):
            g.add_buffer(Buffer("ab", "A", "B", (1, 1), (1,), 0))

    def test_unknown_endpoint_rejected(self):
        g = small_graph()
        with pytest.raises(ModelError):
            g.add_buffer(Buffer("x", "A", "Z", (1, 1), (1,), 0))

    def test_rate_length_mismatch_rejected(self):
        g = small_graph()
        with pytest.raises(ModelError) as err:
            g.add_buffer(Buffer("bad", "A", "B", (1,), (1,), 0))
        assert "phases" in str(err.value)

    def test_unknown_lookups(self):
        g = small_graph()
        with pytest.raises(ModelError):
            g.task("Z")
        with pytest.raises(ModelError):
            g.buffer("zz")


class TestTopology:
    def test_in_out_buffers(self):
        g = small_graph()
        assert [b.name for b in g.out_buffers("A")] == ["ab"]
        assert [b.name for b in g.in_buffers("B")] == ["ab"]
        assert g.out_buffers("B") == []

    def test_total_phase_count(self):
        assert small_graph().total_phase_count() == 3

    def test_is_sdf_and_hsdf(self):
        g = small_graph()
        assert not g.is_sdf()
        h = CsdfGraph("h")
        h.add_task(Task("X", (1,)))
        h.add_task(Task("Y", (1,)))
        h.add_buffer(Buffer("xy", "X", "Y", (1,), (1,), 0))
        assert h.is_sdf() and h.is_hsdf()
        h2 = CsdfGraph("h2")
        h2.add_task(Task("X", (1,)))
        h2.add_task(Task("Y", (1,)))
        h2.add_buffer(Buffer("xy", "X", "Y", (2,), (1,), 0))
        assert h2.is_sdf() and not h2.is_hsdf()


class TestSerializationLoops:
    def test_loops_added_for_every_task(self):
        g = small_graph().with_serialization_loops()
        assert g.has_buffer("__serial_A")
        assert g.has_buffer("__serial_B")
        loop = g.buffer("__serial_A")
        assert loop.production == (1, 1)
        assert loop.consumption == (1, 1)
        assert loop.initial_tokens == 1
        assert loop.serialization

    def test_idempotent(self):
        g = small_graph().with_serialization_loops()
        again = g.with_serialization_loops()
        assert again.buffer_count == g.buffer_count

    def test_added_even_with_custom_self_loop(self):
        g = small_graph()
        g.add_buffer(Buffer("self_A", "A", "A", (1, 0), (0, 1), 2))
        s = g.with_serialization_loops()
        assert s.has_buffer("__serial_A")
        assert s.has_buffer("self_A")

    def test_without_serialization_loops_roundtrip(self):
        g = small_graph()
        s = g.with_serialization_loops()
        back = s.without_serialization_loops()
        assert back.buffer_count == g.buffer_count
        assert set(back.buffer_names()) == set(g.buffer_names())

    def test_copy_is_structural(self):
        g = small_graph()
        c = g.copy("copy")
        c.add_task(Task("C", (1,)))
        assert g.task_count == 2 and c.task_count == 3


class TestSummary:
    def test_summary_mentions_everything(self):
        text = small_graph().summary()
        assert "A" in text and "ab" in text and "M0=0" in text
