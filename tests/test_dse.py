"""DseSession: exactness, selective invalidation, lifecycle.

The contract under test is absolute: after *any* sequence of edits, the
session's certified λ* is bit-identical (`Fraction` equality) to a cold
solve of the edited graph — warm starts and block reuse move work, not
answers. The suite pins that on the golden corpus, on hypothesis-driven
random edit sequences (including λ*-lowering edits, which exercise the
warm-start downgrade rule), plus the block-invalidation accounting, the
warm-start bookkeeping, and pickling/reset semantics.
"""

import json
import pickle
from fractions import Fraction
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import golden_corpus_cases
from repro.buffers.capacity import bound_all_buffers, minimal_buffer_capacity
from repro.dse import DseSession, run_explore, solve_explore_payload
from repro.dse.explore import explore_payload_for
from repro.exceptions import DeadlockError, ModelError
from repro.kperiodic.kiter import throughput_kiter
from repro.model.graph import CsdfGraph

DATA = Path(__file__).parent / "data"


def cold_period(graph):
    """λ* of a *fresh* graph object: cold caches, cold q, cold K ladder."""
    try:
        return throughput_kiter(CsdfGraph.from_dict(graph.to_dict())).period
    except DeadlockError:
        return None


def session_period(session):
    try:
        return session.solve().period
    except DeadlockError:
        return None


# ----------------------------------------------------------------------
# Exactness: session vs cold solve after every edit
# ----------------------------------------------------------------------
class TestParity:
    def test_base_solve_matches_cold(self, multirate_cycle):
        session = DseSession(multirate_cycle)
        assert session.solve().period == cold_period(multirate_cycle)

    def test_capacity_sweep_parity(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        data_buffers = [
            b.name for b in multirate_cycle.buffers() if not b.is_self_loop()
        ]
        for cap in (12, 10, 8, 7, 14, 6):
            for name in data_buffers:
                floor = minimal_buffer_capacity(
                    multirate_cycle.buffer(name))
                session.set_capacity(name, max(cap, floor))
            assert session_period(session) == cold_period(session.graph)

    def test_duration_edit_parity_including_lowering(self, csdf_pipeline):
        session = DseSession(csdf_pipeline)
        session.solve()
        session.scale_task("t", 3)           # slowdown: seed kept
        assert session_period(session) == cold_period(session.graph)
        session.scale_task("t", 1, 3)        # speedup: λ* can drop
        assert session_period(session) == cold_period(session.graph)
        session.set_durations("u", (7, 2))
        assert session_period(session) == cold_period(session.graph)

    def test_rate_edit_parity(self, multirate_cycle):
        session = DseSession(multirate_cycle)
        session.solve()
        # Scaling one buffer's rates and marking uniformly keeps the
        # graph consistent but moves the constraint set.
        b = multirate_cycle.buffer("A_B_0")
        session.set_rates(
            "A_B_0",
            production=tuple(r * 2 for r in b.production),
            consumption=tuple(r * 2 for r in b.consumption),
            initial_tokens=b.initial_tokens * 2,
        )
        assert session_period(session) == cold_period(session.graph)

    def test_token_edits_parity(self, two_task_cycle):
        session = DseSession(two_task_cycle)
        for tokens in (2, 3, 1, 0):
            session.set_initial_tokens("B_A_0", tokens)
            assert session_period(session) == cold_period(session.graph)

    def test_deadlock_parity_and_recovery(self, two_task_cycle):
        session = DseSession(two_task_cycle)
        session.solve()
        session.set_initial_tokens("B_A_0", 0)   # tokenless cycle: dead
        with pytest.raises(DeadlockError):
            session.solve()
        # The session survives the failed solve; a reviving edit works
        # and parity still holds (direction state accumulated safely).
        session.set_initial_tokens("B_A_0", 2)
        assert session_period(session) == cold_period(session.graph)

    @pytest.mark.parametrize(
        "filename,period",
        golden_corpus_cases()[:4] or [(None, None)],
    )
    def test_golden_corpus_edit_parity(self, filename, period):
        if filename is None:
            pytest.skip("golden corpus not present")
        graph = CsdfGraph.from_dict(
            json.loads((DATA / filename).read_text()))
        session = DseSession(graph)
        assert session.solve().period == period
        # one slowdown, one speedup, one marking edit — parity each time
        task = sorted(graph.task_names())[0]
        session.scale_task(task, 2)
        assert session_period(session) == cold_period(session.graph)
        session.scale_task(task, 1, 2)
        assert session_period(session) == cold_period(session.graph)
        buffer = sorted(b.name for b in graph.buffers())[0]
        tokens = graph.buffer(buffer).initial_tokens
        session.set_initial_tokens(buffer, tokens + 3)
        assert session_period(session) == cold_period(session.graph)


# ----------------------------------------------------------------------
# Hypothesis: random edit sequences
# ----------------------------------------------------------------------
EDIT_STEP = st.one_of(
    st.tuples(st.just("cap"), st.integers(0, 1), st.integers(1, 3)),
    st.tuples(st.just("tokens"), st.integers(0, 1), st.integers(0, 8)),
    st.tuples(st.just("dur"), st.integers(0, 1),
              st.integers(1, 4), st.integers(1, 2)),
    st.tuples(st.just("reset")),
)


@settings(max_examples=25, deadline=None)
@given(steps=st.lists(EDIT_STEP, min_size=1, max_size=6))
def test_random_edit_sequence_parity(steps):
    from repro.model import sdf

    base = sdf(
        {"A": 3, "B": 2},
        [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)],
        name="hyp",
    )
    bounded = bound_all_buffers(base, 12)
    session = DseSession(bounded)
    data = [b.name for b in base.buffers()]
    tasks = sorted(base.task_names())
    for step in steps:
        if step[0] == "reset":
            session.reset()
        elif step[0] == "cap":
            name = data[step[1]]
            floor = minimal_buffer_capacity(base.buffer(name))
            marking = session.graph.buffer(name).initial_tokens
            session.set_capacity(name, max(floor * step[2], marking))
        elif step[0] == "tokens":
            session.set_initial_tokens(data[step[1]], step[2])
        else:
            session.scale_task(tasks[step[1]], step[2], step[3])
        assert session_period(session) == cold_period(session.graph)


# ----------------------------------------------------------------------
# Selective invalidation accounting
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_edit_drops_only_touched_buffers_blocks(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        session.solve()
        before = dict(session._cache._blocks)
        assert before, "solve must have populated the block cache"
        target = "__space_A_B_0"
        assert any(key[0] == target for key in before)
        session.set_capacity("A_B_0", 10)
        after_edit = session._cache._blocks
        assert not any(key[0] == target for key in after_edit)
        for key, block in after_edit.items():
            assert before[key] is block, (
                f"edit to {target} recomputed untouched block {key}")
        session.solve()
        # Re-solve recomputed only the touched buffer: every surviving
        # block of an untouched buffer is the *same object* as before.
        for key, block in session._cache._blocks.items():
            if key[0] != target:
                assert before.get(key) is block, (
                    f"re-solve recomputed untouched block {key}")

    def test_duration_edit_invalidates_source_buffers_and_serial_loop(
        self, csdf_pipeline
    ):
        session = DseSession(csdf_pipeline)
        session.solve()
        before = dict(session._cache._blocks)
        session.scale_task("t", 2)
        staled = {"t_u_0", "__serial_t"}
        for key, block in session._cache._blocks.items():
            assert key[0] not in staled
            assert before[key] is block
        assert session_period(session) == cold_period(session.graph)

    def test_invalidation_counters(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        session.solve()
        assert session.invalidated_blocks == 0
        session.set_capacity("A_B_0", 10)
        assert session.invalidated_blocks > 0
        stats = session.stats()
        assert stats["edits"] == {"capacity": 1}
        assert stats["invalidated_blocks"] == session.invalidated_blocks


# ----------------------------------------------------------------------
# Warm-start downgrade rule
# ----------------------------------------------------------------------
class TestWarmStart:
    def test_first_solve_skips_then_shrink_seeds(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        session.solve()
        assert session.warm_outcomes == {"skipped": 1}
        session.set_capacity("A_B_0", 10)      # shrink: seed survives
        session.solve()
        assert session.warm_outcomes.get("hit", 0) \
            + session.warm_outcomes.get("overshoot", 0) == 1

    def test_lowering_edit_downgrades_seed(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        session.solve()
        session.set_capacity("A_B_0", 20)      # growth: λ* may drop
        session.solve()
        assert session.warm_outcomes == {"skipped": 2}
        # the certified K was still reused (q unchanged)
        assert session._k_valid

    def test_rate_edit_drops_k_and_seed(self, multirate_cycle):
        session = DseSession(multirate_cycle)
        session.solve()
        b = multirate_cycle.buffer("A_B_0")
        session.set_rates(
            "A_B_0",
            production=tuple(r * 2 for r in b.production),
            consumption=tuple(r * 2 for r in b.consumption),
        )
        assert not session._k_valid
        session.solve()
        assert session.warm_outcomes == {"skipped": 2}

    def test_warm_disabled_is_identical(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        hot = DseSession(bounded)
        cold = DseSession(bounded, warm_start=False)
        for cap in (12, 9, 7):
            hot.set_capacity("A_B_0", cap)
            cold.set_capacity("A_B_0", cap)
            assert session_period(hot) == session_period(cold)


# ----------------------------------------------------------------------
# Lifecycle: reset, pickling, edit surface
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_reset_restores_base_point(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        base = session.solve().period
        session.set_capacity("A_B_0", 8)
        session.scale_task("A", 5)
        session.reset()
        assert session.graph is bounded
        assert session.last_result is None
        assert session.solve().period == base

    def test_reset_keeps_untouched_blocks(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        session.solve()
        before = dict(session._cache._blocks)
        session.set_capacity("A_B_0", 10)
        session.reset()
        for key, block in session._cache._blocks.items():
            assert key[0] != "__space_A_B_0"
            assert before[key] is block

    def test_pickle_roundtrip_preserves_warm_state(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        base = session.solve().period
        session.set_capacity("A_B_0", 10)
        session.solve()
        clone = pickle.loads(pickle.dumps(session))
        assert clone._cache is not session._cache
        assert len(clone._cache._blocks) == 0   # caches do not travel
        assert clone.last_result.period == session.last_result.period
        assert session_period(clone) == session_period(session)
        clone.reset()
        assert clone.solve().period == base

    def test_edit_methods_surface_is_live(self):
        for name in DseSession.EDIT_METHODS:
            assert callable(getattr(DseSession, name))

    def test_no_op_edits_invalidate_nothing(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        session = DseSession(bounded)
        session.solve()
        graph = session.graph
        session.set_capacity("A_B_0", 12)   # already the capacity
        session.set_initial_tokens(
            "A_B_0", bounded.buffer("A_B_0").initial_tokens)
        assert session.graph is graph
        assert session.invalidated_blocks == 0
        assert session._seed_valid

    def test_capacity_edit_requires_bounded_graph(self, multirate_cycle):
        session = DseSession(multirate_cycle)
        with pytest.raises(ModelError, match="not capacity-bounded"):
            session.set_capacity("A_B_0", 9)

    def test_unknown_op_and_extra_keys_raise(self, multirate_cycle):
        session = DseSession(multirate_cycle)
        with pytest.raises(ModelError, match="unknown explore op"):
            session.apply([{"op": "warp"}])
        with pytest.raises(ModelError, match="unexpected keys"):
            session.apply(
                [{"op": "scale_task", "task": "A", "numerator": 2,
                  "bogus": 1}])


# ----------------------------------------------------------------------
# Explore: manifests, payloads, facade
# ----------------------------------------------------------------------
class TestExplore:
    def points(self):
        return [
            {"name": "base"},
            {"name": "tight",
             "edits": [{"op": "set_capacity", "buffer": "A_B_0",
                        "capacity": 8}]},
            {"name": "slow", "reset": True,
             "edits": [{"op": "scale_task", "task": "A",
                        "numerator": 2}]},
        ]

    def test_run_explore_checked(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        records = list(run_explore(bounded, self.points(), check=True))
        assert [r["point"] for r in records] == ["base", "tight", "slow"]
        assert all(r["status"] == "OK" and r["check"] == "OK"
                   for r in records)
        base = Fraction(*records[0]["period"])
        assert Fraction(*records[2]["period"]) > base

    def test_explore_payload_roundtrip(self, multirate_cycle):
        bounded = bound_all_buffers(multirate_cycle, 12)
        payload = explore_payload_for(bounded, self.points())
        assert payload["kind"] == "explore"
        wire = json.loads(json.dumps(payload))   # crosses the pool
        outcome = solve_explore_payload(wire)
        assert outcome["status"] == "OK"
        assert len(outcome["results"]) == 3
        assert Fraction(*outcome["results"][0]["period"]) == \
            cold_period(bounded)

    def test_explore_deadlock_point_is_a_record_not_an_error(
        self, two_task_cycle
    ):
        points = [
            {"name": "dead",
             "edits": [{"op": "set_initial_tokens", "buffer": "B_A_0",
                        "tokens": 0}]},
            {"name": "alive", "reset": True},
        ]
        records = list(run_explore(two_task_cycle, points, check=True))
        assert records[0]["status"] == "DEADLOCK"
        assert records[1]["status"] == "OK"

    def test_malformed_manifest_is_an_error_outcome(self, two_task_cycle):
        payload = explore_payload_for(
            two_task_cycle, [{"edits": [{"op": "warp"}]}])
        outcome = solve_explore_payload(payload)
        assert outcome["status"] == "ERROR"
        assert "warp" in outcome["error"]

    def test_service_explore_inline(self, multirate_cycle):
        from repro.service import ThroughputService

        bounded = bound_all_buffers(multirate_cycle, 12)
        with ThroughputService() as service:
            records = service.explore(bounded, self.points(), check=True)
        assert [r["status"] for r in records] == ["OK"] * 3


# ----------------------------------------------------------------------
# Consumers stayed exact through the rewiring
# ----------------------------------------------------------------------
class TestRewiredConsumers:
    def test_storage_curve_matches_cold_probes(self, multirate_cycle):
        from repro.buffers.sizing import throughput_storage_curve

        curve = throughput_storage_curve(multirate_cycle, [1, 2, 3, 4])
        for scale, throughput in curve:
            caps = {
                b.name: scale * minimal_buffer_capacity(b)
                for b in multirate_cycle.buffers()
            }
            bounded = bound_all_buffers(multirate_cycle, caps)
            period = cold_period(bounded)
            if throughput is None:
                assert period is None
            else:
                assert throughput == Fraction(1, 1) / period

    def test_sensitivity_matches_cold_probes(self, multirate_cycle):
        from repro.analysis.sensitivity import duration_sensitivity
        from repro.transforms.surgery import with_scaled_task

        result = duration_sensitivity(multirate_cycle)
        for name, row in result.items():
            fast = cold_period(
                with_scaled_task(multirate_cycle, name, 1, 2))
            slow = cold_period(
                with_scaled_task(multirate_cycle, name, 2, 1))
            assert row.period_when_faster == fast
            assert row.period_when_slower == slow
