"""The distributed solve fabric: backends, queues, coordinator, workers.

Four layers of coverage:

* **Cache-backend conformance** — one parametrized contract (roundtrip,
  miss, contains, stats, mutation isolation, refusal of
  budget-dependent outcomes) against all four ``CacheBackend``s, plus
  backend-specific pins: LRU eviction (memory), byte-identical legacy
  layout (disk), concurrent hammering (sqlite WAL).
* **Job-queue conformance** — the lease/ack/nack contract against both
  ``JobQueue``s: visibility-timeout redelivery, stale-token rejection
  (no duplicated results), bounded retries into the dead-letter bucket
  (no lost results), heartbeat extension, and the
  never-replay-a-TIMEOUT rule.
* **Coordinator semantics** — in-batch dedup, cache-first
  short-circuiting, result sourcing, worker liveness.
* **End to end over localhost HTTP** — a coordinator plus two workers
  solve the golden corpus with `Fraction`-exact equality against the
  sequential path; a rerun is served entirely from the remote cache;
  and a worker that leases a chunk and dies (simulated *and* a real
  SIGKILLed subprocess) costs only a lease timeout, never a result.
"""

import json
import os
import subprocess
import sys
import threading
import time
from fractions import Fraction
from pathlib import Path

import pytest

import repro
from repro.distributed import (
    Coordinator,
    CoordinatorClient,
    CoordinatorServer,
    DiskCacheBackend,
    HTTPCacheBackend,
    MemoryCacheBackend,
    MemoryJobQueue,
    SQLiteCacheBackend,
    SQLiteJobQueue,
    Worker,
    make_cache_backend,
    make_job_queue,
)
from repro.io import load_graph
from repro.kperiodic import throughput_kiter
from repro.model import sdf
from repro.service import ResultCache, ThroughputJob, ThroughputService

from tests.conftest import golden_corpus_cases

DATA = Path(__file__).parent / "data"
CASES = golden_corpus_cases()

OK_OUTCOME = {
    "status": "OK", "period": [2, 1], "K": {"A": 1, "B": 1},
    "engine_used": "hybrid", "fallback": False, "wall_time": 0.01,
    "worker_pid": 1234,
}


def _digest(i: int = 0) -> str:
    return f"{i:x}".rjust(64, "0")


def two_cycle():
    return sdf(
        {"A": 1, "B": 1},
        [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)],
        name="two_cycle",
    )


# ----------------------------------------------------------------------
# Cache-backend conformance (all four implementations, one contract)
# ----------------------------------------------------------------------
@pytest.fixture(params=["memory", "disk", "sqlite", "http"])
def cache_backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryCacheBackend(max_entries=64)
    elif request.param == "disk":
        yield DiskCacheBackend(tmp_path / "cache")
    elif request.param == "sqlite":
        backend = SQLiteCacheBackend(tmp_path / "cache.db")
        yield backend
        backend.close()
    else:
        with CoordinatorServer() as server:
            yield HTTPCacheBackend(server.url)


def test_backend_roundtrip_and_miss(cache_backend):
    digest = _digest(1)
    assert cache_backend.get(digest) is None
    assert not cache_backend.contains(digest)
    assert cache_backend.put(digest, OK_OUTCOME)
    assert cache_backend.contains(digest)
    assert cache_backend.get(digest) == OK_OUTCOME


def test_backend_overwrite_is_idempotent(cache_backend):
    digest = _digest(2)
    cache_backend.put(digest, OK_OUTCOME)
    updated = dict(OK_OUTCOME, period=[3, 1])
    cache_backend.put(digest, updated)
    assert cache_backend.get(digest)["period"] == [3, 1]


def test_backend_stats_counters(cache_backend):
    digest = _digest(3)
    cache_backend.get(digest)                       # miss
    cache_backend.put(digest, OK_OUTCOME)           # put
    cache_backend.get(digest)                       # hit
    stats = cache_backend.stats()
    assert stats["backend"] == cache_backend.name
    assert stats["hits"] >= 1
    assert stats["misses"] >= 1
    assert stats["puts"] == 1


@pytest.mark.parametrize("status", ["TIMEOUT", "ERROR", "CANCELLED"])
def test_backend_never_stores_budget_dependent_outcomes(
    cache_backend, status
):
    digest = _digest(4)
    poisoned = dict(OK_OUTCOME, status=status)
    assert cache_backend.put(digest, poisoned) is False
    assert cache_backend.get(digest) is None
    assert not cache_backend.contains(digest)
    assert cache_backend.stats()["rejected_puts"] == 1


def test_backend_mutation_does_not_poison_store(cache_backend):
    digest = _digest(5)
    cache_backend.put(digest, OK_OUTCOME)
    first = cache_backend.get(digest)
    first["K"]["A"] = 999
    assert cache_backend.get(digest)["K"] == {"A": 1, "B": 1}


def test_result_cache_promotes_from_any_backend(cache_backend):
    digest = _digest(6)
    front = ResultCache(backend=cache_backend)
    front.put(digest, OK_OUTCOME)
    # A fresh two-tier cache over the same persistent backend: first
    # read answers from the backend tier, second from promoted memory.
    again = ResultCache(backend=cache_backend)
    entry, tier = again.get_with_tier(digest)
    assert entry == OK_OUTCOME
    assert tier == cache_backend.name
    assert again.get_with_tier(digest)[1] == "memory"
    assert again.stats.disk_hits == 1 and again.stats.memory_hits == 1


def test_memory_backend_lru_evicts_oldest():
    backend = MemoryCacheBackend(max_entries=2)
    for i in range(3):
        backend.put(_digest(i), OK_OUTCOME)
    assert backend.get(_digest(0)) is None
    assert backend.get(_digest(2)) is not None
    assert backend.entry_count() == 2


def test_disk_backend_layout_is_byte_identical_to_legacy(tmp_path):
    # The pre-fabric ResultCache wrote <root>/<digest[:2]>/<digest>.json
    # with sort_keys + indent=1; remote shards rely on that layout.
    backend = DiskCacheBackend(tmp_path)
    digest = _digest(7)
    backend.put(digest, OK_OUTCOME)
    path = tmp_path / digest[:2] / f"{digest}.json"
    assert path.exists()
    assert path.read_text() == json.dumps(
        OK_OUTCOME, sort_keys=True, indent=1
    )
    assert not list(tmp_path.rglob("*.tmp")), "temp file leaked"
    # and the two-tier cache reads the same layout via disk_root=
    legacy = ResultCache(memory_size=0, disk_root=tmp_path)
    assert legacy.get(digest) == OK_OUTCOME


def test_sqlite_backend_survives_concurrent_threads(tmp_path):
    backend = SQLiteCacheBackend(tmp_path / "cache.db")
    errors = []

    def hammer(base):
        try:
            for i in range(25):
                digest = _digest(base * 100 + i)
                backend.put(digest, OK_OUTCOME)
                assert backend.get(digest) == OK_OUTCOME
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert backend.entry_count() == 100
    assert backend.size_bytes() > 0
    backend.close()


def test_make_cache_backend_specs(tmp_path):
    assert isinstance(make_cache_backend("memory"), MemoryCacheBackend)
    assert make_cache_backend("memory:7").max_entries == 7
    disk = make_cache_backend(f"disk:{tmp_path / 'c'}")
    assert isinstance(disk, DiskCacheBackend)
    bare = make_cache_backend(str(tmp_path / "bare"))
    assert isinstance(bare, DiskCacheBackend)
    sqlite_backend = make_cache_backend(f"sqlite:{tmp_path / 'c.db'}")
    assert isinstance(sqlite_backend, SQLiteCacheBackend)
    sqlite_backend.close()
    assert isinstance(
        make_cache_backend("http://127.0.0.1:1"), HTTPCacheBackend
    )
    with pytest.raises(ValueError):
        make_cache_backend("disk:")


# ----------------------------------------------------------------------
# Job-queue conformance (both implementations, one contract)
# ----------------------------------------------------------------------
@pytest.fixture(params=["memory", "sqlite"])
def make_queue(request, tmp_path):
    created = []

    def factory(**kwargs):
        if request.param == "memory":
            queue = MemoryJobQueue(**kwargs)
        else:
            queue = SQLiteJobQueue(
                tmp_path / f"queue{len(created)}.db", **kwargs
            )
        created.append(queue)
        return queue

    yield factory
    for queue in created:
        queue.close()


def _payload(i: int = 0):
    return {"digest": _digest(i), "graph": {"i": i}}


def test_queue_lifecycle_and_dedup(make_queue):
    queue = make_queue()
    receipt = queue.submit(_payload(1))
    assert receipt.state == "queued"
    assert queue.submit(_payload(1)).state == "pending"  # deduplicated
    assert queue.depth()["pending"] == 1

    jobs = queue.lease(5, worker_id="w1")
    assert len(jobs) == 1
    job = jobs[0]
    assert job.digest == _digest(1) and job.attempt == 1
    assert job.payload == _payload(1)
    assert queue.lease(5) == []          # leased jobs are exclusive
    assert queue.result(job.digest) is None

    assert queue.ack(job.job_id, job.token, OK_OUTCOME)
    assert queue.result(job.digest) == OK_OUTCOME
    assert queue.submit(_payload(1)).state == "done"
    assert queue.depth() == {
        "pending": 0, "leased": 0, "done": 1, "dead": 0,
    }


def test_queue_visibility_timeout_redelivers_without_duplicates(make_queue):
    queue = make_queue(visibility_timeout=0.2, max_attempts=5)
    queue.submit(_payload(1))
    stale = queue.lease(1, worker_id="doomed")[0]
    time.sleep(0.3)  # the lease expires: simulated worker death
    redelivered = queue.lease(1, worker_id="survivor")
    assert len(redelivered) == 1
    fresh = redelivered[0]
    assert fresh.digest == stale.digest
    assert fresh.attempt == 2
    assert fresh.token != stale.token
    # The dead worker's late ack is rejected: results never duplicate.
    assert queue.ack(stale.job_id, stale.token, OK_OUTCOME) is False
    assert queue.result(fresh.digest) is None
    assert queue.ack(fresh.job_id, fresh.token, OK_OUTCOME) is True
    assert queue.result(fresh.digest) == OK_OUTCOME
    assert queue.counters.redeliveries == 1
    assert queue.counters.stale_acks == 1


def test_queue_nack_redelivers_then_dead_letters(make_queue):
    queue = make_queue(max_attempts=2)
    queue.submit(_payload(1))
    first = queue.lease(1, worker_id="w")[0]
    assert queue.nack(first.job_id, first.token, error="boom 1")
    second = queue.lease(1, worker_id="w")[0]
    assert second.attempt == 2
    assert queue.nack(second.job_id, second.token, error="boom 2")
    assert queue.lease(1) == []
    # Bounded retries exhausted: the waiter still gets a terminal
    # outcome (nothing is ever lost), flagged as a dead letter.
    outcome = queue.result(_digest(1))
    assert outcome["status"] == "ERROR"
    assert outcome["dead_letter"] is True
    assert "boom 2" in outcome["error"]
    dead = queue.dead_letters()
    assert len(dead) == 1 and dead[0]["digest"] == _digest(1)
    assert queue.depth()["dead"] == 1
    # ...and an explicit resubmit grants a fresh round of attempts.
    assert queue.submit(_payload(1)).state == "queued"
    assert queue.lease(1)[0].attempt == 1


def test_queue_lease_expiry_dead_letters_after_max_attempts(make_queue):
    queue = make_queue(visibility_timeout=0.1, max_attempts=1)
    queue.submit(_payload(1))
    queue.lease(1, worker_id="doomed")
    time.sleep(0.15)
    assert queue.depth()["dead"] == 1  # lazy reclaim ran
    assert queue.result(_digest(1))["dead_letter"] is True


def test_queue_timeout_outcomes_never_replay(make_queue):
    queue = make_queue()
    queue.submit(_payload(1))
    job = queue.lease(1)[0]
    timed_out = dict(OK_OUTCOME, status="TIMEOUT", period=None)
    assert queue.ack(job.job_id, job.token, timed_out)
    # The batch that enqueued it still sees its outcome...
    assert queue.result(_digest(1))["status"] == "TIMEOUT"
    # ...but a new submit re-queues instead of replaying the stale
    # budget-dependent answer.
    assert queue.submit(_payload(1)).state == "queued"
    assert queue.result(_digest(1)) is None
    assert len(queue.lease(1)) == 1


def test_queue_heartbeat_extends_lease(make_queue):
    queue = make_queue(visibility_timeout=0.4)
    queue.submit(_payload(1))
    job = queue.lease(1, worker_id="slow")[0]
    for _ in range(4):  # hold the lease ~0.6 s, past its first deadline
        time.sleep(0.15)
        assert queue.heartbeat(job.job_id, job.token)
        assert queue.lease(1) == []  # never redelivered meanwhile
    assert queue.ack(job.job_id, job.token, OK_OUTCOME)
    assert queue.counters.redeliveries == 0


def test_make_job_queue_specs(tmp_path):
    assert isinstance(make_job_queue("memory"), MemoryJobQueue)
    queue = make_job_queue(
        f"sqlite:{tmp_path / 'q.db'}", visibility_timeout=7,
        max_attempts=2,
    )
    assert isinstance(queue, SQLiteJobQueue)
    assert queue.visibility_timeout == 7 and queue.max_attempts == 2
    queue.close()
    assert isinstance(
        make_job_queue("http://127.0.0.1:1"), CoordinatorClient
    )
    with pytest.raises(ValueError):
        make_job_queue("postgres:nope")


# ----------------------------------------------------------------------
# Coordinator semantics (no HTTP)
# ----------------------------------------------------------------------
def test_coordinator_dedup_and_cache_short_circuit():
    coordinator = Coordinator()
    cached_digest = _digest(9)
    coordinator.cache.put(cached_digest, OK_OUTCOME)
    receipts = coordinator.submit_jobs([
        _payload(1), _payload(1), {"digest": cached_digest}, {},
    ])
    assert [r["state"] for r in receipts] == [
        "queued", "duplicate", "cached", "rejected",
    ]
    # the cached job was short-circuited: nothing queued for it
    assert coordinator.queue.depth()["pending"] == 1
    found = coordinator.result(cached_digest)
    assert found["source"] == "cache" and found["outcome"] == OK_OUTCOME


def test_coordinator_report_populates_cache_and_tracks_workers():
    coordinator = Coordinator()
    coordinator.submit_jobs([_payload(1)])
    [job] = coordinator.lease(1, worker_id="w1")
    accepted = coordinator.report(
        [{"job_id": job["job_id"], "token": job["token"],
          "digest": job["digest"], "outcome": OK_OUTCOME}],
        worker_id="w1",
    )
    assert accepted == [True]
    assert coordinator.cache.get(_digest(1)) == OK_OUTCOME
    stats = coordinator.stats()
    assert stats["workers"]["w1"]["leases"] == 1
    assert stats["workers"]["w1"]["results"] == 1
    assert stats["queue"]["done"] == 1
    # a second report with the consumed token is stale
    assert coordinator.report(
        [{"job_id": job["job_id"], "token": job["token"],
          "digest": job["digest"], "outcome": OK_OUTCOME}],
    ) == [False]


# ----------------------------------------------------------------------
# Facade queue modes (no coordinator)
# ----------------------------------------------------------------------
def test_service_inline_drain_needs_no_workers():
    service = ThroughputService(
        queue=MemoryJobQueue(), queue_inline_drain=True,
        queue_poll=0.01,
    )
    outcome = service.submit(two_cycle())
    assert outcome.ok and outcome.period == 2
    assert service.submit(two_cycle()).cache_hit == "memory"


def test_service_queue_wait_timeout_reports_error_not_cached():
    service = ThroughputService(
        queue=MemoryJobQueue(), queue_poll=0.01,
        queue_wait_timeout=0.2,
    )
    outcome = service.submit(two_cycle())
    assert outcome.status == "ERROR"
    assert "no worker answered" in outcome.error
    assert not outcome.cacheable
    # the failure was not cached: a drained retry really solves
    rescue = ThroughputService(
        queue=MemoryJobQueue(), queue_inline_drain=True,
        queue_poll=0.01,
    )
    assert rescue.submit(two_cycle()).ok


def test_service_and_worker_share_a_sqlite_queue_file(tmp_path):
    path = tmp_path / "shared.db"
    worker = Worker(
        SQLiteJobQueue(path), cache=None, worker_id="fs-worker",
        chunk_size=2, poll_interval=0.02,
    )
    thread = worker.run_in_thread()
    try:
        service = ThroughputService(
            queue=SQLiteJobQueue(path), queue_poll=0.02,
        )
        outcome = service.submit(two_cycle())
        assert outcome.ok and outcome.period == 2
    finally:
        worker.stop()
        thread.join(timeout=10)
    assert worker.stats.acks == 1


def test_service_accepts_bare_cache_backend(tmp_path):
    backend_file = tmp_path / "cache.db"
    with ThroughputService(
        cache=SQLiteCacheBackend(backend_file)
    ) as first:
        assert first.submit(two_cycle()).cache_hit == ""
    # a fresh process-equivalent over the same SQLite file
    with ThroughputService(
        cache=SQLiteCacheBackend(backend_file)
    ) as second:
        hit = second.submit(two_cycle())
        assert hit.ok and hit.cache_hit == "sqlite"


# ----------------------------------------------------------------------
# End to end over localhost HTTP
# ----------------------------------------------------------------------
def _start_workers(url, count, **kwargs):
    workers = [
        Worker(CoordinatorClient(url), worker_id=f"w{i}",
               poll_interval=0.02, **kwargs)
        for i in range(count)
    ]
    threads = [w.run_in_thread() for w in workers]
    return workers, threads


def _stop_workers(workers, threads):
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=10)


@pytest.mark.skipif(not CASES, reason="golden corpus not present")
def test_coordinator_two_workers_match_sequential_golden_corpus():
    graphs = [load_graph(DATA / name) for name, _ in CASES]
    with CoordinatorServer(
        queue=MemoryJobQueue(visibility_timeout=30)
    ) as server:
        workers, threads = _start_workers(server.url, 2, chunk_size=3)
        try:
            service = ThroughputService(
                queue=CoordinatorClient(server.url), queue_poll=0.02,
            )
            outcomes = service.submit_many(graphs)
        finally:
            _stop_workers(workers, threads)
        assert [o.period for o in outcomes] == [p for _, p in CASES]
        assert all(o.ok and o.cache_hit == "" for o in outcomes)
        # exact Fraction identity with the sequential path
        assert outcomes[0].period == throughput_kiter(graphs[0]).period
        # both workers participated and nothing was double-acked
        assert sum(w.stats.acks for w in workers) == len(graphs)
        assert sum(w.stats.stale for w in workers) == 0

        # A fresh client (new process in real life): served entirely
        # by the coordinator, no local worker needed.
        rerun = ThroughputService(
            queue=CoordinatorClient(server.url), queue_poll=0.02,
        )
        again = rerun.submit_many(graphs)
        assert [o.period for o in again] == [p for _, p in CASES]
        assert all(o.cache_hit == "remote" for o in again)


@pytest.mark.skipif(not CASES, reason="golden corpus not present")
def test_worker_death_mid_batch_redelivers_without_loss_or_duplicates():
    """The acceptance fault-injection: a worker leases a chunk and
    dies; lease-timeout redelivery completes the batch, the dead
    worker's late ack is rejected."""
    graphs = [load_graph(DATA / name) for name, _ in CASES]
    jobs = [ThroughputJob.from_graph(g) for g in graphs]
    with CoordinatorServer(
        queue=MemoryJobQueue(visibility_timeout=1.0, max_attempts=5)
    ) as server:
        client = CoordinatorClient(server.url)
        client.submit_many([job.payload() for job in jobs])
        # A "worker" leases a chunk and crashes (never acks, never
        # heartbeats) — exactly what SIGKILL looks like to the fabric.
        doomed = client.lease(4, worker_id="doomed")
        assert len(doomed) == 4

        workers, threads = _start_workers(server.url, 1, chunk_size=3)
        try:
            service = ThroughputService(
                queue=CoordinatorClient(server.url), queue_poll=0.02,
            )
            outcomes = service.submit_many(graphs)
        finally:
            _stop_workers(workers, threads)

        assert [o.period for o in outcomes] == [p for _, p in CASES]
        assert all(o.ok for o in outcomes)
        # the doomed chunk really was redelivered, not lost
        queue_stats = server.coordinator.queue.stats()
        assert queue_stats["redeliveries"] >= 4
        assert queue_stats["dead"] == 0
        # the crashed worker's ghost ack must be rejected (the live
        # worker's result already won) — no duplicated results.
        ghost = doomed[0]
        assert client.ack(
            ghost.job_id, ghost.token,
            dict(OK_OUTCOME, digest=ghost.digest),
        ) is False
        assert workers[0].stats.acks == len(graphs)


@pytest.mark.skipif(not CASES, reason="golden corpus not present")
def test_sigkilled_worker_subprocess_batch_still_completes(tmp_path):
    """Same scenario with a real OS process killed with SIGKILL."""
    graphs = [load_graph(DATA / name) for name, _ in CASES]
    jobs = [ThroughputJob.from_graph(g) for g in graphs]
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with CoordinatorServer(
        queue=MemoryJobQueue(visibility_timeout=1.0, max_attempts=5)
    ) as server:
        client = CoordinatorClient(server.url)
        client.submit_many([job.payload() for job in jobs])
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--coordinator", server.url, "--id", "victim",
             "--chunk-size", str(len(jobs)), "--poll", "0.05",
             "--workers", "1"],  # pool mode: slow enough to die mid-chunk
            env=env, cwd=str(tmp_path),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True,  # its own group: SIGKILL takes the
            # forked SolverPool child down too, not just the daemon
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                workers = server.coordinator.stats()["workers"]
                if workers.get("victim", {}).get("leases", 0) > 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("victim worker never leased anything")
            # SIGKILL the whole group: no goodbye, no acks, and the
            # pool child dies with the daemon instead of leaking.
            os.killpg(victim.pid, 9)
            victim.wait(timeout=30)

            workers, threads = _start_workers(
                server.url, 1, chunk_size=4,
            )
            try:
                service = ThroughputService(
                    queue=CoordinatorClient(server.url),
                    queue_poll=0.02, queue_wait_timeout=120,
                )
                outcomes = service.submit_many(graphs)
            finally:
                _stop_workers(workers, threads)
            assert [o.period for o in outcomes] == [
                p for _, p in CASES
            ]
            assert all(o.ok for o in outcomes)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup
                os.killpg(victim.pid, 9)


def test_worker_heartbeat_interval_follows_lease_deadlines():
    # The coordinator's visibility timeout, not a client-side default,
    # must set the heartbeat cadence: a 1.5 s lease needs ~0.5 s beats.
    with CoordinatorServer(
        queue=MemoryJobQueue(visibility_timeout=1.5)
    ) as server:
        client = CoordinatorClient(server.url)
        client.submit(_payload(1))
        worker = Worker(client, worker_id="short-lease")
        jobs = client.lease(1, worker_id="short-lease")
        interval = worker._heartbeat_interval(jobs)
        assert interval <= 0.51
        # ...and the batched heartbeat keeps the lease alive well past
        # its original deadline.
        done = threading.Event()
        beat = threading.Thread(
            target=worker._heartbeat_loop, args=(jobs, done),
            daemon=True,
        )
        beat.start()
        time.sleep(2.2)
        assert client.lease(1, worker_id="thief") == []  # not expired
        done.set()
        beat.join(timeout=5)
        assert worker.stats.heartbeats >= 2


def test_worker_ids_with_reserved_url_characters_survive():
    with CoordinatorServer() as server:
        client = CoordinatorClient(server.url)
        client.submit(_payload(1))
        weird = "host 1&rack=2#a"
        jobs = client.lease(1, worker_id=weird)
        assert len(jobs) == 1
        assert weird in server.coordinator.stats()["workers"]


def test_batch_reports_errors_when_coordinator_never_answers():
    service = ThroughputService(
        queue=CoordinatorClient("http://127.0.0.1:1", timeout=0.2),
        queue_poll=0.05, queue_wait_timeout=0.6,
    )
    outcome = service.submit(two_cycle())
    assert outcome.status == "ERROR"
    assert "enqueue" in outcome.error
    assert not outcome.cacheable


def test_worker_survives_coordinator_outage():
    # Nothing listens on this port: every lease raises. The daemon
    # must back off and keep retrying, not die on the first error.
    worker = Worker(
        CoordinatorClient("http://127.0.0.1:1", timeout=0.2),
        worker_id="patient", poll_interval=0.01,
    )
    thread = worker.run_in_thread()
    time.sleep(0.4)
    assert thread.is_alive(), "worker died on a transport error"
    assert worker.stats.queue_errors >= 1
    worker.stop()
    thread.join(timeout=10)
    assert not thread.is_alive()


def test_inline_drain_nacks_poisoned_payloads_instead_of_crashing():
    queue = MemoryJobQueue(max_attempts=1)
    # Someone else enqueued garbage on the shared queue: no "graph"
    # key at all, so the solve entry point raises instead of returning
    # an ERROR outcome.
    queue.submit({"digest": _digest(66)})
    service = ThroughputService(
        queue=queue, queue_inline_drain=True, queue_poll=0.01,
    )
    outcome = service.submit(two_cycle())
    assert outcome.ok and outcome.period == 2
    dead = queue.dead_letters()
    assert [d["digest"] for d in dead] == [_digest(66)]


def test_submit_async_tags_remote_hits_and_does_not_count_a_solve():
    with CoordinatorServer() as server:
        workers, threads = _start_workers(server.url, 1, chunk_size=2)
        try:
            first = ThroughputService(
                queue=CoordinatorClient(server.url), queue_poll=0.02,
            )
            assert first.submit(two_cycle()).ok
        finally:
            _stop_workers(workers, threads)
        rerun = ThroughputService(
            queue=CoordinatorClient(server.url), queue_poll=0.02,
        )
        outcome = rerun.submit_async(two_cycle()).result(timeout=30)
        assert outcome.ok and outcome.cache_hit == "remote"
        stats = rerun.stats()
        assert stats.solves == 0
        # ...and the batched path agrees on the accounting
        assert rerun.submit(two_cycle()).cache_hit == "memory"
        assert rerun.stats().solves == 0


def test_http_cache_backend_against_live_coordinator():
    with CoordinatorServer() as server:
        backend = HTTPCacheBackend(server.url)
        with ThroughputService(cache=backend) as first:
            assert first.submit(two_cycle()).cache_hit == ""
        # a second host sharing nothing but the coordinator URL
        with ThroughputService(
            cache=HTTPCacheBackend(server.url)
        ) as second:
            hit = second.submit(two_cycle())
            assert hit.ok and hit.period == 2
            assert hit.cache_hit == "http"
        remote = server.coordinator.cache.stats()
        assert remote["puts"] == 1


def test_http_cache_backend_degrades_to_misses_when_unreachable():
    backend = HTTPCacheBackend("http://127.0.0.1:1")  # nothing listens
    assert backend.get(_digest(1)) is None
    assert backend.put(_digest(1), OK_OUTCOME) is True  # swallowed
    assert not backend.contains(_digest(1))
    assert backend.stats()["errors"] >= 3


def test_coordinator_healthz_and_unknown_routes():
    with CoordinatorServer() as server:
        client = CoordinatorClient(server.url)
        health = client.healthz()
        assert health["ok"] is True
        from repro.distributed.client import CoordinatorError, http_json

        status, body = http_json(f"{server.url}/no/such/route")
        assert status == 404 and "error" in body
        with pytest.raises(CoordinatorError):
            CoordinatorClient("http://127.0.0.1:1").healthz()


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def test_cli_worker_requires_exactly_one_source(capsys):
    from repro.cli import main

    assert main(["worker"]) == 2
    assert "job source" in capsys.readouterr().err


def test_cli_worker_drains_a_sqlite_queue(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "queue.db"
    cache_path = tmp_path / "cache.db"
    feeder = SQLiteJobQueue(path)
    job = ThroughputJob.from_graph(two_cycle())
    feeder.submit(job.payload())
    assert main([
        "worker", "--queue", f"sqlite:{path}",
        "--cache", f"sqlite:{cache_path}", "--drain", "--poll", "0.02",
    ]) == 0
    out = capsys.readouterr().out
    assert "1 job(s)" in out and "1 acked" in out
    outcome = feeder.result(job.digest)
    assert outcome["status"] == "OK"
    assert Fraction(*outcome["period"]) == 2
    # the worker's write-through cache got the deterministic outcome
    side_cache = SQLiteCacheBackend(cache_path)
    assert side_cache.get(job.digest)["status"] == "OK"
    side_cache.close()
    feeder.close()


@pytest.mark.skipif(not CASES, reason="golden corpus not present")
def test_cli_batch_coordinator_roundtrip(tmp_path, capsys):
    from repro.cli import main

    with CoordinatorServer() as server:
        workers, threads = _start_workers(server.url, 2, chunk_size=3)
        try:
            out_path = tmp_path / "batch.jsonl"
            code = main([
                "batch", str(DATA / "golden_index.json"),
                "-o", str(out_path), "--coordinator", server.url,
                "--check", "--poll", "0.02",
            ])
        finally:
            _stop_workers(workers, threads)
        assert code == 0
        printed = capsys.readouterr().out
        assert "coordinator:" in printed
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        golden = {name: period for name, period in CASES}
        assert len(records) == len(golden)
        for record in records:
            assert record["status"] == "OK"
            assert record["matched"] is True
            assert Fraction(*record["period"]) == golden[record["file"]]


def test_cli_serve_stats_coordinator_mode(capsys):
    from repro.cli import main

    with CoordinatorServer() as server:
        coordinator = server.coordinator
        coordinator.submit_jobs([_payload(1)])
        [job] = coordinator.lease(1, worker_id="w1")
        coordinator.report(
            [{"job_id": job["job_id"], "token": job["token"],
              "digest": job["digest"], "outcome": OK_OUTCOME}],
            worker_id="w1",
        )
        assert main(["serve-stats", "--coordinator", server.url]) == 0
    out = capsys.readouterr().out
    assert "queue [memory]" in out
    assert "cache [memory]" in out
    assert "w1:" in out
    assert "dead letters: none" in out
