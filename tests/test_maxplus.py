"""Unit + spectral-theory tests for the max-plus module."""

from fractions import Fraction

import pytest

from repro.exceptions import ModelError, SolverError
from repro.maxplus import (
    MaxPlusMatrix,
    eigenvalue,
    spectral_analysis,
    state_matrix_from_marked_graph,
    throughput_maxplus,
)
from repro.mcrp.graph import BiValuedGraph


class TestMatrixAlgebra:
    def test_identity_is_neutral(self):
        a = MaxPlusMatrix([[1, None], [3, 0]])
        i = MaxPlusMatrix.identity(2)
        assert (a @ i) == a
        assert (i @ a) == a

    def test_multiplication(self):
        a = MaxPlusMatrix([[0, 2], [None, 1]])
        b = MaxPlusMatrix([[1, None], [0, 0]])
        c = a @ b
        # c[0][0] = max(0+1, 2+0) = 2
        assert c.rows[0][0] == 2
        assert c.rows[0][1] == 2
        assert c.rows[1][0] == 1

    def test_epsilon_annihilates(self):
        a = MaxPlusMatrix([[None, None], [None, None]])
        b = MaxPlusMatrix([[5, 5], [5, 5]])
        assert (a @ b) == MaxPlusMatrix.epsilon_matrix(2)

    def test_oplus(self):
        a = MaxPlusMatrix([[1, None], [0, 2]])
        b = MaxPlusMatrix([[0, 7], [None, 1]])
        s = a.oplus(b)
        assert s.rows == MaxPlusMatrix([[1, 7], [0, 2]]).rows

    def test_power(self):
        ring = MaxPlusMatrix([[None, 2], [3, None]])
        assert ring.power(2).rows[0][0] == 5
        assert ring.power(0) == MaxPlusMatrix.identity(2)

    def test_kleene_star_converges(self):
        a = MaxPlusMatrix([[None, -1], [-2, None]])  # all cycles < 0
        star = a.kleene_star()
        assert star.rows[0][0] == 0  # identity dominates
        assert star.rows[0][1] == -1

    def test_kleene_star_diverges_on_positive_cycle(self):
        a = MaxPlusMatrix([[1]])
        with pytest.raises(ValueError):
            a.kleene_star()

    def test_apply(self):
        a = MaxPlusMatrix([[0, 2], [None, 1]])
        assert a.apply([0, 0]) == [2, 1]
        assert a.apply([None, 5]) == [7, 6]

    def test_square_enforced(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix([[1, 2]])


class TestSpectral:
    def test_two_cycle_eigenvalue(self):
        a = MaxPlusMatrix([[None, 2], [4, None]])
        assert eigenvalue(a) == 3

    def test_acyclic_has_no_eigenvalue(self):
        a = MaxPlusMatrix([[None, 1], [None, None]])
        assert eigenvalue(a) is None
        with pytest.raises(SolverError):
            spectral_analysis(a)

    def test_negative_entries_handled(self):
        a = MaxPlusMatrix([[None, -2], [-4, None]])
        assert eigenvalue(a) == -3

    def test_eigenvector_property_irreducible(self):
        a = MaxPlusMatrix([
            [None, 2, None],
            [None, None, 1],
            [3, None, None],
        ])
        result = spectral_analysis(a)
        assert result.eigenvalue == 2
        assert all(r == 0 for r in result.residual(a)
                   if r is not None)
        image = a.apply(result.eigenvector)
        expected = [
            None if v is None else v + result.eigenvalue
            for v in result.eigenvector
        ]
        assert image == expected

    def test_eigenvector_on_random_strongly_connected(self):
        import random

        rng = random.Random(9)
        n = 6
        rows = [[None] * n for _ in range(n)]
        for i in range(n):  # ring guarantees strong connectivity
            rows[(i + 1) % n][i] = Fraction(rng.randint(0, 9))
        for _ in range(10):
            rows[rng.randrange(n)][rng.randrange(n)] = Fraction(
                rng.randint(0, 9)
            )
        a = MaxPlusMatrix(rows)
        result = spectral_analysis(a)
        image = a.apply(result.eigenvector)
        for img, v in zip(image, result.eigenvector):
            assert img == v + result.eigenvalue


class TestStateMatrix:
    def test_zero_delay_folding(self):
        # u --(0 tokens, cost 2)--> v, v --(1 token, cost 3)--> u
        g = BiValuedGraph(2, labels=["u", "v"])
        g.add_arc(0, 1, 2, 0)
        g.add_arc(1, 0, 3, 1)
        matrix, labels = state_matrix_from_marked_graph(g)
        assert len(labels) == 2
        # x_u(k) = x_v(k−1) + 3 ; x_v(k) = x_u(k) + 2 = x_v(k−1) + 5
        assert matrix.rows[0][1] == 3
        assert matrix.rows[1][1] == 5
        assert eigenvalue(matrix) == 5

    def test_multi_token_chain_expansion(self):
        g = BiValuedGraph(1, labels=["t"])
        g.add_arc(0, 0, 4, 3)  # self-arc with 3 tokens: mean 4/3
        matrix, labels = state_matrix_from_marked_graph(g)
        assert len(labels) == 3  # t + 2 delay nodes
        assert eigenvalue(matrix) == Fraction(4, 3)

    def test_fractional_delay_rejected(self):
        g = BiValuedGraph(1)
        g.add_arc(0, 0, 1, Fraction(1, 2))
        with pytest.raises(ModelError):
            state_matrix_from_marked_graph(g)

    def test_zero_delay_cycle_rejected(self):
        g = BiValuedGraph(2)
        g.add_arc(0, 1, 1, 0)
        g.add_arc(1, 0, 1, 0)
        with pytest.raises(ModelError):
            state_matrix_from_marked_graph(g)


class TestThroughputEngine:
    def test_figure2(self):
        from repro.generators.paper import figure2_graph

        assert throughput_maxplus(figure2_graph()).period == 13

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_kiter_on_random_graphs(self, seed):
        from repro.kperiodic import throughput_kiter
        from tests.conftest import make_random_live_graph

        g = make_random_live_graph(seed, tasks=3)
        mp = throughput_maxplus(g)
        assert mp.period == throughput_kiter(g).period

    def test_two_task_cycle(self, two_task_cycle):
        assert throughput_maxplus(two_task_cycle).period == 2
