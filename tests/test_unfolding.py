"""Unit + oracle tests for the CSDF→HSDF unfolding baseline."""

import pytest

from repro.analysis import repetition_vector
from repro.baselines.expansion import throughput_expansion
from repro.baselines.unfolding import (
    throughput_unfolding,
    unfold_csdf_to_hsdf,
)
from repro.exceptions import DeadlockError
from repro.generators.paper import figure2_graph
from repro.kperiodic import throughput_kiter
from repro.model import csdf, sdf
from tests.conftest import make_random_live_graph


class TestStructure:
    def test_node_count_is_sum_q_phi(self):
        g = figure2_graph()
        q = repetition_vector(g)
        hsdf, index = unfold_csdf_to_hsdf(g)
        expected = sum(
            q[t.name] * t.phase_count for t in g.tasks()
        )
        assert hsdf.node_count == expected
        assert ("B", 3, 4) in index  # last phase of B's 4th execution

    def test_reduced_never_larger(self):
        g = figure2_graph()
        full, _ = unfold_csdf_to_hsdf(g, reduced=False)
        red, _ = unfold_csdf_to_hsdf(g, reduced=True)
        assert red.node_count == full.node_count
        assert red.arc_count <= full.arc_count

    def test_delays_non_negative(self):
        g = figure2_graph()
        hsdf, _ = unfold_csdf_to_hsdf(g)
        assert all(t >= 0 for t in hsdf.arc_transit)


class TestExactness:
    def test_figure2(self):
        assert throughput_unfolding(figure2_graph()).period == 13

    def test_matches_expansion_on_sdf(self, multirate_cycle):
        assert (
            throughput_unfolding(multirate_cycle).period
            == throughput_expansion(multirate_cycle).period
        )

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_kiter_on_random_csdf(self, seed):
        g = make_random_live_graph(seed, tasks=4)
        assert (
            throughput_unfolding(g).period
            == throughput_kiter(g).period
        )

    @pytest.mark.parametrize("reduced", [False, True])
    def test_reduction_is_exact(self, reduced):
        for seed in range(6):
            g = make_random_live_graph(seed + 60, tasks=4)
            assert (
                throughput_unfolding(g, reduced=reduced).period
                == throughput_kiter(g).period
            )

    def test_deadlock_detected(self, deadlocked_cycle):
        with pytest.raises(DeadlockError):
            throughput_unfolding(deadlocked_cycle)

    @pytest.mark.parametrize("iterations", [1, 2, 3])
    def test_multi_iteration_unfolding_same_period(self, iterations):
        """K = q granularity is already exact (deeper unfolding agrees).

        Note the r-iteration unfolding's ratio is r·Ω (its 'iteration' is
        r graph iterations), so normalize before comparing.
        """
        from repro.mcrp import max_cycle_ratio

        g = figure2_graph()
        hsdf, _ = unfold_csdf_to_hsdf(g, iterations=iterations)
        ratio = max_cycle_ratio(hsdf).ratio
        assert ratio == 13 * iterations

    def test_bad_iterations_rejected(self):
        with pytest.raises(ValueError):
            unfold_csdf_to_hsdf(figure2_graph(), iterations=0)

    def test_cyclostatic_zero_phase_ring(self):
        # the zero-rate-phase ring from the liveness tests: live without
        # markings; unfolding must agree with K-Iter on it.
        g = csdf(
            {"A": [1, 1], "B": [1]},
            [("A", "B", [1, 0], [1], 0), ("B", "A", [1], [0, 1], 0)],
        )
        assert (
            throughput_unfolding(g).period == throughput_kiter(g).period
        )
