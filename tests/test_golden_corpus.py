"""Regression corpus: serialized graphs with triple-verified periods.

Each graph in ``tests/data/`` was stored together with its exact period
after K-Iter, symbolic execution and CSDF unfolding all agreed on it
(regenerate with ``PYTHONPATH=src python tools/make_golden_corpus.py``).
Any future change that shifts a period on any engine fails here with
the exact offending instance — the strongest cheap regression net the
library has.

The module skips cleanly when the corpus is absent (e.g. a sparse
checkout): everything else in the suite is independent of it.
"""

import json
from fractions import Fraction
from pathlib import Path

import pytest

from repro.baselines import throughput_periodic, throughput_symbolic
from repro.baselines.unfolding import throughput_unfolding
from repro.io import load_graph
from repro.kperiodic import throughput_kiter

DATA = Path(__file__).parent / "data"
try:
    INDEX = json.loads((DATA / "golden_index.json").read_text())
except FileNotFoundError:
    pytest.skip(
        "golden corpus not present; regenerate with "
        "tools/make_golden_corpus.py",
        allow_module_level=True,
    )
CASES = [(entry["file"], Fraction(*entry["period"])) for entry in INDEX]


@pytest.mark.parametrize("filename,period", CASES,
                         ids=[c[0] for c in CASES])
def test_kiter_golden(filename, period):
    graph = load_graph(DATA / filename)
    assert throughput_kiter(graph).period == period


@pytest.mark.parametrize("filename,period", CASES,
                         ids=[c[0] for c in CASES])
def test_symbolic_golden(filename, period):
    graph = load_graph(DATA / filename)
    assert throughput_symbolic(graph).period == period


@pytest.mark.parametrize("filename,period", CASES[:6],
                         ids=[c[0] for c in CASES[:6]])
def test_unfolding_golden(filename, period):
    graph = load_graph(DATA / filename)
    assert throughput_unfolding(graph).period == period


@pytest.mark.parametrize("filename,period", CASES,
                         ids=[c[0] for c in CASES])
def test_periodic_upper_bounds_golden(filename, period):
    graph = load_graph(DATA / filename)
    result = throughput_periodic(graph)
    if result.feasible:
        assert result.period >= period


def test_corpus_is_nonempty():
    assert len(CASES) >= 10
