#!/usr/bin/env python
"""Fail on broken relative links in the repository's Markdown docs.

Scans ``README.md``, ``ARCHITECTURE.md`` and every ``docs/**/*.md`` for
inline Markdown links ``[text](target)`` and checks that each
*relative* target resolves to an existing file or directory (external
``scheme://`` links and pure in-page ``#anchor`` links are skipped;
a ``file#anchor`` target is checked for the file part, and when the
target file is itself one of the scanned Markdown sources the anchor
must match one of its headings). Exits non-zero listing every broken
link — the CI ``docs`` job and ``tests/test_docs.py`` both run this,
so a doc rename cannot silently orphan its references.

Usage: ``python tools/check_links.py [root]`` (default: repo root).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

#: ``[text](target)`` inline links; images ``![alt](target)`` match too
#: (the leading ``!`` simply isn't captured). Nested parens are not
#: supported — none of our docs use them.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _doc_files(root: Path) -> List[Path]:
    files = [root / "README.md", root / "ARCHITECTURE.md"]
    files.extend(sorted((root / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor of a heading line (lowercase, dashes)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(markdown: str) -> Set[str]:
    return {_anchor_of(h) for h in _HEADING.findall(markdown)}


def check_links(root: Path) -> List[str]:
    """All broken relative links under ``root`` as human-readable rows."""
    root = root.resolve()
    docs = _doc_files(root)
    anchor_cache: Dict[Path, Set[str]] = {
        doc.resolve(): _anchors(doc.read_text()) for doc in docs
    }
    broken: List[str] = []
    for doc in docs:
        for lineno, target in _iter_links(doc):
            if "://" in target or target.startswith("mailto:"):
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:  # in-page anchor: the renderer's problem
                continue
            resolved = (doc.parent / path_part).resolve()
            where = f"{doc.relative_to(root)}:{lineno}"
            if not resolved.exists():
                broken.append(f"{where}: broken link -> {target}")
                continue
            if anchor and resolved in anchor_cache:
                if anchor not in anchor_cache[resolved]:
                    broken.append(
                        f"{where}: missing anchor -> {target}"
                    )
    return broken


def _iter_links(doc: Path) -> List[Tuple[int, str]]:
    links: List[Tuple[int, str]] = []
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        for match in _LINK.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent
    docs = _doc_files(root)
    broken = check_links(root)
    for row in broken:
        print(row, file=sys.stderr)
    print(f"checked {len(docs)} Markdown file(s): "
          f"{len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
