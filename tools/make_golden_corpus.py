"""Regenerate the golden regression corpus under ``tests/data/``.

Each corpus graph is saved together with its exact period only after
**triple verification**: K-Iter, symbolic execution and (for the small
instances that lead the index) CSDF unfolding must all agree on the
exact ``Fraction``. The corpus is deliberately small and fast — it is
the cheap regression net ``tests/test_golden_corpus.py`` runs on every
engine change.

Usage::

    PYTHONPATH=src python tools/make_golden_corpus.py

Rewrites ``tests/data/*.json`` and ``tests/data/golden_index.json``,
plus the **job-digest stability fixture**
``tests/data/job_digests.json``: the canonical-JSON job digest of every
corpus graph (and two inline reference graphs) under the service's
default solve parameters. Remote cache keys must stay byte-stable
across versions and platforms — ``tests/test_job_digests.py`` fails if
current code computes anything else. ``--digests-only`` regenerates
just that fixture (after an *intentional* ``CACHE_SCHEMA_VERSION``
bump) without re-verifying the corpus.

``--fleet`` instead regenerates the **fleet fixture**
``tests/data/fleet/`` + ``fleet_index.json``: ~40 small/medium graphs
(paper instances plus seeded random SDF/CSDF) sized for the batched
multi-graph solver's tests and the ``bench_service`` chunk-throughput
gate. Every fleet period is verified by three independent oracles
before it is written: K-Iter under two structurally different engines
(``ratio-iteration``'s SPFA oracle and ``karp``'s cycle-mean table)
plus symbolic execution when the steady state is tractable (the
``hybrid`` prefilter pipeline otherwise); the index records which.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

from repro.baselines import throughput_symbolic
from repro.baselines.unfolding import throughput_unfolding
from repro.generators.paper import figure1_buffer, figure2_graph
from repro.generators.dsp import modem, samplerate_converter
from repro.generators.synthetic import graph1, graph2, graph3
from repro.io import save_graph
from repro.kperiodic import throughput_kiter

DATA = Path(__file__).resolve().parent.parent / "tests" / "data"


def random_live_graph(seed: int, tasks: int = 5, csdf_phases: int = 2):
    """Small random live CSDFG (mirrors ``tests.conftest``'s factory)."""
    from repro.generators._machinery import GraphSpec, random_q_vector

    rng = random.Random(seed)
    spec = GraphSpec(f"rand{seed}", rng)
    q_values = random_q_vector(rng, tasks, max_q=4)
    for i, q in enumerate(q_values):
        spec.add_task(
            f"t{i}", q, phases=rng.randint(1, csdf_phases),
            duration_range=(0, 6),
        )
    names = [f"t{i}" for i in range(tasks)]
    for i in range(1, tasks):
        spec.connect(names[rng.randrange(i)], names[i],
                     rate_scale=rng.randint(1, 2))
    for _ in range(rng.randint(1, 2)):
        j = rng.randrange(1, tasks)
        i = rng.randrange(j)
        spec.connect(names[j], names[i], rate_scale=1)
    return spec.build()


# The first six entries are also verified by CSDF unfolding in the test
# module, so keep the smallest instances up front.
CASES = [
    ("figure1", figure1_buffer),
    ("figure2", figure2_graph),
    ("synthetic1", lambda: graph1(1)),
    ("synthetic2", lambda: graph2(1)),
    ("rand101", lambda: random_live_graph(101, tasks=4)),
    ("rand202", lambda: random_live_graph(202, tasks=4)),
    ("synthetic3", lambda: graph3(1)),
    ("samplerate", samplerate_converter),
    ("modem", modem),
    ("rand303", lambda: random_live_graph(303, tasks=5)),
    ("rand404", lambda: random_live_graph(404, tasks=5)),
    ("rand505", lambda: random_live_graph(505, tasks=6)),
]

UNFOLDED = 6  # how many leading cases the unfolding oracle re-verifies

#: The solve parameters every pinned digest assumes — kept equal to
#: :class:`repro.service.facade.ThroughputService`'s defaults.
JOB_DEFAULTS = {
    "engine": "hybrid",
    "fallback_engines": ["ratio-iteration"],
    "update_policy": "lcm",
    "warm_start": True,
}


def inline_reference_graphs():
    """Corpus-independent graphs whose digests are pinned too.

    Mirrored in ``tests/test_job_digests.py`` so digest stability is
    checked even in a sparse checkout without the corpus files.
    """
    from repro.model import sdf

    return {
        "inline:two_cycle": sdf(
            {"A": 1, "B": 1},
            [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)],
            name="two_cycle",
        ),
        "inline:multirate": sdf(
            {"A": 1, "B": 2},
            [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)],
            name="multirate",
        ),
    }


def write_job_digests() -> Path:
    """Regenerate ``tests/data/job_digests.json`` from current code."""
    from repro.io import load_graph
    from repro.service.job import CACHE_SCHEMA_VERSION, ThroughputJob

    options = dict(JOB_DEFAULTS)
    options["fallback_engines"] = tuple(options["fallback_engines"])
    jobs = []
    index = json.loads((DATA / "golden_index.json").read_text())
    for entry in index:
        job = ThroughputJob.from_graph(
            load_graph(DATA / entry["file"]), **options
        )
        jobs.append({
            "source": entry["file"],
            "graph_digest": job.graph_digest,
            "digest": job.digest,
        })
    for source, graph in inline_reference_graphs().items():
        job = ThroughputJob.from_graph(graph, **options)
        jobs.append({
            "source": source,
            "graph_digest": job.graph_digest,
            "digest": job.digest,
        })
    path = DATA / "job_digests.json"
    path.write_text(json.dumps({
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "job_defaults": JOB_DEFAULTS,
        "jobs": jobs,
    }, indent=2) + "\n")
    print(f"wrote {len(jobs)} pinned job digests to {path}")
    return path


FLEET = Path(__file__).resolve().parent.parent / "tests" / "data" / "fleet"

#: Steady states longer than this make symbolic execution the slow
#: oracle; those cases cross-check with the hybrid engine instead.
FLEET_SYMBOLIC_BOUND = 4_000


def fleet_cases():
    """~40 named graph factories: paper instances + seeded random."""
    from repro.generators import random_connected_sdf

    cases = [
        ("figure1", figure1_buffer),
        ("figure2", figure2_graph),
        ("samplerate", samplerate_converter),
        ("modem", modem),
    ]
    for i in range(12):  # small CSDF (multi-phase, tight q)
        seed = 1000 + i
        cases.append((
            f"csdf{seed}",
            lambda s=seed: random_live_graph(s, tasks=4 + s % 3),
        ))
    for i in range(12):  # small/medium SDF
        seed = 2000 + i
        cases.append((
            f"sdf{seed}",
            lambda s=seed: random_connected_sdf(s, tasks=6 + s % 5,
                                                max_q=6),
        ))
    for i in range(12):  # medium SDF — where the batched kernel pays
        seed = 3000 + i
        cases.append((
            f"med{seed}",
            lambda s=seed: random_connected_sdf(s, tasks=10 + s % 8,
                                                max_q=6),
        ))
    return cases


def _steady_state_len(graph) -> int:
    from repro.analysis.consistency import repetition_vector

    q = repetition_vector(graph)
    return sum(q[t.name] * len(t.durations) for t in graph.tasks())


def write_fleet() -> int:
    """Regenerate ``tests/data/fleet/`` with triple-verified periods."""
    FLEET.mkdir(parents=True, exist_ok=True)
    index = []
    for name, factory in fleet_cases():
        graph = factory()
        period = throughput_kiter(graph, engine="ratio-iteration").period
        cross = throughput_kiter(graph, engine="karp").period
        if cross != period:
            print(f"FATAL {name}: ratio-iteration={period} karp={cross}")
            return 1
        if _steady_state_len(graph) <= FLEET_SYMBOLIC_BOUND:
            third_name = "symbolic"
            third = throughput_symbolic(graph).period
        else:
            third_name = "kiter:hybrid"
            third = throughput_kiter(graph, engine="hybrid").period
        if third != period:
            print(f"FATAL {name}: kiter={period} {third_name}={third}")
            return 1
        filename = f"fleet_{name}.json"
        save_graph(graph, FLEET / filename)
        index.append({
            "file": filename,
            "period": [period.numerator, period.denominator],
            "oracles": ["kiter:ratio-iteration", "kiter:karp", third_name],
        })
        print(f"{name:<12} period={period}  [{third_name}]  -> {filename}")
    (FLEET / "fleet_index.json").write_text(
        json.dumps(index, indent=2) + "\n"
    )
    print(f"wrote {len(index)} cases to {FLEET / 'fleet_index.json'}")
    return 0


def main() -> int:
    if "--digests-only" in sys.argv[1:]:
        write_job_digests()
        return 0
    if "--fleet" in sys.argv[1:]:
        return write_fleet()
    DATA.mkdir(parents=True, exist_ok=True)
    index = []
    for position, (name, factory) in enumerate(CASES):
        graph = factory()
        period = throughput_kiter(graph).period
        symbolic = throughput_symbolic(graph).period
        if symbolic != period:
            print(f"FATAL {name}: kiter={period} symbolic={symbolic}")
            return 1
        if position < UNFOLDED:
            unfolded = throughput_unfolding(graph).period
            if unfolded != period:
                print(f"FATAL {name}: kiter={period} unfolding={unfolded}")
                return 1
        filename = f"golden_{name}.json"
        save_graph(graph, DATA / filename)
        index.append({
            "file": filename,
            "period": [period.numerator, period.denominator],
        })
        print(f"{name:<12} period={period}  -> {filename}")
    (DATA / "golden_index.json").write_text(
        json.dumps(index, indent=2) + "\n"
    )
    print(f"wrote {len(index)} cases to {DATA / 'golden_index.json'}")
    write_job_digests()
    return 0


if __name__ == "__main__":
    sys.exit(main())
