#!/usr/bin/env python
"""Regenerate the paper's figures from the running example (Figure 2).

* Figure 2 — the CSDFG itself (summary + DOT);
* Figure 3 — the as-soon-as-possible schedule (ASCII Gantt);
* Figure 4 — an optimal K-periodic schedule (ASCII Gantt);
* Figure 5 — the bi-valued constraint graph for K = 1, with the
  critical circuit highlighted (DOT + text dump);
* plus the K-Iter convergence trace the paper narrates in §3.5.

Run:  python examples/paper_figures.py [output-dir]
"""

import sys
from pathlib import Path

from repro import (
    asap_schedule,
    build_constraint_graph,
    min_period_for_k,
    render_gantt,
    repetition_vector,
    throughput_kiter,
)
from repro.generators.paper import figure2_graph
from repro.io import constraint_graph_to_dot, graph_to_dot
from repro.mcrp import max_cycle_ratio
from repro.scheduling import schedule_to_firings


def main(out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    g = figure2_graph()

    print("--- Figure 2: the running-example CSDFG " + "-" * 24)
    print(g.summary())
    q = repetition_vector(g)
    print("repetition vector:", q)
    (out_dir / "figure2.dot").write_text(graph_to_dot(g))

    print("\n--- Figure 3: as-soon-as-possible schedule " + "-" * 21)
    records = asap_schedule(g, iterations=2)
    fig3 = render_gantt(records, width=96)
    print(fig3)
    (out_dir / "figure3_asap.txt").write_text(fig3 + "\n")

    print("\n--- Figure 5: bi-valued graph for K = [1,1,1,1] " + "-" * 16)
    bi, _index = build_constraint_graph(g)
    critical = max_cycle_ratio(bi)
    print(f"nodes: {bi.node_count}, arcs: {bi.arc_count}")
    print(f"maximum cost-to-time ratio λ = Ω(1-periodic) = "
          f"{critical.ratio}")
    print("critical circuit:",
          " -> ".join(f"{t}{p}" for t, p in critical.node_labels(bi)))
    dot = constraint_graph_to_dot(bi,
                                  critical_arcs=set(critical.cycle_arcs))
    (out_dir / "figure5_constraints.dot").write_text(dot)

    print("\n--- §3.5 narrative: K-Iter convergence " + "-" * 25)
    result = throughput_kiter(g, build_schedule=True)
    for i, rnd in enumerate(result.rounds, start=1):
        omega = "infeasible" if rnd.omega is None else f"Ω = {rnd.omega}"
        print(f"round {i}: K = {rnd.K}  {omega}  critical = "
              f"{sorted(rnd.critical_tasks)}  optimal = {rnd.passed}")
    print(f"exact maximal throughput: 1/{result.period} "
          f"(period {result.period})")

    print("\n--- Figure 4: an optimal K-periodic schedule " + "-" * 19)
    final = min_period_for_k(g, result.K)
    firings = schedule_to_firings(final.schedule, g, horizon_iterations=2)
    fig4 = render_gantt(firings, width=96)
    print(fig4)
    (out_dir / "figure4_kperiodic.txt").write_text(fig4 + "\n")
    print(f"\nschedule period Ω = {final.omega}, per-task periods µ_t = "
          f"{ {t: str(p) for t, p in final.schedule.task_periods.items()} }")

    print(f"\nartifacts written to {out_dir}/")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results/figures")
    main(target)
