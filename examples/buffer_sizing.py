#!/usr/bin/env python
"""Throughput / buffer-size trade-off exploration.

The companion problem to throughput evaluation (the paper's reference
[16] explores it exhaustively with symbolic execution; the speed of
K-Iter is what makes sweeping it practical): how small can channel
capacities get before throughput degrades, and where is the knee?

The example sizes a JPEG2000-style encoder analogue:
1. sweep a uniform capacity scale and print the throughput curve;
2. binary-search the smallest scale preserving the unbounded optimum;
3. binary-search the smallest live scale (maximum compression).

Run:  python examples/buffer_sizing.py
"""

from fractions import Fraction

from repro import bound_all_buffers, throughput_kiter
from repro.buffers import (
    minimal_feasible_scale,
    minimize_total_storage,
    throughput_storage_curve,
)
from repro.buffers.capacity import minimal_buffer_capacity
from repro.generators.csdf_apps import jpeg2000


def main() -> None:
    g = jpeg2000()
    unbounded = throughput_kiter(g)
    print(f"graph: {g.name} ({g.task_count} tasks, "
          f"{g.buffer_count} buffers)")
    print(f"unbounded-buffer period Ω* = {unbounded.period}\n")

    print("capacity scale sweep (scale × per-buffer structural minimum):")
    print(f"{'scale':>6} | {'period':>10} | throughput vs unbounded")
    curve = throughput_storage_curve(g, [1, 2, 3, 4, 6, 8, 12, 16])
    for scale, throughput in curve:
        if throughput is None:
            print(f"{scale:>6} | {'deadlock':>10} |")
            continue
        period = 1 / throughput
        loss = float(unbounded.period / period) * 100
        bar = "#" * int(loss / 5)
        print(f"{scale:>6} | {str(period):>10} | {loss:5.1f}% {bar}")

    total_min = sum(
        minimal_buffer_capacity(b) for b in g.buffers()
        if not b.is_self_loop()
    )

    smallest_live = minimal_feasible_scale(g)
    print(f"\nsmallest live capacity scale: {smallest_live} "
          f"(total storage {smallest_live * total_min} tokens)")

    target = unbounded.throughput
    smallest_full = minimal_feasible_scale(
        g, predicate=lambda th: th is not None and th >= target
    )
    print(f"smallest scale with full throughput: {smallest_full} "
          f"(total storage {smallest_full * total_min} tokens)")

    bounded = bound_all_buffers(
        g,
        {
            b.name: smallest_full * minimal_buffer_capacity(b)
            for b in g.buffers() if not b.is_self_loop()
        },
    )
    check = throughput_kiter(bounded)
    assert check.period == unbounded.period
    print("\nverified: the fully-throughput-preserving bounded graph has "
          f"Ω = {check.period} (K = {check.K})")

    # per-buffer refinement: coordinate descent below the uniform scale
    caps = minimize_total_storage(g)
    total_uniform = smallest_full * total_min
    total_refined = sum(caps.values())
    print(f"\nper-buffer minimization: {total_refined} tokens total "
          f"(uniform scaling needed {total_uniform}; "
          f"{100 * (1 - total_refined / total_uniform):.0f}% saved)")
    refined = bound_all_buffers(g, caps)
    assert throughput_kiter(refined).period == unbounded.period
    print("refined capacities still sustain the unbounded optimum")


if __name__ == "__main__":
    main()
