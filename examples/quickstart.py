#!/usr/bin/env python
"""Quickstart: model a CSDF application and evaluate its throughput.

Builds the paper's Figure 1 buffer into a tiny two-task pipeline, then a
multirate cycle, and runs every analysis the library offers on them.

Run:  python examples/quickstart.py
"""

from repro import (
    asap_schedule,
    csdf,
    is_consistent,
    is_live,
    min_period_for_k,
    render_gantt,
    repetition_vector,
    sdf,
    throughput_kiter,
    throughput_periodic,
    throughput_symbolic,
)


def pipeline_example() -> None:
    print("=" * 64)
    print("1. A cyclo-static producer/consumer (the paper's Figure 1)")
    print("=" * 64)
    # Producer t has three phases writing [2,3,1] tokens; consumer t'
    # has two phases reading [2,5]. One t iteration produces 6 tokens,
    # one t' iteration consumes 7.
    g = csdf(
        {"t": [1, 1, 1], "t2": [2, 2]},
        [("t", "t2", [2, 3, 1], [2, 5], 0)],
        name="figure1-pipeline",
    )
    print(g.summary())
    print("consistent:", is_consistent(g))
    print("repetition vector:", repetition_vector(g))
    print("live:", is_live(g))

    result = throughput_kiter(g, build_schedule=True)
    print(f"exact period Ω* = {result.period}  "
          f"(throughput {result.throughput} graph iterations/time)")
    print("certified with K =", result.K)

    print("\nfirst firings (self-timed / ASAP):")
    records = asap_schedule(g, iterations=1)
    print(render_gantt(records, width=72))


def cycle_example() -> None:
    print()
    print("=" * 64)
    print("2. A multirate cycle: three methods, one exact answer")
    print("=" * 64)
    g = sdf(
        {"A": 1, "B": 2},
        [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)],
        name="multirate-cycle",
    )
    print(g.summary())

    periodic = throughput_periodic(g)
    print(f"1-periodic  : Ω = {periodic.period}   (approximative)")
    exact = throughput_kiter(g)
    print(f"K-Iter      : Ω = {exact.period}   (exact, K = {exact.K}, "
          f"{exact.iteration_count} round(s))")
    symbolic = throughput_symbolic(g)
    print(f"symbolic    : Ω = {symbolic.period}   "
          f"({symbolic.states_explored} states explored)")

    assert exact.period == symbolic.period
    assert periodic.period >= exact.period


def fixed_k_example() -> None:
    print()
    print("=" * 64)
    print("3. Minimum period for a *chosen* periodicity vector K")
    print("=" * 64)
    g = sdf(
        {"A": 1, "B": 2},
        [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)],
        name="multirate-cycle",
    )
    for K in ({"A": 1, "B": 1}, {"A": 3, "B": 1}, {"A": 3, "B": 2}):
        r = min_period_for_k(g, K)
        print(f"K = {K}:  Ω = {r.omega}  "
              f"(constraint graph: {r.graph_nodes} nodes, "
              f"{r.graph_arcs} arcs)")


if __name__ == "__main__":
    pipeline_example()
    cycle_example()
    fixed_k_example()
