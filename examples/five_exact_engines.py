#!/usr/bin/env python
"""Five independent exact engines, one answer.

The library's correctness story in one script: the same CSDFG is
evaluated by five algorithmically unrelated exact methods —

1. K-Iter (the paper's contribution: iterated K-periodic relaxations),
2. symbolic execution (state-space recurrence, refs [8]/[16]),
3. CSDF→HSDF unfolding + maximum cycle ratio (ref [10] generalized),
4. full K = q expansion in one shot (the classical exact extreme),
5. max-plus spectral analysis (eigenvalue of the state matrix, ref [6])

— and they agree as exact rationals, while the 1-periodic approximation
shows its pessimism. Also demonstrates the sensitivity and deadlock-
diagnosis utilities around the core.

Run:  python examples/five_exact_engines.py
"""

import time
from fractions import Fraction

from repro import throughput_kiter, throughput_periodic, throughput_symbolic
from repro.analysis.sensitivity import duration_sensitivity
from repro.baselines.unfolding import throughput_unfolding
from repro.generators.paper import figure2_graph
from repro.kperiodic.kiter import throughput_via_full_expansion
from repro.maxplus import throughput_maxplus


def main() -> None:
    g = figure2_graph()
    print(f"graph: {g.name} (the paper's running example)\n")

    engines = [
        ("K-Iter (paper)", lambda: throughput_kiter(g).period),
        ("symbolic execution", lambda: throughput_symbolic(g).period),
        ("CSDF unfolding + MCRP", lambda: throughput_unfolding(g).period),
        ("full K=q expansion", lambda: throughput_via_full_expansion(g).omega),
        ("max-plus eigenvalue", lambda: throughput_maxplus(g).period),
    ]
    answers = []
    print(f"{'engine':<24} {'period':>8} {'time':>10}")
    for name, run in engines:
        start = time.perf_counter()
        period = run()
        elapsed = (time.perf_counter() - start) * 1000
        answers.append(period)
        print(f"{name:<24} {str(period):>8} {elapsed:>8.2f}ms")
    assert len(set(answers)) == 1, "engines disagree!"
    print(f"\nall five agree: Ω* = {answers[0]} exactly")

    periodic = throughput_periodic(g)
    gap = Fraction(periodic.period, answers[0])
    print(f"1-periodic approximation: Ω = {periodic.period} "
          f"({float(gap):.2f}× pessimistic — why K-Iter exists)")

    print("\nwhere does the bound come from? duration sensitivity:")
    for name, s in duration_sensitivity(g).items():
        marker = "CRITICAL" if s.is_critical else "slack"
        print(f"  {name}: halving its durations buys "
              f"{s.speedup_gain} period units ({marker})")


if __name__ == "__main__":
    main()
