#!/usr/bin/env python
"""Processor-count exploration: throughput under mapping.

The paper's industrial context (Kalray's MPPA toolchain) evaluates
dataflow applications *mapped* onto processors. This example sweeps the
processor count for a satellite-receiver SDF and the paper's Figure 2
CSDFG, grading each mapping exactly with K-Iter on the transformed
graph, and reports the speedup curve against the sequential (1-CPU)
schedule and the dataflow-limit (unbounded processors) throughput.

Run:  python examples/mapping_exploration.py
"""

from fractions import Fraction

from repro import throughput_kiter
from repro.analysis import period_bounds
from repro.generators.dsp import satellite_receiver
from repro.generators.paper import figure2_graph
from repro.mapping import greedy_load_balance, throughput_under_mapping


def explore(graph, max_processors: int) -> None:
    print(f"\n=== {graph.name}: {graph.task_count} tasks ===")
    limit = throughput_kiter(graph).period
    bounds = period_bounds(graph)
    print(f"dataflow-limited period (∞ processors): {limit}")
    print(f"sequential bound (1 processor):         {bounds.upper}")
    print(f"{'CPUs':>5} | {'period':>9} | {'vs 1 CPU':>8} | "
          f"{'of dataflow limit':>17} | granularity")
    sequential = None
    for procs in range(1, max_processors + 1):
        mapping = greedy_load_balance(graph, procs)
        result, mapped = throughput_under_mapping(graph, mapping)
        if sequential is None:
            sequential = result.period
        speedup = float(sequential / result.period)
        efficiency = float(limit / result.period) * 100
        print(f"{procs:>5} | {str(result.period):>9} | {speedup:>7.2f}x "
              f"| {efficiency:>16.1f}% | {mapping.granularity}")
    print("(period never beats the dataflow limit; the knee shows where "
          "adding processors stops paying)")


if __name__ == "__main__":
    explore(figure2_graph(), 4)
    explore(satellite_receiver(), 8)
