#!/usr/bin/env python
"""Design-space exploration: throughput as a decision function.

The paper motivates fast throughput evaluation by design-space
exploration loops, where thousands of candidate designs are graded. This
example explores the two knobs of a pedestrian-detection analogue:

* the number of detector lanes kept active (task merging), and
* per-lane batching (duration/rate scaling),

grading every candidate exactly with K-Iter, and prints the Pareto
front of (estimated area, throughput).

Run:  python examples/design_space_exploration.py
"""

import time
from fractions import Fraction
from typing import List, Tuple

from repro import repetition_vector, throughput_kiter
from repro.generators._machinery import GraphSpec
import random


def detector(lanes: int, batch: int) -> "GraphSpec":
    """A pyramid detector with a configurable lane count and batch size."""
    rng = random.Random(lanes * 97 + batch)
    spec = GraphSpec(f"detector_l{lanes}_b{batch}", rng)
    spec.add_task("cam", q=1, phases=1, durations=[4])
    spec.add_task("pyr", q=1, phases=2, durations=[3, 3])
    for lane in range(lanes):
        windows = max(1, 24 // (lane + 1))
        # batching trades per-firing overhead for latency: `batch`
        # windows per firing, duration sub-linear in the batch.
        q = max(1, windows // batch)
        duration = 2 + 3 * batch - batch // 2
        spec.add_task(f"det{lane}", q=q, phases=1, durations=[duration])
    spec.add_task("merge", q=1, phases=1, durations=[2])
    for lane in range(lanes):
        spec.connect("pyr", f"det{lane}")
        spec.connect(f"det{lane}", "merge")
    spec.connect("cam", "pyr")
    # double-buffered tracking feedback
    spec.connect("merge", "pyr", iteration_margin=2)
    return spec.build()


def main() -> None:
    candidates: List[Tuple[int, int]] = [
        (lanes, batch)
        for lanes in (1, 2, 4, 6, 8)
        for batch in (1, 2, 4, 8)
    ]
    print(f"grading {len(candidates)} candidate designs with K-Iter...\n")
    results = []
    started = time.perf_counter()
    for lanes, batch in candidates:
        g = detector(lanes, batch)
        r = throughput_kiter(g)
        area = lanes * 10 + batch  # toy area model: lanes dominate
        results.append((lanes, batch, area, r.period, r.iteration_count))
    elapsed = time.perf_counter() - started
    print(f"{'lanes':>5} {'batch':>5} {'area':>5} {'period':>9} "
          f"{'rounds':>6}")
    for lanes, batch, area, period, rounds in results:
        print(f"{lanes:>5} {batch:>5} {area:>5} {str(period):>9} "
              f"{rounds:>6}")

    # Pareto front on (minimize area, minimize period)
    front = []
    for cand in sorted(results, key=lambda r: (r[2], r[3])):
        if all(not (o[2] <= cand[2] and o[3] < cand[3]) for o in results):
            front.append(cand)
    print("\nPareto-optimal designs (area vs throughput):")
    for lanes, batch, area, period, _ in front:
        print(f"  lanes={lanes} batch={batch}: area {area}, "
              f"period {period}")
    print(f"\ntotal grading time: {elapsed:.2f}s "
          f"({elapsed / len(candidates) * 1000:.1f} ms per design)")


if __name__ == "__main__":
    main()
