"""Two-tier result cache: in-memory LRU in front of an on-disk JSON store.

Tier 1 is a thread-safe LRU of outcome dicts keyed by job digest; tier 2
(optional) is one JSON file per digest under ``<root>/<digest[:2]>/``,
written atomically (temp file + ``os.replace``), so concurrent batch
runs sharing ``results/cache/`` never observe torn entries. A disk hit
is promoted into the memory tier.

Only deterministic outcomes belong here — the service layer filters on
:attr:`JobOutcome.cacheable` before calling :meth:`ResultCache.put`.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union


@dataclass
class CacheStats:
    """Hit/miss counters across both tiers."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
        }


class ResultCache:
    """Digest-addressed outcome store with LRU memory and JSON disk tiers.

    Parameters
    ----------
    memory_size:
        Maximum entries held in the LRU tier (0 disables it).
    disk_root:
        Directory of the persistent tier; ``None`` disables it. Created
        lazily on the first put.
    """

    def __init__(
        self,
        memory_size: int = 1024,
        disk_root: Optional[Union[str, Path]] = None,
    ):
        self.memory_size = memory_size
        self.disk_root = Path(disk_root) if disk_root is not None else None
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached outcome dict for ``digest``, or ``None`` on a miss."""
        return self.get_with_tier(digest)[0]

    def get_with_tier(
        self, digest: str
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """Like :meth:`get`, plus the tier that answered: ``"memory"``,
        ``"disk"`` or ``""`` (miss)."""
        with self._lock:
            entry = self._memory.get(digest)
            if entry is not None:
                self._memory.move_to_end(digest)
                self.stats.memory_hits += 1
                # Deep copy: outcomes carry nested dicts (K vectors);
                # a caller mutating its result must not poison the tier.
                return copy.deepcopy(entry), "memory"
        entry = self._disk_get(digest)
        if entry is not None:
            with self._lock:
                self.stats.disk_hits += 1
                self._memory_put(digest, entry)
            return copy.deepcopy(entry), "disk"
        with self._lock:
            self.stats.misses += 1
        return None, ""

    def put(self, digest: str, outcome: Dict[str, Any]) -> None:
        """Store an outcome dict in every enabled tier."""
        with self._lock:
            self.stats.puts += 1
            self._memory_put(digest, outcome)
        self._disk_put(digest, outcome)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            if digest in self._memory:
                return True
        return self._disk_path(digest) is not None and \
            self._disk_path(digest).exists()

    def clear_memory(self) -> None:
        """Drop the LRU tier (the disk tier is untouched)."""
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------------
    def _memory_put(self, digest: str, outcome: Dict[str, Any]) -> None:
        if self.memory_size <= 0:
            return
        self._memory[digest] = copy.deepcopy(outcome)
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_size:
            self._memory.popitem(last=False)

    def _disk_path(self, digest: str) -> Optional[Path]:
        if self.disk_root is None:
            return None
        return self.disk_root / digest[:2] / f"{digest}.json"

    def _disk_get(self, digest: str) -> Optional[Dict[str, Any]]:
        path = self._disk_path(digest)
        if path is None:
            return None
        try:
            return json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def _disk_put(self, digest: str, outcome: Dict[str, Any]) -> None:
        path = self._disk_path(digest)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(outcome, sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{digest[:8]}-", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def disk_entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Iterate ``(digest, outcome)`` over the persistent tier."""
        if self.disk_root is None or not self.disk_root.exists():
            return
        for path in sorted(self.disk_root.glob("*/*.json")):
            try:
                yield path.stem, json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue

    def disk_size_bytes(self) -> int:
        if self.disk_root is None or not self.disk_root.exists():
            return 0
        return sum(
            p.stat().st_size for p in self.disk_root.glob("*/*.json")
        )
