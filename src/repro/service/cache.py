"""Two-tier result cache composed from pluggable backends.

:class:`ResultCache` keeps the serving layer's original contract — a
thread-safe in-memory LRU tier in front of an optional persistent
tier, with disk hits promoted into memory — but both tiers are now
:class:`~repro.distributed.backends.CacheBackend` instances. The
historical constructor (``memory_size=`` / ``disk_root=``) builds the
same layout as ever (atomic JSON files under ``<root>/<digest[:2]>/``,
byte-identical on disk); ``backend=`` swaps the persistent tier for
any other backend — a WAL-mode SQLite file
(:class:`SQLiteCacheBackend`) or a remote coordinator's cache
(:class:`HTTPCacheBackend`):

    ResultCache(disk_root="results/cache")            # classic layout
    ResultCache(backend=SQLiteCacheBackend("c.db"))   # one shared file
    ResultCache(backend=HTTPCacheBackend(url))        # remote cache

Only deterministic outcomes belong here — the service layer filters on
:attr:`JobOutcome.cacheable` before calling :meth:`ResultCache.put`,
and the backends themselves refuse budget-dependent statuses as a
second line of defense.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.distributed.backends import (
    CacheBackend,
    DiskCacheBackend,
    MemoryCacheBackend,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry


@dataclass
class CacheStats:
    """Hit/miss counters across both tiers.

    ``disk_hits`` counts *persistent-tier* hits whatever the backend —
    the name is kept for compatibility with existing dashboards.
    This is a read-only *view* built from the cache's registry cells
    (:attr:`ResultCache.stats`), so the numbers here and the
    ``repro_result_cache_*`` families on ``/metrics`` are the same
    counters by construction.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
        }


class ResultCache:
    """Digest-addressed outcome store: LRU memory tier + backend tier.

    Parameters
    ----------
    memory_size:
        Maximum entries held in the LRU tier (0 disables it).
    disk_root:
        Directory for the classic persistent tier (a
        :class:`DiskCacheBackend`); ``None`` disables it. Created
        lazily on the first put.
    backend:
        Any :class:`CacheBackend` to use as the persistent tier
        instead; mutually exclusive with ``disk_root``.
    """

    def __init__(
        self,
        memory_size: int = 1024,
        disk_root: Optional[Union[str, Path]] = None,
        backend: Optional[CacheBackend] = None,
    ):
        if disk_root is not None and backend is not None:
            raise ValueError("pass disk_root or backend, not both")
        if disk_root is not None:
            backend = DiskCacheBackend(disk_root)
        self.memory_size = memory_size
        self.backend = backend
        self.disk_root = (
            backend.root if isinstance(backend, DiskCacheBackend) else None
        )
        self._memory = MemoryCacheBackend(memory_size)
        # Per-instance registry chained to the process-global one: the
        # cells below *are* the stats() numbers and the /metrics
        # families — one source of truth, no drift possible.
        self._registry = MetricsRegistry(parent=REGISTRY)
        hits = self._registry.counter("repro_result_cache_hits_total")
        self._memory_hit_cell = hits.labels(tier="memory")
        backend_tier = backend.name if backend is not None else "disk"
        if backend_tier == "memory":
            # a MemoryCacheBackend persistent tier must not share the
            # LRU tier's label, or the two hit counters merge
            backend_tier = "backend"
        self._backend_hit_cell = hits.labels(tier=backend_tier)
        self._miss_cell = self._registry.counter(
            "repro_result_cache_misses_total").labels()
        self._put_cell = self._registry.counter(
            "repro_result_cache_puts_total").labels()

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached outcome dict for ``digest``, or ``None`` on a miss."""
        return self.get_with_tier(digest)[0]

    def get_with_tier(
        self, digest: str
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """Like :meth:`get`, plus the tier that answered: ``"memory"``,
        the backend's name (``"disk"``, ``"sqlite"``, ``"http"``) or
        ``""`` (miss)."""
        entry = self._memory.get(digest)
        if entry is not None:
            self._memory_hit_cell.inc()
            return entry, "memory"
        if self.backend is not None:
            entry = self.backend.get(digest)
            if entry is not None:
                self._backend_hit_cell.inc()
                self._memory.put(digest, entry)  # promote
                return entry, self.backend.name
        self._miss_cell.inc()
        return None, ""

    def put(self, digest: str, outcome: Dict[str, Any]) -> None:
        """Store an outcome dict in every enabled tier."""
        self._put_cell.inc()
        self._memory.put(digest, outcome)
        if self.backend is not None:
            self.backend.put(digest, outcome)

    @property
    def stats(self) -> CacheStats:
        """Counter view recomposed from this cache's registry cells."""
        hit_samples = self._registry.samples("repro_result_cache_hits_total")
        memory_hits = int(hit_samples.get(("memory",), 0))
        backend_hits = int(sum(
            value for key, value in hit_samples.items()
            if key != ("memory",)
        ))
        return CacheStats(
            memory_hits=memory_hits,
            disk_hits=backend_hits,
            misses=int(self._registry.value(
                "repro_result_cache_misses_total")),
            puts=int(self._registry.value(
                "repro_result_cache_puts_total")),
        )

    def __contains__(self, digest: str) -> bool:
        if self._memory.contains(digest):
            return True
        return self.backend is not None and self.backend.contains(digest)

    def clear_memory(self) -> None:
        """Drop the LRU tier (the persistent tier is untouched)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def disk_entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Iterate ``(digest, outcome)`` over the persistent tier."""
        if self.backend is None:
            return iter(())
        return self.backend.entries()

    def disk_size_bytes(self) -> int:
        if self.backend is None:
            return 0
        return self.backend.size_bytes()
