"""Two-tier result cache composed from pluggable backends.

:class:`ResultCache` keeps the serving layer's original contract — a
thread-safe in-memory LRU tier in front of an optional persistent
tier, with disk hits promoted into memory — but both tiers are now
:class:`~repro.distributed.backends.CacheBackend` instances. The
historical constructor (``memory_size=`` / ``disk_root=``) builds the
same layout as ever (atomic JSON files under ``<root>/<digest[:2]>/``,
byte-identical on disk); ``backend=`` swaps the persistent tier for
any other backend — a WAL-mode SQLite file
(:class:`SQLiteCacheBackend`) or a remote coordinator's cache
(:class:`HTTPCacheBackend`):

    ResultCache(disk_root="results/cache")            # classic layout
    ResultCache(backend=SQLiteCacheBackend("c.db"))   # one shared file
    ResultCache(backend=HTTPCacheBackend(url))        # remote cache

Only deterministic outcomes belong here — the service layer filters on
:attr:`JobOutcome.cacheable` before calling :meth:`ResultCache.put`,
and the backends themselves refuse budget-dependent statuses as a
second line of defense.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.distributed.backends import (
    CacheBackend,
    DiskCacheBackend,
    MemoryCacheBackend,
)


@dataclass
class CacheStats:
    """Hit/miss counters across both tiers.

    ``disk_hits`` counts *persistent-tier* hits whatever the backend —
    the name is kept for compatibility with existing dashboards.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
        }


class ResultCache:
    """Digest-addressed outcome store: LRU memory tier + backend tier.

    Parameters
    ----------
    memory_size:
        Maximum entries held in the LRU tier (0 disables it).
    disk_root:
        Directory for the classic persistent tier (a
        :class:`DiskCacheBackend`); ``None`` disables it. Created
        lazily on the first put.
    backend:
        Any :class:`CacheBackend` to use as the persistent tier
        instead; mutually exclusive with ``disk_root``.
    """

    def __init__(
        self,
        memory_size: int = 1024,
        disk_root: Optional[Union[str, Path]] = None,
        backend: Optional[CacheBackend] = None,
    ):
        if disk_root is not None and backend is not None:
            raise ValueError("pass disk_root or backend, not both")
        if disk_root is not None:
            backend = DiskCacheBackend(disk_root)
        self.memory_size = memory_size
        self.backend = backend
        self.disk_root = (
            backend.root if isinstance(backend, DiskCacheBackend) else None
        )
        self._memory = MemoryCacheBackend(memory_size)
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached outcome dict for ``digest``, or ``None`` on a miss."""
        return self.get_with_tier(digest)[0]

    def get_with_tier(
        self, digest: str
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """Like :meth:`get`, plus the tier that answered: ``"memory"``,
        the backend's name (``"disk"``, ``"sqlite"``, ``"http"``) or
        ``""`` (miss)."""
        entry = self._memory.get(digest)
        if entry is not None:
            with self._lock:
                self.stats.memory_hits += 1
            return entry, "memory"
        if self.backend is not None:
            entry = self.backend.get(digest)
            if entry is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                self._memory.put(digest, entry)  # promote
                return entry, self.backend.name
        with self._lock:
            self.stats.misses += 1
        return None, ""

    def put(self, digest: str, outcome: Dict[str, Any]) -> None:
        """Store an outcome dict in every enabled tier."""
        with self._lock:
            self.stats.puts += 1
        self._memory.put(digest, outcome)
        if self.backend is not None:
            self.backend.put(digest, outcome)

    def __contains__(self, digest: str) -> bool:
        if self._memory.contains(digest):
            return True
        return self.backend is not None and self.backend.contains(digest)

    def clear_memory(self) -> None:
        """Drop the LRU tier (the persistent tier is untouched)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def disk_entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Iterate ``(digest, outcome)`` over the persistent tier."""
        if self.backend is None:
            return iter(())
        return self.backend.entries()

    def disk_size_bytes(self) -> int:
        if self.backend is None:
            return 0
        return self.backend.size_bytes()
