"""The throughput-analysis service facade.

:class:`ThroughputService` is the one front door of the serving layer:
it turns graphs into content-addressed jobs, answers repeats from the
two-tier result cache, deduplicates identical jobs inside a batch, fans
cache misses out over a :class:`~repro.service.pool.SolverPool` (or
solves inline when ``workers=0``), and applies the engine fallback
policy (``hybrid`` → ``ratio-iteration`` by default) via the worker
entry point.

Typical use (inline mode — pass ``workers=4`` and
``cache=ResultCache(disk_root="results/cache")`` for the multi-process,
persistent-cache configuration):

    >>> from repro.model.builder import sdf
    >>> from repro.service import ThroughputService
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
    >>> with ThroughputService() as service:
    ...     outcome = service.submit(g)
    ...     repeat = service.submit(g)
    >>> outcome.status, outcome.period, outcome.engine_used
    ('OK', Fraction(2, 1), 'hybrid')
    >>> repeat.cache_hit            # second ask never re-solves
    'memory'
    >>> service.stats().solves
    1

``submit_async`` returns a ``concurrent.futures.Future``; wrap it with
``asyncio.wrap_future`` to await it from an event loop — the service
itself never blocks on anything but its own pool.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Union

from repro.kperiodic.kiter import solve_kiter_payload
from repro.model.graph import CsdfGraph
from repro.service.cache import ResultCache
from repro.service.job import JobOutcome, ThroughputJob
from repro.service.pool import SolverPool

GraphLike = Union[CsdfGraph, Mapping[str, Any], ThroughputJob]


@dataclass
class ServiceStats:
    """Aggregate counters of one service lifetime."""

    jobs: int = 0
    solves: int = 0
    batch_dedup: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0
    cache: Dict[str, int] = field(default_factory=dict)
    pool: Optional[Dict[str, int]] = None

    @property
    def cache_hits(self) -> int:
        return (
            self.cache.get("memory_hits", 0) + self.cache.get("disk_hits", 0)
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "solves": self.solves,
            "batch_dedup": self.batch_dedup,
            "cache_hits": self.cache_hits,
            "by_status": dict(self.by_status),
            "wall_time": self.wall_time,
            "cache": dict(self.cache),
            "pool": dict(self.pool) if self.pool else None,
        }


class ThroughputService:
    """Batched, cached, multi-process λ* queries over the engine registry.

    Parameters
    ----------
    engine / fallback_engines:
        Primary MCRP engine and the chain tried on a certification
        failure (:class:`~repro.exceptions.SolverError`) of the one
        before it.
    update_policy / warm_start / max_rounds / time_budget:
        K-Iter parameters applied to every job unless overridden per
        call (see :func:`repro.kperiodic.kiter.throughput_kiter`).
    workers:
        ``0`` solves inline in this process (no pool, no pickling —
        right for tests and single queries); ``n ≥ 1`` creates a
        :class:`SolverPool` lazily on first use.
    pool:
        A pre-built pool to use instead (``workers`` is then ignored);
        the caller keeps ownership unless the service is closed.
    cache:
        A :class:`ResultCache`; default is a memory-only LRU. Pass
        ``ResultCache(disk_root=...)`` for the persistent tier, or
        ``ResultCache(memory_size=0)`` to disable caching.
    """

    def __init__(
        self,
        *,
        engine: str = "hybrid",
        fallback_engines: Iterable[str] = ("ratio-iteration",),
        update_policy: str = "lcm",
        warm_start: bool = True,
        max_rounds: int = 100_000,
        time_budget: Optional[float] = None,
        workers: int = 0,
        pool: Optional[SolverPool] = None,
        mp_context: Union[str, Any, None] = None,
        chunk_size: Optional[int] = None,
        job_timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.engine = engine
        self.fallback_engines = tuple(fallback_engines)
        self.update_policy = update_policy
        self.warm_start = warm_start
        self.max_rounds = max_rounds
        self.time_budget = time_budget
        self.cache = cache if cache is not None else ResultCache()
        self._pool = pool
        self._owns_pool = pool is None
        self._workers = workers
        self._mp_context = mp_context
        self._chunk_size = chunk_size
        self._job_timeout = job_timeout
        self._lock = threading.Lock()
        self._stats = ServiceStats()

    # ------------------------------------------------------------------
    # Job construction
    # ------------------------------------------------------------------
    def job_for(self, graph: GraphLike, **overrides: Any) -> ThroughputJob:
        """A :class:`ThroughputJob` with the service defaults applied."""
        if isinstance(graph, ThroughputJob):
            return graph
        options = {
            "engine": self.engine,
            "fallback_engines": self.fallback_engines,
            "update_policy": self.update_policy,
            "warm_start": self.warm_start,
            "max_rounds": self.max_rounds,
            "time_budget": self.time_budget,
        }
        options.update(overrides)
        return ThroughputJob.from_graph(graph, **options)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def submit(self, graph: GraphLike, **overrides: Any) -> JobOutcome:
        """Solve one graph synchronously (cache → pool/inline)."""
        return self.submit_many([self.job_for(graph, **overrides)])[0]

    def submit_many(self, graphs: Iterable[GraphLike]) -> List[JobOutcome]:
        """Solve a batch, preserving order.

        Cache hits and in-batch duplicates never reach the pool; misses
        are deduplicated by digest, solved (chunked, multi-process when
        a pool is configured), cached when deterministic, and fanned
        back out to every requesting position.
        """
        started = time.perf_counter()
        jobs = [self.job_for(g) for g in graphs]
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        unique: "OrderedDict[str, ThroughputJob]" = OrderedDict()
        followers: Dict[str, List[int]] = {}

        for index, job in enumerate(jobs):
            cached, tier = self.cache.get_with_tier(job.digest)
            if cached is not None:
                outcome = JobOutcome.from_json_dict(cached)
                outcome.cache_hit = tier
                outcome.label = job.label or outcome.label
                outcomes[index] = outcome
                continue
            if job.digest in unique:
                followers.setdefault(job.digest, []).append(index)
                continue
            unique[job.digest] = job
            followers[job.digest] = [index]

        miss_jobs = list(unique.values())
        results = self._solve_payloads([j.payload() for j in miss_jobs])
        for job, result in zip(miss_jobs, results):
            outcome = JobOutcome.from_solve(job, result)
            if outcome.cacheable:
                stored = outcome.to_json_dict()
                stored["cache_hit"] = ""
                self.cache.put(job.digest, stored)
            owners = followers[job.digest]
            outcomes[owners[0]] = outcome
            for extra in owners[1:]:
                duplicate = JobOutcome.from_json_dict(outcome.to_json_dict())
                duplicate.cache_hit = "batch"
                duplicate.label = jobs[extra].label or duplicate.label
                outcomes[extra] = duplicate

        final = [o for o in outcomes if o is not None]
        if len(final) != len(jobs):  # pragma: no cover - invariant
            raise RuntimeError("service lost track of a job outcome")
        self._record(final, len(miss_jobs), time.perf_counter() - started)
        return final

    def map(
        self,
        graphs: Iterable[GraphLike],
        *,
        batch_size: int = 64,
    ) -> Iterator[JobOutcome]:
        """Stream outcomes for an arbitrarily long graph iterable.

        Graphs are pulled and solved ``batch_size`` at a time, so memory
        stays bounded and the pool pipeline stays full.
        """
        batch: List[GraphLike] = []
        for graph in graphs:
            batch.append(graph)
            if len(batch) >= batch_size:
                yield from self.submit_many(batch)
                batch = []
        if batch:
            yield from self.submit_many(batch)

    def submit_async(
        self, graph: GraphLike, **overrides: Any
    ) -> "Future[JobOutcome]":
        """Non-blocking single solve; the future resolves to an outcome.

        Cache hits (and inline mode) resolve immediately; with a pool
        the job rides a single-payload chunk and the returned future is
        chained off the pool's. ``asyncio.wrap_future`` makes it
        awaitable.
        """
        job = self.job_for(graph, **overrides)
        cached, tier = self.cache.get_with_tier(job.digest)
        done: "Future[JobOutcome]" = Future()
        if cached is not None:
            outcome = JobOutcome.from_json_dict(cached)
            outcome.cache_hit = tier
            outcome.label = job.label or outcome.label
            self._record([outcome], 0, 0.0)
            done.set_result(outcome)
            return done
        pool = self._ensure_pool()
        if pool is None:
            outcome = self._finish_async(job, solve_kiter_payload(job.payload()))
            done.set_result(outcome)
            return done
        chunk_future = pool.submit_chunk([job.payload()])

        def _chain(fut: "Future[List[Dict[str, Any]]]") -> None:
            try:
                result = fut.result()[0]
            except Exception as exc:
                result = {"status": "ERROR", "error": repr(exc)}
            done.set_result(self._finish_async(job, result))

        chunk_future.add_done_callback(_chain)
        return done

    def _finish_async(
        self, job: ThroughputJob, result: Mapping[str, Any]
    ) -> JobOutcome:
        outcome = JobOutcome.from_solve(job, result)
        if outcome.cacheable:
            stored = outcome.to_json_dict()
            stored["cache_hit"] = ""
            self.cache.put(job.digest, stored)
        self._record([outcome], 1, outcome.wall_time)
        return outcome

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[SolverPool]:
        with self._lock:
            if self._pool is None and self._workers > 0:
                self._pool = SolverPool(
                    self._workers,
                    mp_context=self._mp_context,
                    chunk_size=self._chunk_size,
                    job_timeout=self._job_timeout,
                )
            return self._pool

    def _solve_payloads(
        self, payloads: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        if not payloads:
            return []
        pool = self._ensure_pool()
        if pool is not None:
            return pool.solve(payloads)
        return [solve_kiter_payload(p) for p in payloads]

    def _record(
        self, outcomes: List[JobOutcome], solves: int, wall: float
    ) -> None:
        with self._lock:
            self._stats.jobs += len(outcomes)
            self._stats.solves += solves
            self._stats.batch_dedup += sum(
                1 for o in outcomes if o.cache_hit == "batch"
            )
            self._stats.wall_time += wall
            for outcome in outcomes:
                self._stats.by_status[outcome.status] = (
                    self._stats.by_status.get(outcome.status, 0) + 1
                )

    def stats(self) -> ServiceStats:
        """A snapshot of the service, cache and pool counters."""
        with self._lock:
            snapshot = ServiceStats(
                jobs=self._stats.jobs,
                solves=self._stats.solves,
                batch_dedup=self._stats.batch_dedup,
                by_status=dict(self._stats.by_status),
                wall_time=self._stats.wall_time,
                cache=self.cache.stats.as_dict(),
                pool=(
                    self._pool.stats.as_dict()
                    if self._pool is not None else None
                ),
            )
        return snapshot

    def cancel(self) -> None:
        """Cancel the in-flight batch, if a pool is running one."""
        with self._lock:
            pool = self._pool
        if pool is not None:
            pool.cancel()

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None and self._owns_pool:
            pool.shutdown()

    def __enter__(self) -> "ThroughputService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
