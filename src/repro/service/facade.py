"""The throughput-analysis service facade.

:class:`ThroughputService` is the one front door of the serving layer:
it turns graphs into content-addressed jobs, answers repeats from the
two-tier result cache, deduplicates identical jobs inside a batch, fans
cache misses out over a :class:`~repro.service.pool.SolverPool` (or
solves inline when ``workers=0``), and applies the engine fallback
policy (``hybrid`` → ``ratio-iteration`` by default) via the worker
entry point.

Typical use (inline mode — pass ``workers=4`` and
``cache=ResultCache(disk_root="results/cache")`` for the multi-process,
persistent-cache configuration):

    >>> from repro.model.builder import sdf
    >>> from repro.service import ThroughputService
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
    >>> with ThroughputService() as service:
    ...     outcome = service.submit(g)
    ...     repeat = service.submit(g)
    >>> outcome.status, outcome.period, outcome.engine_used
    ('OK', Fraction(2, 1), 'hybrid')
    >>> repeat.cache_hit            # second ask never re-solves
    'memory'
    >>> service.stats().solves
    1

``submit_async`` returns a ``concurrent.futures.Future``; wrap it with
``asyncio.wrap_future`` to await it from an event loop — the service
itself never blocks on anything but its own pool.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Union

from repro.kperiodic.fleet import solve_fleet_payloads
from repro.kperiodic.kiter import solve_kiter_payload
from repro.model.graph import CsdfGraph
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import (
    collect_events,
    emit_event,
    new_trace_id,
    span as _span,
    tracing_enabled,
)
from repro.service.cache import ResultCache
from repro.service.job import JobOutcome, ThroughputJob
from repro.service.pool import SolverPool

GraphLike = Union[CsdfGraph, Mapping[str, Any], ThroughputJob]


@dataclass
class ServiceStats:
    """Aggregate counters of one service lifetime.

    Since PR 7 this is a read-only *view* recomposed from the service's
    registry cells (see :meth:`ThroughputService.stats`): the numbers
    here, the worker heartbeats and the coordinator's ``/metrics``
    families all read the same counters, so they cannot drift apart.
    """

    jobs: int = 0
    solves: int = 0
    batch_dedup: int = 0
    #: Fresh solves answered by the batched fleet kernel / by a
    #: fallback engine (cache hits never count toward either).
    batched: int = 0
    fallback: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0
    cache: Dict[str, int] = field(default_factory=dict)
    pool: Optional[Dict[str, int]] = None
    queue: Optional[Dict[str, Any]] = None

    @property
    def cache_hits(self) -> int:
        return (
            self.cache.get("memory_hits", 0) + self.cache.get("disk_hits", 0)
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "solves": self.solves,
            "batch_dedup": self.batch_dedup,
            "batched": self.batched,
            "fallback": self.fallback,
            "cache_hits": self.cache_hits,
            "by_status": dict(self.by_status),
            "wall_time": self.wall_time,
            "cache": dict(self.cache),
            "pool": dict(self.pool) if self.pool else None,
            "queue": dict(self.queue) if self.queue else None,
        }


class ThroughputService:
    """Batched, cached, multi-process λ* queries over the engine registry.

    Parameters
    ----------
    engine / fallback_engines:
        Primary MCRP engine and the chain tried on a certification
        failure (:class:`~repro.exceptions.SolverError`) of the one
        before it.
    update_policy / warm_start / max_rounds / time_budget:
        K-Iter parameters applied to every job unless overridden per
        call (see :func:`repro.kperiodic.kiter.throughput_kiter`).
    batched:
        Allow the batched fleet kernel
        (:func:`repro.kperiodic.fleet.solve_fleet_payloads`) for each
        job's rounds; ``False`` pins every job to the per-graph path.
        Pure execution routing — the certified ``λ*`` is identical and
        job digests do not change.
    workers:
        ``0`` solves inline in this process (no pool, no pickling —
        right for tests and single queries); ``n ≥ 1`` creates a
        :class:`SolverPool` lazily on first use.
    pool:
        A pre-built pool to use instead (``workers`` is then ignored);
        the caller keeps ownership unless the service is closed.
    cache:
        A :class:`ResultCache`; default is a memory-only LRU. Pass
        ``ResultCache(disk_root=...)`` for the persistent tier,
        ``ResultCache(memory_size=0)`` to disable caching, or a bare
        :class:`~repro.distributed.backends.CacheBackend` (it is
        wrapped in a ``ResultCache`` with the default memory tier) —
        e.g. ``HTTPCacheBackend(url)`` for a remote shared cache.
    queue:
        A :class:`~repro.distributed.jobqueue.JobQueue` (or a
        :class:`~repro.distributed.client.CoordinatorClient`). When
        set, cache misses are *enqueued* instead of solved here, and
        the service polls for their results — the workers are whoever
        drains that queue (``repro worker``). ``workers``/``pool``
        are ignored in queue mode.
    queue_poll / queue_wait_timeout:
        Poll interval while waiting on queued results, and an optional
        overall wait bound (``None`` waits forever; on expiry the
        remaining jobs report ``ERROR``). Dead-lettered jobs surface
        as ``ERROR`` outcomes from the queue itself, so a batch always
        completes.
    queue_inline_drain:
        When ``True`` the service leases and solves jobs itself while
        waiting — queue semantics without external workers (or
        cooperating with them).
    """

    def __init__(
        self,
        *,
        engine: str = "hybrid",
        fallback_engines: Iterable[str] = ("ratio-iteration",),
        update_policy: str = "lcm",
        warm_start: bool = True,
        max_rounds: int = 100_000,
        time_budget: Optional[float] = None,
        batched: bool = True,
        workers: int = 0,
        pool: Optional[SolverPool] = None,
        mp_context: Union[str, Any, None] = None,
        chunk_size: Optional[int] = None,
        job_timeout: Optional[float] = None,
        cache: Optional[Any] = None,
        queue: Optional[Any] = None,
        queue_poll: float = 0.05,
        queue_wait_timeout: Optional[float] = None,
        queue_inline_drain: bool = False,
    ):
        self.engine = engine
        self.fallback_engines = tuple(fallback_engines)
        self.update_policy = update_policy
        self.warm_start = warm_start
        self.max_rounds = max_rounds
        self.time_budget = time_budget
        self.batched = batched
        if cache is None:
            cache = ResultCache()
        elif not isinstance(cache, ResultCache):
            cache = ResultCache(backend=cache)  # bare CacheBackend
        self.cache = cache
        self._queue = queue
        self._queue_poll = queue_poll
        self._queue_wait_timeout = queue_wait_timeout
        self._queue_inline_drain = queue_inline_drain
        self._pool = pool
        self._owns_pool = pool is None
        self._workers = workers
        self._mp_context = mp_context
        self._chunk_size = chunk_size
        self._job_timeout = job_timeout
        self._lock = threading.Lock()
        # Per-service registry chained to the process-global one: the
        # cells below are the one source of truth behind stats(), the
        # worker heartbeat snapshots, and /metrics — the ad-hoc
        # batched/fallback/cache counters of PR 5–6 are recomposed over
        # them so the surfaces can never disagree.
        self._registry = MetricsRegistry(parent=REGISTRY)
        self._jobs_metric = self._registry.counter(
            "repro_service_jobs_total")
        self._solves_cell = self._registry.counter(
            "repro_service_solves_total").labels()
        self._dedup_cell = self._registry.counter(
            "repro_service_batch_dedup_total").labels()
        self._batched_cell = self._registry.counter(
            "repro_service_batched_total").labels()
        self._fallback_cell = self._registry.counter(
            "repro_service_fallback_total").labels()
        self._wall_cell = self._registry.counter(
            "repro_service_wall_seconds_total").labels()
        self._batch_seconds = self._registry.histogram(
            "repro_service_batch_seconds").labels()

    # ------------------------------------------------------------------
    # Job construction
    # ------------------------------------------------------------------
    def job_for(self, graph: GraphLike, **overrides: Any) -> ThroughputJob:
        """A :class:`ThroughputJob` with the service defaults applied."""
        if isinstance(graph, ThroughputJob):
            return graph
        options = {
            "engine": self.engine,
            "fallback_engines": self.fallback_engines,
            "update_policy": self.update_policy,
            "warm_start": self.warm_start,
            "max_rounds": self.max_rounds,
            "time_budget": self.time_budget,
            "batched": self.batched,
        }
        options.update(overrides)
        return ThroughputJob.from_graph(graph, **options)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def submit(self, graph: GraphLike, **overrides: Any) -> JobOutcome:
        """Solve one graph synchronously (cache → pool/inline)."""
        return self.submit_many([self.job_for(graph, **overrides)])[0]

    def submit_many(self, graphs: Iterable[GraphLike]) -> List[JobOutcome]:
        """Solve a batch, preserving order.

        Cache hits and in-batch duplicates never reach the pool; misses
        are deduplicated by digest, solved (chunked, multi-process when
        a pool is configured), cached when deterministic, and fanned
        back out to every requesting position.
        """
        started = time.perf_counter()
        jobs = [self.job_for(g) for g in graphs]
        with _span("service.batch", jobs=len(jobs)) as batch_span:
            outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
            unique: "OrderedDict[str, ThroughputJob]" = OrderedDict()
            followers: Dict[str, List[int]] = {}

            for index, job in enumerate(jobs):
                cached, tier = self.cache.get_with_tier(job.digest)
                if cached is not None:
                    outcome = JobOutcome.from_json_dict(cached)
                    outcome.cache_hit = tier
                    outcome.label = job.label or outcome.label
                    outcomes[index] = outcome
                    continue
                if job.digest in unique:
                    followers.setdefault(job.digest, []).append(index)
                    continue
                unique[job.digest] = job
                followers[job.digest] = [index]

            miss_jobs = list(unique.values())
            payloads = [j.payload() for j in miss_jobs]
            # One trace per unique miss: the client.job event below is
            # the root span, the payload carries its context across
            # pool/coordinator/worker boundaries, and every solver span
            # parents under it. Digests are unchanged — ThroughputJob
            # hashes only its explicit fields, never the payload dict.
            job_traces: Dict[str, tuple] = {}
            if tracing_enabled():
                for job, payload in zip(miss_jobs, payloads):
                    root = (new_trace_id(), new_trace_id())
                    job_traces[job.digest] = root
                    payload["trace"] = {
                        "trace_id": root[0], "parent_id": root[1],
                    }
            results = self._solve_payloads(payloads)
            for job, result in zip(miss_jobs, results):
                # A queue-routed job answered by the coordinator's cache
                # arrives tagged cache_hit="remote"; local solves carry "".
                outcome = JobOutcome.from_solve(
                    job, result, cache_hit=result.get("cache_hit", "")
                )
                if outcome.cacheable:
                    stored = outcome.to_json_dict()
                    stored["cache_hit"] = ""
                    self.cache.put(job.digest, stored)
                root = job_traces.get(job.digest)
                if root is not None:
                    # After the cache put: trace ids never hit the
                    # cache (the PR-5 disk layout stays byte-identical).
                    outcome.trace_id = root[0]
                    emit_event(
                        "client.job", trace_id=root[0], span_id=root[1],
                        dur=outcome.wall_time,
                        digest=job.digest[:12], status=outcome.status,
                    )
                owners = followers[job.digest]
                outcomes[owners[0]] = outcome
                for extra in owners[1:]:
                    duplicate = JobOutcome.from_json_dict(
                        outcome.to_json_dict())
                    duplicate.cache_hit = "batch"
                    duplicate.label = jobs[extra].label or duplicate.label
                    outcomes[extra] = duplicate

            final = [o for o in outcomes if o is not None]
            if len(final) != len(jobs):  # pragma: no cover - invariant
                raise RuntimeError("service lost track of a job outcome")
            # Queue-routed jobs answered by the coordinator's cache
            # ("remote") were never solved for us — don't count them.
            solves = sum(
                1 for result in results if not result.get("cache_hit")
            )
            batch_span.attrs["misses"] = len(miss_jobs)
            if job_traces and self._queue is not None:
                self._ship_trace_events(
                    [root[0] for root in job_traces.values()]
                )
        self._record(final, solves, time.perf_counter() - started)
        return final

    def _ship_trace_events(self, trace_ids: List[str]) -> None:
        """Post this client's buffered span events to the coordinator.

        Queue mode only: the coordinator aggregates them into its trace
        store so ``GET /trace/<id>`` shows the client leg next to the
        coordinator and worker legs. Best-effort — tracing never fails
        a batch.
        """
        post = getattr(self._queue, "post_trace", None)
        if post is None:
            return
        events = collect_events(trace_ids, clear=True)
        if not events:
            return
        try:
            post(events)
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    def explore(
        self,
        graph: CsdfGraph,
        points: Iterable[Mapping[str, Any]],
        *,
        engine: Optional[str] = None,
        warm_start: Optional[bool] = None,
        check: bool = False,
    ) -> List[Dict[str, Any]]:
        """Run an edit-manifest sweep as *one* sticky DSE session.

        ``points`` is the ``repro explore`` manifest schema (see
        :mod:`repro.dse.explore`): per design point an ``edits`` op
        list, an optional ``name`` and an optional ``reset``. The whole
        sweep is a single job — with a pool configured it rides one
        explore chunk so a single worker owns the session (its block
        cache and warm-start state live where the solves run); inline
        mode and queue mode run it in-process (the distributed fabric
        speaks single-solve payloads only). Returns the per-point
        records in order; exactness per point is the DseSession
        contract (bit-identical to a cold solve; ``check=True``
        verifies it at runtime).

        Sweep results are not content-addressed — nothing here touches
        the result cache.
        """
        from repro.dse.explore import explore_payload_for

        points = list(points)
        payload = explore_payload_for(
            graph, points,
            engine=engine or self.engine,
            warm_start=self.warm_start if warm_start is None
            else warm_start,
            check=check,
        )
        pool = None if self._queue is not None else self._ensure_pool()
        with _span("service.explore", points=len(points)) as sp:
            if pool is not None:
                outcome = pool.solve([payload])[0]
            else:
                from repro.dse.explore import solve_explore_payload

                outcome = solve_explore_payload(payload)
            sp.attrs["status"] = outcome.get("status", "ERROR")
        if outcome.get("status") != "OK":
            raise RuntimeError(
                f"explore sweep failed: {outcome.get('error', outcome)}")
        return outcome["results"]

    def map(
        self,
        graphs: Iterable[GraphLike],
        *,
        batch_size: int = 64,
    ) -> Iterator[JobOutcome]:
        """Stream outcomes for an arbitrarily long graph iterable.

        Graphs are pulled and solved ``batch_size`` at a time, so memory
        stays bounded and the pool pipeline stays full.
        """
        batch: List[GraphLike] = []
        for graph in graphs:
            batch.append(graph)
            if len(batch) >= batch_size:
                yield from self.submit_many(batch)
                batch = []
        if batch:
            yield from self.submit_many(batch)

    def submit_async(
        self, graph: GraphLike, **overrides: Any
    ) -> "Future[JobOutcome]":
        """Non-blocking single solve; the future resolves to an outcome.

        Cache hits (and inline mode) resolve immediately; with a pool
        the job rides a single-payload chunk and the returned future is
        chained off the pool's. ``asyncio.wrap_future`` makes it
        awaitable.
        """
        job = self.job_for(graph, **overrides)
        cached, tier = self.cache.get_with_tier(job.digest)
        done: "Future[JobOutcome]" = Future()
        if cached is not None:
            outcome = JobOutcome.from_json_dict(cached)
            outcome.cache_hit = tier
            outcome.label = job.label or outcome.label
            self._record([outcome], 0, 0.0)
            done.set_result(outcome)
            return done
        if self._queue is not None:
            # Queue mode: enqueue-and-poll runs on a waiter thread so
            # the returned future stays non-blocking.
            def _via_queue() -> None:
                try:
                    result = self._solve_payloads([job.payload()])[0]
                except Exception as exc:  # noqa: BLE001 - surface it
                    result = {"status": "ERROR", "error": repr(exc)}
                done.set_result(self._finish_async(job, result))

            threading.Thread(target=_via_queue, daemon=True).start()
            return done
        pool = self._ensure_pool()
        if pool is None:
            outcome = self._finish_async(
                job, solve_fleet_payloads([job.payload()])[0]
            )
            done.set_result(outcome)
            return done
        chunk_future = pool.submit_chunk([job.payload()])

        def _chain(fut: "Future[List[Dict[str, Any]]]") -> None:
            try:
                result = fut.result()[0]
            except Exception as exc:
                result = {"status": "ERROR", "error": repr(exc)}
            done.set_result(self._finish_async(job, result))

        chunk_future.add_done_callback(_chain)
        return done

    def _finish_async(
        self, job: ThroughputJob, result: Mapping[str, Any]
    ) -> JobOutcome:
        outcome = JobOutcome.from_solve(
            job, result, cache_hit=result.get("cache_hit", "")
        )
        if outcome.cacheable:
            stored = outcome.to_json_dict()
            stored["cache_hit"] = ""
            self.cache.put(job.digest, stored)
        # A queue-routed job the coordinator answered from its cache
        # (cache_hit="remote") was not solved on our behalf.
        self._record(
            [outcome], 0 if outcome.cache_hit else 1, outcome.wall_time
        )
        return outcome

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[SolverPool]:
        with self._lock:
            if self._pool is None and self._workers > 0:
                self._pool = SolverPool(
                    self._workers,
                    mp_context=self._mp_context,
                    chunk_size=self._chunk_size,
                    job_timeout=self._job_timeout,
                )
            return self._pool

    def _solve_payloads(
        self, payloads: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        if not payloads:
            return []
        if self._queue is not None:
            return self._solve_via_queue(payloads)
        pool = self._ensure_pool()
        if pool is not None:
            return pool.solve(payloads)
        # Inline mode runs the same batched fleet driver the pool
        # workers do — one lockstep kernel pass per K-Iter round.
        return solve_fleet_payloads(payloads)

    def _solve_via_queue(
        self, payloads: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Enqueue the payloads and poll the queue for their outcomes.

        Dead-lettered jobs come back as synthesized ``ERROR`` outcomes
        from the queue itself, so this loop always terminates once
        every job reaches a terminal state; ``queue_wait_timeout``
        additionally bounds the wait against a fully stalled fabric
        (no live workers at all).
        """
        queue = self._queue
        digests = [p["digest"] for p in payloads]
        deadline = (
            None if self._queue_wait_timeout is None
            else time.monotonic() + self._queue_wait_timeout
        )

        def out_of_time() -> bool:
            return deadline is not None and time.monotonic() > deadline

        def stall_outcome(detail: str) -> Dict[str, Any]:
            return {
                "status": "ERROR", "error": detail,
                "engine_used": "", "fallback": False,
                "wall_time": 0.0, "worker_pid": 0,
            }

        results: Dict[str, Dict[str, Any]] = {}
        answered_remotely: set = set()

        # Enqueue — one round trip when the queue speaks batches.
        # Submits are idempotent (digest dedup), so a transient
        # transport fault is answered by backing off and resubmitting
        # everything rather than failing the batch.
        submit_many = getattr(queue, "submit_many", None)
        backoff = self._queue_poll
        while True:
            try:
                if submit_many is not None:
                    receipts = submit_many(payloads)
                else:
                    receipts = [
                        queue.submit(p, digest=p["digest"])
                        for p in payloads
                    ]
                break
            except Exception as exc:  # noqa: BLE001 - outlive a blip
                if out_of_time():
                    detail = stall_outcome(
                        f"could not enqueue within "
                        f"{self._queue_wait_timeout}s: {exc!r}"
                    )
                    return [dict(detail) for _ in digests]
                time.sleep(backoff)
                backoff = min(5.0, backoff * 2)
        for payload, receipt in zip(payloads, receipts):
            # "cached": the coordinator's cache short-circuited the
            # job; "done": the queue already finished an identical one.
            # Either way nothing solved *for us* — a remote hit.
            if getattr(receipt, "state", "") in ("cached", "done"):
                answered_remotely.add(payload["digest"])

        fetch = getattr(queue, "results_fetch", None)
        pending = list(digests)
        backoff = self._queue_poll
        while pending:
            try:
                if fetch is not None:  # one round trip per poll
                    found = fetch(pending)
                else:
                    found = {d: queue.result(d) for d in pending}
            except Exception:  # noqa: BLE001 - poll again after a blip
                if out_of_time():
                    for digest in pending:
                        results[digest] = stall_outcome(
                            f"queue wait exceeded "
                            f"{self._queue_wait_timeout}s "
                            "(coordinator unreachable)"
                        )
                    break
                time.sleep(backoff)
                backoff = min(5.0, backoff * 2)
                continue
            backoff = self._queue_poll
            for digest, outcome in found.items():
                if outcome is not None:
                    if digest in answered_remotely:
                        outcome["cache_hit"] = "remote"
                    results[digest] = outcome
            pending = [d for d in pending if d not in results]
            if not pending:
                break
            if self._queue_inline_drain and self._try_drain_one():
                continue  # solved something: re-poll immediately
            if out_of_time():
                for digest in pending:
                    results[digest] = stall_outcome(
                        f"queue wait exceeded "
                        f"{self._queue_wait_timeout}s "
                        "(no worker answered)"
                    )
                break
            time.sleep(self._queue_poll)
        return [results[digest] for digest in digests]

    def _try_drain_one(self) -> bool:
        try:
            return self._drain_one()
        except Exception:  # noqa: BLE001 - drain is opportunistic
            return False

    def _drain_one(self) -> bool:
        """Lease and solve one queued job inline (cooperative drain)."""
        jobs = self._queue.lease(
            1, worker_id=f"service-inline-{os.getpid()}"
        )
        if not jobs:
            return False
        job = jobs[0]
        try:
            outcome = dict(solve_kiter_payload(job.payload))
        except Exception as exc:  # noqa: BLE001 - e.g. malformed graph
            # A poisoned payload (possibly someone else's on a shared
            # queue) must not abort this batch: nack it back, exactly
            # like the worker daemon does, and let bounded retries
            # dead-letter it.
            self._queue.nack(job.job_id, job.token, error=repr(exc))
            return True
        outcome.setdefault("digest", job.digest)
        self._queue.ack(job.job_id, job.token, outcome)
        return True

    def _record(
        self, outcomes: List[JobOutcome], solves: int, wall: float
    ) -> None:
        with self._lock:
            self._solves_cell.inc(solves)
            self._dedup_cell.inc(sum(
                1 for o in outcomes if o.cache_hit == "batch"
            ))
            # Routing counters describe fresh solves only: a cached
            # outcome's flags describe how it was solved *back then*.
            self._batched_cell.inc(sum(
                1 for o in outcomes if o.batched and not o.cache_hit
            ))
            self._fallback_cell.inc(sum(
                1 for o in outcomes if o.fallback and not o.cache_hit
            ))
            self._wall_cell.inc(wall)
            self._batch_seconds.observe(wall)
            for outcome in outcomes:
                self._jobs_metric.labels(status=outcome.status).inc()

    def stats(self) -> ServiceStats:
        """A snapshot of the service, cache and pool counters.

        Every number is read back from the service's registry cells —
        the same cells ``/metrics`` renders — so this view is the
        fabric-wide source of truth, not a parallel set of counters.
        """
        with self._lock:
            by_status = {
                key[0]: int(value) for key, value in
                self._registry.samples("repro_service_jobs_total").items()
            }
            snapshot = ServiceStats(
                jobs=int(sum(by_status.values())),
                solves=int(self._registry.value(
                    "repro_service_solves_total")),
                batch_dedup=int(self._registry.value(
                    "repro_service_batch_dedup_total")),
                batched=int(self._registry.value(
                    "repro_service_batched_total")),
                fallback=int(self._registry.value(
                    "repro_service_fallback_total")),
                by_status=by_status,
                wall_time=float(self._registry.value(
                    "repro_service_wall_seconds_total")),
                cache=self.cache.stats.as_dict(),
                pool=(
                    self._pool.stats.as_dict()
                    if self._pool is not None else None
                ),
            )
        if self._queue is not None:
            try:
                snapshot.queue = self._queue.stats()
            except Exception:  # noqa: BLE001 - stats stay best-effort
                snapshot.queue = None
        return snapshot

    def cancel(self) -> None:
        """Cancel the in-flight batch, if a pool is running one."""
        with self._lock:
            pool = self._pool
        if pool is not None:
            pool.cancel()

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None and self._owns_pool:
            pool.shutdown()

    def __enter__(self) -> "ThroughputService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
