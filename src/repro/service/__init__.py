"""The throughput-analysis serving layer.

This package turns the per-query analyzer into a service front end over
the MCRP engine registry:

* :mod:`repro.service.job` — content-addressed jobs: canonical graph
  serialization → stable SHA-256 digest, plus the structured
  :class:`JobOutcome` every layer speaks;
* :mod:`repro.service.cache` — the two-tier result cache: in-memory
  LRU in front of any :class:`~repro.distributed.backends.CacheBackend`
  (disk JSON store under ``results/cache/``, WAL SQLite, or a remote
  coordinator's cache over HTTP);
* :mod:`repro.service.pool` — :class:`SolverPool`, the chunked,
  fault-contained ``ProcessPoolExecutor`` fan-out with per-worker graph
  reuse;
* :mod:`repro.service.facade` — :class:`ThroughputService`, the
  ``submit / submit_many / map / submit_async / stats`` front door with
  batch dedup and the engine fallback policy.

``repro batch`` and ``repro serve-stats`` (CLI) and the
``service@<engine>`` bench methods are thin wrappers over this package.
The multi-host pieces — pluggable cache/queue backends, the HTTP
coordinator and the worker daemon — live in :mod:`repro.distributed`;
``ThroughputService(cache=<backend>, queue=<backend>)`` plugs them in
(see ``docs/service.md``).
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.facade import ServiceStats, ThroughputService
from repro.service.job import (
    CACHE_SCHEMA_VERSION,
    JobOutcome,
    ThroughputJob,
    canonical_graph_dict,
    graph_digest,
)
from repro.service.pool import PoolStats, SolverPool, solve_chunk

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "JobOutcome",
    "PoolStats",
    "ResultCache",
    "ServiceStats",
    "SolverPool",
    "ThroughputJob",
    "ThroughputService",
    "canonical_graph_dict",
    "graph_digest",
    "solve_chunk",
]
