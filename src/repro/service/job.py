"""Content-addressed throughput jobs.

A job is a graph plus everything that determines its exact answer: the
MCRP engine (and fallbacks), the K-update policy, the starting K vector
and the warm-start toggle. Two jobs with the same **digest** — the
SHA-256 of the canonical graph serialization and those parameters — have
identical certified results, so the service layer can deduplicate them
in-flight and serve repeats from the result cache without re-solving.

The digest is *semantic*: it hashes :meth:`CsdfGraph.to_dict`'s canonical
form, which sorts tasks and buffers, and it drops the graph and buffer
*names* (labels do not change ``λ*``; task names stay — the K vector is
keyed by them). Building the same graph in a different insertion order,
or loading it under a different file name, yields the same digest.

Budgets (``time_budget``, ``max_rounds``) are deliberately **excluded**
from the digest; in exchange, only deterministic outcomes (``OK`` and
``DEADLOCK``) are ever cached — a ``TIMEOUT`` under a small budget must
not poison a later, better-funded query. The ``batched`` toggle is
excluded too: the batched fleet kernel certifies the same exact ``λ*``
as the per-graph path, so routing is an execution detail, not part of
the answer's identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.model.graph import CsdfGraph

#: Bump when the digest inputs or the outcome schema change shape, so a
#: stale on-disk cache can never satisfy a new-schema query.
CACHE_SCHEMA_VERSION = 1

#: Outcome statuses whose result is deterministic and therefore cacheable.
CACHEABLE_STATUSES = ("OK", "DEADLOCK")


def canonical_graph_dict(graph: Union[CsdfGraph, Mapping[str, Any]]) -> Dict[str, Any]:
    """The digest's view of a graph: canonical order, labels stripped."""
    payload = (
        graph.to_dict(canonical=True)
        if isinstance(graph, CsdfGraph)
        else CsdfGraph.from_dict(dict(graph)).to_dict(canonical=True)
    )
    tasks = [[t["name"], t["durations"]] for t in payload["tasks"]]
    buffers = sorted(
        [
            b["source"], b["target"], b["production"], b["consumption"],
            b["initial_tokens"], bool(b.get("serialization", False)),
        ]
        for b in payload["buffers"]
    )
    return {"v": CACHE_SCHEMA_VERSION, "tasks": tasks, "buffers": buffers}


def graph_digest(graph: Union[CsdfGraph, Mapping[str, Any]]) -> str:
    """Stable hex digest of a graph's semantic content."""
    return _sha(canonical_graph_dict(graph))


def _sha(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class ThroughputJob:
    """One λ* query: a serialized graph plus the solve parameters.

    ``label`` is reporting-only (source file name, generator id, …) and
    never enters the digest.
    """

    graph_dict: Dict[str, Any]
    engine: str = "hybrid"
    fallback_engines: Tuple[str, ...] = ("ratio-iteration",)
    update_policy: str = "lcm"
    initial_k: Optional[Dict[str, int]] = None
    warm_start: bool = True
    max_rounds: int = 100_000
    time_budget: Optional[float] = None
    #: Allow the batched fleet kernel for this job (execution routing
    #: only — never part of the digest).
    batched: bool = True
    label: str = ""
    _digest: Optional[str] = field(default=None, repr=False, compare=False)
    _canonical: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_graph(
        cls,
        graph: Union[CsdfGraph, Mapping[str, Any]],
        **options: Any,
    ) -> "ThroughputJob":
        graph_dict = (
            graph.to_dict() if isinstance(graph, CsdfGraph) else dict(graph)
        )
        options.setdefault("label", graph_dict.get("name", ""))
        job = cls(graph_dict=graph_dict, **options)
        if isinstance(graph, CsdfGraph):
            # Skip the defensive re-parse in canonical_graph_dict — the
            # dict came straight from a validated live graph.
            job._canonical = canonical_graph_dict(graph)
        return job

    @property
    def graph_digest(self) -> str:
        """Digest of the graph semantics alone (worker graph-reuse key)."""
        if self._canonical is None:
            self._canonical = canonical_graph_dict(self.graph_dict)
        return _sha(self._canonical)

    @property
    def digest(self) -> str:
        """Content address: graph semantics + engine chain + K policy."""
        if self._digest is None:
            if self._canonical is None:
                self._canonical = canonical_graph_dict(self.graph_dict)
            self._digest = _sha({
                "graph": self._canonical,
                "engine": self.engine,
                "fallback_engines": list(self.fallback_engines),
                "update_policy": self.update_policy,
                "initial_k": sorted((self.initial_k or {}).items()),
                "warm_start": self.warm_start,
            })
        return self._digest

    def payload(self) -> Dict[str, Any]:
        """The plain-dict form :func:`solve_kiter_payload` executes."""
        return {
            "graph": self.graph_dict,
            "engine": self.engine,
            "fallback_engines": list(self.fallback_engines),
            "update_policy": self.update_policy,
            "initial_k": self.initial_k,
            "warm_start": self.warm_start,
            "max_rounds": self.max_rounds,
            "time_budget": self.time_budget,
            "batched": self.batched,
            "digest": self.digest,
            "graph_digest": self.graph_digest,
        }


@dataclass
class JobOutcome:
    """Structured per-job result, JSON round-trippable.

    ``cache_hit`` is ``""`` for a fresh solve, ``"memory"`` / ``"disk"``
    for the tier that answered, and ``"batch"`` when an identical job in
    the same ``submit_many`` call solved first (in-flight dedup).
    """

    digest: str
    status: str
    period: Optional[Fraction] = None
    K: Optional[Dict[str, int]] = None
    rounds: int = 0
    engine_iterations: int = 0
    critical_tasks: Optional[List[str]] = None
    engine: str = ""
    engine_used: str = ""
    fallback: bool = False
    batched: bool = False
    cache_hit: str = ""
    wall_time: float = 0.0
    worker_pid: int = 0
    error: str = ""
    label: str = ""
    #: Flight-recorder trace id of the solve that produced this outcome
    #: ("" when tracing was off). Never written into the result cache —
    #: the facade strips it before a put, so the on-disk layout is
    #: unchanged and repeats get their own trace.
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "OK"

    @property
    def cacheable(self) -> bool:
        return self.status in CACHEABLE_STATUSES

    @property
    def throughput(self) -> Optional[Fraction]:
        if self.period is None or self.period == 0:
            return None
        return Fraction(1, 1) / self.period

    @classmethod
    def from_solve(cls, job: ThroughputJob, result: Mapping[str, Any],
                   *, cache_hit: str = "") -> "JobOutcome":
        """Build from a :func:`solve_kiter_payload` outcome dict."""
        period = result.get("period")
        return cls(
            digest=job.digest,
            status=result["status"],
            period=Fraction(*period) if period is not None else None,
            K=result.get("K"),
            rounds=result.get("rounds", 0),
            engine_iterations=result.get("engine_iterations", 0),
            critical_tasks=result.get("critical_tasks"),
            engine=job.engine,
            engine_used=result.get("engine_used", job.engine),
            fallback=result.get("fallback", False),
            batched=result.get("batched", False),
            cache_hit=cache_hit,
            wall_time=result.get("wall_time", 0.0),
            worker_pid=result.get("worker_pid", 0),
            error=result.get("error", ""),
            label=job.label,
        )

    def to_json_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "digest": self.digest,
            "status": self.status,
            "period": (
                [self.period.numerator, self.period.denominator]
                if self.period is not None else None
            ),
            "K": self.K,
            "rounds": self.rounds,
            "engine_iterations": self.engine_iterations,
            "critical_tasks": self.critical_tasks,
            "engine": self.engine,
            "engine_used": self.engine_used,
            "fallback": self.fallback,
            "batched": self.batched,
            "cache_hit": self.cache_hit,
            "wall_time": self.wall_time,
            "worker_pid": self.worker_pid,
        }
        if self.error:
            out["error"] = self.error
        if self.label:
            out["label"] = self.label
        if self.trace_id:
            out["trace_id"] = self.trace_id
        return out

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "JobOutcome":
        period = payload.get("period")
        return cls(
            digest=payload["digest"],
            status=payload["status"],
            period=Fraction(*period) if period is not None else None,
            K=payload.get("K"),
            rounds=payload.get("rounds", 0),
            engine_iterations=payload.get("engine_iterations", 0),
            critical_tasks=payload.get("critical_tasks"),
            engine=payload.get("engine", ""),
            engine_used=payload.get("engine_used", ""),
            fallback=payload.get("fallback", False),
            batched=payload.get("batched", False),
            cache_hit=payload.get("cache_hit", ""),
            wall_time=payload.get("wall_time", 0.0),
            worker_pid=payload.get("worker_pid", 0),
            error=payload.get("error", ""),
            label=payload.get("label", ""),
            trace_id=payload.get("trace_id", ""),
        )
