"""Process-pool execution of throughput jobs.

:class:`SolverPool` fans chunks of job payloads out over a
``concurrent.futures.ProcessPoolExecutor``. Chunking amortizes the IPC
and pickling cost of tiny jobs; each worker keeps a small LRU of
deserialized :class:`~repro.model.graph.CsdfGraph` objects keyed by the
job's graph digest (``_cached_graph``), so a batch probing one graph
under several engines or K policies parses it once per worker. The
warm-started worker state goes further than parsing: the expansion
block cache of the direct K-expansion pipeline
(:func:`repro.kperiodic.expansion.expansion_cache_for`) is bound to the
graph *object*, so every job a worker solves on a cached graph reuses
the ``(buffer, K_src, K_dst)`` arc blocks of earlier jobs — the
useful-pair sweeps of a shared expansion run once per worker, not once
per job.

Failure containment:

* a **worker crash** (``BrokenProcessPool``) marks only the affected
  chunk ``ERROR``, recycles the executor and resubmits the untouched
  remainder of the batch;
* a **chunk timeout** (``job_timeout`` seconds per job, scaled by chunk
  size) marks the chunk ``TIMEOUT``, cancels everything still pending
  (those jobs report ``CANCELLED``) and recycles the executor so the
  next batch starts from healthy workers;
* :meth:`SolverPool.cancel` flips a flag any concurrent :meth:`solve`
  observes between chunks.

Everything submitted across the process boundary is a plain dict and
every worker entry point is a module-level function, so the pool works
under the ``spawn`` start method (the default on macOS/Windows, and the
no-assumptions mode the tests exercise) as well as ``fork``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.kperiodic.fleet import solve_fleet_payloads
from repro.model.graph import CsdfGraph
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.obs.trace import span as _span

# Global mirrors of PoolStats: the dataclass stays the per-pool view,
# these cells feed the same numbers to /metrics.
_POOL_CHUNKS = _REGISTRY.counter("repro_pool_chunks_total")
_POOL_JOBS = _REGISTRY.counter("repro_pool_jobs_total")
_POOL_FAILURES = _REGISTRY.counter("repro_pool_failures_total")
_POOL_TIMEOUTS = _POOL_FAILURES.labels(kind="timeout")
_POOL_CRASHES = _POOL_FAILURES.labels(kind="crash")
_POOL_CANCELLED = _POOL_FAILURES.labels(kind="cancelled")
_POOL_RECYCLES = _REGISTRY.counter("repro_pool_recycles_total")

#: Per-worker graphs kept parsed between jobs of one batch. Sized above
#: typical fleet working sets: a cyclic replay of N graphs through an
#: N-1 LRU evicts every entry just before its reuse (classic sequential
#: thrash), turning the graph/expansion caches into pure overhead.
_GRAPH_CACHE_LIMIT = 128
_GRAPH_CACHE: "OrderedDict[str, CsdfGraph]" = OrderedDict()


def _cached_graph(payload: Dict[str, Any]) -> Optional[CsdfGraph]:
    # Keyed by the *graph* digest, not the job digest: jobs probing one
    # graph under several engines or K policies must share the entry.
    digest = payload.get("graph_digest") or payload.get("digest")
    if digest is None:
        return None
    graph = _GRAPH_CACHE.get(digest)
    if graph is None:
        graph = CsdfGraph.from_dict(payload["graph"])
        # The expansion block cache is keyed by this graph *object*
        # (repro.kperiodic.expansion.expansion_cache_for), so keeping
        # the object in the LRU is what carries arc blocks across jobs.
        _GRAPH_CACHE[digest] = graph
        while len(_GRAPH_CACHE) > _GRAPH_CACHE_LIMIT:
            _GRAPH_CACHE.popitem(last=False)
    else:
        _GRAPH_CACHE.move_to_end(digest)
    return graph


def solve_chunk(payloads: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Default worker function: batched lockstep solve with graph reuse.

    The whole chunk goes through
    :func:`repro.kperiodic.fleet.solve_fleet_payloads`, which advances a
    K-Iter machine per payload and answers each lockstep round with one
    batched MCRP kernel pass over the stacked constraint graphs;
    ineligible payloads fall back to the per-payload path inside the
    fleet driver. Graph objects come from the per-worker LRU, so the
    expansion block caches still carry across jobs.

    Explore chunks (``payload["kind"] == "explore"``, see
    :func:`repro.dse.explore.solve_explore_payload`) are whole sweeps,
    not single solves: each runs its own sticky
    :class:`~repro.dse.DseSession` here in the worker — the session's
    caches live where the solves do — and the remaining payloads still
    share one fleet pass.
    """
    payloads = list(payloads)
    with _span("pool.chunk", jobs=len(payloads)):
        explore_at = {
            index: payload for index, payload in enumerate(payloads)
            if payload.get("kind") == "explore"
        }
        if not explore_at:
            return solve_fleet_payloads(
                payloads, graphs=[_cached_graph(p) for p in payloads]
            )
        from repro.dse.explore import solve_explore_payload

        plain = [p for i, p in enumerate(payloads) if i not in explore_at]
        plain_results = iter(solve_fleet_payloads(
            plain, graphs=[_cached_graph(p) for p in plain]
        ))
        return [
            solve_explore_payload(payload, graph=_cached_graph(payload))
            if index in explore_at else next(plain_results)
            for index, payload in enumerate(payloads)
        ]


def _warm_worker() -> None:
    """Executor initializer: import the engine stack once per worker."""
    import repro.mcrp  # noqa: F401  (registers every built-in engine)


@dataclass
class PoolStats:
    """Execution counters of one :class:`SolverPool` lifetime."""

    jobs: int = 0
    chunks: int = 0
    timeouts: int = 0
    crashes: int = 0
    cancelled: int = 0
    recycles: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "jobs": self.jobs,
            "chunks": self.chunks,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "cancelled": self.cancelled,
            "recycles": self.recycles,
        }


class SolverPool:
    """Chunked, fault-contained process-pool front end for job payloads.

    Parameters
    ----------
    max_workers:
        Worker process count (default: ``os.cpu_count()`` capped at 8).
    mp_context:
        Start method: a name (``"fork"``, ``"spawn"``, …), a
        ``multiprocessing`` context, or ``None`` for the platform
        default.
    chunk_size:
        Jobs per submitted chunk; ``None`` sizes chunks so each worker
        sees ~4 of them (good latency/amortization balance).
    job_timeout:
        Wall-clock seconds granted *per job*; a chunk must finish within
        ``job_timeout × len(chunk)`` once it reaches the front of the
        wait queue. ``None`` waits forever.
    worker_fn:
        Override of :func:`solve_chunk` (must be picklable — a
        module-level function); the fault-injection tests use this.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        mp_context: Union[str, Any, None] = None,
        chunk_size: Optional[int] = None,
        job_timeout: Optional[float] = None,
        worker_fn: Optional[
            Callable[[Sequence[Dict[str, Any]]], List[Dict[str, Any]]]
        ] = None,
    ):
        if max_workers is None:
            max_workers = min(os.cpu_count() or 2, 8)
        if max_workers < 1:
            raise ValueError("SolverPool needs at least one worker")
        self.max_workers = max_workers
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self._mp_context = mp_context
        self.chunk_size = chunk_size
        self.job_timeout = job_timeout
        self._worker_fn = worker_fn or solve_chunk
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._cancel_event = threading.Event()
        self.stats = PoolStats()

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=self._mp_context,
                    initializer=_warm_worker,
                )
            return self._executor

    def _recycle(self) -> None:
        """Tear the executor down (hard) so the next chunk starts clean."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is None:
            return
        self.stats.recycles += 1
        _POOL_RECYCLES.inc()
        # Kill live workers first: shutdown() alone would block behind a
        # hung or doomed job, and a timed-out worker never becomes
        # reusable anyway. _processes is stdlib-private but stable; the
        # fallback is an orderly (slower) shutdown.
        processes = getattr(executor, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - platform-specific
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def submit_chunk(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> "Future[List[Dict[str, Any]]]":
        """Submit one chunk; the future resolves to its outcome dicts."""
        self.stats.chunks += 1
        self.stats.jobs += len(payloads)
        _POOL_CHUNKS.inc()
        _POOL_JOBS.inc(len(payloads))
        return self._ensure_executor().submit(
            self._worker_fn, list(payloads)
        )

    def _auto_chunk(self, count: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        per_worker_batches = 4
        return max(1, -(-count // (self.max_workers * per_worker_batches)))

    # ------------------------------------------------------------------
    def solve(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Run every payload, preserving input order.

        Always returns one outcome dict per payload; infrastructure
        failures surface as ``ERROR`` / ``TIMEOUT`` / ``CANCELLED``
        outcomes, never as exceptions.
        """
        self._cancel_event.clear()
        payloads = list(payloads)
        if not payloads:
            return []
        size = self._auto_chunk(len(payloads))
        chunks = [
            payloads[i:i + size] for i in range(0, len(payloads), size)
        ]
        futures: List[Optional[Future]] = [
            self.submit_chunk(chunk) for chunk in chunks
        ]
        results: List[Optional[List[Dict[str, Any]]]] = [None] * len(chunks)

        index = 0
        while index < len(chunks):
            if self._cancel_event.is_set():
                self._drop_pending(futures, index, results, chunks,
                                   "cancelled")
                break
            future = futures[index]
            timeout = (
                None if self.job_timeout is None
                else self.job_timeout * len(chunks[index])
            )
            try:
                results[index] = future.result(timeout=timeout)
            except FutureTimeoutError:
                self.stats.timeouts += len(chunks[index])
                _POOL_TIMEOUTS.inc(len(chunks[index]))
                results[index] = self._synthetic(
                    chunks[index], "TIMEOUT",
                    f"chunk exceeded {timeout:.3g}s in the solver pool",
                )
                self._recycle()
                # The hung worker died with the executor; every later
                # future did too — resubmit them to the fresh pool.
                for later in range(index + 1, len(chunks)):
                    futures[later] = self.submit_chunk(chunks[later])
            except BrokenProcessPool:
                self.stats.crashes += len(chunks[index])
                _POOL_CRASHES.inc(len(chunks[index]))
                results[index] = self._synthetic(
                    chunks[index], "ERROR", "solver pool worker crashed",
                )
                self._recycle()
                # Resubmit everything after the crashed chunk to the
                # fresh executor — their original futures died with it.
                for later in range(index + 1, len(chunks)):
                    futures[later] = self.submit_chunk(chunks[later])
            except Exception as exc:  # pragma: no cover - defensive
                results[index] = self._synthetic(
                    chunks[index], "ERROR", repr(exc),
                )
            index += 1

        flat: List[Dict[str, Any]] = []
        for chunk, outcome in zip(chunks, results):
            if outcome is None:
                outcome = self._synthetic(chunk, "CANCELLED",
                                          "batch cancelled")
            flat.extend(outcome)
        return flat

    def _drop_pending(
        self,
        futures: List[Optional[Future]],
        start: int,
        results: List[Optional[List[Dict[str, Any]]]],
        chunks: List[List[Dict[str, Any]]],
        reason: str,
    ) -> None:
        for later in range(start, len(futures)):
            future = futures[later]
            if future is not None:
                future.cancel()
            if results[later] is None:
                self.stats.cancelled += len(chunks[later])
                _POOL_CANCELLED.inc(len(chunks[later]))
                results[later] = self._synthetic(
                    chunks[later], "CANCELLED", f"batch {reason}",
                )

    @staticmethod
    def _synthetic(
        payloads: Sequence[Dict[str, Any]], status: str, error: str
    ) -> List[Dict[str, Any]]:
        return [
            {"status": status, "error": error, "engine_used": "",
             "fallback": False, "wall_time": 0.0, "worker_pid": 0,
             "batched": False}
            for _ in payloads
        ]

    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Ask a concurrently running :meth:`solve` to stop between chunks."""
        self._cancel_event.set()

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
