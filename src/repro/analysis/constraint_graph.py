"""Build the bi-valued MCRP graph from Theorem 2's constraints.

Nodes are the first executions ``⟨t_p, 1⟩`` of every phase of every task;
each useful constraint contributes an arc ``⟨t_p,1⟩ → ⟨t'_{p'},1⟩`` valued

    ``(L, H) = (d(t_p), −β_b(p,p') / (q_t·i_b))``.

The minimum feasible period is the maximum cycle ratio of this graph
(paper §3.3), and a critical circuit certifies it.

Parallel arcs between the same node pair (several useful pairs of the same
buffer, or several buffers between the same tasks) all share the same cost
``L = d(t_p)``; only the largest ``Ω``-coefficient binds, so we merge them
keeping the arc with minimal ``H``. This typically shrinks K-expanded
constraint graphs dramatically (see the A3 ablation bench). The merge is
one vectorized ``np.lexsort`` + ``minimum.reduceat`` pass
(:func:`merge_parallel_candidates`, shared with the direct K-expansion
pipeline in :mod:`repro.kperiodic.expansion`); the historical dict-based
merge survives as the no-numpy/overflow fallback and produces the exact
same graph — first-occurrence arc order, minimal ``H`` per node pair.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

try:  # numpy backs the vectorized merge; optional
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

from repro.analysis.consistency import repetition_vector
from repro.analysis.precedence import useful_pair_arrays
from repro.mcrp.graph import BiValuedGraph
from repro.model.graph import CsdfGraph
from repro.utils.rational import lcm_list

NodeKey = Tuple[str, int]  # (task name, 1-based phase)

#: Stay well inside int64 for the rescaled β comparisons of the merge.
_MERGE_INT64_GUARD = 1 << 62


def merge_parallel_candidates(srcs, dsts, costs, betas, denoms, node_count):
    """Vectorized min-``H`` dedupe of candidate arcs, first-occurrence order.

    Inputs are parallel int64 arrays describing candidate arcs whose
    transit is the exact rational ``H = −β/den`` (``den > 0`` per arc —
    the Theorem 2 denominator ``q_t·i_b`` of the emitting buffer).
    Among candidates sharing ``(src, dst)`` only the minimal ``H`` (the
    binding constraint) survives; the survivors keep the order in which
    their node pair first appeared in the input, and the kept cost is
    the group's shared ``L = d(t_p)`` (all candidates of a node pair
    come from the same producer phase).

    The exact cross-denominator comparison rescales every β to the lcm
    of the distinct denominators (one ``np.lexsort`` groups the pairs,
    one ``minimum.reduceat`` picks each group's minimum rescaled ``H``).
    Returns ``(srcs, dsts, costs, betas, denoms)`` — the output β/den
    pairs represent the same rationals, possibly unreduced — or ``None``
    when the rescaled values could overflow int64 (the caller then falls
    back to the exact dict merge).
    """
    m = int(srcs.shape[0])
    if m == 0:
        return srcs, dsts, costs, betas, denoms
    distinct = [int(d) for d in _np.unique(denoms)]
    common = lcm_list(distinct)
    if common >= _MERGE_INT64_GUARD:
        return None
    factors = common // denoms  # int64: common < 2**62, denoms ≥ 1
    max_beta = int(_np.abs(betas).max())
    max_factor = int(factors.max())
    if max_beta and max_beta * max_factor >= _MERGE_INT64_GUARD:
        return None
    # H·common = −β·(common/den): minimize H ⇔ minimize the rescaled value.
    scaled_h = -(betas * factors)
    key = srcs * _np.int64(node_count) + dsts
    order = _np.lexsort((key,))  # stable: ties keep input order
    key_sorted = key[order]
    group_starts = _np.flatnonzero(
        _np.concatenate(([True], key_sorted[1:] != key_sorted[:-1]))
    )
    min_h = _np.minimum.reduceat(scaled_h[order], group_starts)
    # Stable sort ⇒ the first element of each group slice carries the
    # smallest original index: that is the node pair's first occurrence.
    firsts = order[group_starts]
    emit = _np.argsort(firsts, kind="stable")
    firsts = firsts[emit]
    return (
        srcs[firsts],
        dsts[firsts],
        costs[firsts],
        -min_h[emit],
        _np.full(firsts.shape[0], common, dtype=_np.int64),
    )


def build_constraint_graph(
    graph: CsdfGraph,
    repetition: Optional[Dict[str, int]] = None,
    *,
    serialize: bool = True,
    merge_parallel: bool = True,
) -> Tuple[BiValuedGraph, Dict[NodeKey, int]]:
    """The bi-valued graph of Theorem 2 for ``graph``.

    Parameters
    ----------
    graph:
        A consistent CSDFG (typically the K-expansion ``G̃``).
    repetition:
        Its repetition vector; computed when omitted.
    serialize:
        Add the implicit all-ones self-loop buffers that forbid
        auto-concurrency before generating constraints (the paper's
        schedules assume serialized tasks — Figure 5 contains the
        corresponding ``A1→A2`` arcs).
    merge_parallel:
        Keep only the dominant arc between each node pair.

    Returns
    -------
    (bi-valued graph, node index) where the node index maps
    ``(task, phase)`` to the dense node id.
    """
    work = graph.with_serialization_loops() if serialize else graph
    if repetition is None:
        repetition = repetition_vector(work)

    node_index: Dict[NodeKey, int] = {}
    labels = []
    base_of: Dict[str, int] = {}
    for t in work.tasks():
        base_of[t.name] = len(labels)
        for p in range(1, t.phase_count + 1):
            node_index[(t.name, p)] = len(labels)
            labels.append((t.name, p))
    bi_graph = BiValuedGraph(len(labels), labels=labels)

    # Parallel-arc merging is only possible between buffers that share the
    # same task pair (phase pairs are unique within one buffer), so the
    # merge only engages when such a group exists and everything else
    # keeps its per-buffer emission order.
    pair_count: Dict[Tuple[str, str], int] = {}
    for b in work.buffers():
        key = (b.source, b.target)
        pair_count[key] = pair_count.get(key, 0) + 1
    shared_pairs = any(count > 1 for count in pair_count.values())

    built = False
    if _np is not None:
        built = _build_arcs_vectorized(
            work, repetition, bi_graph, base_of,
            merge=merge_parallel and shared_pairs,
        )
    if not built:
        _build_arcs_streaming(
            work, repetition, bi_graph, base_of, pair_count, merge_parallel
        )
    # Arc construction edits arc arrays in bulk, so drop any stale
    # compilation before emitting the frozen arc-array form. Every
    # downstream consumer (oracle probes, SCC sweep, engines, potentials)
    # shares this single compilation via the graph's cache.
    bi_graph.invalidate()
    bi_graph.compile()
    return bi_graph, node_index


def _build_arcs_vectorized(
    work: CsdfGraph,
    repetition: Dict[str, int],
    bi_graph: BiValuedGraph,
    base_of: Dict[str, int],
    *,
    merge: bool,
) -> bool:
    """Gather every buffer's candidate arcs as int64 arrays, merge, emit.

    Returns False when the exact merge cannot run in int64 (the caller
    then uses the streaming dict merge). The emitted graph is identical
    to the streaming path's: per-buffer row-major candidate order,
    first-occurrence order among merged node pairs.
    """
    parts_src, parts_dst, parts_cost, parts_beta, parts_den = [], [], [], [], []
    for b in work.buffers():
        denom = repetition[b.source] * b.total_production
        p0s, pp0s, betas = useful_pair_arrays(b)
        p0s = _np.asarray(p0s, dtype=_np.int64)
        pp0s = _np.asarray(pp0s, dtype=_np.int64)
        betas = _np.asarray(betas, dtype=_np.int64)
        durations = _np.asarray(
            work.task(b.source).durations, dtype=_np.int64
        )
        parts_src.append(p0s + base_of[b.source])
        parts_dst.append(pp0s + base_of[b.target])
        parts_cost.append(durations[p0s])
        parts_beta.append(betas)
        parts_den.append(_np.full(p0s.shape[0], denom, dtype=_np.int64))
    if not parts_src:
        return True
    srcs = _np.concatenate(parts_src)
    dsts = _np.concatenate(parts_dst)
    costs = _np.concatenate(parts_cost)
    betas = _np.concatenate(parts_beta)
    denoms = _np.concatenate(parts_den)
    if merge:
        merged = merge_parallel_candidates(
            srcs, dsts, costs, betas, denoms, bi_graph.node_count
        )
        if merged is None:
            return False
        srcs, dsts, costs, betas, denoms = merged
    bi_graph.extend_arcs(
        srcs.tolist(),
        dsts.tolist(),
        [Fraction(c) for c in costs.tolist()],
        [
            Fraction(-beta, den)
            for beta, den in zip(betas.tolist(), denoms.tolist())
        ],
    )
    return True


def _build_arcs_streaming(
    work: CsdfGraph,
    repetition: Dict[str, int],
    bi_graph: BiValuedGraph,
    base_of: Dict[str, int],
    pair_count: Dict[Tuple[str, str], int],
    merge_parallel: bool,
) -> None:
    """The historical per-buffer emission with the dict-based merge.

    Kept as the no-numpy / int64-overflow fallback and as the reference
    the vectorized merge is pinned against.
    """
    best: Dict[Tuple[int, int], int] = {}
    for b in work.buffers():
        denom = repetition[b.source] * b.total_production
        src_base = base_of[b.source]
        dst_base = base_of[b.target]
        durations = work.task(b.source).durations
        p0s, pp0s, betas = useful_pair_arrays(b)
        shared_pair = merge_parallel and pair_count[(b.source, b.target)] > 1
        if not shared_pair:
            srcs = [src_base + int(p0) for p0 in p0s]
            dsts = [dst_base + int(pp0) for pp0 in pp0s]
            costs = [Fraction(durations[int(p0)]) for p0 in p0s]
            transits = [Fraction(-int(beta), denom) for beta in betas]
            bi_graph.extend_arcs(srcs, dsts, costs, transits)
            continue
        for p0, pp0, beta in zip(p0s, pp0s, betas):
            src = src_base + int(p0)
            dst = dst_base + int(pp0)
            height = Fraction(-int(beta), denom)
            existing = best.get((src, dst))
            if existing is None:
                best[(src, dst)] = bi_graph.add_arc(
                    src, dst, durations[int(p0)], height
                )
            elif height < bi_graph.arc_transit[existing]:
                # Same L (= d(t_p)); smaller H is the tighter constraint.
                bi_graph.arc_transit[existing] = height
