"""Build the bi-valued MCRP graph from Theorem 2's constraints.

Nodes are the first executions ``⟨t_p, 1⟩`` of every phase of every task;
each useful constraint contributes an arc ``⟨t_p,1⟩ → ⟨t'_{p'},1⟩`` valued

    ``(L, H) = (d(t_p), −β_b(p,p') / (q_t·i_b))``.

The minimum feasible period is the maximum cycle ratio of this graph
(paper §3.3), and a critical circuit certifies it.

Parallel arcs between the same node pair (several useful pairs of the same
buffer, or several buffers between the same tasks) all share the same cost
``L = d(t_p)``; only the largest ``Ω``-coefficient binds, so we merge them
keeping the arc with minimal ``H``. This typically shrinks K-expanded
constraint graphs dramatically (see the A3 ablation bench).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.analysis.consistency import repetition_vector
from repro.analysis.precedence import useful_pair_arrays
from repro.mcrp.graph import BiValuedGraph
from repro.model.graph import CsdfGraph

NodeKey = Tuple[str, int]  # (task name, 1-based phase)


def build_constraint_graph(
    graph: CsdfGraph,
    repetition: Optional[Dict[str, int]] = None,
    *,
    serialize: bool = True,
    merge_parallel: bool = True,
) -> Tuple[BiValuedGraph, Dict[NodeKey, int]]:
    """The bi-valued graph of Theorem 2 for ``graph``.

    Parameters
    ----------
    graph:
        A consistent CSDFG (typically the K-expansion ``G̃``).
    repetition:
        Its repetition vector; computed when omitted.
    serialize:
        Add the implicit all-ones self-loop buffers that forbid
        auto-concurrency before generating constraints (the paper's
        schedules assume serialized tasks — Figure 5 contains the
        corresponding ``A1→A2`` arcs).
    merge_parallel:
        Keep only the dominant arc between each node pair.

    Returns
    -------
    (bi-valued graph, node index) where the node index maps
    ``(task, phase)`` to the dense node id.
    """
    work = graph.with_serialization_loops() if serialize else graph
    if repetition is None:
        repetition = repetition_vector(work)

    node_index: Dict[NodeKey, int] = {}
    labels = []
    base_of: Dict[str, int] = {}
    for t in work.tasks():
        base_of[t.name] = len(labels)
        for p in range(1, t.phase_count + 1):
            node_index[(t.name, p)] = len(labels)
            labels.append((t.name, p))
    bi_graph = BiValuedGraph(len(labels), labels=labels)

    # Parallel-arc merging is only possible between buffers that share the
    # same task pair (phase pairs are unique within one buffer), so the
    # dict-based merge is restricted to those groups and everything else
    # takes the bulk path.
    pair_count: Dict[Tuple[str, str], int] = {}
    for b in work.buffers():
        key = (b.source, b.target)
        pair_count[key] = pair_count.get(key, 0) + 1

    best: Dict[Tuple[int, int], int] = {}
    for b in work.buffers():
        denom = repetition[b.source] * b.total_production
        src_base = base_of[b.source]
        dst_base = base_of[b.target]
        durations = work.task(b.source).durations
        p0s, pp0s, betas = useful_pair_arrays(b)
        shared_pair = merge_parallel and pair_count[(b.source, b.target)] > 1
        if not shared_pair:
            srcs = [src_base + int(p0) for p0 in p0s]
            dsts = [dst_base + int(pp0) for pp0 in pp0s]
            costs = [Fraction(durations[int(p0)]) for p0 in p0s]
            transits = [Fraction(-int(beta), denom) for beta in betas]
            bi_graph.extend_arcs(srcs, dsts, costs, transits)
            continue
        for p0, pp0, beta in zip(p0s, pp0s, betas):
            src = src_base + int(p0)
            dst = dst_base + int(pp0)
            height = Fraction(-int(beta), denom)
            existing = best.get((src, dst))
            if existing is None:
                best[(src, dst)] = bi_graph.add_arc(
                    src, dst, durations[int(p0)], height
                )
            elif height < bi_graph.arc_transit[existing]:
                # Same L (= d(t_p)); smaller H is the tighter constraint.
                bi_graph.arc_transit[existing] = height
    # The merge loop above edits arc_transit in place, so drop any stale
    # compilation before emitting the frozen arc-array form. Every
    # downstream consumer (oracle probes, SCC sweep, engines, potentials)
    # shares this single compilation via the graph's cache.
    bi_graph.invalidate()
    bi_graph.compile()
    return bi_graph, node_index
