"""Liveness of a consistent CSDFG.

A consistent CSDFG is *live* iff the untimed token game can complete one
full graph iteration — ``q_t`` iterations (``q_t·ϕ(t)`` phase firings) of
every task — from the initial marking. After a full iteration the marking
returns to its initial value, so the execution repeats forever.

The check is the classic greedy capped firing: repeatedly fire any enabled
task whose cap is not yet reached. Firing is monotone (firing one task
never disables a *different* enabled firing), so greedy order is complete:
it succeeds iff some order succeeds.

Liveness is exactly the feasibility side of the throughput problem: the
MCRP formulation raises :class:`~repro.exceptions.DeadlockError` on
non-live graphs, and the two must agree (covered by the test suite).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.consistency import repetition_vector
from repro.exceptions import InconsistentGraphError
from repro.model.graph import CsdfGraph


def is_live(graph: CsdfGraph) -> bool:
    """True when the graph is consistent and admits an infinite schedule.

    Examples
    --------
    >>> from repro.model import sdf
    >>> is_live(sdf({"A": 1, "B": 1},
    ...             [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 0)]))
    False
    >>> is_live(sdf({"A": 1, "B": 1},
    ...             [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)]))
    True
    """
    try:
        q = repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return can_complete_iteration(graph, q)


def can_complete_iteration(graph: CsdfGraph, q: Dict[str, int]) -> bool:
    """Greedy capped token game: can every task fire ``q_t`` iterations?"""
    names = graph.task_names()
    index = {n: i for i, n in enumerate(names)}
    phi = [graph.task(n).phase_count for n in names]
    target = [q[n] * phi[i] for i, n in enumerate(names)]
    fired = [0] * len(names)
    cursor = [0] * len(names)

    buffers = list(graph.buffers())
    tokens = [b.initial_tokens for b in buffers]
    consumes = [[] for _ in names]  # (buffer idx, rate vector)
    produces = [[] for _ in names]
    for b_idx, b in enumerate(buffers):
        produces[index[b.source]].append((b_idx, b.production))
        consumes[index[b.target]].append((b_idx, b.consumption))

    def can_fire(t: int) -> bool:
        p = cursor[t]
        return all(tokens[b] >= rates[p] for b, rates in consumes[t])

    progress = True
    while progress:
        progress = False
        for t in range(len(names)):
            while fired[t] < target[t] and can_fire(t):
                p = cursor[t]
                for b, rates in consumes[t]:
                    tokens[b] -= rates[p]
                for b, rates in produces[t]:
                    tokens[b] += rates[p]
                cursor[t] = (p + 1) % phi[t]
                fired[t] += 1
                progress = True
    return all(fired[t] == target[t] for t in range(len(names)))
