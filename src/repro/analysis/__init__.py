"""Static analyses of CSDF graphs.

* :mod:`repro.analysis.consistency` — repetition vector (exact rationals).
* :mod:`repro.analysis.structure` — SCCs and connectivity.
* :mod:`repro.analysis.precedence` — Theorem 2's per-buffer constraint
  windows (``Q``, ``α``, ``β``, the useful-pair set ``Y``).
* :mod:`repro.analysis.constraint_graph` — the bi-valued graph the MCRP is
  solved on.
* :mod:`repro.analysis.liveness` — exact liveness via token simulation.
"""

from repro.analysis.bounds import PeriodBounds, period_bounds
from repro.analysis.consistency import (
    is_consistent,
    normalized_rates,
    repetition_vector,
    repetition_vector_sum,
)
from repro.analysis.latency import (
    asap_source_sink_latency,
    iteration_makespan,
)
from repro.analysis.liveness import is_live
from repro.analysis.structure import (
    strongly_connected_components,
    is_strongly_connected,
    weakly_connected_components,
)
from repro.analysis.precedence import (
    PrecedenceConstraint,
    buffer_constraints,
    constraint_window,
    useful_pairs,
)
from repro.analysis.constraint_graph import build_constraint_graph

__all__ = [
    "PeriodBounds",
    "period_bounds",
    "asap_source_sink_latency",
    "iteration_makespan",
    "is_consistent",
    "normalized_rates",
    "repetition_vector",
    "repetition_vector_sum",
    "is_live",
    "strongly_connected_components",
    "is_strongly_connected",
    "weakly_connected_components",
    "PrecedenceConstraint",
    "buffer_constraints",
    "constraint_window",
    "useful_pairs",
    "build_constraint_graph",
]
