"""Latency metrics for CSDF schedules.

Throughput is the paper's subject; latency is the companion quality the
introduction motivates (streaming deadlines). Two standard metrics:

* :func:`iteration_makespan` — steady-state span of one graph iteration
  under a K-periodic schedule (max completion − min start over the
  iteration's executions). Constant from one iteration to the next by
  periodicity.
* :func:`asap_source_sink_latency` — self-timed elapsed time between the
  first firing of a source task and the first completion of a sink task
  (the classical "first token out" measure).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from repro.analysis.consistency import repetition_vector
from repro.exceptions import DeadlockError, ModelError
from repro.kperiodic.schedule import KPeriodicSchedule
from repro.model.graph import CsdfGraph
from repro.scheduling.asap import AsapSimulator


def iteration_makespan(
    schedule: KPeriodicSchedule,
    graph: CsdfGraph,
    *,
    iteration: int = 2,
) -> Fraction:
    """Span of graph iteration ``iteration`` (1-based) under ``schedule``.

    Iteration ``r`` comprises executions ``(r−1)·q_t + 1 … r·q_t`` of
    every task. Early iterations can be shorter (start-up transient);
    by periodicity every iteration ≥ 2 has the same span, so that is the
    default.

    Examples
    --------
    >>> from repro.model import sdf
    >>> from repro.kperiodic import min_period_for_k
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
    >>> s = min_period_for_k(g, {"A": 1, "B": 1}).schedule
    >>> iteration_makespan(s, g)
    Fraction(2, 1)
    """
    if iteration < 1:
        raise ModelError(f"iteration must be ≥ 1, got {iteration}")
    q = repetition_vector(graph)
    earliest: Optional[Fraction] = None
    latest: Optional[Fraction] = None
    for t in graph.tasks():
        for n in range((iteration - 1) * q[t.name] + 1,
                       iteration * q[t.name] + 1):
            for p in range(1, t.phase_count + 1):
                start = schedule.start_time(t.name, p, n)
                end = start + t.duration(p)
                if earliest is None or start < earliest:
                    earliest = start
                if latest is None or end > latest:
                    latest = end
    assert earliest is not None and latest is not None
    return latest - earliest


def asap_source_sink_latency(
    graph: CsdfGraph,
    source: str,
    sink: str,
    *,
    max_events: int = 1_000_000,
) -> int:
    """Self-timed latency: first ``source`` start → first ``sink`` end.

    Both tasks must complete at least one full iteration's worth of
    firings for the measure to be meaningful; the simulation runs until
    the sink completes its first firing.
    """
    graph.task(source)
    graph.task(sink)
    sim = AsapSimulator(graph)
    names = sim._task_names
    src_idx = names.index(source)
    sink_idx = names.index(sink)
    first_start: Optional[int] = None
    sink_end: Optional[int] = None

    def recorder(t_idx: int, _phase0: int, start: int, end: int) -> None:
        nonlocal first_start, sink_end
        if t_idx == src_idx and first_start is None:
            first_start = start
        if t_idx == sink_idx and sink_end is None:
            sink_end = end

    while sink_end is None:
        if sim.total_events > max_events:
            raise ModelError(
                f"sink {sink!r} did not fire within {max_events} events"
            )
        if not sim.step(on_firing=recorder):
            raise DeadlockError(
                f"graph {graph.name!r} deadlocked before {sink!r} fired"
            )
    if first_start is None:
        raise ModelError(
            f"sink {sink!r} fired before source {source!r}; "
            "check the direction of the measurement"
        )
    return sink_end - first_start


def schedule_latency_by_task(
    schedule: KPeriodicSchedule,
    graph: CsdfGraph,
) -> Dict[str, Fraction]:
    """Per-task steady-state busy span within one iteration (diagnostic)."""
    q = repetition_vector(graph)
    spans: Dict[str, Fraction] = {}
    for t in graph.tasks():
        starts = []
        ends = []
        for n in range(q[t.name] + 1, 2 * q[t.name] + 1):
            for p in range(1, t.phase_count + 1):
                s = schedule.start_time(t.name, p, n)
                starts.append(s)
                ends.append(s + t.duration(p))
        spans[t.name] = max(ends) - min(starts)
    return spans
