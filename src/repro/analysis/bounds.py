"""Cheap analytic period bounds (no MCRP solve).

Design-space exploration often wants a one-microsecond estimate before
paying for an exact evaluation. Two classic bounds:

* **utilization** (lower bound on the period): every task's
  serialization forces ``Ω ≥ q_t·Σ_p d(t_p)``; take the max. Exact
  whenever the binding constraint is a single task's workload.
* **sequential** (upper bound): executing the whole iteration one firing
  at a time needs ``Σ_t q_t·Σ_p d(t_p)``; any live graph admits a
  periodic schedule no slower than one iteration per sequential sweep
  (validity requires liveness, which this module does not check).

The exact period always lies in ``[utilization, sequential]`` for live
graphs — pinned by a property test against K-Iter.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.analysis.consistency import repetition_vector
from repro.model.graph import CsdfGraph


@dataclass(frozen=True)
class PeriodBounds:
    """``lower ≤ Ω* ≤ upper`` for live graphs."""

    lower: Fraction
    upper: Fraction
    bottleneck_task: str

    @property
    def is_tight(self) -> bool:
        return self.lower == self.upper

    def contains(self, period: Fraction) -> bool:
        return self.lower <= period <= self.upper


def period_bounds(
    graph: CsdfGraph,
    repetition: Optional[Dict[str, int]] = None,
) -> PeriodBounds:
    """Utilization and sequential bounds on the exact period.

    Examples
    --------
    >>> from repro.model import sdf
    >>> b = period_bounds(sdf({"A": 2, "B": 3}, [("A", "B", 1, 1, 0)]))
    >>> (b.lower, b.upper, b.bottleneck_task)
    (Fraction(3, 1), Fraction(5, 1), 'B')
    """
    if repetition is None:
        repetition = repetition_vector(graph)
    workloads = {
        t.name: repetition[t.name] * t.iteration_duration
        for t in graph.tasks()
    }
    bottleneck = max(workloads, key=workloads.__getitem__)
    return PeriodBounds(
        lower=Fraction(workloads[bottleneck]),
        upper=Fraction(sum(workloads.values())),
        bottleneck_task=bottleneck,
    )
