"""Theorem 2: precedence constraints of a feasible periodic schedule.

For a buffer ``b = (t, t')`` and a phase pair ``(p, p')`` the paper defines

* ``Q_b(p,p') = Oa⟨t'_{p'},1⟩ − Ia⟨t_p,1⟩ − M0(b) + in_b(p)``
* ``gcd_b = gcd(i_b, o_b)``
* ``α_b(p,p') = ⌈ Q_b(p,p') − min(in_b(p), out_b(p')) ⌉^{gcd_b}``
* ``β_b(p,p')  = ⌊ Q_b(p,p') − 1 ⌋^{gcd_b}``

where ``⌈x⌉^γ``/``⌊x⌋^γ`` round to multiples of γ. A pair is *useful* when
``α ≤ β``; each useful pair yields the linear constraint

    ``S⟨t'_{p'},1⟩ − S⟨t_p,1⟩ ≥ d(t_p) + Ω · β_b(p,p') / (q_t · i_b)``

on the first start times of a periodic schedule of period Ω (Theorem 2).

Sanity anchors (hand-checked, also enforced by the unit tests):

* an all-ones self-loop with one token yields the phase-chaining
  constraints ``S⟨t_{p+1}⟩ ≥ S⟨t_p⟩ + d(t_p)`` (β = 0) plus a wrap-around
  constraint with ``β = −i_b`` giving the utilization bound
  ``Ω ≥ q_t · Σ_p d(t_p)``;
* on the Figure 1 buffer, ``⟨t'_2,1⟩`` becomes executable exactly at the
  completion of ``⟨t_1,2⟩``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Tuple

try:  # numpy accelerates the O(ϕ·ϕ') candidate sweep; optional
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.utils.rational import ceil_to_multiple, floor_to_multiple

#: Row-block budget of the vectorized O(ϕ·ϕ') useful-pair sweeps, in
#: int64 matrix cells: each candidate block materializes at most
#: ``PAIR_SWEEP_BLOCK_CELLS`` cells per intermediate (8 Mi cells ≈ 64 MiB
#: for the ``q``/``min-rate``/``β`` matrices each), bounding peak memory
#: on K-expanded buffers whose full candidate matrix would not fit.
#: Shared with the direct (G, K) expansion sweep in
#: :func:`expanded_useful_pair_arrays`.
PAIR_SWEEP_BLOCK_CELLS = 8 * 1024 * 1024


@dataclass(frozen=True)
class PrecedenceConstraint:
    """One useful Theorem 2 constraint.

    The constraint reads ``S(target) − S(source) ≥ duration + Ω·omega_coeff``
    where *source* is the first execution of producer phase ``p`` and
    *target* the first execution of consumer phase ``p'``.

    ``omega_coeff`` is the exact fraction ``β/(q_t·i_b)``; in the bi-valued
    MCRP graph the arc carries ``(L, H) = (duration, −omega_coeff)``.
    """

    buffer_name: str
    source_task: str
    source_phase: int
    target_task: str
    target_phase: int
    duration: int
    beta: int
    omega_coeff: Fraction

    @property
    def height(self) -> Fraction:
        """The MCRP transit value ``H = −β/(q_t·i_b)``."""
        return -self.omega_coeff


def token_balance(buffer: Buffer, p: int, n: int, p_prime: int, n_prime: int) -> int:
    """``M0(b) + Ia⟨t_p,n⟩ − Oa⟨t'_{p'},n'⟩`` — the executability margin.

    ``⟨t'_{p'},n'⟩`` can be done at the completion of ``⟨t_p,n⟩`` iff this is
    non-negative (§3.1 of the paper).
    """
    return (
        buffer.initial_tokens
        + buffer.produced_upto(p, n)
        - buffer.consumed_upto(p_prime, n_prime)
    )


def q_value(buffer: Buffer, p: int, p_prime: int) -> int:
    """``Q_b(p,p')`` as defined above."""
    return (
        buffer.consumed_upto(p_prime, 1)
        - buffer.produced_upto(p, 1)
        - buffer.initial_tokens
        + buffer.production[p - 1]
    )


def constraint_window(buffer: Buffer, p: int, p_prime: int) -> Tuple[int, int]:
    """``(α_b(p,p'), β_b(p,p'))`` for one phase pair.

    The pair contributes a constraint iff ``α ≤ β``.
    """
    q = q_value(buffer, p, p_prime)
    gcd_b = buffer.rate_gcd
    in_p = buffer.production[p - 1]
    out_p = buffer.consumption[p_prime - 1]
    alpha = ceil_to_multiple(q - min(in_p, out_p), gcd_b)
    beta = floor_to_multiple(q - 1, gcd_b)
    return alpha, beta


def useful_pairs(buffer: Buffer) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(p, p', β)`` for every useful pair of the buffer.

    This is the set ``Y(b)`` of the paper, enumerated lazily: the number of
    candidate pairs is ``ϕ(t)·ϕ(t')`` which grows quadratically under
    K-expansion, so callers stream rather than materialize.
    """
    phi_p = len(buffer.production)
    phi_c = len(buffer.consumption)
    m0 = buffer.initial_tokens
    gcd_b = buffer.rate_gcd
    # Prefix sums once; the inner loop then runs on plain ints.
    produced_prefix = [0] * (phi_p + 1)
    for i, r in enumerate(buffer.production, start=1):
        produced_prefix[i] = produced_prefix[i - 1] + r
    consumed_prefix = [0] * (phi_c + 1)
    for i, r in enumerate(buffer.consumption, start=1):
        consumed_prefix[i] = consumed_prefix[i - 1] + r
    for p in range(1, phi_p + 1):
        in_p = buffer.production[p - 1]
        base = in_p - produced_prefix[p] - m0
        for p_prime in range(1, phi_c + 1):
            q = consumed_prefix[p_prime] + base
            out_p = buffer.consumption[p_prime - 1]
            alpha = ceil_to_multiple(q - min(in_p, out_p), gcd_b)
            beta = floor_to_multiple(q - 1, gcd_b)
            if alpha <= beta:
                yield p, p_prime, beta


def useful_pair_arrays(buffer: Buffer):
    """Vectorized ``Y(b)``: arrays ``(p0, pp0, beta)`` with 0-based phases.

    Semantically identical to :func:`useful_pairs` (a unit test pins the
    equivalence) but evaluates the α ≤ β filter with numpy, which is what
    makes K-expanded constraint generation tractable on the Table 2
    graphs. Falls back to the streaming implementation without numpy.

    Large producers are processed in row blocks to bound peak memory at
    ``block × ϕ(consumer)`` int64 cells.
    """
    if _np is None:  # pragma: no cover - numpy is present in CI
        ps, pps, betas = [], [], []
        for p, pp, beta in useful_pairs(buffer):
            ps.append(p - 1)
            pps.append(pp - 1)
            betas.append(beta)
        return ps, pps, betas

    production = _np.asarray(buffer.production, dtype=_np.int64)
    consumption = _np.asarray(buffer.consumption, dtype=_np.int64)
    return _pair_sweep(
        production,
        consumption,
        _np.cumsum(production),
        _np.cumsum(consumption),
        buffer.initial_tokens,
        buffer.rate_gcd,
    )


def _pair_sweep(production, consumption, prod_prefix, cons_prefix, m0, g):
    """Row-blocked Theorem 2 α ≤ β sweep over prepared rate arrays.

    The shared core of :func:`useful_pair_arrays` (base or materialized
    expanded buffers) and :func:`expanded_useful_pair_arrays` (tiled
    arrays synthesized from the base buffer): results are row-major in
    the producer phase regardless of the block size, which is what the
    parity contract between the two pipelines relies on.
    """
    base = production - prod_prefix - m0  # in(p) − Σ_{α≤p} in(α) − M0
    phi_p = production.shape[0]
    block = max(
        1, min(phi_p, PAIR_SWEEP_BLOCK_CELLS // max(1, cons_prefix.shape[0]))
    )
    out_p: List = []
    out_pp: List = []
    out_beta: List = []
    for lo in range(0, phi_p, block):
        hi = min(phi_p, lo + block)
        q_mat = cons_prefix[None, :] + base[lo:hi, None]
        min_rate = _np.minimum(production[lo:hi, None], consumption[None, :])
        alpha = -((-(q_mat - min_rate)) // g) * g
        beta = ((q_mat - 1) // g) * g
        rows, cols = _np.nonzero(alpha <= beta)
        out_p.append(rows + lo)
        out_pp.append(cols)
        out_beta.append(beta[rows, cols])
    return (
        _np.concatenate(out_p) if out_p else _np.empty(0, dtype=_np.int64),
        _np.concatenate(out_pp) if out_pp else _np.empty(0, dtype=_np.int64),
        _np.concatenate(out_beta) if out_beta else _np.empty(0, dtype=_np.int64),
    )


def expanded_useful_pair_arrays(buffer: Buffer, k_src: int, k_dst: int):
    """``Y(b̃)`` of the K-expanded buffer, straight from the base buffer.

    Returns the same ``(p0, pp0, beta)`` arrays
    :func:`useful_pair_arrays` would return on the materialized
    expansion (production duplicated ``k_src`` times, consumption
    ``k_dst`` times — §3.2's ``[v]^P`` operator), without building the
    expanded :class:`~repro.model.buffer.Buffer`. The trick is that the
    expanded prefix sums are **affine in the tile index**:

        ``prefix̃[j·ϕ + p] = j·total + prefix[p]``

    so one ``np.tile`` + broadcast add reproduces them from the base
    cumsum, and the expanded rounding gcd is
    ``gcd(k_src·i_b, k_dst·o_b)`` arithmetically. A unit test pins the
    equivalence pairwise against the materialized path.

    Requires numpy (the direct pipeline is gated on it); raises
    :class:`RuntimeError` otherwise.
    """
    if _np is None:  # pragma: no cover - numpy is present in CI
        raise RuntimeError("expanded_useful_pair_arrays requires numpy")
    from math import gcd

    production = _np.asarray(buffer.production, dtype=_np.int64)
    consumption = _np.asarray(buffer.consumption, dtype=_np.int64)
    if (
        k_src == k_dst
        and production.shape == consumption.shape
        and not (production != 1).any()
        and not (consumption != 1).any()
    ):
        # All-ones loop (every serialization self-loop): closed form.
        # With unit rates the expanded gcd is ñ = k·ϕ and the α ≤ β
        # interval is the single point q − 1 = P' − P − M0, so each
        # producer phase P has exactly one useful pair — the phase the
        # M0-th-next token enables: P' = (P + M0) mod ñ, with
        # β = P' − P − M0 (the unique multiple of ñ in the window).
        # Replaces the Θ(ñ²) sweep by Θ(ñ); pinned against the generic
        # sweep by the unit tests.
        n = k_src * production.shape[0]
        p = _np.arange(n, dtype=_np.int64)
        pp = (p + buffer.initial_tokens) % n
        return p, pp, pp - p - buffer.initial_tokens
    i_b = buffer.total_production
    o_b = buffer.total_consumption
    prod_prefix = _np.tile(_np.cumsum(production), k_src) + i_b * _np.repeat(
        _np.arange(k_src, dtype=_np.int64), production.shape[0]
    )
    cons_prefix = _np.tile(_np.cumsum(consumption), k_dst) + o_b * _np.repeat(
        _np.arange(k_dst, dtype=_np.int64), consumption.shape[0]
    )
    return _pair_sweep(
        _np.tile(production, k_src),
        _np.tile(consumption, k_dst),
        prod_prefix,
        cons_prefix,
        buffer.initial_tokens,
        gcd(k_src * i_b, k_dst * o_b),
    )


def buffer_constraints(
    graph: CsdfGraph,
    buffer: Buffer,
    repetition: Dict[str, int],
) -> List[PrecedenceConstraint]:
    """All useful Theorem 2 constraints of one buffer.

    ``repetition`` must be the repetition vector of the graph the buffer
    belongs to (the denominator of the Ω coefficient is ``q_t·i_b`` with
    ``t`` the producer).
    """
    producer = graph.task(buffer.source)
    q_t = repetition[buffer.source]
    denom = q_t * buffer.total_production
    constraints = []
    for p, p_prime, beta in useful_pairs(buffer):
        constraints.append(
            PrecedenceConstraint(
                buffer_name=buffer.name,
                source_task=buffer.source,
                source_phase=p,
                target_task=buffer.target,
                target_phase=p_prime,
                duration=producer.duration(p),
                beta=beta,
                omega_coeff=Fraction(beta, denom),
            )
        )
    return constraints


def graph_constraints(
    graph: CsdfGraph,
    repetition: Dict[str, int],
) -> List[PrecedenceConstraint]:
    """Theorem 2 constraints of every buffer of the graph."""
    constraints: List[PrecedenceConstraint] = []
    for b in graph.buffers():
        constraints.extend(buffer_constraints(graph, b, repetition))
    return constraints
