"""Consistency analysis: the repetition vector.

A CSDFG is *consistent* when there is a vector ``q ∈ (ℕ∖{0})^|T|`` with
``q_t · i_b = q_{t'} · o_b`` for every buffer ``b = (t, t')``. The minimal
such vector is the *repetition vector*: the number of iterations of each
task in one graph iteration that restores every buffer's token count.

The computation propagates exact rational rates over a spanning forest of
the (undirected) buffer graph, then verifies every balance equation —
including those of non-tree buffers. Arbitrary-precision ``Fraction``
arithmetic makes integer overflow impossible (the paper notes it had to
*fix* SDF3's repetition-vector computation for exactly this reason).
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.exceptions import InconsistentGraphError, ModelError
from repro.model.graph import CsdfGraph
from repro.utils.rational import normalize_fractions


def normalized_rates(graph: CsdfGraph) -> Dict[str, Fraction]:
    """Per-task firing rates as exact fractions, one component at a time.

    Within each weakly-connected component the rates are normalized so the
    smallest equals 1. Raises :class:`InconsistentGraphError` when the
    balance equations are unsolvable.
    """
    if graph.task_count == 0:
        return {}
    rates: Dict[str, Optional[Fraction]] = {t.name: None for t in graph.tasks()}
    adjacency: Dict[str, List[tuple]] = {t.name: [] for t in graph.tasks()}
    for b in graph.buffers():
        if b.is_self_loop():
            # A self-loop is consistent iff i_b == o_b; no rate information.
            if b.total_production != b.total_consumption:
                raise InconsistentGraphError(
                    f"self-loop buffer {b.name!r} produces "
                    f"{b.total_production} but consumes {b.total_consumption} "
                    "per iteration"
                )
            continue
        ratio = Fraction(b.total_consumption, b.total_production)
        # rate(source) = ratio * rate(target) would invert; careful:
        # q_src * i_b = q_dst * o_b  =>  q_src = q_dst * o_b / i_b.
        adjacency[b.source].append((b.target, Fraction(1, 1) / ratio))
        adjacency[b.target].append((b.source, ratio))

    for root in rates:
        if rates[root] is not None:
            continue
        rates[root] = Fraction(1)
        stack = [root]
        while stack:
            u = stack.pop()
            ru = rates[u]
            assert ru is not None
            for v, factor in adjacency[u]:
                # adjacency stores rate(v) = rate(u) * factor
                expected = ru * factor
                if rates[v] is None:
                    rates[v] = expected
                    stack.append(v)
                elif rates[v] != expected:
                    raise InconsistentGraphError(
                        f"rate conflict at task {v!r}: "
                        f"{rates[v]} vs {expected}"
                    )
    # normalize each component so the minimum is 1 (cosmetic; the final
    # integer scaling happens in repetition_vector()).
    result: Dict[str, Fraction] = {}
    for name, rate in rates.items():
        assert rate is not None
        result[name] = rate
    return result


def repetition_vector(graph: CsdfGraph) -> Dict[str, int]:
    """The minimal repetition vector ``q`` of a consistent graph.

    Raises
    ------
    InconsistentGraphError
        If no repetition vector exists.
    ModelError
        If the graph has no task.

    Examples
    --------
    >>> from repro.model import sdf
    >>> g = sdf({"A": 1, "B": 1}, [("A", "B", 2, 3, 0)])
    >>> repetition_vector(g)
    {'A': 3, 'B': 2}
    """
    if graph.task_count == 0:
        raise ModelError("repetition vector of an empty graph is undefined")
    rates = normalized_rates(graph)
    names = graph.task_names()
    q_ints = normalize_fractions([rates[n] for n in names])
    q = dict(zip(names, q_ints))
    _verify_balance(graph, q)
    return q


def _verify_balance(graph: CsdfGraph, q: Dict[str, int]) -> None:
    """Check every balance equation (covers non-spanning-tree buffers)."""
    for b in graph.buffers():
        lhs = q[b.source] * b.total_production
        rhs = q[b.target] * b.total_consumption
        if lhs != rhs:
            raise InconsistentGraphError(
                f"buffer {b.name!r} violates balance: "
                f"q[{b.source}]*{b.total_production} = {lhs} != "
                f"{rhs} = q[{b.target}]*{b.total_consumption}"
            )
    if any(v <= 0 for v in q.values()):
        raise InconsistentGraphError(f"non-positive repetition entries in {q}")


#: Per-graph repetition vectors, keyed by the graph *object* (weakly) and
#: revalidated against the task/buffer counts — graphs are append-only,
#: so matching counts pin the exact structure the vector was solved for.
_REPETITION_CACHE: "weakref.WeakKeyDictionary[CsdfGraph, Tuple[Tuple[int, int], Dict[str, int]]]" = (
    weakref.WeakKeyDictionary()
)


def cached_repetition_vector(graph: CsdfGraph) -> Dict[str, int]:
    """:func:`repetition_vector`, memoized per graph object.

    Solver entry points construct one :class:`KIterMachine` per payload
    and each re-derives ``q``; under service traffic the same parsed
    graph (the pool worker's LRU) is solved over and over, so the exact
    rational propagation is pure re-work. Returns a fresh dict each
    call — callers may hold it across their own mutations.
    """
    counts = (graph.task_count, graph.buffer_count)
    entry = _REPETITION_CACHE.get(graph)
    if entry is not None and entry[0] == counts:
        return dict(entry[1])
    q = repetition_vector(graph)
    try:
        _REPETITION_CACHE[graph] = (counts, dict(q))
    except TypeError:  # pragma: no cover - non-weakrefable graph stub
        pass
    return q


def is_consistent(graph: CsdfGraph) -> bool:
    """True when the graph admits a repetition vector."""
    try:
        repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def repetition_vector_sum(graph: CsdfGraph) -> int:
    """``Σ_t q_t`` — the instance-size proxy used by the paper's tables."""
    return sum(repetition_vector(graph).values())
