"""Deadlock diagnosis: *why* does a graph refuse to run?

`is_live` answers yes/no; when designing a graph (or choosing buffer
capacities) the useful answer is the **starvation cycle**: which tasks
are waiting for which buffers, and how many tokens are missing. The
diagnosis runs the greedy capped token game to its stuck point, builds
the waits-for relation among unfinished tasks, and extracts a cycle —
the certificate a designer acts on (add tokens somewhere on it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.consistency import repetition_vector
from repro.exceptions import ModelError
from repro.model.graph import CsdfGraph


@dataclass(frozen=True)
class Starvation:
    """One blocked task at the stuck point of the token game."""

    task: str
    phase: int           # 1-based phase the task is stuck at
    buffer: str
    producer: str        # the task that would have to supply tokens
    missing: int         # tokens short for the next firing


@dataclass
class DeadlockDiagnosis:
    """Stuck-point explanation of a non-live graph.

    ``cycle`` is a circular waits-for chain of starvations when one
    exists (always, for graphs whose deadlock is token-induced);
    ``starvations`` lists every blocked task.
    """

    starvations: List[Starvation]
    cycle: List[Starvation]
    completed_fraction: float  # progress of the iteration before sticking

    def describe(self) -> str:
        lines = [
            f"deadlock after {self.completed_fraction:.0%} of one "
            "graph iteration; starvation cycle:"
        ]
        for s in self.cycle:
            lines.append(
                f"  {s.task} (phase {s.phase}) waits for {s.missing} "
                f"token(s) on {s.buffer} from {s.producer}"
            )
        return "\n".join(lines)


def explain_deadlock(graph: CsdfGraph) -> Optional[DeadlockDiagnosis]:
    """Diagnose a deadlock; ``None`` when the graph is live.

    Examples
    --------
    >>> from repro.model import sdf
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 0)])
    >>> diag = explain_deadlock(g)
    >>> len(diag.cycle)
    2
    """
    q = repetition_vector(graph)
    names = graph.task_names()
    phi = {n: graph.task(n).phase_count for n in names}
    cursor = {n: 0 for n in names}
    remaining = {n: q[n] * phi[n] for n in names}

    buffers = {b.name: b for b in graph.buffers()}
    tokens = {b.name: b.initial_tokens for b in graph.buffers()}
    consumes: Dict[str, List[str]] = {n: [] for n in names}
    for b in graph.buffers():
        consumes[b.target].append(b.name)

    total = sum(remaining.values())
    progress = True
    while progress:
        progress = False
        for t in names:
            while remaining[t]:
                p = cursor[t]
                blocked = False
                for b_name in consumes[t]:
                    b = buffers[b_name]
                    if tokens[b_name] < b.consumption[p]:
                        blocked = True
                        break
                if blocked:
                    break
                for b_name in consumes[t]:
                    tokens[b_name] -= buffers[b_name].consumption[p]
                for b in graph.out_buffers(t):
                    tokens[b.name] += b.production[p]
                cursor[t] = (p + 1) % phi[t]
                remaining[t] -= 1
                progress = True
    done = total - sum(remaining.values())
    if done == total:
        return None

    # stuck: collect one starvation per blocked task
    starvations: List[Starvation] = []
    waits_for: Dict[str, Starvation] = {}
    for t in names:
        if not remaining[t]:
            continue
        p = cursor[t]
        for b_name in consumes[t]:
            b = buffers[b_name]
            shortfall = b.consumption[p] - tokens[b_name]
            if shortfall > 0:
                s = Starvation(
                    task=t,
                    phase=p + 1,
                    buffer=b_name,
                    producer=b.source,
                    missing=shortfall,
                )
                starvations.append(s)
                if t not in waits_for:
                    waits_for[t] = s
                break
    if not starvations:  # pragma: no cover - stuck implies starvation
        raise ModelError("stuck token game without starved task")

    cycle = _waits_for_cycle(waits_for)
    return DeadlockDiagnosis(
        starvations=starvations,
        cycle=cycle,
        completed_fraction=done / total if total else 0.0,
    )


def _waits_for_cycle(
    waits_for: Dict[str, Starvation]
) -> List[Starvation]:
    """Follow task → producer links until a task repeats.

    Every blocked task waits on some producer; if the producer is not
    blocked itself the chain ends (a *starved source* — e.g. a
    capacity-starved upstream): return the chain as-is. Otherwise the
    walk closes a genuine circular wait.
    """
    for start in waits_for:
        chain: List[Starvation] = []
        seen: Dict[str, int] = {}
        t = start
        while t in waits_for and t not in seen:
            seen[t] = len(chain)
            chain.append(waits_for[t])
            t = waits_for[t].producer
        if t in seen:
            return chain[seen[t]:]
    # no circular wait: report the longest chain found (starved source)
    longest: List[Starvation] = []
    for start in waits_for:
        chain = []
        t = start
        visited = set()
        while t in waits_for and t not in visited:
            visited.add(t)
            chain.append(waits_for[t])
            t = waits_for[t].producer
        if len(chain) > len(longest):
            longest = chain
    return longest
