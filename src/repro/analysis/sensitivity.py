"""Throughput sensitivity: which task durations actually matter?

Design-space exploration wants to know where optimization effort pays:
speeding up a task *off* every critical circuit changes nothing, while
on-circuit tasks trade cycle ratio directly. Two exact tools:

* :func:`critical_tasks` — tasks on a certified critical circuit (the
  K-Iter by-product);
* :func:`duration_sensitivity` — exact finite differences: re-evaluate
  the period with each task's durations scaled down/up, reporting the
  gain/loss per task. Brute force but exact, and K-Iter is fast enough
  to make it practical — the paper's "throughput evaluation as a
  decision function" argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.dse.session import DseSession
from repro.exceptions import ModelError
from repro.kperiodic.kiter import throughput_kiter
from repro.model.graph import CsdfGraph


def critical_tasks(graph: CsdfGraph, *, engine: str = "ratio-iteration"):
    """Tasks on the certified critical circuit at the optimum."""
    return throughput_kiter(graph, engine=engine).critical_tasks


@dataclass(frozen=True)
class TaskSensitivity:
    """Effect of scaling one task's durations on the exact period."""

    task: str
    base_period: Fraction
    period_when_faster: Fraction   # durations halved (floor, min 0)
    period_when_slower: Fraction   # durations doubled

    @property
    def speedup_gain(self) -> Fraction:
        """Period reduction from halving the task's durations."""
        return self.base_period - self.period_when_faster

    @property
    def slowdown_cost(self) -> Fraction:
        return self.period_when_slower - self.base_period

    @property
    def is_critical(self) -> bool:
        """Slowing the task down must hurt iff it binds somewhere."""
        return self.slowdown_cost > 0


def duration_sensitivity(
    graph: CsdfGraph,
    *,
    tasks: Optional[List[str]] = None,
    engine: str = "ratio-iteration",
) -> Dict[str, TaskSensitivity]:
    """Exact per-task sensitivity of the period (halve / double).

    Examples
    --------
    >>> from repro.model import sdf
    >>> g = sdf({"A": 8, "B": 2},
    ...         [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
    >>> s = duration_sensitivity(g)
    >>> s["A"].speedup_gain, s["B"].speedup_gain
    (Fraction(4, 1), Fraction(1, 1))
    """
    # One DseSession for the whole 2N+1 sweep: each probe edits one
    # task's durations, recomputing only that task's outgoing blocks,
    # and the doubled probe rides the previous λ* as a warm seed (a
    # slowdown cannot lower the period). Exactness is unchanged —
    # every probe's period is bit-identical to a cold solve (pinned by
    # tests/test_dse.py).
    session = DseSession(graph, engine=engine)
    base = session.solve().period
    if base is None:
        raise ModelError("sensitivity undefined for unbounded throughput")
    names = tasks if tasks is not None else graph.task_names()
    out: Dict[str, TaskSensitivity] = {}
    for name in names:
        original = graph.task(name).durations  # validates the name
        session.set_durations(name, tuple(d // 2 for d in original))
        faster = session.solve().period
        session.set_durations(name, tuple(d * 2 for d in original))
        slower = session.solve().period
        session.set_durations(name, original)
        out[name] = TaskSensitivity(
            task=name,
            base_period=base,
            period_when_faster=faster,
            period_when_slower=slower,
        )
    return out
