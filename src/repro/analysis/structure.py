"""Structural graph analyses: strongly/weakly connected components.

Implemented directly (iterative Tarjan) rather than via networkx so the
core library stays dependency-free and the SCC order is deterministic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.model.graph import CsdfGraph


def strongly_connected_components(graph: CsdfGraph) -> List[List[str]]:
    """Tarjan's SCCs over tasks, arcs being buffers (self-loops ignored).

    Returned in reverse topological order of the condensation (Tarjan's
    natural output order), each component sorted by task insertion order.
    """
    order = {name: i for i, name in enumerate(graph.task_names())}
    succ: Dict[str, List[str]] = {name: [] for name in order}
    for b in graph.buffers():
        if not b.is_self_loop():
            succ[b.source].append(b.target)

    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for root in order:
        if root in index:
            continue
        # Iterative Tarjan: work items are (node, iterator position).
        work = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            children = succ[node]
            while child_i < len(children):
                child = children[child_i]
                child_i += 1
                if child not in index:
                    work[-1] = (node, child_i)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child, False):
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == node:
                        break
                component.sort(key=order.__getitem__)
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def is_strongly_connected(graph: CsdfGraph) -> bool:
    """True when all tasks lie in a single SCC (empty graphs are not)."""
    if graph.task_count == 0:
        return False
    return len(strongly_connected_components(graph)) == 1


def weakly_connected_components(graph: CsdfGraph) -> List[List[str]]:
    """Connected components ignoring arc direction."""
    adjacency: Dict[str, List[str]] = {n: [] for n in graph.task_names()}
    for b in graph.buffers():
        if not b.is_self_loop():
            adjacency[b.source].append(b.target)
            adjacency[b.target].append(b.source)
    seen: Dict[str, bool] = {}
    components: List[List[str]] = []
    order = {name: i for i, name in enumerate(graph.task_names())}
    for root in adjacency:
        if root in seen:
            continue
        component = []
        stack = [root]
        seen[root] = True
        while stack:
            u = stack.pop()
            component.append(u)
            for v in adjacency[u]:
                if v not in seen:
                    seen[v] = True
                    stack.append(v)
        component.sort(key=order.__getitem__)
        components.append(component)
    return components
