"""The distributed solve fabric.

Everything the single-host serving layer (:mod:`repro.service`) does —
content-addressed jobs, result caching, chunked solving — behind
network-ready seams, with no dependencies beyond the stdlib:

* :mod:`repro.distributed.backends` — the :class:`CacheBackend`
  protocol (``get``/``put``/``contains``/``stats``) with memory, disk,
  SQLite (WAL) and HTTP implementations; the serving layer's
  :class:`~repro.service.cache.ResultCache` composes its tiers from
  these;
* :mod:`repro.distributed.jobqueue` — the :class:`JobQueue` protocol
  (lease/ack/nack, visibility timeouts, bounded retries, dead-letter
  bucket) with in-process and SQLite-persistent implementations;
* :mod:`repro.distributed.server` — the coordinator: a
  ``ThreadingHTTPServer`` node over one cache + one queue
  (``repro serve``);
* :mod:`repro.distributed.client` — :class:`CoordinatorClient`, the
  remote :class:`JobQueue` every other piece plugs into;
* :mod:`repro.distributed.worker` — the worker daemon
  (``repro worker``): lease chunks, solve them through the existing
  :func:`~repro.service.pool.solve_chunk` / :class:`SolverPool` path
  (graph + expansion-block reuse intact), heartbeat, report.

The same manifest therefore runs **local**
(``ThroughputService(workers=…)``), **queued**
(``ThroughputService(queue=SQLiteJobQueue(…))`` + ``repro worker``) or
**distributed** (``repro serve`` + ``repro worker --coordinator`` +
``repro batch --coordinator``) with `Fraction`-identical results. The
deployment guide is ``docs/service.md``.
"""

from repro.distributed.backends import (
    CACHE_BACKENDS,
    CacheBackend,
    DiskCacheBackend,
    HTTPCacheBackend,
    MemoryCacheBackend,
    SQLiteCacheBackend,
    make_cache_backend,
    storable_outcome,
)
from repro.distributed.client import CoordinatorClient, CoordinatorError
from repro.distributed.jobqueue import (
    QUEUE_BACKENDS,
    JobQueue,
    LeasedJob,
    MemoryJobQueue,
    SQLiteJobQueue,
    SubmitReceipt,
    dead_letter_outcome,
    make_job_queue,
)
from repro.distributed.server import Coordinator, CoordinatorServer
from repro.distributed.worker import Worker, WorkerStats

__all__ = [
    "CACHE_BACKENDS",
    "QUEUE_BACKENDS",
    "CacheBackend",
    "Coordinator",
    "CoordinatorClient",
    "CoordinatorError",
    "CoordinatorServer",
    "DiskCacheBackend",
    "HTTPCacheBackend",
    "JobQueue",
    "LeasedJob",
    "MemoryCacheBackend",
    "MemoryJobQueue",
    "SQLiteCacheBackend",
    "SQLiteJobQueue",
    "SubmitReceipt",
    "Worker",
    "WorkerStats",
    "dead_letter_outcome",
    "make_cache_backend",
    "make_job_queue",
    "storable_outcome",
]
