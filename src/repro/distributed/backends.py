"""Pluggable result-cache backends for the distributed solve fabric.

A :class:`CacheBackend` is one digest-addressed store of JSON outcome
dicts with a uniform four-call surface — ``get`` / ``put`` /
``contains`` / ``stats`` — so the serving layer
(:class:`repro.service.cache.ResultCache`) and the coordinator
(:mod:`repro.distributed.server`) can swap storage without touching
solve logic. Four implementations ship:

``memory``
    Thread-safe LRU of deep-copied dicts (the tier-1 cache everywhere).
``disk``
    One atomically-written JSON file per digest under
    ``<root>/<digest[:2]>/`` — byte-identical to the layout the
    pre-fabric :class:`ResultCache` wrote, so existing cache
    directories keep working and stay prefix-shardable.
``sqlite``
    A single WAL-mode SQLite file, safe under concurrent worker
    *processes* sharing one filesystem (the coordinator's default
    persistent store).
``http``
    A client for a coordinator's ``/cache/<digest>`` endpoints: point
    any :class:`ThroughputService` at a remote shared cache.

Every backend refuses to store budget-dependent outcomes (``TIMEOUT``,
``ERROR``, ``CANCELLED`` — anything outside
:data:`repro.service.job.CACHEABLE_STATUSES`): a poisoned entry written
by one buggy client must not propagate through a shared store, so the
guard lives here, not only in the service layer above.
"""

from __future__ import annotations

import copy
import json
import os
import sqlite3
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union


def storable_outcome(outcome: Dict[str, Any]) -> bool:
    """Whether ``outcome`` is deterministic and therefore cacheable.

    Outcomes without a ``status`` key are allowed (raw caller dicts);
    any explicit status must be one of the deterministic ones.
    """
    from repro.service.job import CACHEABLE_STATUSES  # local: avoids
    # a circular import while repro.service's own __init__ runs.

    status = outcome.get("status")
    return status is None or status in CACHEABLE_STATUSES


class _Counters:
    """Thread-safe hit/miss/put counters shared by every backend."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.rejected_puts = 0
        self.errors = 0

    def bump(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "rejected_puts": self.rejected_puts,
                "errors": self.errors,
            }


class CacheBackend:
    """Digest-addressed outcome store: ``get``/``put``/``contains``/``stats``.

    Subclasses implement ``_get``/``_put``/``_contains`` plus (where
    meaningful) ``entries``/``size_bytes``; the public wrappers apply
    the shared cacheability guard and counters.
    """

    #: Registry key and the tier string reported on a hit.
    name = "abstract"

    def __init__(self) -> None:
        self._counters = _Counters()

    # -- public surface -------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached outcome dict for ``digest``, or ``None``."""
        outcome = self._get(digest)
        self._counters.bump("hits" if outcome is not None else "misses")
        return outcome

    def put(self, digest: str, outcome: Dict[str, Any]) -> bool:
        """Store a deterministic outcome; returns ``False`` (and stores
        nothing) for budget-dependent statuses like ``TIMEOUT``."""
        if not storable_outcome(outcome):
            self._counters.bump("rejected_puts")
            return False
        self._put(digest, outcome)
        self._counters.bump("puts")
        return True

    def contains(self, digest: str) -> bool:
        return self._contains(digest)

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot plus backend identity and entry count."""
        out: Dict[str, Any] = {"backend": self.name}
        out.update(self._counters.as_dict())
        entries = self.entry_count()
        if entries is not None:
            out["entries"] = entries
        return out

    # -- storage hooks ---------------------------------------------------
    def _get(self, digest: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def _put(self, digest: str, outcome: Dict[str, Any]) -> None:
        raise NotImplementedError

    def _contains(self, digest: str) -> bool:
        return self._get(digest) is not None

    # -- optional introspection -----------------------------------------
    def entry_count(self) -> Optional[int]:
        """Number of stored entries, or ``None`` when unknowable."""
        return None

    def entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Iterate ``(digest, outcome)``; empty where unsupported."""
        return iter(())

    def size_bytes(self) -> int:
        return 0

    def close(self) -> None:
        pass

    def __enter__(self) -> "CacheBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class MemoryCacheBackend(CacheBackend):
    """Thread-safe LRU of deep-copied outcome dicts.

    ``max_entries <= 0`` disables storage entirely (every get misses),
    which is how callers opt out of the memory tier.
    """

    name = "memory"

    def __init__(self, max_entries: int = 1024):
        super().__init__()
        self.max_entries = max_entries
        self._store: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def _get(self, digest: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            entry = self._store.get(digest)
            if entry is None:
                return None
            self._store.move_to_end(digest)
            # Deep copy both ways: outcomes carry nested dicts (K
            # vectors); a caller mutating its result must not poison
            # the store.
            return copy.deepcopy(entry)

    def _put(self, digest: str, outcome: Dict[str, Any]) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._store[digest] = copy.deepcopy(outcome)
            self._store.move_to_end(digest)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)

    def _contains(self, digest: str) -> bool:
        with self._lock:
            return digest in self._store

    def entry_count(self) -> int:
        with self._lock:
            return len(self._store)

    def entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        with self._lock:
            snapshot = [
                (d, copy.deepcopy(o)) for d, o in self._store.items()
            ]
        return iter(sorted(snapshot))

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


class DiskCacheBackend(CacheBackend):
    """One JSON file per digest under ``<root>/<digest[:2]>/``.

    Writes are atomic (temp file + ``os.replace``) so concurrent
    processes sharing the directory never observe torn entries. The
    on-disk layout — path shape, key order, one-space indent — is
    byte-identical to what :class:`repro.service.cache.ResultCache`
    wrote before backends existed: old cache directories remain valid
    and the ``<digest[:2]>`` fan-out stays prefix-shardable.
    """

    name = "disk"

    def __init__(self, root: Union[str, Path]):
        super().__init__()
        self.root = Path(root)

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _get(self, digest: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self._path(digest).read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def _put(self, digest: str, outcome: Dict[str, Any]) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(outcome, sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{digest[:8]}-", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            self._counters.bump("errors")
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _contains(self, digest: str) -> bool:
        return self._path(digest).exists()

    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            try:
                yield path.stem, json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue

    def size_bytes(self) -> int:
        if not self.root.exists():
            return 0
        return sum(p.stat().st_size for p in self.root.glob("*/*.json"))


class SQLiteCacheBackend(CacheBackend):
    """A WAL-mode SQLite outcome store, safe under concurrent workers.

    WAL journaling lets many reader processes overlap one writer, and a
    5 s busy timeout rides out writer bursts; one file replaces the
    disk backend's directory fan-out where inode count matters more
    than per-entry shardability.
    """

    name = "sqlite"

    def __init__(self, path: Union[str, Path], *, timeout: float = 5.0):
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS cache ("
                " digest TEXT PRIMARY KEY,"
                " outcome TEXT NOT NULL)"
            )
            self._conn.commit()

    def _get(self, digest: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT outcome FROM cache WHERE digest = ?", (digest,)
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError:
            return None

    def _put(self, digest: str, outcome: Dict[str, Any]) -> None:
        blob = json.dumps(outcome, sort_keys=True)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO cache (digest, outcome) "
                "VALUES (?, ?)",
                (digest, blob),
            )
            self._conn.commit()

    def _contains(self, digest: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM cache WHERE digest = ?", (digest,)
            ).fetchone()
        return row is not None

    def entry_count(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM cache"
            ).fetchone()[0]

    def entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT digest, outcome FROM cache ORDER BY digest"
            ).fetchall()
        for digest, blob in rows:
            try:
                yield digest, json.loads(blob)
            except json.JSONDecodeError:
                continue

    def size_bytes(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(outcome)), 0) FROM cache"
            ).fetchone()
        return int(row[0])

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class HTTPCacheBackend(CacheBackend):
    """Client for a coordinator's ``/cache/<digest>`` endpoints.

    Network failures degrade to cache misses (and dropped puts) rather
    than exceptions — a flaky cache host must never fail a solve — but
    they are counted in ``stats()['errors']`` so operators can see the
    degradation. Counters are the *client-side* view; the remote
    store's own numbers live in the coordinator's ``GET /stats``.
    """

    name = "http"

    def __init__(self, base_url: str, *, timeout: float = 10.0):
        super().__init__()
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, digest: str, *, method: str = "GET",
                 payload: Optional[Dict[str, Any]] = None):
        from repro.distributed.client import CoordinatorError, http_json

        url = f"{self.base_url}/cache/{digest}"
        try:
            return http_json(
                url, method=method, payload=payload, timeout=self.timeout
            )
        except CoordinatorError:
            self._counters.bump("errors")
            return None, None

    def _get(self, digest: str) -> Optional[Dict[str, Any]]:
        status, body = self._request(digest)
        if status == 200 and isinstance(body, dict):
            return body
        return None

    def _put(self, digest: str, outcome: Dict[str, Any]) -> None:
        self._request(digest, method="PUT", payload=outcome)

    def _contains(self, digest: str) -> bool:
        from repro.distributed.client import CoordinatorError, http_head

        try:
            return http_head(
                f"{self.base_url}/cache/{digest}", timeout=self.timeout
            )
        except CoordinatorError:
            self._counters.bump("errors")
            return False


#: Name → class registry; ``docs/service.md``'s backend matrix is
#: pinned to these keys by ``tests/test_docs.py``.
CACHE_BACKENDS: Dict[str, type] = {
    MemoryCacheBackend.name: MemoryCacheBackend,
    DiskCacheBackend.name: DiskCacheBackend,
    SQLiteCacheBackend.name: SQLiteCacheBackend,
    HTTPCacheBackend.name: HTTPCacheBackend,
}


def make_cache_backend(spec: str) -> CacheBackend:
    """Build a backend from a CLI-style spec string.

    ``memory`` / ``memory:<n>`` → LRU of ``n`` entries;
    ``disk:<dir>`` (or a bare path) → disk store; ``sqlite:<file>`` →
    SQLite store; ``http://…`` / ``https://…`` → remote client.
    """
    if spec.startswith(("http://", "https://")):
        return HTTPCacheBackend(spec)
    kind, _, arg = spec.partition(":")
    if kind == "memory":
        return MemoryCacheBackend(int(arg) if arg else 1024)
    if kind == "disk":
        if not arg:
            raise ValueError("disk cache spec needs a directory: disk:DIR")
        return DiskCacheBackend(arg)
    if kind == "sqlite":
        if not arg:
            raise ValueError("sqlite cache spec needs a file: sqlite:PATH")
        return SQLiteCacheBackend(arg)
    # A bare path is the common shorthand for the disk store.
    if kind and not arg:
        return DiskCacheBackend(spec)
    raise ValueError(
        f"unknown cache backend spec {spec!r} "
        f"(choose from {sorted(CACHE_BACKENDS)})"
    )
