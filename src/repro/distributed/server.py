"""The coordinator node: an HTTP front over one cache + one queue.

:class:`Coordinator` is the transport-free core — in-batch dedup,
cache-first short-circuiting, worker liveness bookkeeping — over any
:class:`~repro.distributed.backends.CacheBackend` and
:class:`~repro.distributed.jobqueue.JobQueue` pair, so tests (and
in-process deployments) can drive it directly.
:class:`CoordinatorServer` wraps it in a ``ThreadingHTTPServer``
speaking the canonical job JSON:

========================  ==============================================
``GET  /healthz``          liveness probe (``{"ok": true, …}``)
``GET  /stats``            cache/queue/worker counters
``POST /jobs``             enqueue a batch (dedup + cache short-circuit)
``GET  /jobs/lease``       lease up to ``?max=`` jobs for ``?worker=``
``POST /results``          ack leased jobs with their outcomes
``POST /nack``             return a leased job for redelivery
``POST /heartbeat``        extend leases mid-solve
``GET  /results/<digest>`` one outcome (404 while in flight)
``POST /results/fetch``    batched outcome poll
``GET/PUT /cache/<digest>``the remote-cache surface (HTTPCacheBackend)
``GET  /metrics``          Prometheus text scrape (own + worker metrics)
``GET  /report``           static HTML ops report (metrics/spans/slowlog)
``GET  /trace/<trace_id>`` every stored flight-recorder event of a trace
``POST /trace``            workers ship buffered trace events here
========================  ==============================================

A job is *cached* when the cache already holds its digest (never
re-queued), *pending* when an identical digest is in flight (never
solved twice), *queued* otherwise. Results reach waiting clients
through the queue's result column — including the synthesized
``ERROR`` outcomes of dead-lettered jobs — so a batch always drains.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.parse
import uuid
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.distributed.backends import (
    CacheBackend,
    MemoryCacheBackend,
    storable_outcome,
)
from repro.distributed.jobqueue import JobQueue, MemoryJobQueue
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import trace_dropped_total


class Coordinator:
    """Transport-free coordinator core: dedup, short-circuit, liveness."""

    def __init__(
        self,
        *,
        cache: Optional[CacheBackend] = None,
        queue: Optional[JobQueue] = None,
    ):
        self.cache = cache if cache is not None else MemoryCacheBackend()
        self.queue = queue if queue is not None else MemoryJobQueue()
        self.started = time.time()
        self._lock = threading.Lock()
        self._workers: Dict[str, Dict[str, Any]] = {}
        # Coordinator counters live in a registry chained to the
        # process-global one: stats() and /metrics read the same cells.
        self._registry = MetricsRegistry(parent=REGISTRY)
        self._submitted_cell = self._registry.counter(
            "repro_coordinator_jobs_submitted_total").labels()
        self._short_circuit_cell = self._registry.counter(
            "repro_coordinator_cache_short_circuits_total").labels()
        # Flight recorder: every trace event this node saw — its own
        # enqueue/result milestones plus whatever workers POST /trace —
        # bounded so a long-lived coordinator cannot grow without limit.
        self._trace_events: deque = deque(maxlen=50_000)
        #: digest → the submitting client's trace context, so the
        #: result milestone can parent under the client's job span.
        self._job_traces: Dict[str, Dict[str, Any]] = {}
        #: worker id → latest shipped metric snapshot (heartbeat/report).
        self._worker_metrics: Dict[str, Dict[str, Any]] = {}

    # -- worker liveness -------------------------------------------------
    def _saw_worker(self, worker_id: str, **bumps: int) -> None:
        if not worker_id:
            return
        with self._lock:
            record = self._workers.setdefault(
                worker_id, {"leases": 0, "results": 0, "heartbeats": 0}
            )
            record["last_seen"] = time.time()
            for key, amount in bumps.items():
                record[key] = record.get(key, 0) + amount

    # -- job intake ------------------------------------------------------
    def submit_jobs(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Enqueue a batch; per-job ``{digest, state, job_id}`` rows.

        States: ``cached`` (the cache already has the answer),
        ``duplicate`` (same digest earlier in this batch), ``pending``
        (digest already in flight from an earlier batch), ``queued``,
        ``done`` (queue already finished it).
        """
        receipts: List[Dict[str, Any]] = []
        seen: set = set()
        for payload in payloads:
            digest = payload.get("digest", "")
            if not digest:
                receipts.append(
                    {"digest": "", "state": "rejected", "job_id": 0}
                )
                continue
            self._submitted_cell.inc()
            if digest in seen:
                receipts.append(
                    {"digest": digest, "state": "duplicate", "job_id": 0}
                )
                continue
            seen.add(digest)
            if self.cache.contains(digest):
                self._short_circuit_cell.inc()
                self._milestone(payload, "coordinator.enqueue",
                                digest, state="cached")
                receipts.append(
                    {"digest": digest, "state": "cached", "job_id": 0}
                )
                continue
            receipt = self.queue.submit(payload, digest=digest)
            self._milestone(payload, "coordinator.enqueue",
                            digest, state=receipt.state, remember=True)
            receipts.append({
                "digest": digest, "state": receipt.state,
                "job_id": receipt.job_id,
            })
        return receipts

    # -- flight recorder -------------------------------------------------
    def _milestone(self, payload: Dict[str, Any], name: str,
                   digest: str, *, state: str = "",
                   remember: bool = False) -> None:
        """Synthesize a coordinator trace event for a traced payload.

        Events go straight into this node's trace store (the client may
        be tracing even when the coordinator process itself is not), so
        ``GET /trace/<id>`` always covers the coordinator hop.
        """
        trace_ctx = payload.get("trace") or {}
        trace_id = trace_ctx.get("trace_id")
        if not trace_id:
            return
        event = {
            "trace_id": str(trace_id),
            "span_id": uuid.uuid4().hex[:16],
            "parent_id": trace_ctx.get("parent_id"),
            "name": name,
            "t0": time.perf_counter(),
            "wall": time.time(),
            "dur": 0.0,
            "pid": os.getpid(),
            "attrs": {"digest": digest[:12], "state": state},
        }
        with self._lock:
            self._trace_events.append(event)
            if remember:
                self._job_traces[digest] = dict(trace_ctx)

    def add_trace_events(self, events: Sequence[Dict[str, Any]]) -> int:
        """Store worker-shipped trace events (the POST /trace body)."""
        stored = 0
        with self._lock:
            for event in events:
                if isinstance(event, dict) and event.get("trace_id"):
                    self._trace_events.append(event)
                    stored += 1
        return stored

    def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every stored event of one trace, in wall-clock order."""
        with self._lock:
            events = [e for e in self._trace_events
                      if e.get("trace_id") == trace_id]
        return sorted(events, key=lambda e: (e.get("wall", 0.0),
                                             e.get("t0", 0.0)))

    # -- worker protocol -------------------------------------------------
    def lease(
        self, max_jobs: int, *, worker_id: str = "",
        visibility_timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        jobs = self.queue.lease(
            max_jobs, worker_id=worker_id,
            visibility_timeout=visibility_timeout,
        )
        self._saw_worker(worker_id, leases=len(jobs))
        return [
            {"job_id": j.job_id, "token": j.token, "digest": j.digest,
             "payload": j.payload, "attempt": j.attempt,
             "deadline": j.deadline}
            for j in jobs
        ]

    def report(
        self, results: Sequence[Dict[str, Any]], *, worker_id: str = "",
        metrics: Optional[Dict[str, Any]] = None,
    ) -> List[bool]:
        accepted: List[bool] = []
        for row in results:
            outcome = row.get("outcome") or {}
            digest = row.get("digest") or outcome.get("digest", "")
            ok = self.queue.ack(
                row.get("job_id", 0), row.get("token", ""), outcome
            )
            if ok and digest and storable_outcome(outcome):
                self.cache.put(digest, outcome)
            if ok and digest:
                with self._lock:
                    trace_ctx = self._job_traces.pop(digest, None)
                if trace_ctx is not None:
                    self._milestone(
                        {"trace": trace_ctx}, "coordinator.result",
                        digest, state=outcome.get("status", ""),
                    )
            accepted.append(ok)
        self._saw_worker(worker_id, results=len(results))
        self._store_worker_metrics(worker_id, metrics)
        return accepted

    def nack(self, job_id: int, token: str, *, error: str = "",
             worker_id: str = "") -> bool:
        self._saw_worker(worker_id)
        return self.queue.nack(job_id, token, error=error)

    def heartbeat(
        self, leases: Sequence[Dict[str, Any]], *, worker_id: str = "",
        metrics: Optional[Dict[str, Any]] = None,
    ) -> List[bool]:
        self._saw_worker(worker_id, heartbeats=len(leases))
        self._store_worker_metrics(worker_id, metrics)
        return [
            self.queue.heartbeat(
                row.get("job_id", 0), row.get("token", "")
            )
            for row in leases
        ]

    def _store_worker_metrics(
        self, worker_id: str, metrics: Optional[Dict[str, Any]]
    ) -> None:
        if not worker_id or not isinstance(metrics, dict):
            return
        with self._lock:
            self._worker_metrics[worker_id] = metrics

    # -- results ---------------------------------------------------------
    def result(self, digest: str) -> Optional[Dict[str, Any]]:
        """``{"outcome": …, "source": "queue"|"cache"}`` or ``None``."""
        outcome = self.queue.result(digest)
        if outcome is not None:
            return {"outcome": outcome, "source": "queue"}
        outcome = self.cache.get(digest)
        if outcome is not None:
            return {"outcome": outcome, "source": "cache"}
        return None

    # -- observability ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        now = time.time()
        with self._lock:
            workers = {
                worker_id: {
                    "age": round(now - record.get("last_seen", now), 3),
                    "leases": record.get("leases", 0),
                    "results": record.get("results", 0),
                    "heartbeats": record.get("heartbeats", 0),
                }
                for worker_id, record in self._workers.items()
            }
            trace_events = len(self._trace_events)
        return {
            "uptime": round(now - self.started, 3),
            "submitted": int(self._submitted_cell.value),
            "cache_short_circuits": int(self._short_circuit_cell.value),
            "trace_events": trace_events,
            "trace_dropped": trace_dropped_total(),
            "cache": self.cache.stats(),
            "queue": self.queue.stats(),
            "dead_letters": self.queue.dead_letters(),
            "workers": workers,
        }

    def _merged_snapshot(self) -> Dict[str, Any]:
        """Worker snapshots + own registry + scrape-time gauges, merged.

        Remote daemons each bring a disjoint process registry and sum
        cleanly.  An *in-process* worker ships snapshots of the same
        global registry this coordinator scrapes — those carry the
        coordinator's own snapshot identity, so
        :func:`~repro.obs.metrics.merge_snapshots` dedupes them (the
        live scrape-time snapshot, listed last, wins) instead of
        counting the registry twice.
        """
        with self._lock:
            worker_snapshots = list(self._worker_metrics.values())
            workers_known = len(self._workers)
        gauges = MetricsRegistry()
        depth_gauge = gauges.gauge("repro_queue_depth")
        for state, count in self.queue.depth().items():
            depth_gauge.labels(state=state).set(count)
        entries = self.cache.entry_count()
        if entries is not None:
            gauges.gauge("repro_cache_entries").set(entries)
        gauges.gauge("repro_workers_known").set(workers_known)
        return merge_snapshots(
            worker_snapshots + [REGISTRY.snapshot(), gauges.snapshot()]
        )

    def metrics_text(self) -> str:
        """The ``/metrics`` scrape: Prometheus text exposition."""
        return render_prometheus(self._merged_snapshot())

    def report_html(self) -> str:
        """The ``GET /report`` page: the full ops report as static HTML.

        Folds the merged metrics view, this node's stored trace events,
        and any local slowlog captures / bench history into one
        self-contained page.
        """
        from repro.obs.history import history_path, load_history
        from repro.obs.report import build_report
        from repro.obs.slowlog import slowlog_entries

        with self._lock:
            events = list(self._trace_events)
        captures = []
        for path in slowlog_entries()[-20:]:
            try:
                captures.append(json.loads(
                    path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                continue
        hist_path = history_path()
        history_rows = load_history(hist_path) if hist_path else []
        return build_report(
            snapshot=self._merged_snapshot(),
            events=events,
            slowlog_entries=captures,
            history_rows=history_rows,
            dropped=trace_dropped_total(),
            title="repro coordinator report",
        )

    def healthz(self) -> Dict[str, Any]:
        return {"ok": True, "uptime": round(time.time() - self.started, 3)}


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the owning server's :class:`Coordinator`."""

    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        # the Prometheus text exposition content type
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        return json.loads(self.rfile.read(length))

    def _query(self) -> Tuple[str, Dict[str, str]]:
        path, _, raw = self.path.partition("?")
        params = dict(
            urllib.parse.parse_qsl(raw, keep_blank_values=True)
        )
        return urllib.parse.unquote(path), params

    @property
    def _core(self) -> Coordinator:
        return self.server.coordinator

    # -- verbs -----------------------------------------------------------
    def do_GET(self) -> None:
        try:
            path, params = self._query()
            if path == "/healthz":
                self._send_json(200, self._core.healthz())
            elif path == "/stats":
                self._send_json(200, self._core.stats())
            elif path == "/metrics":
                self._send_text(200, self._core.metrics_text())
            elif path == "/report":
                self._send_html(200, self._core.report_html())
            elif path.startswith("/trace/"):
                trace_id = path[len("/trace/"):]
                events = self._core.trace(trace_id)
                self._send_json(
                    200, {"trace_id": trace_id, "events": events}
                )
            elif path == "/jobs/lease":
                visibility = params.get("visibility")
                jobs = self._core.lease(
                    max(1, int(params.get("max", "1"))),
                    worker_id=params.get("worker", ""),
                    visibility_timeout=(
                        float(visibility) if visibility else None
                    ),
                )
                self._send_json(200, {"jobs": jobs})
            elif path.startswith("/results/"):
                found = self._core.result(path[len("/results/"):])
                if found is None:
                    self._send_json(404, {"error": "in flight or unknown"})
                else:
                    self._send_json(200, found)
            elif path.startswith("/cache/"):
                outcome = self._core.cache.get(path[len("/cache/"):])
                if outcome is None:
                    self._send_json(404, {"error": "cache miss"})
                else:
                    self._send_json(200, outcome)
            else:
                self._send_json(404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": repr(exc)})

    def do_HEAD(self) -> None:
        path, _ = self._query()
        status = 404
        if path.startswith("/cache/") and \
                self._core.cache.contains(path[len("/cache/"):]):
            status = 200
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_POST(self) -> None:
        try:
            path, _ = self._query()
            body = self._read_json()
            if path == "/jobs":
                receipts = self._core.submit_jobs(
                    (body or {}).get("jobs", [])
                )
                self._send_json(200, {"jobs": receipts})
            elif path == "/results":
                body = body or {}
                accepted = self._core.report(
                    body.get("results", []),
                    worker_id=body.get("worker", ""),
                    metrics=body.get("metrics"),
                )
                self._send_json(200, {"accepted": accepted})
            elif path == "/trace":
                stored = self._core.add_trace_events(
                    (body or {}).get("events", [])
                )
                self._send_json(200, {"stored": stored})
            elif path == "/results/fetch":
                digests = (body or {}).get("digests", [])
                self._send_json(200, {"results": {
                    digest: self._core.result(digest)
                    for digest in digests
                }})
            elif path == "/nack":
                body = body or {}
                ok = self._core.nack(
                    body.get("job_id", 0), body.get("token", ""),
                    error=body.get("error", ""),
                    worker_id=body.get("worker", ""),
                )
                self._send_json(200, {"accepted": ok})
            elif path == "/heartbeat":
                body = body or {}
                accepted = self._core.heartbeat(
                    body.get("leases", []),
                    worker_id=body.get("worker", ""),
                    metrics=body.get("metrics"),
                )
                self._send_json(200, {"accepted": accepted})
            else:
                self._send_json(404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": repr(exc)})

    def do_PUT(self) -> None:
        try:
            path, _ = self._query()
            if path.startswith("/cache/"):
                digest = path[len("/cache/"):]
                outcome = self._read_json()
                stored = bool(
                    isinstance(outcome, dict)
                    and self._core.cache.put(digest, outcome)
                )
                self._send_json(200, {"stored": stored})
            else:
                self._send_json(404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": repr(exc)})


class CoordinatorServer:
    """A threaded HTTP server around a :class:`Coordinator`.

    ``port=0`` binds an ephemeral port; :attr:`url` reports the real
    address either way. ``start()`` serves from a daemon thread (the
    in-process/test mode); :meth:`serve_forever` blocks (the CLI mode).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: Optional[CacheBackend] = None,
        queue: Optional[JobQueue] = None,
        verbose: bool = False,
    ):
        self.coordinator = Coordinator(cache=cache, queue=queue)
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.coordinator = self.coordinator  # type: ignore[attr-defined]
        self._http.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="coordinator",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._http.serve_forever()

    def shutdown(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
