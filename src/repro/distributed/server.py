"""The coordinator node: an HTTP front over one cache + one queue.

:class:`Coordinator` is the transport-free core — in-batch dedup,
cache-first short-circuiting, worker liveness bookkeeping — over any
:class:`~repro.distributed.backends.CacheBackend` and
:class:`~repro.distributed.jobqueue.JobQueue` pair, so tests (and
in-process deployments) can drive it directly.
:class:`CoordinatorServer` wraps it in a ``ThreadingHTTPServer``
speaking the canonical job JSON:

========================  ==============================================
``GET  /healthz``          liveness probe (``{"ok": true, …}``)
``GET  /stats``            cache/queue/worker counters
``POST /jobs``             enqueue a batch (dedup + cache short-circuit)
``GET  /jobs/lease``       lease up to ``?max=`` jobs for ``?worker=``
``POST /results``          ack leased jobs with their outcomes
``POST /nack``             return a leased job for redelivery
``POST /heartbeat``        extend leases mid-solve
``GET  /results/<digest>`` one outcome (404 while in flight)
``POST /results/fetch``    batched outcome poll
``GET/PUT /cache/<digest>``the remote-cache surface (HTTPCacheBackend)
========================  ==============================================

A job is *cached* when the cache already holds its digest (never
re-queued), *pending* when an identical digest is in flight (never
solved twice), *queued* otherwise. Results reach waiting clients
through the queue's result column — including the synthesized
``ERROR`` outcomes of dead-lettered jobs — so a batch always drains.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.distributed.backends import (
    CacheBackend,
    MemoryCacheBackend,
    storable_outcome,
)
from repro.distributed.jobqueue import JobQueue, MemoryJobQueue


class Coordinator:
    """Transport-free coordinator core: dedup, short-circuit, liveness."""

    def __init__(
        self,
        *,
        cache: Optional[CacheBackend] = None,
        queue: Optional[JobQueue] = None,
    ):
        self.cache = cache if cache is not None else MemoryCacheBackend()
        self.queue = queue if queue is not None else MemoryJobQueue()
        self.started = time.time()
        self._lock = threading.Lock()
        self._workers: Dict[str, Dict[str, Any]] = {}
        self._submitted = 0
        self._short_circuited = 0

    # -- worker liveness -------------------------------------------------
    def _saw_worker(self, worker_id: str, **bumps: int) -> None:
        if not worker_id:
            return
        with self._lock:
            record = self._workers.setdefault(
                worker_id, {"leases": 0, "results": 0, "heartbeats": 0}
            )
            record["last_seen"] = time.time()
            for key, amount in bumps.items():
                record[key] = record.get(key, 0) + amount

    # -- job intake ------------------------------------------------------
    def submit_jobs(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Enqueue a batch; per-job ``{digest, state, job_id}`` rows.

        States: ``cached`` (the cache already has the answer),
        ``duplicate`` (same digest earlier in this batch), ``pending``
        (digest already in flight from an earlier batch), ``queued``,
        ``done`` (queue already finished it).
        """
        receipts: List[Dict[str, Any]] = []
        seen: set = set()
        for payload in payloads:
            digest = payload.get("digest", "")
            if not digest:
                receipts.append(
                    {"digest": "", "state": "rejected", "job_id": 0}
                )
                continue
            with self._lock:
                self._submitted += 1
            if digest in seen:
                receipts.append(
                    {"digest": digest, "state": "duplicate", "job_id": 0}
                )
                continue
            seen.add(digest)
            if self.cache.contains(digest):
                with self._lock:
                    self._short_circuited += 1
                receipts.append(
                    {"digest": digest, "state": "cached", "job_id": 0}
                )
                continue
            receipt = self.queue.submit(payload, digest=digest)
            receipts.append({
                "digest": digest, "state": receipt.state,
                "job_id": receipt.job_id,
            })
        return receipts

    # -- worker protocol -------------------------------------------------
    def lease(
        self, max_jobs: int, *, worker_id: str = "",
        visibility_timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        jobs = self.queue.lease(
            max_jobs, worker_id=worker_id,
            visibility_timeout=visibility_timeout,
        )
        self._saw_worker(worker_id, leases=len(jobs))
        return [
            {"job_id": j.job_id, "token": j.token, "digest": j.digest,
             "payload": j.payload, "attempt": j.attempt,
             "deadline": j.deadline}
            for j in jobs
        ]

    def report(
        self, results: Sequence[Dict[str, Any]], *, worker_id: str = ""
    ) -> List[bool]:
        accepted: List[bool] = []
        for row in results:
            outcome = row.get("outcome") or {}
            digest = row.get("digest") or outcome.get("digest", "")
            ok = self.queue.ack(
                row.get("job_id", 0), row.get("token", ""), outcome
            )
            if ok and digest and storable_outcome(outcome):
                self.cache.put(digest, outcome)
            accepted.append(ok)
        self._saw_worker(worker_id, results=len(results))
        return accepted

    def nack(self, job_id: int, token: str, *, error: str = "",
             worker_id: str = "") -> bool:
        self._saw_worker(worker_id)
        return self.queue.nack(job_id, token, error=error)

    def heartbeat(
        self, leases: Sequence[Dict[str, Any]], *, worker_id: str = ""
    ) -> List[bool]:
        self._saw_worker(worker_id, heartbeats=len(leases))
        return [
            self.queue.heartbeat(
                row.get("job_id", 0), row.get("token", "")
            )
            for row in leases
        ]

    # -- results ---------------------------------------------------------
    def result(self, digest: str) -> Optional[Dict[str, Any]]:
        """``{"outcome": …, "source": "queue"|"cache"}`` or ``None``."""
        outcome = self.queue.result(digest)
        if outcome is not None:
            return {"outcome": outcome, "source": "queue"}
        outcome = self.cache.get(digest)
        if outcome is not None:
            return {"outcome": outcome, "source": "cache"}
        return None

    # -- observability ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        now = time.time()
        with self._lock:
            workers = {
                worker_id: {
                    "age": round(now - record.get("last_seen", now), 3),
                    "leases": record.get("leases", 0),
                    "results": record.get("results", 0),
                    "heartbeats": record.get("heartbeats", 0),
                }
                for worker_id, record in self._workers.items()
            }
            submitted = self._submitted
            short_circuited = self._short_circuited
        return {
            "uptime": round(now - self.started, 3),
            "submitted": submitted,
            "cache_short_circuits": short_circuited,
            "cache": self.cache.stats(),
            "queue": self.queue.stats(),
            "dead_letters": self.queue.dead_letters(),
            "workers": workers,
        }

    def healthz(self) -> Dict[str, Any]:
        return {"ok": True, "uptime": round(time.time() - self.started, 3)}


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the owning server's :class:`Coordinator`."""

    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        return json.loads(self.rfile.read(length))

    def _query(self) -> Tuple[str, Dict[str, str]]:
        path, _, raw = self.path.partition("?")
        params = dict(
            urllib.parse.parse_qsl(raw, keep_blank_values=True)
        )
        return urllib.parse.unquote(path), params

    @property
    def _core(self) -> Coordinator:
        return self.server.coordinator

    # -- verbs -----------------------------------------------------------
    def do_GET(self) -> None:
        try:
            path, params = self._query()
            if path == "/healthz":
                self._send_json(200, self._core.healthz())
            elif path == "/stats":
                self._send_json(200, self._core.stats())
            elif path == "/jobs/lease":
                visibility = params.get("visibility")
                jobs = self._core.lease(
                    max(1, int(params.get("max", "1"))),
                    worker_id=params.get("worker", ""),
                    visibility_timeout=(
                        float(visibility) if visibility else None
                    ),
                )
                self._send_json(200, {"jobs": jobs})
            elif path.startswith("/results/"):
                found = self._core.result(path[len("/results/"):])
                if found is None:
                    self._send_json(404, {"error": "in flight or unknown"})
                else:
                    self._send_json(200, found)
            elif path.startswith("/cache/"):
                outcome = self._core.cache.get(path[len("/cache/"):])
                if outcome is None:
                    self._send_json(404, {"error": "cache miss"})
                else:
                    self._send_json(200, outcome)
            else:
                self._send_json(404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": repr(exc)})

    def do_HEAD(self) -> None:
        path, _ = self._query()
        status = 404
        if path.startswith("/cache/") and \
                self._core.cache.contains(path[len("/cache/"):]):
            status = 200
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_POST(self) -> None:
        try:
            path, _ = self._query()
            body = self._read_json()
            if path == "/jobs":
                receipts = self._core.submit_jobs(
                    (body or {}).get("jobs", [])
                )
                self._send_json(200, {"jobs": receipts})
            elif path == "/results":
                accepted = self._core.report(
                    (body or {}).get("results", []),
                    worker_id=(body or {}).get("worker", ""),
                )
                self._send_json(200, {"accepted": accepted})
            elif path == "/results/fetch":
                digests = (body or {}).get("digests", [])
                self._send_json(200, {"results": {
                    digest: self._core.result(digest)
                    for digest in digests
                }})
            elif path == "/nack":
                body = body or {}
                ok = self._core.nack(
                    body.get("job_id", 0), body.get("token", ""),
                    error=body.get("error", ""),
                    worker_id=body.get("worker", ""),
                )
                self._send_json(200, {"accepted": ok})
            elif path == "/heartbeat":
                accepted = self._core.heartbeat(
                    (body or {}).get("leases", []),
                    worker_id=(body or {}).get("worker", ""),
                )
                self._send_json(200, {"accepted": accepted})
            else:
                self._send_json(404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": repr(exc)})

    def do_PUT(self) -> None:
        try:
            path, _ = self._query()
            if path.startswith("/cache/"):
                digest = path[len("/cache/"):]
                outcome = self._read_json()
                stored = bool(
                    isinstance(outcome, dict)
                    and self._core.cache.put(digest, outcome)
                )
                self._send_json(200, {"stored": stored})
            else:
                self._send_json(404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": repr(exc)})


class CoordinatorServer:
    """A threaded HTTP server around a :class:`Coordinator`.

    ``port=0`` binds an ephemeral port; :attr:`url` reports the real
    address either way. ``start()`` serves from a daemon thread (the
    in-process/test mode); :meth:`serve_forever` blocks (the CLI mode).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: Optional[CacheBackend] = None,
        queue: Optional[JobQueue] = None,
        verbose: bool = False,
    ):
        self.coordinator = Coordinator(cache=cache, queue=queue)
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.coordinator = self.coordinator  # type: ignore[attr-defined]
        self._http.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="coordinator",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._http.serve_forever()

    def shutdown(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
