"""HTTP client for a coordinator node.

:class:`CoordinatorClient` speaks the coordinator's JSON protocol
(:mod:`repro.distributed.server`) and implements the same
``submit / lease / heartbeat / ack / nack / result / depth`` surface as
a local :class:`~repro.distributed.jobqueue.JobQueue` — so a
:class:`~repro.distributed.worker.Worker` or a
:class:`~repro.service.facade.ThroughputService` configured with
``queue=CoordinatorClient(url)`` is the *distributed* deployment of
exactly the code path that runs single-host.

Everything rides :mod:`urllib` (stdlib only). A connection failure
raises :class:`CoordinatorError` (a :class:`~repro.exceptions.ReproError`,
so the CLI reports it as a plain error line, not a traceback).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.distributed.jobqueue import LeasedJob, SubmitReceipt


class CoordinatorError(ReproError):
    """The coordinator is unreachable or answered with garbage."""


def http_json(
    url: str,
    *,
    method: str = "GET",
    payload: Optional[Any] = None,
    timeout: float = 10.0,
) -> Tuple[int, Any]:
    """One JSON request/response; ``(status, parsed body or None)``.

    HTTP error statuses are returned, not raised (the caller decides
    what a 404 means); transport failures raise :class:`CoordinatorError`.
    """
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
            status = response.status
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status = exc.code
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise CoordinatorError(f"coordinator unreachable: {url}: {exc}")
    if not body:
        return status, None
    try:
        return status, json.loads(body)
    except json.JSONDecodeError as exc:
        raise CoordinatorError(
            f"coordinator sent non-JSON from {url}: {exc}"
        )


def http_text(url: str, *, timeout: float = 10.0) -> Tuple[int, str]:
    """One GET returning the raw body as text (``/metrics`` is not JSON)."""
    request = urllib.request.Request(url, headers={"Accept": "text/plain"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8", "replace")
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise CoordinatorError(f"coordinator unreachable: {url}: {exc}")


def http_head(url: str, *, timeout: float = 10.0) -> bool:
    """``True`` iff a HEAD request answers 2xx."""
    request = urllib.request.Request(url, method="HEAD")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return 200 <= response.status < 300
    except urllib.error.HTTPError:
        return False
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise CoordinatorError(f"coordinator unreachable: {url}: {exc}")


class CoordinatorClient:
    """A remote :class:`JobQueue` — plus result/stats polling — over HTTP.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running ``repro serve`` node.
    timeout:
        Per-request socket timeout in seconds.
    """

    name = "coordinator"

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(self, path: str, *, method: str = "GET",
              payload: Optional[Any] = None,
              expect: Sequence[int] = (200,)) -> Any:
        status, body = http_json(
            f"{self.base_url}{path}", method=method, payload=payload,
            timeout=self.timeout,
        )
        if status not in expect:
            detail = body.get("error") if isinstance(body, dict) else body
            raise CoordinatorError(
                f"coordinator {method} {path} failed "
                f"({status}): {detail}"
            )
        return body

    # -- health / stats --------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._call("/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._call("/stats")

    def depth(self) -> Dict[str, int]:
        return self.stats().get("queue", {})

    def metrics_text(self) -> str:
        """The coordinator's ``/metrics`` scrape (Prometheus text)."""
        status, body = http_text(
            f"{self.base_url}/metrics", timeout=self.timeout
        )
        if status != 200:
            raise CoordinatorError(
                f"coordinator GET /metrics failed ({status}): {body}"
            )
        return body

    # -- flight recorder -------------------------------------------------
    def post_trace(self, events: Sequence[Dict[str, Any]]) -> int:
        """Ship buffered trace events; returns how many were stored."""
        body = self._call(
            "/trace", method="POST", payload={"events": list(events)}
        )
        return int(body.get("stored", 0))

    def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every event the coordinator holds for one trace id."""
        body = self._call(f"/trace/{trace_id}", expect=(200, 404))
        if not isinstance(body, dict):
            return []
        return list(body.get("events", []))

    # -- enqueue ---------------------------------------------------------
    def submit_many(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[SubmitReceipt]:
        body = self._call(
            "/jobs", method="POST", payload={"jobs": list(payloads)}
        )
        return [
            SubmitReceipt(digest=row["digest"], state=row["state"],
                          job_id=row.get("job_id", 0))
            for row in body["jobs"]
        ]

    def submit(self, payload: Dict[str, Any], *,
               digest: Optional[str] = None) -> SubmitReceipt:
        return self.submit_many([payload])[0]

    # -- worker side -----------------------------------------------------
    def lease(self, max_jobs: int = 1, *, worker_id: str = "",
              visibility_timeout: Optional[float] = None) -> List[LeasedJob]:
        params = {"max": max_jobs, "worker": worker_id}
        if visibility_timeout is not None:
            params["visibility"] = visibility_timeout
        body = self._call(
            "/jobs/lease?" + urllib.parse.urlencode(params)
        )
        return [
            LeasedJob(
                job_id=row["job_id"], token=row["token"],
                digest=row["digest"], payload=row["payload"],
                attempt=row.get("attempt", 1),
                deadline=row.get("deadline", 0.0),
            )
            for row in body["jobs"]
        ]

    def report(
        self,
        results: Sequence[Dict[str, Any]],
        *,
        worker_id: str = "",
        metrics: Optional[Dict[str, Any]] = None,
    ) -> List[bool]:
        """Ack a batch: each row is ``{job_id, token, digest, outcome}``.

        ``metrics`` optionally piggybacks the worker's latest registry
        snapshot for the coordinator's ``/metrics`` aggregation.
        """
        payload: Dict[str, Any] = {
            "worker": worker_id, "results": list(results),
        }
        if metrics is not None:
            payload["metrics"] = metrics
        body = self._call("/results", method="POST", payload=payload)
        return [bool(flag) for flag in body["accepted"]]

    def ack(self, job_id: int, token: str,
            outcome: Dict[str, Any]) -> bool:
        return self.report([{
            "job_id": job_id, "token": token,
            "digest": outcome.get("digest", ""), "outcome": outcome,
        }])[0]

    def nack(self, job_id: int, token: str, *, error: str = "") -> bool:
        body = self._call(
            "/nack", method="POST",
            payload={"job_id": job_id, "token": token, "error": error},
        )
        return bool(body["accepted"])

    def heartbeat_many(
        self, leases: Sequence[Dict[str, Any]], *, worker_id: str = "",
        metrics: Optional[Dict[str, Any]] = None,
    ) -> List[bool]:
        payload: Dict[str, Any] = {
            "worker": worker_id, "leases": list(leases),
        }
        if metrics is not None:
            payload["metrics"] = metrics
        body = self._call("/heartbeat", method="POST", payload=payload)
        return [bool(flag) for flag in body["accepted"]]

    def heartbeat(self, job_id: int, token: str) -> bool:
        return self.heartbeat_many([{"job_id": job_id, "token": token}])[0]

    # -- result polling --------------------------------------------------
    def result(self, digest: str) -> Optional[Dict[str, Any]]:
        """The outcome for ``digest`` or ``None`` while in flight.

        Results answered by the coordinator's *cache* (rather than a
        fresh worker solve) come back tagged ``cache_hit="remote"``.
        """
        body = self._call(f"/results/{digest}", expect=(200, 404))
        return self._tag(body)

    def results_fetch(
        self, digests: Sequence[str]
    ) -> Dict[str, Optional[Dict[str, Any]]]:
        """Batched :meth:`result` — one round trip for a whole poll."""
        body = self._call(
            "/results/fetch", method="POST",
            payload={"digests": list(digests)},
        )
        return {
            digest: self._tag(row)
            for digest, row in body["results"].items()
        }

    @staticmethod
    def _tag(body: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
        if not body or "outcome" not in body or body["outcome"] is None:
            return None
        outcome = body["outcome"]
        if body.get("source") == "cache":
            outcome["cache_hit"] = "remote"
        return outcome

    def close(self) -> None:
        pass

    def __enter__(self) -> "CoordinatorClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
