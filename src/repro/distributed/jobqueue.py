"""Leased job queues for the distributed solve fabric.

A :class:`JobQueue` hands solve payloads to workers under **leases**:
a leased job stays invisible to other workers until it is acked
(solved), nacked (failed), or its *visibility timeout* expires — the
crash-recovery path: a worker that dies mid-chunk simply stops
heartbeating and its jobs are redelivered to someone else. Retries are
bounded (``max_attempts`` leases per job); a job that keeps failing
lands in the **dead-letter bucket** with a synthesized ``ERROR``
outcome, so a batch waiting on it always completes — nothing is ever
silently lost.

Lifecycle::

    submit ─▶ pending ─lease─▶ leased ─ack─▶ done
                 ▲                │
                 └──nack/expiry───┘ (attempts < max_attempts)
                                  └─────────▶ dead (otherwise)

Jobs are deduplicated by content digest: submitting a digest that is
already pending/leased/done returns the existing job, and completed
results are answered straight from the queue's result column. Lease
tokens rotate on every (re)delivery, so a stale worker acking after its
lease expired is rejected — exactly-once *acceptance* of results even
with at-least-once delivery.

Two implementations: :class:`MemoryJobQueue` (in-process, the
single-host default) and :class:`SQLiteJobQueue` (WAL-mode file, shared
by worker processes on one filesystem or behind one coordinator).
Expired-lease reclamation is lazy — performed inside ``lease``/
``depth``/``result`` — so neither needs a background thread.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Queue states a job moves through.
JOB_STATES = ("pending", "leased", "done", "dead")


def _replayable(outcome: Optional[Dict[str, Any]]) -> bool:
    """Whether a completed job's outcome may satisfy a *new* submit.

    Only deterministic outcomes replay; a ``TIMEOUT`` under one budget
    must not answer a later, better-funded query (the same rule the
    cache backends enforce).
    """
    from repro.distributed.backends import storable_outcome

    return outcome is not None and storable_outcome(outcome)


@dataclass
class SubmitReceipt:
    """What :meth:`JobQueue.submit` tells the enqueuer.

    ``state`` is ``"queued"`` (newly enqueued — including a dead job
    given a fresh chance), ``"pending"`` (an identical job is already
    waiting or running: deduplicated) or ``"done"`` (the result is
    already available via :meth:`JobQueue.result`).
    """

    digest: str
    state: str
    job_id: int = 0


@dataclass
class LeasedJob:
    """One job handed to a worker, valid until ``deadline``."""

    job_id: int
    token: str
    digest: str
    payload: Dict[str, Any]
    attempt: int
    deadline: float


def dead_letter_outcome(digest: str, attempts: int, error: str) -> Dict[str, Any]:
    """The synthesized ``ERROR`` outcome a dead-lettered job reports."""
    detail = f": {error}" if error else ""
    return {
        "status": "ERROR",
        "error": (
            f"job dead-lettered after {attempts} attempt(s){detail}"
        ),
        "engine_used": "",
        "fallback": False,
        "wall_time": 0.0,
        "worker_pid": 0,
        "dead_letter": True,
        "digest": digest,
    }


@dataclass
class QueueCounters:
    """Monotonic queue counters (cheap, approximate observability)."""

    submitted: int = 0
    deduplicated: int = 0
    leases: int = 0
    acks: int = 0
    stale_acks: int = 0
    nacks: int = 0
    redeliveries: int = 0
    dead: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class JobQueue:
    """Protocol base: lease/ack/nack with visibility timeouts.

    Parameters
    ----------
    visibility_timeout:
        Seconds a lease stays exclusive without a heartbeat; an expired
        lease is redelivered (or dead-lettered past ``max_attempts``).
    max_attempts:
        Upper bound on deliveries per job.
    """

    #: Registry key (mirrors the cache-backend convention).
    name = "abstract"

    def __init__(self, *, visibility_timeout: float = 30.0,
                 max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.visibility_timeout = visibility_timeout
        self.max_attempts = max_attempts
        self.counters = QueueCounters()

    # -- protocol surface -----------------------------------------------
    def submit(self, payload: Dict[str, Any], *,
               digest: Optional[str] = None) -> SubmitReceipt:
        raise NotImplementedError

    def lease(self, max_jobs: int = 1, *, worker_id: str = "",
              visibility_timeout: Optional[float] = None) -> List[LeasedJob]:
        raise NotImplementedError

    def heartbeat(self, job_id: int, token: str) -> bool:
        raise NotImplementedError

    def ack(self, job_id: int, token: str,
            outcome: Dict[str, Any]) -> bool:
        raise NotImplementedError

    def nack(self, job_id: int, token: str, *, error: str = "") -> bool:
        raise NotImplementedError

    def result(self, digest: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def depth(self) -> Dict[str, int]:
        raise NotImplementedError

    def dead_letters(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"backend": self.name}
        out.update(self.depth())
        out.update(self.counters.as_dict())
        return out

    @staticmethod
    def _digest_of(payload: Dict[str, Any],
                   digest: Optional[str]) -> str:
        digest = digest or payload.get("digest")
        if not digest:
            raise ValueError(
                "job payload carries no 'digest' and none was given"
            )
        return digest

    def close(self) -> None:
        pass

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class MemoryJobQueue(JobQueue):
    """In-process queue: dict of job records behind one lock."""

    name = "memory"

    def __init__(self, *, visibility_timeout: float = 30.0,
                 max_attempts: int = 3):
        super().__init__(visibility_timeout=visibility_timeout,
                         max_attempts=max_attempts)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Dict[str, Any]] = {}  # digest -> record
        # Same record objects keyed by job id: ack/nack/heartbeat are
        # O(1) instead of scanning every job under the lock.
        self._by_id: Dict[int, Dict[str, Any]] = {}
        self._next_id = 1

    # -- internals -------------------------------------------------------
    def _reclaim_locked(self, now: float) -> None:
        for record in self._jobs.values():
            if record["state"] != "leased":
                continue
            if record["deadline"] > now:
                continue
            record["token"] = ""
            record["error"] = (
                f"lease expired (worker {record['worker'] or '?'})"
            )
            if record["attempts"] >= self.max_attempts:
                record["state"] = "dead"
                self.counters.dead += 1
            else:
                record["state"] = "pending"
                self.counters.redeliveries += 1

    def _by_id_locked(self, job_id: int) -> Optional[Dict[str, Any]]:
        return self._by_id.get(job_id)

    # -- protocol --------------------------------------------------------
    def submit(self, payload: Dict[str, Any], *,
               digest: Optional[str] = None) -> SubmitReceipt:
        digest = self._digest_of(payload, digest)
        now = time.time()
        with self._lock:
            self._reclaim_locked(now)
            record = self._jobs.get(digest)
            if record is not None:
                if record["state"] == "done" and _replayable(
                        record["outcome"]):
                    self.counters.deduplicated += 1
                    return SubmitReceipt(digest, "done", record["job_id"])
                if record["state"] in ("pending", "leased"):
                    self.counters.deduplicated += 1
                    return SubmitReceipt(digest, "pending",
                                         record["job_id"])
                # dead, or done with a budget-dependent outcome
                # (TIMEOUT must never satisfy a later query): a fresh
                # submit is a fresh chance.
                record.update(state="pending", attempts=0, token="",
                              worker="", deadline=0.0, outcome=None,
                              error="")
                self.counters.submitted += 1
                return SubmitReceipt(digest, "queued", record["job_id"])
            job_id = self._next_id
            self._next_id += 1
            record = {
                "job_id": job_id, "digest": digest, "payload": payload,
                "state": "pending", "attempts": 0, "token": "",
                "worker": "", "deadline": 0.0, "outcome": None,
                "error": "", "submitted": now,
            }
            self._jobs[digest] = record
            self._by_id[job_id] = record
            self.counters.submitted += 1
            return SubmitReceipt(digest, "queued", job_id)

    def lease(self, max_jobs: int = 1, *, worker_id: str = "",
              visibility_timeout: Optional[float] = None) -> List[LeasedJob]:
        timeout = (self.visibility_timeout
                   if visibility_timeout is None else visibility_timeout)
        now = time.time()
        leased: List[LeasedJob] = []
        with self._lock:
            self._reclaim_locked(now)
            for record in sorted(self._jobs.values(),
                                 key=lambda r: r["job_id"]):
                if len(leased) >= max_jobs:
                    break
                if record["state"] != "pending":
                    continue
                token = uuid.uuid4().hex
                record.update(
                    state="leased", token=token, worker=worker_id,
                    deadline=now + timeout,
                    attempts=record["attempts"] + 1,
                )
                self.counters.leases += 1
                leased.append(LeasedJob(
                    job_id=record["job_id"], token=token,
                    digest=record["digest"], payload=record["payload"],
                    attempt=record["attempts"],
                    deadline=record["deadline"],
                ))
        return leased

    def heartbeat(self, job_id: int, token: str) -> bool:
        now = time.time()
        with self._lock:
            self._reclaim_locked(now)
            record = self._by_id_locked(job_id)
            if record is None or record["state"] != "leased" \
                    or record["token"] != token:
                return False
            record["deadline"] = now + self.visibility_timeout
            return True

    def ack(self, job_id: int, token: str,
            outcome: Dict[str, Any]) -> bool:
        with self._lock:
            self._reclaim_locked(time.time())
            record = self._by_id_locked(job_id)
            if record is None or record["state"] != "leased" \
                    or record["token"] != token:
                self.counters.stale_acks += 1
                return False
            record.update(state="done", outcome=outcome, token="",
                          error="")
            self.counters.acks += 1
            return True

    def nack(self, job_id: int, token: str, *, error: str = "") -> bool:
        with self._lock:
            self._reclaim_locked(time.time())
            record = self._by_id_locked(job_id)
            if record is None or record["state"] != "leased" \
                    or record["token"] != token:
                return False
            record["token"] = ""
            record["error"] = error
            self.counters.nacks += 1
            if record["attempts"] >= self.max_attempts:
                record["state"] = "dead"
                self.counters.dead += 1
            else:
                record["state"] = "pending"
                self.counters.redeliveries += 1
            return True

    def result(self, digest: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            self._reclaim_locked(time.time())
            record = self._jobs.get(digest)
            if record is None:
                return None
            if record["state"] == "done":
                return dict(record["outcome"])
            if record["state"] == "dead":
                return dead_letter_outcome(
                    digest, record["attempts"], record["error"]
                )
            return None

    def depth(self) -> Dict[str, int]:
        with self._lock:
            self._reclaim_locked(time.time())
            counts = {state: 0 for state in JOB_STATES}
            for record in self._jobs.values():
                counts[record["state"]] += 1
        return counts

    def dead_letters(self) -> List[Dict[str, Any]]:
        with self._lock:
            self._reclaim_locked(time.time())
            return [
                {"digest": r["digest"], "attempts": r["attempts"],
                 "error": r["error"]}
                for r in sorted(self._jobs.values(),
                                key=lambda r: r["job_id"])
                if r["state"] == "dead"
            ]


class SQLiteJobQueue(JobQueue):
    """WAL-mode persistent queue shared by processes on one filesystem.

    Every mutation runs under ``BEGIN IMMEDIATE`` so two worker
    processes can never lease the same pending job; WAL plus a busy
    timeout keeps readers (depth/result polls) from blocking behind
    writers.
    """

    name = "sqlite"

    def __init__(self, path: Union[str, Path], *,
                 visibility_timeout: float = 30.0, max_attempts: int = 3,
                 timeout: float = 5.0):
        super().__init__(visibility_timeout=visibility_timeout,
                         max_attempts=max_attempts)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False,
            isolation_level=None,  # explicit BEGIN/COMMIT below
        )
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                " job_id INTEGER PRIMARY KEY AUTOINCREMENT,"
                " digest TEXT NOT NULL UNIQUE,"
                " payload TEXT NOT NULL,"
                " state TEXT NOT NULL DEFAULT 'pending',"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " token TEXT NOT NULL DEFAULT '',"
                " worker TEXT NOT NULL DEFAULT '',"
                " deadline REAL NOT NULL DEFAULT 0,"
                " outcome TEXT,"
                " error TEXT NOT NULL DEFAULT '',"
                " submitted REAL NOT NULL)"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS jobs_state "
                "ON jobs (state, job_id)"
            )

    # -- internals -------------------------------------------------------
    def _txn(self):
        """Context manager: lock + BEGIN IMMEDIATE … COMMIT/ROLLBACK."""
        queue = self

        class _Txn:
            def __enter__(self):
                queue._lock.acquire()
                queue._conn.execute("BEGIN IMMEDIATE")
                return queue._conn

            def __exit__(self, exc_type, *rest):
                try:
                    if exc_type is None:
                        queue._conn.execute("COMMIT")
                    else:
                        queue._conn.execute("ROLLBACK")
                finally:
                    queue._lock.release()
                return False

        return _Txn()

    def _reclaim_if_needed(self) -> None:
        """Reclaim expired leases, write-locking only when one exists.

        Result/depth polls run many times per second from every
        waiting client; probing read-only first keeps them off the
        write lock that workers' lease/ack transactions need.
        """
        now = time.time()
        with self._lock:
            expired = self._conn.execute(
                "SELECT 1 FROM jobs WHERE state = 'leased' "
                "AND deadline <= ? LIMIT 1", (now,)
            ).fetchone()
        if expired is None:
            return
        with self._txn() as conn:
            self._reclaim(conn, time.time())

    def _reclaim(self, conn: sqlite3.Connection, now: float) -> None:
        expired = conn.execute(
            "SELECT job_id, attempts, worker FROM jobs "
            "WHERE state = 'leased' AND deadline <= ?", (now,)
        ).fetchall()
        for job_id, attempts, worker in expired:
            error = f"lease expired (worker {worker or '?'})"
            if attempts >= self.max_attempts:
                conn.execute(
                    "UPDATE jobs SET state = 'dead', token = '', "
                    "error = ? WHERE job_id = ?", (error, job_id)
                )
                self.counters.dead += 1
            else:
                conn.execute(
                    "UPDATE jobs SET state = 'pending', token = '', "
                    "error = ? WHERE job_id = ?", (error, job_id)
                )
                self.counters.redeliveries += 1

    # -- protocol --------------------------------------------------------
    def submit(self, payload: Dict[str, Any], *,
               digest: Optional[str] = None) -> SubmitReceipt:
        digest = self._digest_of(payload, digest)
        now = time.time()
        with self._txn() as conn:
            self._reclaim(conn, now)
            row = conn.execute(
                "SELECT job_id, state, outcome FROM jobs "
                "WHERE digest = ?", (digest,)
            ).fetchone()
            if row is not None:
                job_id, state, outcome_blob = row
                if state == "done" and _replayable(
                        json.loads(outcome_blob) if outcome_blob
                        else None):
                    self.counters.deduplicated += 1
                    return SubmitReceipt(digest, "done", job_id)
                if state in ("pending", "leased"):
                    self.counters.deduplicated += 1
                    return SubmitReceipt(digest, "pending", job_id)
                # dead, or done with a budget-dependent outcome: requeue
                conn.execute(
                    "UPDATE jobs SET state = 'pending', attempts = 0, "
                    "token = '', worker = '', deadline = 0, "
                    "outcome = NULL, error = '' WHERE job_id = ?",
                    (job_id,)
                )
                self.counters.submitted += 1
                return SubmitReceipt(digest, "queued", job_id)
            cursor = conn.execute(
                "INSERT INTO jobs (digest, payload, submitted) "
                "VALUES (?, ?, ?)",
                (digest, json.dumps(payload, sort_keys=True), now),
            )
            self.counters.submitted += 1
            return SubmitReceipt(digest, "queued", cursor.lastrowid)

    def lease(self, max_jobs: int = 1, *, worker_id: str = "",
              visibility_timeout: Optional[float] = None) -> List[LeasedJob]:
        timeout = (self.visibility_timeout
                   if visibility_timeout is None else visibility_timeout)
        now = time.time()
        leased: List[LeasedJob] = []
        with self._txn() as conn:
            self._reclaim(conn, now)
            rows = conn.execute(
                "SELECT job_id, digest, payload, attempts FROM jobs "
                "WHERE state = 'pending' ORDER BY job_id LIMIT ?",
                (max_jobs,)
            ).fetchall()
            for job_id, digest, payload_blob, attempts in rows:
                token = uuid.uuid4().hex
                deadline = now + timeout
                conn.execute(
                    "UPDATE jobs SET state = 'leased', token = ?, "
                    "worker = ?, deadline = ?, attempts = ? "
                    "WHERE job_id = ?",
                    (token, worker_id, deadline, attempts + 1, job_id),
                )
                self.counters.leases += 1
                leased.append(LeasedJob(
                    job_id=job_id, token=token, digest=digest,
                    payload=json.loads(payload_blob),
                    attempt=attempts + 1, deadline=deadline,
                ))
        return leased

    def heartbeat(self, job_id: int, token: str) -> bool:
        now = time.time()
        with self._txn() as conn:
            self._reclaim(conn, now)
            cursor = conn.execute(
                "UPDATE jobs SET deadline = ? WHERE job_id = ? "
                "AND state = 'leased' AND token = ?",
                (now + self.visibility_timeout, job_id, token),
            )
            return cursor.rowcount == 1

    def ack(self, job_id: int, token: str,
            outcome: Dict[str, Any]) -> bool:
        with self._txn() as conn:
            self._reclaim(conn, time.time())
            cursor = conn.execute(
                "UPDATE jobs SET state = 'done', outcome = ?, "
                "token = '', error = '' WHERE job_id = ? "
                "AND state = 'leased' AND token = ?",
                (json.dumps(outcome, sort_keys=True), job_id, token),
            )
            if cursor.rowcount == 1:
                self.counters.acks += 1
                return True
            self.counters.stale_acks += 1
            return False

    def nack(self, job_id: int, token: str, *, error: str = "") -> bool:
        with self._txn() as conn:
            self._reclaim(conn, time.time())
            row = conn.execute(
                "SELECT attempts FROM jobs WHERE job_id = ? "
                "AND state = 'leased' AND token = ?", (job_id, token)
            ).fetchone()
            if row is None:
                return False
            self.counters.nacks += 1
            if row[0] >= self.max_attempts:
                state = "dead"
                self.counters.dead += 1
            else:
                state = "pending"
                self.counters.redeliveries += 1
            conn.execute(
                "UPDATE jobs SET state = ?, token = '', error = ? "
                "WHERE job_id = ?", (state, error, job_id),
            )
            return True

    def result(self, digest: str) -> Optional[Dict[str, Any]]:
        self._reclaim_if_needed()
        with self._lock:
            row = self._conn.execute(
                "SELECT state, attempts, outcome, error FROM jobs "
                "WHERE digest = ?", (digest,)
            ).fetchone()
        if row is None:
            return None
        state, attempts, outcome, error = row
        if state == "done" and outcome is not None:
            return json.loads(outcome)
        if state == "dead":
            return dead_letter_outcome(digest, attempts, error)
        return None

    def depth(self) -> Dict[str, int]:
        self._reclaim_if_needed()
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update(dict(rows))
        return counts

    def dead_letters(self) -> List[Dict[str, Any]]:
        self._reclaim_if_needed()
        with self._lock:
            rows = self._conn.execute(
                "SELECT digest, attempts, error FROM jobs "
                "WHERE state = 'dead' ORDER BY job_id"
            ).fetchall()
        return [
            {"digest": d, "attempts": a, "error": e} for d, a, e in rows
        ]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


#: Name → class registry, pinned by ``tests/test_docs.py`` against the
#: backend matrix in ``docs/service.md``.
QUEUE_BACKENDS: Dict[str, type] = {
    MemoryJobQueue.name: MemoryJobQueue,
    SQLiteJobQueue.name: SQLiteJobQueue,
}


def make_job_queue(spec: str, *, visibility_timeout: float = 30.0,
                   max_attempts: int = 3) -> JobQueue:
    """Build a queue from ``memory`` or ``sqlite:<file>`` spec strings.

    ``http://…`` specs resolve to a
    :class:`~repro.distributed.client.CoordinatorClient`, which speaks
    the same protocol against a remote coordinator.
    """
    if spec.startswith(("http://", "https://")):
        from repro.distributed.client import CoordinatorClient

        return CoordinatorClient(spec)
    kind, _, arg = spec.partition(":")
    if kind == "memory":
        return MemoryJobQueue(visibility_timeout=visibility_timeout,
                              max_attempts=max_attempts)
    if kind == "sqlite":
        if not arg:
            raise ValueError("sqlite queue spec needs a file: sqlite:PATH")
        return SQLiteJobQueue(arg, visibility_timeout=visibility_timeout,
                              max_attempts=max_attempts)
    raise ValueError(
        f"unknown queue backend spec {spec!r} "
        f"(choose from {sorted(QUEUE_BACKENDS)})"
    )
