"""The worker daemon: lease chunks, solve, report, heartbeat.

A :class:`Worker` drains any :class:`~repro.distributed.jobqueue.JobQueue`
— an in-process queue, a shared SQLite file, or a remote coordinator
via :class:`~repro.distributed.client.CoordinatorClient` (they all
speak the same lease/ack surface). Payloads run through the exact
single-host solve path: inline
:func:`repro.service.pool.solve_chunk` (per-worker graph LRU **and**
the PR-4 expansion block cache carry across every chunk this process
solves) or a :class:`~repro.service.pool.SolverPool` when
``workers > 0`` fans one daemon over several OS processes.

While a chunk is solving, a daemon thread heartbeats its leases at a
third of the visibility timeout, so long solves are never redelivered
out from under a live worker — and a worker that dies simply stops
heartbeating, which *is* the crash-recovery protocol. ``stop()`` (the
CLI wires it to SIGTERM/SIGINT) finishes the in-flight chunk, reports
it, and exits cleanly; ``drain=True`` exits once the queue is empty.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.distributed.backends import CacheBackend, storable_outcome
from repro.distributed.jobqueue import LeasedJob
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import (
    collect_events,
    emit_event,
    new_trace_id,
    tracing_enabled,
)


@dataclass
class WorkerStats:
    """Lifetime counters of one worker daemon.

    A read-only *view* recomposed from the worker's registry cells
    (:attr:`Worker.stats`): these numbers and the ``repro_worker_*``
    families the daemon ships to the coordinator on heartbeat are the
    same counters by construction.
    """

    chunks: int = 0
    jobs: int = 0
    acks: int = 0
    stale: int = 0
    nacks: int = 0
    #: Jobs whose solve went through the batched fleet kernel (the
    #: worker runs the same chunk path as the single-host pool).
    batched: int = 0
    heartbeats: int = 0
    idle_polls: int = 0
    queue_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class Worker:
    """Lease → solve → report loop over a job queue.

    Parameters
    ----------
    queue:
        Anything speaking the :class:`JobQueue` lease/ack surface —
        including a :class:`CoordinatorClient`.
    cache:
        Optional local :class:`CacheBackend` to write deterministic
        outcomes through (useful for queue-only deployments; behind a
        coordinator the *server* populates the shared cache, so plain
        coordinator workers leave this ``None``).
    workers:
        ``0`` solves chunks inline in this process (maximum block-cache
        reuse); ``n ≥ 1`` fans chunks over a :class:`SolverPool`.
    chunk_size / poll_interval / visibility_timeout:
        Jobs per lease, idle sleep, and the lease's exclusivity window
        (``None`` uses the queue's default).
    drain:
        Exit once the queue reports no pending or leased jobs.
    max_chunks:
        Stop after this many solved chunks (tests and smoke runs).
    """

    def __init__(
        self,
        queue: Any,
        *,
        cache: Optional[CacheBackend] = None,
        worker_id: Optional[str] = None,
        workers: int = 0,
        mp_context: Any = None,
        chunk_size: int = 4,
        poll_interval: float = 0.5,
        visibility_timeout: Optional[float] = None,
        drain: bool = False,
        max_chunks: Optional[int] = None,
    ):
        self.queue = queue
        self.cache = cache
        self.worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.chunk_size = max(1, chunk_size)
        self.poll_interval = poll_interval
        self.visibility_timeout = visibility_timeout
        self.drain = drain
        self.max_chunks = max_chunks
        # Per-worker registry chained to the process-global one: the
        # cells below are this daemon's stats() *and* feed the
        # /metrics families it ships inside heartbeats/reports.
        self._registry = MetricsRegistry(parent=REGISTRY)
        self._cells = {
            field: self._registry.counter(f"repro_worker_{field}_total")
                       .labels()
            for field in (
                "chunks", "jobs", "acks", "stale", "nacks", "batched",
                "heartbeats", "idle_polls", "queue_errors",
            )
        }
        self._workers = workers
        self._mp_context = mp_context
        self._pool = None
        self._stop = threading.Event()

    @property
    def stats(self) -> WorkerStats:
        """Counter view recomposed from this worker's registry cells."""
        return WorkerStats(**{
            field: int(cell.value) for field, cell in self._cells.items()
        })

    # -- lifecycle -------------------------------------------------------
    def stop(self) -> None:
        """Ask the loop to exit after the in-flight chunk reports."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def _ensure_pool(self):
        if self._workers > 0 and self._pool is None:
            from repro.service.pool import SolverPool

            self._pool = SolverPool(
                self._workers, mp_context=self._mp_context
            )
        return self._pool

    def _drained(self) -> bool:
        depth = getattr(self.queue, "depth", None)
        if depth is None:
            return True
        counts = depth()
        return counts.get("pending", 0) + counts.get("leased", 0) == 0

    # -- heartbeats ------------------------------------------------------
    def _heartbeat_interval(self, jobs: Sequence[LeasedJob]) -> float:
        """A third of the *actual* lease window, clamped to [0.2, 10] s.

        The leases' own deadlines are authoritative — a coordinator
        configured with a short ``--visibility-timeout`` must be
        heartbeated faster than any client-side default would guess.
        """
        windows = [j.deadline - time.time() for j in jobs if j.deadline]
        if windows and min(windows) > 0:
            return min(10.0, max(0.2, min(windows) / 3.0))
        visibility = self.visibility_timeout
        if visibility is None:
            visibility = getattr(self.queue, "visibility_timeout", 30.0)
        return min(10.0, max(0.2, visibility / 3.0))

    def _heartbeat_loop(self, jobs: Sequence[LeasedJob],
                        done: threading.Event) -> None:
        interval = self._heartbeat_interval(jobs)
        leases = [{"job_id": j.job_id, "token": j.token} for j in jobs]
        batched = getattr(self.queue, "heartbeat_many", None)
        while not done.wait(interval):
            # A missed heartbeat is recoverable (the lease just runs
            # its timeout down); never kill the solve over it, and try
            # again next tick rather than abandoning the loop.
            try:
                if batched is not None:
                    # Ship the latest metric snapshot with each batched
                    # heartbeat so the coordinator's /metrics covers
                    # this worker mid-solve (queues that don't take a
                    # metrics kwarg just get the plain call).
                    try:
                        accepted = batched(
                            leases, worker_id=self.worker_id,
                            metrics=REGISTRY.snapshot(),
                        )
                    except TypeError:
                        accepted = batched(leases,
                                           worker_id=self.worker_id)
                    self._cells["heartbeats"].inc(
                        sum(map(bool, accepted)))
                else:
                    for job in jobs:
                        if self.queue.heartbeat(job.job_id, job.token):
                            self._cells["heartbeats"].inc()
            except Exception:  # noqa: BLE001 - keep solving
                continue

    # -- the loop --------------------------------------------------------
    def run(self) -> WorkerStats:
        """Drain the queue until stopped; returns the final counters.

        Queue/transport failures (a coordinator restart, one timed-out
        HTTP request) never kill the daemon: the loop backs off and
        retries — any chunk that was leased when a report failed is
        simply redelivered after its visibility timeout.
        """
        consecutive_errors = 0
        try:
            while not self._stop.is_set():
                try:
                    jobs = self.queue.lease(
                        self.chunk_size, worker_id=self.worker_id,
                        visibility_timeout=self.visibility_timeout,
                    )
                    if not jobs:
                        self._cells["idle_polls"].inc()
                        if self.drain and self._drained():
                            break
                        if self._stop.wait(self.poll_interval):
                            break
                        continue
                    self.solve_chunk(jobs)
                except Exception:  # noqa: BLE001 - outlive the outage
                    self._cells["queue_errors"].inc()
                    consecutive_errors += 1
                    backoff = min(
                        10.0, self.poll_interval * (2 ** min(
                            consecutive_errors, 6
                        ))
                    )
                    if self._stop.wait(backoff):
                        break
                    continue
                consecutive_errors = 0
                self._cells["chunks"].inc()
                if self.max_chunks is not None \
                        and self._cells["chunks"].value >= self.max_chunks:
                    break
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
        return self.stats

    def _trace_contexts(
        self, jobs: Sequence[LeasedJob]
    ) -> Tuple[List[Dict[str, Any]], List[Optional[Tuple[str, Any, str]]]]:
        """Re-parent each traced payload under a fresh worker span.

        Returns the payloads to solve plus, per job, ``(trace_id,
        original parent span, worker span id)`` — the worker span is
        what ``job.solve`` parents under, and the ``worker.solve``
        event emitted after the chunk closes the sandwich:
        ``client.job → worker.solve → job.solve``.
        """
        payloads: List[Dict[str, Any]] = []
        contexts: List[Optional[Tuple[str, Any, str]]] = []
        for job in jobs:
            payload = job.payload
            trace_ctx = (payload or {}).get("trace") or {}
            if tracing_enabled() and trace_ctx.get("trace_id"):
                worker_span = new_trace_id()
                payload = dict(payload)
                payload["trace"] = {
                    "trace_id": str(trace_ctx["trace_id"]),
                    "parent_id": worker_span,
                }
                contexts.append((str(trace_ctx["trace_id"]),
                                 trace_ctx.get("parent_id"), worker_span))
            else:
                contexts.append(None)
            payloads.append(payload)
        return payloads, contexts

    def _ship_trace(self, contexts: Sequence[Optional[Tuple]]) -> None:
        """Post this chunk's buffered trace events to the coordinator."""
        trace_ids = [ctx[0] for ctx in contexts if ctx is not None]
        if not trace_ids:
            return
        post = getattr(self.queue, "post_trace", None)
        if post is None:
            return
        events = collect_events(trace_ids, clear=True)
        if not events:
            return
        try:
            post(events)
        except Exception:  # noqa: BLE001 - tracing never kills a solve
            pass

    def solve_chunk(self, jobs: Sequence[LeasedJob]) -> None:
        """Solve one leased chunk and report every outcome."""
        payloads, contexts = self._trace_contexts(jobs)
        started = time.perf_counter()
        done = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(jobs, done), daemon=True,
        )
        beat.start()
        try:
            pool = self._ensure_pool()
            if pool is not None:
                results = pool.solve(payloads)
            else:
                from repro.service.pool import solve_chunk

                results = solve_chunk(payloads)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            done.set()
            beat.join()
            for job, ctx in zip(jobs, contexts):
                if ctx is not None:
                    emit_event(
                        "worker.nack", trace_id=ctx[0], parent_id=ctx[1],
                        span_id=ctx[2],
                        dur=time.perf_counter() - started,
                        worker=self.worker_id, digest=job.digest[:12],
                        error=repr(exc),
                    )
                try:
                    self.queue.nack(job.job_id, job.token,
                                    error=repr(exc))
                    self._cells["nacks"].inc()
                except Exception:  # noqa: BLE001
                    pass
            self._ship_trace(contexts)
            return
        done.set()
        beat.join()
        for job, ctx, outcome in zip(jobs, contexts, results):
            if ctx is not None:
                emit_event(
                    "worker.solve", trace_id=ctx[0], parent_id=ctx[1],
                    span_id=ctx[2],
                    dur=float(outcome.get("wall_time", 0.0)),
                    worker=self.worker_id, digest=job.digest[:12],
                    status=outcome.get("status", ""),
                )
        self._report(jobs, results)
        self._ship_trace(contexts)

    def _report(self, jobs: Sequence[LeasedJob],
                results: Sequence[Dict[str, Any]]) -> None:
        rows: List[Dict[str, Any]] = []
        for job, outcome in zip(jobs, results):
            outcome = dict(outcome)
            outcome.setdefault("digest", job.digest)
            rows.append({
                "job_id": job.job_id, "token": job.token,
                "digest": job.digest, "outcome": outcome,
            })
        report = getattr(self.queue, "report", None)
        if report is not None:
            # The report also carries the final metric snapshot for the
            # chunk — fast chunks can finish before the first heartbeat
            # would ever have shipped one.
            try:
                accepted = report(rows, worker_id=self.worker_id,
                                  metrics=REGISTRY.snapshot())
            except TypeError:
                accepted = report(rows, worker_id=self.worker_id)
        else:
            accepted = [
                self.queue.ack(row["job_id"], row["token"],
                               row["outcome"])
                for row in rows
            ]
        for row, ok in zip(rows, accepted):
            self._cells["jobs"].inc()
            if row["outcome"].get("batched"):
                self._cells["batched"].inc()
            if not ok:
                # Redelivered elsewhere after a lease expiry: someone
                # else's result won — drop ours (no duplicates).
                self._cells["stale"].inc()
                continue
            self._cells["acks"].inc()
            if self.cache is not None \
                    and storable_outcome(row["outcome"]):
                self.cache.put(row["digest"], row["outcome"])

    def run_in_thread(self, name: Optional[str] = None) -> threading.Thread:
        """Start :meth:`run` on a daemon thread (in-process fan-out)."""
        thread = threading.Thread(
            target=self.run, name=name or self.worker_id, daemon=True,
        )
        thread.start()
        return thread
