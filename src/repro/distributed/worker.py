"""The worker daemon: lease chunks, solve, report, heartbeat.

A :class:`Worker` drains any :class:`~repro.distributed.jobqueue.JobQueue`
— an in-process queue, a shared SQLite file, or a remote coordinator
via :class:`~repro.distributed.client.CoordinatorClient` (they all
speak the same lease/ack surface). Payloads run through the exact
single-host solve path: inline
:func:`repro.service.pool.solve_chunk` (per-worker graph LRU **and**
the PR-4 expansion block cache carry across every chunk this process
solves) or a :class:`~repro.service.pool.SolverPool` when
``workers > 0`` fans one daemon over several OS processes.

While a chunk is solving, a daemon thread heartbeats its leases at a
third of the visibility timeout, so long solves are never redelivered
out from under a live worker — and a worker that dies simply stops
heartbeating, which *is* the crash-recovery protocol. ``stop()`` (the
CLI wires it to SIGTERM/SIGINT) finishes the in-flight chunk, reports
it, and exits cleanly; ``drain=True`` exits once the queue is empty.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.distributed.backends import CacheBackend, storable_outcome
from repro.distributed.jobqueue import LeasedJob


@dataclass
class WorkerStats:
    """Lifetime counters of one worker daemon."""

    chunks: int = 0
    jobs: int = 0
    acks: int = 0
    stale: int = 0
    nacks: int = 0
    #: Jobs whose solve went through the batched fleet kernel (the
    #: worker runs the same chunk path as the single-host pool).
    batched: int = 0
    heartbeats: int = 0
    idle_polls: int = 0
    queue_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class Worker:
    """Lease → solve → report loop over a job queue.

    Parameters
    ----------
    queue:
        Anything speaking the :class:`JobQueue` lease/ack surface —
        including a :class:`CoordinatorClient`.
    cache:
        Optional local :class:`CacheBackend` to write deterministic
        outcomes through (useful for queue-only deployments; behind a
        coordinator the *server* populates the shared cache, so plain
        coordinator workers leave this ``None``).
    workers:
        ``0`` solves chunks inline in this process (maximum block-cache
        reuse); ``n ≥ 1`` fans chunks over a :class:`SolverPool`.
    chunk_size / poll_interval / visibility_timeout:
        Jobs per lease, idle sleep, and the lease's exclusivity window
        (``None`` uses the queue's default).
    drain:
        Exit once the queue reports no pending or leased jobs.
    max_chunks:
        Stop after this many solved chunks (tests and smoke runs).
    """

    def __init__(
        self,
        queue: Any,
        *,
        cache: Optional[CacheBackend] = None,
        worker_id: Optional[str] = None,
        workers: int = 0,
        mp_context: Any = None,
        chunk_size: int = 4,
        poll_interval: float = 0.5,
        visibility_timeout: Optional[float] = None,
        drain: bool = False,
        max_chunks: Optional[int] = None,
    ):
        self.queue = queue
        self.cache = cache
        self.worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.chunk_size = max(1, chunk_size)
        self.poll_interval = poll_interval
        self.visibility_timeout = visibility_timeout
        self.drain = drain
        self.max_chunks = max_chunks
        self.stats = WorkerStats()
        self._workers = workers
        self._mp_context = mp_context
        self._pool = None
        self._stop = threading.Event()

    # -- lifecycle -------------------------------------------------------
    def stop(self) -> None:
        """Ask the loop to exit after the in-flight chunk reports."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def _ensure_pool(self):
        if self._workers > 0 and self._pool is None:
            from repro.service.pool import SolverPool

            self._pool = SolverPool(
                self._workers, mp_context=self._mp_context
            )
        return self._pool

    def _drained(self) -> bool:
        depth = getattr(self.queue, "depth", None)
        if depth is None:
            return True
        counts = depth()
        return counts.get("pending", 0) + counts.get("leased", 0) == 0

    # -- heartbeats ------------------------------------------------------
    def _heartbeat_interval(self, jobs: Sequence[LeasedJob]) -> float:
        """A third of the *actual* lease window, clamped to [0.2, 10] s.

        The leases' own deadlines are authoritative — a coordinator
        configured with a short ``--visibility-timeout`` must be
        heartbeated faster than any client-side default would guess.
        """
        windows = [j.deadline - time.time() for j in jobs if j.deadline]
        if windows and min(windows) > 0:
            return min(10.0, max(0.2, min(windows) / 3.0))
        visibility = self.visibility_timeout
        if visibility is None:
            visibility = getattr(self.queue, "visibility_timeout", 30.0)
        return min(10.0, max(0.2, visibility / 3.0))

    def _heartbeat_loop(self, jobs: Sequence[LeasedJob],
                        done: threading.Event) -> None:
        interval = self._heartbeat_interval(jobs)
        leases = [{"job_id": j.job_id, "token": j.token} for j in jobs]
        batched = getattr(self.queue, "heartbeat_many", None)
        while not done.wait(interval):
            # A missed heartbeat is recoverable (the lease just runs
            # its timeout down); never kill the solve over it, and try
            # again next tick rather than abandoning the loop.
            try:
                if batched is not None:
                    accepted = batched(leases, worker_id=self.worker_id)
                    self.stats.heartbeats += sum(map(bool, accepted))
                else:
                    for job in jobs:
                        if self.queue.heartbeat(job.job_id, job.token):
                            self.stats.heartbeats += 1
            except Exception:  # noqa: BLE001 - keep solving
                continue

    # -- the loop --------------------------------------------------------
    def run(self) -> WorkerStats:
        """Drain the queue until stopped; returns the final counters.

        Queue/transport failures (a coordinator restart, one timed-out
        HTTP request) never kill the daemon: the loop backs off and
        retries — any chunk that was leased when a report failed is
        simply redelivered after its visibility timeout.
        """
        consecutive_errors = 0
        try:
            while not self._stop.is_set():
                try:
                    jobs = self.queue.lease(
                        self.chunk_size, worker_id=self.worker_id,
                        visibility_timeout=self.visibility_timeout,
                    )
                    if not jobs:
                        self.stats.idle_polls += 1
                        if self.drain and self._drained():
                            break
                        if self._stop.wait(self.poll_interval):
                            break
                        continue
                    self.solve_chunk(jobs)
                except Exception:  # noqa: BLE001 - outlive the outage
                    self.stats.queue_errors += 1
                    consecutive_errors += 1
                    backoff = min(
                        10.0, self.poll_interval * (2 ** min(
                            consecutive_errors, 6
                        ))
                    )
                    if self._stop.wait(backoff):
                        break
                    continue
                consecutive_errors = 0
                self.stats.chunks += 1
                if self.max_chunks is not None \
                        and self.stats.chunks >= self.max_chunks:
                    break
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
        return self.stats

    def solve_chunk(self, jobs: Sequence[LeasedJob]) -> None:
        """Solve one leased chunk and report every outcome."""
        payloads = [job.payload for job in jobs]
        done = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(jobs, done), daemon=True,
        )
        beat.start()
        try:
            pool = self._ensure_pool()
            if pool is not None:
                results = pool.solve(payloads)
            else:
                from repro.service.pool import solve_chunk

                results = solve_chunk(payloads)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            done.set()
            beat.join()
            for job in jobs:
                try:
                    self.queue.nack(job.job_id, job.token,
                                    error=repr(exc))
                    self.stats.nacks += 1
                except Exception:  # noqa: BLE001
                    pass
            return
        done.set()
        beat.join()
        self._report(jobs, results)

    def _report(self, jobs: Sequence[LeasedJob],
                results: Sequence[Dict[str, Any]]) -> None:
        rows: List[Dict[str, Any]] = []
        for job, outcome in zip(jobs, results):
            outcome = dict(outcome)
            outcome.setdefault("digest", job.digest)
            rows.append({
                "job_id": job.job_id, "token": job.token,
                "digest": job.digest, "outcome": outcome,
            })
        report = getattr(self.queue, "report", None)
        if report is not None:
            accepted = report(rows, worker_id=self.worker_id)
        else:
            accepted = [
                self.queue.ack(row["job_id"], row["token"],
                               row["outcome"])
                for row in rows
            ]
        for row, ok in zip(rows, accepted):
            self.stats.jobs += 1
            if row["outcome"].get("batched"):
                self.stats.batched += 1
            if not ok:
                # Redelivered elsewhere after a lease expiry: someone
                # else's result won — drop ours (no duplicates).
                self.stats.stale += 1
                continue
            self.stats.acks += 1
            if self.cache is not None \
                    and storable_outcome(row["outcome"]):
                self.cache.put(row["digest"], row["outcome"])

    def run_in_thread(self, name: Optional[str] = None) -> threading.Thread:
        """Start :meth:`run` on a daemon thread (in-process fan-out)."""
        thread = threading.Thread(
            target=self.run, name=name or self.worker_id, daemon=True,
        )
        thread.start()
        return thread
