"""Exact cyclic resource occupancy over one hyperperiod.

Resource-aware policies reason about a K-periodic schedule's steady
state: over the hyperperiod ``P = lcm_t(µ_t)`` every instance
``⟨t_p, β⟩`` occurs exactly ``P/µ_t`` times, and the whole execution is
that window repeated. :class:`PeriodicTimeline` models one resource's
occupancy on the circle ``[0, P)`` in exact Fractions — intervals that
cross the wrap point are split, firings longer than their own period
contribute whole-circle covers — so capacity checks are decisions, not
float comparisons.

The key structural fact (used by ``earliest_fit``): an instance with
period ``µ`` occupies ``{s + j·µ mod P : j}``, which depends on ``s``
only through ``s mod µ``. Earliest-fit therefore only needs to test one
start per *residue class*, and the candidate residues come from aligning
the firing's start or end with a stored boundary — a finite, exact set.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.exceptions import SchedulingError


def hyperperiod(periods: Iterable[Fraction]) -> Fraction:
    """Least common multiple of positive rationals:
    ``lcm(nums)/gcd(dens)`` — the smallest positive rational every
    period divides into an integer number of times."""
    num, den = 0, 0
    for p in periods:
        f = Fraction(p)
        if f <= 0:
            raise SchedulingError(f"hyperperiod needs positive periods, got {f}")
        num = f.numerator if num == 0 else num * f.numerator // gcd(num, f.numerator)
        den = gcd(den, f.denominator)
    if num == 0:
        raise SchedulingError("hyperperiod of an empty period set")
    return Fraction(num, den)


class PeriodicTimeline:
    """Occupancy of one resource on the circle ``[0, period)``.

    ``capacity=None`` means unlimited (the timeline still tracks
    occupancy for peak/pressure metrics — force-directed uses exactly
    that mode).
    """

    def __init__(self, period: Fraction, capacity: Optional[int] = None):
        if period <= 0:
            raise SchedulingError(f"timeline period must be positive, got {period}")
        if capacity is not None and capacity < 1:
            raise SchedulingError(f"capacity must be ≥ 1, got {capacity}")
        self.period = Fraction(period)
        self.capacity = capacity
        self._pieces: Dict[Hashable, List[Tuple[Fraction, Fraction]]] = {}

    # ------------------------------------------------------------------
    def occurrence_pieces(
        self, start: Fraction, duration: int, repeat: Fraction
    ) -> List[Tuple[Fraction, Fraction]]:
        """Circle pieces covered by all ``P/repeat`` occurrences."""
        P = self.period
        reps_f = P / repeat
        if reps_f.denominator != 1:
            raise SchedulingError(
                f"instance period {repeat} does not divide the "
                f"hyperperiod {P}"
            )
        reps = reps_f.numerator
        if duration <= 0:
            return []
        pieces: List[Tuple[Fraction, Fraction]] = []
        d = Fraction(duration)
        full, rem = int(d // P), d % P
        for j in range(reps):
            s = (start + j * repeat) % P
            for _ in range(full):
                pieces.append((Fraction(0), P))
            if rem:
                e = s + rem
                if e <= P:
                    pieces.append((s, e))
                else:
                    pieces.append((s, P))
                    pieces.append((Fraction(0), e - P))
        return pieces

    # ------------------------------------------------------------------
    def add(
        self, key: Hashable, start: Fraction, duration: int, repeat: Fraction
    ) -> None:
        if key in self._pieces:
            raise SchedulingError(f"timeline key {key!r} already placed")
        self._pieces[key] = self.occurrence_pieces(start, duration, repeat)

    def remove(self, key: Hashable) -> None:
        del self._pieces[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pieces

    # ------------------------------------------------------------------
    def _stored(self) -> List[Tuple[Fraction, Fraction]]:
        return [p for pieces in self._pieces.values() for p in pieces]

    @staticmethod
    def _max_overlap(pieces: List[Tuple[Fraction, Fraction]]) -> int:
        events: List[Tuple[Fraction, int]] = []
        for a, b in pieces:
            events.append((a, 1))
            events.append((b, -1))
        # ends before starts at equal instants: touching intervals
        # ([x,t) then [t,y)) never count as concurrent.
        events.sort(key=lambda e: (e[0], e[1]))
        count = best = 0
        for _t, delta in events:
            count += delta
            if count > best:
                best = count
        return best

    def fits(self, start: Fraction, duration: int, repeat: Fraction) -> bool:
        """Would adding this instance keep occupancy ≤ capacity?"""
        if self.capacity is None or duration <= 0:
            return True
        pieces = self._stored() + self.occurrence_pieces(start, duration, repeat)
        return self._max_overlap(pieces) <= self.capacity

    def earliest_fit(
        self,
        lo: Fraction,
        hi: Fraction,
        duration: int,
        repeat: Fraction,
    ) -> Optional[Fraction]:
        """Earliest start in ``[lo, hi]`` whose occurrences all fit.

        Exact: since occupancy depends only on ``start mod repeat``,
        the earliest feasible start is the earliest representative of a
        feasible residue class, and only residues aligning the firing's
        start or end with a stored piece boundary (plus ``lo``'s own
        residue) can be local optima.
        """
        if lo > hi:
            return None
        if self.capacity is None or duration <= 0:
            return lo
        residues = {lo % repeat}
        d = Fraction(duration)
        for a, b in self._stored():
            residues.add(a % repeat)
            residues.add(b % repeat)
            residues.add((a - d) % repeat)
            residues.add((b - d) % repeat)
        candidates = []
        for r in residues:
            s = lo + (r - lo) % repeat
            if s <= hi:
                candidates.append(s)
        for s in sorted(candidates):
            if self.fits(s, duration, repeat):
                return s
        return None

    # ------------------------------------------------------------------
    def peak(self) -> int:
        """Maximum concurrent occupancy over the circle."""
        return self._max_overlap(self._stored())

    def pressure(self) -> Fraction:
        """``∫ usage(t)² dt`` over one period — the force-directed
        objective (quadratic, so it rewards flattening, not just
        lowering the peak)."""
        events: List[Tuple[Fraction, int]] = []
        for a, b in self._stored():
            events.append((a, 1))
            events.append((b, -1))
        events.sort(key=lambda e: (e[0], e[1]))
        total = Fraction(0)
        count = 0
        prev = Fraction(0)
        for t, delta in events:
            if t > prev and count:
                total += count * count * (t - prev)
            prev = max(prev, t)
            count += delta
        return total

    def boundaries(self) -> List[Fraction]:
        """Sorted distinct endpoints of stored pieces (candidate
        anchors for the force-directed placement sweep)."""
        points = set()
        for a, b in self._stored():
            points.add(a)
            points.add(b)
        return sorted(points)

    def boundary_sample(self, limit: int) -> List[Fraction]:
        """Up to ``limit`` stored endpoints, unsorted and undeduplicated
        — a cheap spread of anchors for candidate *scoring* (which never
        decides feasibility), skipping the Fraction sort of
        :meth:`boundaries`."""
        stored = self._stored()
        total = 2 * len(stored)
        if total <= limit:
            return [p for piece in stored for p in piece]
        stride = -(-total // limit)  # ceil
        out = []
        for i in range(0, total, stride):
            a, b = stored[i // 2]
            out.append(a if i % 2 == 0 else b)
        return out
