"""The scheduling-policy registry: one surface for schedule construction.

The solver layer certifies a period; *policies* decide where each
K-periodic task instance starts inside the feasible polytope of that
period. Policies register themselves with :func:`register_policy` at
module import (mirroring :mod:`repro.mcrp.registry`); the CLI
(``repro schedule --policy``, ``repro policies``), the bench harness
(:func:`repro.bench.runner.run_schedule_policy`), the Gantt renderer
and the conformance suite all enumerate the same table. Each entry
carries capability metadata:

``resource_constrained``
    The policy honours a :class:`~repro.scheduling.list_scheduling.
    ResourceBinding`: at every instant, at most ``capacity`` bound
    instances execute per resource. Policies without the flag accept a
    binding argument but ignore it (they place by precedence only).
``refinement``
    The policy starts from the certified ASAP/ALAP windows and *moves*
    instances to improve a secondary objective (resource pressure)
    rather than deriving starts directly from potentials.

The family invariant — held by the cross-policy conformance suite — is
that **every** policy returns a :class:`~repro.kperiodic.schedule.
KPeriodicSchedule` at the *same* exact Fraction ``λ*``: policies explore
the solution polytope ``S_dst − S_src ≥ L(e) − λ*·H(e)`` of the
certified period, never a different period.

Adding a policy
---------------
Write a builder taking a :class:`ScheduleContext` and keyword options,
returning the start-time vector (one exact Fraction per constraint-graph
node), and decorate it::

    from repro.scheduling.registry import register_policy

    @register_policy("my-policy", summary="one-line description")
    def build_mine(ctx, *, binding=None, **options):
        ...
        return starts, stats

Import the defining module from :mod:`repro.scheduling` so registration
happens on package import, and the policy becomes selectable everywhere
(``build_schedule(graph, "my-policy")``, ``repro schedule --policy
my-policy``, the conformance suite's parametrization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import SchedulingError
from repro.kperiodic.schedule import KPeriodicSchedule
from repro.mcrp.graph import BiValuedGraph


@dataclass(frozen=True)
class PolicyInfo:
    """Registry entry: the builder callable plus capability metadata.

    Examples
    --------
    >>> from repro.scheduling.registry import get_policy
    >>> info = get_policy("list")
    >>> info.name, info.resource_constrained, info.refinement
    ('list', True, False)
    >>> get_policy("asap").resource_constrained
    False
    """

    name: str
    build: Callable[..., Tuple[List[Fraction], Dict[str, object]]]
    resource_constrained: bool = False
    refinement: bool = False
    summary: str = ""


_REGISTRY: Dict[str, PolicyInfo] = {}


def register_policy(
    name: str,
    *,
    resource_constrained: bool = False,
    refinement: bool = False,
    summary: str = "",
):
    """Class-of-service decorator registering a scheduling policy by name."""

    def decorator(fn):
        if name in _REGISTRY:
            raise ValueError(f"duplicate scheduling policy name {name!r}")
        _REGISTRY[name] = PolicyInfo(
            name=name,
            build=fn,
            resource_constrained=resource_constrained,
            refinement=refinement,
            summary=summary,
        )
        return fn

    return decorator


def _ensure_builtins() -> None:
    """Import the policy modules so their decorators have run."""
    import repro.scheduling  # noqa: F401  (package import registers everything)


def policy_names() -> List[str]:
    """Sorted names of every registered policy.

    Examples
    --------
    >>> from repro.scheduling.registry import policy_names
    >>> policy_names()
    ['alap', 'asap', 'force-directed', 'list']
    """
    _ensure_builtins()
    return sorted(_REGISTRY)


def all_policies() -> List[PolicyInfo]:
    """Every registry entry, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_policy(name: str) -> PolicyInfo:
    """Look up a policy; :class:`SchedulingError` names the choices on a miss."""
    _ensure_builtins()
    info = _REGISTRY.get(name)
    if info is None:
        raise SchedulingError(
            f"unknown scheduling policy {name!r}; "
            f"choose from {sorted(_REGISTRY)}"
        )
    return info


def reject_unknown_options(policy: str, options: Mapping[str, object]) -> None:
    """Builders call this on their ``**options`` catch-all: a typoed
    option must fail loudly, not silently fall back to defaults."""
    if options:
        raise SchedulingError(
            f"policy {policy!r} does not accept option(s) "
            f"{sorted(options)}"
        )


@dataclass(frozen=True)
class Instance:
    """One task instance ``⟨t_p, β⟩`` of the K-periodic pattern.

    ``node`` is its constraint-graph node; ``period`` is the task's
    ``µ_t = Ω·K_t/q_t`` (the instance repeats every ``µ_t`` time units).
    """

    task: str
    phase: int
    beta: int
    node: int
    duration: int
    period: Fraction

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.task, self.phase, self.beta)


@dataclass
class ScheduleContext:
    """Everything a policy needs, computed once per (graph, K, λ*).

    Built by :func:`schedule_context` from a certified fixed-K solve.
    The expensive derived quantities — ASAP potentials, reverse (tail)
    potentials, ALAP potentials, the instance list — are cached lazily
    so a test or bench run evaluating several policies on one graph pays
    each longest-path pass once.
    """

    graph: object
    K: Dict[str, int]
    repetition: Dict[str, int]
    lcm_k: int
    bi_graph: BiValuedGraph
    node_index: Dict[Tuple[str, int], int]
    omega: Fraction
    omega_expanded: Fraction
    critical_labels: List[Tuple[str, int]] = field(default_factory=list)
    _asap: Optional[List[Fraction]] = field(default=None, repr=False)
    _reverse: Optional[List[Fraction]] = field(default=None, repr=False)
    _alap: Optional[List[Fraction]] = field(default=None, repr=False)
    _instances: Optional[List[Instance]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def asap_potentials(self) -> List[Fraction]:
        """Earliest feasible starts (least non-negative solution)."""
        if self._asap is None:
            from repro.kperiodic.solver import longest_path_potentials

            self._asap = longest_path_potentials(
                self.bi_graph, self.omega_expanded
            )
        return self._asap

    def reverse_potentials(self) -> List[Fraction]:
        """Longest-walk value *leaving* each node at ``λ*`` (the node's
        downstream tail; the critical-path priority ranks by it)."""
        if self._reverse is None:
            from repro.scheduling.alap import reverse_longest_walks

            self._reverse = reverse_longest_walks(
                self.bi_graph, self.omega_expanded
            )
        return self._reverse

    def alap_potentials(self) -> List[Fraction]:
        """Latest starts with the critical circuit anchored at ASAP."""
        if self._alap is None:
            from repro.scheduling.alap import alap_potentials

            self._alap = alap_potentials(self)
        return self._alap

    def critical_node_ids(self) -> List[int]:
        """Constraint-graph nodes of the certified critical circuit."""
        return [self.node_index[label] for label in self.critical_labels]

    def instances(self) -> List[Instance]:
        """The K-periodic instance set, in node-index-stable order."""
        if self._instances is None:
            out: List[Instance] = []
            for t in self.graph.tasks():
                name = t.name
                k_t = self.K[name]
                phi = t.phase_count
                mu = self.omega * k_t / self.repetition[name]
                for expanded_phase in range(1, k_t * phi + 1):
                    beta, p = divmod(expanded_phase - 1, phi)
                    out.append(Instance(
                        task=name,
                        phase=p + 1,
                        beta=beta + 1,
                        node=self.node_index[(name, expanded_phase)],
                        duration=t.duration(p + 1),
                        period=mu,
                    ))
            self._instances = out
        return self._instances

    def schedule_from_starts(
        self, starts: List[Fraction]
    ) -> KPeriodicSchedule:
        """Package a per-node start vector as a :class:`KPeriodicSchedule`."""
        return KPeriodicSchedule.from_potentials(
            self.graph, self.K, self.repetition, self.node_index,
            self.omega, starts,
        )

    def arc_weights(self) -> List[Fraction]:
        """Exact weight ``w(e) = L(e) − λ*·H(e)`` per constraint arc.

        Feasibility of any start vector is exactly
        ``S[dst(e)] − S[src(e)] ≥ w(e)`` for every arc.
        """
        lam = self.omega_expanded
        bi = self.bi_graph
        return [
            bi.arc_cost[i] - lam * bi.arc_transit[i]
            for i in range(bi.arc_count)
        ]


@dataclass
class PolicyOutcome:
    """A built schedule plus how the policy got there.

    ``stats`` is policy-specific (makespan, resource peaks, reopened
    instances, refinement deltas, ...) and feeds the bench ablation
    tables; certification-relevant state lives in ``schedule`` only.
    """

    policy: str
    schedule: KPeriodicSchedule
    omega: Fraction
    K: Dict[str, int]
    stats: Dict[str, object] = field(default_factory=dict)


def schedule_context(
    graph,
    *,
    K: Optional[Mapping[str, int]] = None,
    engine: str = "ratio-iteration",
    time_budget: Optional[float] = None,
) -> ScheduleContext:
    """Certify ``λ*`` (K-Iter when ``K`` is omitted) and package the
    constraint graph + certificate for policy builders.

    Raises :class:`SchedulingError` for Ω = 0 (unbounded throughput has
    no finite-period pattern to place) and propagates the solver layer's
    :class:`~repro.exceptions.DeadlockError` /
    :class:`~repro.exceptions.InconsistentGraphError` unchanged.
    """
    from repro.kperiodic.kiter import throughput_kiter
    from repro.kperiodic.solver import (
        prepare_min_period,
        solve_prepared_min_period,
    )

    if K is None:
        K = throughput_kiter(
            graph, engine=engine, time_budget=time_budget
        ).K
    prepared = prepare_min_period(graph, K)
    result = solve_prepared_min_period(prepared, engine=engine)
    if result.omega == 0:
        raise SchedulingError(
            f"graph {getattr(graph, 'name', '?')!r} has unbounded "
            "throughput (Ω = 0): there is no finite-period K-periodic "
            "pattern to schedule"
        )
    node_index = prepared.node_index
    if node_index is None:
        node_index = prepared.space.node_index()
    return ScheduleContext(
        graph=graph,
        K=dict(prepared.K),
        repetition=dict(prepared.repetition),
        lcm_k=prepared.lcm_k,
        bi_graph=prepared.bi_graph,
        node_index=dict(node_index),
        omega=result.omega,
        omega_expanded=result.omega_expanded,
        critical_labels=list(result.critical_nodes),
    )


def build_from_context(
    ctx: ScheduleContext,
    policy: str = "asap",
    *,
    binding=None,
    **options,
) -> PolicyOutcome:
    """Run one policy over an existing context (no re-solve)."""
    info = get_policy(policy)
    starts, stats = info.build(ctx, binding=binding, **options)
    return PolicyOutcome(
        policy=info.name,
        schedule=ctx.schedule_from_starts(starts),
        omega=ctx.omega,
        K=dict(ctx.K),
        stats=stats,
    )


def build_schedule(
    graph,
    policy: str = "asap",
    *,
    engine: str = "ratio-iteration",
    K: Optional[Mapping[str, int]] = None,
    binding=None,
    time_budget: Optional[float] = None,
    **options,
) -> PolicyOutcome:
    """Certify λ* and build a schedule with the named policy.

    Parameters
    ----------
    graph:
        A consistent CSDFG.
    policy:
        Registered policy name (see :func:`policy_names`): ``"asap"``,
        ``"alap"``, ``"list"``, ``"force-directed"`` out of the box.
    engine:
        MCRP engine used for the certification solve.
    K:
        Periodicity vector; omitted → K-Iter's final (optimal) K.
    binding:
        A :class:`~repro.scheduling.list_scheduling.ResourceBinding`
        for resource-constrained policies; ignored by the others.
    options:
        Policy-specific keywords (e.g. ``priority=`` for ``list``);
        unknown options raise :class:`SchedulingError`.

    Examples
    --------
    >>> from repro import sdf
    >>> from repro.scheduling import build_schedule
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
    >>> out = build_schedule(g, "alap")
    >>> out.omega
    Fraction(2, 1)
    >>> out.schedule.verify(g)  # replay token semantics: no violation
    """
    info = get_policy(policy)  # fail before the (expensive) solve
    ctx = schedule_context(
        graph, K=K, engine=engine, time_budget=time_budget
    )
    return build_from_context(ctx, info.name, binding=binding, **options)
