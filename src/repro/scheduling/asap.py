"""Event-driven self-timed (ASAP) execution of a CSDFG.

Semantics (matching the paper's schedules and Theorem 2's executability
condition):

* tokens are consumed when a phase firing *starts* and produced when it
  *completes*; a consumer may start at the exact completion instant of the
  producer firing that supplies it;
* tasks never auto-concur: each task runs at most one phase firing at a
  time and executes phases in cyclic order (the analysis side models this
  with implicit all-ones self-loop buffers).

The simulator runs on plain integers (durations are integers, hence all
event times are too) and exposes three drivers:

* :meth:`AsapSimulator.run_events` — raw stepping with budgets;
* :meth:`AsapSimulator.run_until_recurrence` — state-space recurrence
  detection (the symbolic-execution baseline of [Ghamarian 2006] /
  [Stuijk 2008]);
* :func:`asap_schedule` — record the first firings for Gantt rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.exceptions import BudgetExceededError, DeadlockError
from repro.model.graph import CsdfGraph
from repro.utils.timing import TimeBudget


@dataclass(frozen=True)
class FiringRecord:
    """One recorded phase firing ``⟨t_p, n⟩``."""

    task: str
    phase: int
    n: int
    start: int
    end: int


@dataclass
class RecurrenceResult:
    """Outcome of the state-space search.

    ``period`` is the exact normalized period ``Ω_G`` derived from the
    recurrence: between two identical states every task fires a whole
    number of iterations ``r·q_t`` over ``Δτ`` time, so
    ``Ω_G = Δτ / r``.
    """

    period: Fraction
    transient_events: int
    cycle_time: int
    cycle_iterations: int
    states_stored: int

    @property
    def throughput(self) -> Optional[Fraction]:
        if self.period == 0:
            return None
        return Fraction(1, 1) / self.period


class AsapSimulator:
    """Self-timed executor of a (consistent) CSDFG."""

    def __init__(self, graph: CsdfGraph):
        self.graph = graph
        self._task_names = graph.task_names()
        self._index = {n: i for i, n in enumerate(self._task_names)}
        tasks = [graph.task(n) for n in self._task_names]
        self._durations = [list(t.durations) for t in tasks]
        self._phi = [t.phase_count for t in tasks]

        buffers = list(graph.buffers())
        self._buffer_names = [b.name for b in buffers]
        self._initial_tokens = [b.initial_tokens for b in buffers]
        # Per task: list of (buffer index, rate vector) on each side.
        self._consumes: List[List[Tuple[int, List[int]]]] = [
            [] for _ in tasks
        ]
        self._produces: List[List[Tuple[int, List[int]]]] = [
            [] for _ in tasks
        ]
        for b_idx, b in enumerate(buffers):
            self._produces[self._index[b.source]].append(
                (b_idx, list(b.production))
            )
            self._consumes[self._index[b.target]].append(
                (b_idx, list(b.consumption))
            )
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.time = 0
        self.tokens: List[int] = list(self._initial_tokens)
        # Next phase (0-based) each task will fire, and 1-based iteration
        # count bookkeeping for ⟨t_p, n⟩ labels.
        self.phase_cursor = [0] * len(self._phi)
        self.fired_phases = [0] * len(self._phi)  # total phase firings
        # end time of the ongoing firing, or None when idle.
        self.busy_until: List[Optional[int]] = [None] * len(self._phi)
        self.total_events = 0

    # ------------------------------------------------------------------
    def _can_start(self, t_idx: int) -> bool:
        if self.busy_until[t_idx] is not None:
            return False
        p = self.phase_cursor[t_idx]
        for b_idx, rates in self._consumes[t_idx]:
            if self.tokens[b_idx] < rates[p]:
                return False
        return True

    def _start(self, t_idx: int) -> int:
        """Start the next phase firing; returns its completion time."""
        p = self.phase_cursor[t_idx]
        for b_idx, rates in self._consumes[t_idx]:
            self.tokens[b_idx] -= rates[p]
        end = self.time + self._durations[t_idx][p]
        self.busy_until[t_idx] = end
        return end

    def _complete(self, t_idx: int) -> None:
        p = self.phase_cursor[t_idx]
        for b_idx, rates in self._produces[t_idx]:
            self.tokens[b_idx] += rates[p]
        self.busy_until[t_idx] = None
        self.fired_phases[t_idx] += 1
        self.phase_cursor[t_idx] = (p + 1) % self._phi[t_idx]

    # ------------------------------------------------------------------
    def step(
        self,
        on_firing=None,
        max_zero_duration_chain: int = 1_000_000,
    ) -> bool:
        """Process one time instant: completions, then eager starts.

        Returns False when the system is permanently quiescent (deadlock
        or empty graph); otherwise advances ``self.time`` to the next
        event instant and returns True.

        ``on_firing(task_idx, phase0, start, end)`` is called at each
        firing start (used by the recorder).
        """
        progressed = True
        guard = 0
        while progressed:
            progressed = False
            for t_idx, end in enumerate(self.busy_until):
                if end is not None and end <= self.time:
                    self._complete(t_idx)
                    progressed = True
            for t_idx in range(len(self._phi)):
                while self._can_start(t_idx):
                    end = self._start(t_idx)
                    self.total_events += 1
                    if on_firing is not None:
                        on_firing(
                            t_idx,
                            self.phase_cursor[t_idx],
                            self.time,
                            end,
                        )
                    progressed = True
                    if end > self.time:
                        break  # task busy past this instant
                    self._complete(t_idx)  # zero-duration firing
                    guard += 1
                    if guard > max_zero_duration_chain:
                        raise BudgetExceededError(
                            "zero-duration firing chain exceeded budget "
                            "(unbounded instantaneous throughput?)"
                        )
        # advance to next completion
        pending = [e for e in self.busy_until if e is not None]
        if not pending:
            return False
        self.time = min(pending)
        return True

    def is_deadlocked(self) -> bool:
        """True when nothing is running and nothing can start."""
        if any(e is not None for e in self.busy_until):
            return False
        return not any(self._can_start(i) for i in range(len(self._phi)))

    # ------------------------------------------------------------------
    def state_key(self) -> Tuple:
        """Hashable time-abstract state (tokens, cursors, residual work)."""
        residual = tuple(
            (None if e is None else e - self.time) for e in self.busy_until
        )
        return (tuple(self.tokens), tuple(self.phase_cursor), residual)

    def run_until_recurrence(
        self,
        repetition: Dict[str, int],
        *,
        max_states: int = 2_000_000,
        time_budget: Optional[float] = None,
    ) -> RecurrenceResult:
        """Execute ASAP until a state recurs; derive the exact period.

        Raises
        ------
        DeadlockError
            When execution quiesces permanently.
        BudgetExceededError
            When the state/time budget is exhausted before recurrence
            (the paper's ``> 1d`` rows).
        """
        budget = TimeBudget(time_budget, label="symbolic execution")
        q_vec = [repetition[n] for n in self._task_names]
        ref = min(range(len(q_vec)), key=lambda i: q_vec[i])
        seen: Dict[Tuple, Tuple[int, int]] = {}
        check_interval = 256
        sweep = 0
        while True:
            key = self.state_key()
            prior = seen.get(key)
            if prior is not None:
                prior_time, prior_fired = prior
                delta_t = self.time - prior_time
                delta_fired = self.fired_phases[ref] - prior_fired
                if delta_fired == 0:
                    raise DeadlockError(
                        "recurrent state with no progress (livelock)"
                    )
                # delta_fired phase firings of ref = r·q_ref iterations.
                iterations = Fraction(
                    delta_fired, q_vec[ref] * self._phi[ref]
                )
                period = Fraction(delta_t, 1) / iterations
                return RecurrenceResult(
                    period=period,
                    transient_events=prior_time,
                    cycle_time=delta_t,
                    cycle_iterations=int(iterations)
                    if iterations.denominator == 1
                    else 0,
                    states_stored=len(seen),
                )
            seen[key] = (self.time, self.fired_phases[ref])
            if len(seen) > max_states:
                raise BudgetExceededError(
                    f"symbolic execution stored more than {max_states} states"
                )
            sweep += 1
            if sweep % check_interval == 0:
                budget.check()
            if not self.step():
                raise DeadlockError(
                    "self-timed execution deadlocked "
                    f"at time {self.time} (graph {self.graph.name!r})"
                )


def asap_schedule(
    graph: CsdfGraph,
    iterations: int = 2,
    *,
    max_events: int = 1_000_000,
) -> List[FiringRecord]:
    """Record the ASAP firings covering ``iterations`` graph iterations.

    Used by the paper-figure examples (Figure 3) and as a ground-truth
    oracle in tests. Raises :class:`DeadlockError` if the graph deadlocks
    before completing the requested iterations.
    """
    from repro.analysis.consistency import repetition_vector

    q = repetition_vector(graph)
    sim = AsapSimulator(graph)
    names = sim._task_names
    target = {
        name: iterations * q[name] * graph.task(name).phase_count
        for name in names
    }
    records: List[FiringRecord] = []
    counters = [0] * len(names)

    def recorder(t_idx: int, phase0: int, start: int, end: int) -> None:
        counters[t_idx] += 1
        n = (counters[t_idx] - 1) // sim._phi[t_idx] + 1
        records.append(
            FiringRecord(names[t_idx], phase0 + 1, n, start, end)
        )

    while any(counters[i] < target[names[i]] for i in range(len(names))):
        if sim.total_events > max_events:
            raise BudgetExceededError(
                f"ASAP recording exceeded {max_events} events"
            )
        if not sim.step(on_firing=recorder):
            raise DeadlockError(
                f"graph {graph.name!r} deadlocked at time {sim.time} "
                "during ASAP recording"
            )
    return records


# ----------------------------------------------------------------------
# Registry entry: ASAP as a K-periodic policy
# ----------------------------------------------------------------------
from repro.scheduling.registry import (  # noqa: E402  (policy block)
    register_policy,
    reject_unknown_options,
)


@register_policy(
    "asap",
    summary="earliest starts at λ* (longest-path potentials from the "
            "zero source) — the certified baseline",
)
def build_asap_policy(ctx, *, binding=None, **options):
    """The least solution ≥ 0 of the constraint system — every other
    policy's lower window edge and the conformance baseline."""
    reject_unknown_options("asap", options)
    starts = ctx.asap_potentials()
    makespan = max(
        (starts[i.node] + i.duration for i in ctx.instances()),
        default=Fraction(0),
    )
    return starts, {
        "pattern_makespan": makespan,
        "instances": len(ctx.instances()),
    }
