"""Explicit schedule construction and rendering.

* :mod:`repro.scheduling.asap` — event-driven self-timed (as-soon-as-
  possible) execution of a CSDFG; substrate of the symbolic-execution
  baseline, the liveness check, and the paper's Figure 3.
* :mod:`repro.scheduling.gantt` — ASCII Gantt charts (Figures 3 and 4).
"""

from repro.scheduling.asap import AsapSimulator, FiringRecord, asap_schedule
from repro.scheduling.gantt import render_gantt, schedule_to_firings

__all__ = [
    "AsapSimulator",
    "FiringRecord",
    "asap_schedule",
    "render_gantt",
    "schedule_to_firings",
]
