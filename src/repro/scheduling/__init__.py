"""Explicit schedule construction and rendering.

* :mod:`repro.scheduling.registry` — the scheduling-policy registry:
  every way of turning a certified ``λ*`` into concrete start times is
  a registered *policy* sharing one
  :class:`~repro.scheduling.registry.ScheduleContext`.
* :mod:`repro.scheduling.asap` — event-driven self-timed (as-soon-as-
  possible) execution of a CSDFG; substrate of the symbolic-execution
  baseline, the liveness check, and the paper's Figure 3 — plus the
  ``asap`` policy (earliest potentials).
* :mod:`repro.scheduling.alap` — latest starts against the reversed
  constraint graph (the ``alap`` policy).
* :mod:`repro.scheduling.mobility` — exact slack windows
  ``[ASAP, ALAP]`` per task instance.
* :mod:`repro.scheduling.list_scheduling` — resource-constrained list
  scheduling over the K-periodic instance set (the ``list`` policy)
  with :class:`~repro.scheduling.list_scheduling.ResourceBinding`.
* :mod:`repro.scheduling.force_directed` — distribution-graph pressure
  flattening (the ``force-directed`` policy).
* :mod:`repro.scheduling.timeline` — exact cyclic occupancy model the
  resource-aware policies share.
* :mod:`repro.scheduling.gantt` — ASCII Gantt charts (Figures 3 and 4).
"""

from repro.scheduling.asap import AsapSimulator, FiringRecord, asap_schedule
from repro.scheduling.alap import (
    latest_path_potentials,
    reverse_bi_graph,
    reverse_longest_walks,
)
from repro.scheduling.force_directed import build_force_directed  # noqa: F401
from repro.scheduling.gantt import (
    policy_gantt,
    render_gantt,
    schedule_to_firings,
)
from repro.scheduling.list_scheduling import (
    ResourceBinding,
    periodic_peaks,
    priority_names,
)
from repro.scheduling.mobility import (
    InstanceMobility,
    MobilityReport,
    mobility_from_context,
    mobility_report,
)
from repro.scheduling.registry import (
    PolicyInfo,
    PolicyOutcome,
    ScheduleContext,
    all_policies,
    build_from_context,
    build_schedule,
    get_policy,
    policy_names,
    register_policy,
    schedule_context,
)
from repro.scheduling.timeline import PeriodicTimeline, hyperperiod

__all__ = [
    "AsapSimulator",
    "FiringRecord",
    "InstanceMobility",
    "MobilityReport",
    "PeriodicTimeline",
    "PolicyInfo",
    "PolicyOutcome",
    "ResourceBinding",
    "ScheduleContext",
    "all_policies",
    "asap_schedule",
    "build_from_context",
    "build_schedule",
    "get_policy",
    "hyperperiod",
    "latest_path_potentials",
    "mobility_from_context",
    "mobility_report",
    "periodic_peaks",
    "policy_gantt",
    "policy_names",
    "priority_names",
    "register_policy",
    "render_gantt",
    "reverse_bi_graph",
    "reverse_longest_walks",
    "schedule_context",
    "schedule_to_firings",
]
