"""Force-directed refinement of the K-periodic schedule.

Paulin & Knight's force-directed scheduling, adapted to the cyclic
steady state: the *distribution graph* is the exact periodic occupancy
of each resource over the hyperperiod (:class:`~repro.scheduling.
timeline.PeriodicTimeline`), and the objective is to flatten it —
lexicographically minimize ``(peak concurrency, ∫ usage² dt)`` — by
moving instances inside their mobility windows. The certified period is
never touched: every candidate start lies in the instance's current
``[lo, hi]`` projection interval, and after each commitment both bound
vectors are re-closed over the constraint arcs, which for difference
constraints keeps the windows *exact* (each remaining interval is fully
attainable), so the refinement can never paint itself into infeasibility.

Instances are committed tightest-window-first; candidates are the
window edges plus starts aligning the firing against the distribution
graph's current boundaries (occupancy changes only at alignments, so
the continuum of starts collapses to this finite set). A final
guard compares the refined distribution against plain ASAP and falls
back when refinement did not improve — the policy's contract is
``peak ≤ ASAP peak``, always.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SolverError
from repro.scheduling.list_scheduling import ResourceBinding, build_timelines
from repro.scheduling.registry import (
    ScheduleContext,
    register_policy,
    reject_unknown_options,
)
from repro.scheduling.timeline import PeriodicTimeline


def _distribution_metrics(
    ctx: ScheduleContext,
    binding: ResourceBinding,
    starts: List[Fraction],
) -> Tuple[int, Fraction]:
    """``(max peak over resources, Σ pressure)`` of a start vector."""
    _period, timelines = build_timelines(
        ctx, binding, enforce_capacity=False
    )
    for inst in ctx.instances():
        timelines[binding.resource_of(inst.task)].add(
            inst.key, starts[inst.node], inst.duration, inst.period
        )
    peak = max((tl.peak() for tl in timelines.values()), default=0)
    pressure = sum(
        (tl.pressure() for tl in timelines.values()), Fraction(0)
    )
    return peak, pressure


def _close_windows(
    bi,
    weights,
    in_arcs: Dict[int, List[int]],
    lo: List[Fraction],
    hi: List[Fraction],
    seeds: List[int],
) -> None:
    """Re-close both bound vectors after ``seeds`` changed (queue
    relaxation; exact projections for difference constraints)."""
    from collections import deque

    queue = deque(seeds)
    queued = set(seeds)
    while queue:
        node = queue.popleft()
        queued.discard(node)
        for arc in bi.out_arcs(node):
            succ = bi.arc_dst[arc]
            bound = lo[node] + weights[arc]
            if bound > lo[succ]:
                lo[succ] = bound
                if succ not in queued:
                    queued.add(succ)
                    queue.append(succ)
        for arc in in_arcs.get(node, ()):
            pred = bi.arc_src[arc]
            bound = hi[node] - weights[arc]
            if bound < hi[pred]:
                hi[pred] = bound
                if pred not in queued:
                    queued.add(pred)
                    queue.append(pred)
    for node in range(bi.node_count):
        if lo[node] > hi[node]:
            raise SolverError(
                "force-directed window closure emptied an interval "
                "(internal error)"
            )


def _candidate_starts(
    tl: PeriodicTimeline,
    lo: Fraction,
    hi: Fraction,
    duration: int,
    repeat: Fraction,
    limit: int,
) -> List[Fraction]:
    """Window edges + boundary-aligned starts, capped at ``limit``.

    Boundary scan is subsampled (candidate *scoring* steers quality,
    never feasibility, so thinning the anchor set is safe) to keep the
    per-instance cost bounded on dense distribution graphs.
    """
    residues = set()
    d = Fraction(duration)
    for b in tl.boundary_sample(4 * limit):
        residues.add(b % repeat)
        residues.add((b - d) % repeat)
    aligned = []
    for r in residues:
        s = lo + (r - lo) % repeat
        if lo < s < hi:
            aligned.append(s)
    aligned.sort()
    if len(aligned) > max(limit - 2, 0):
        step = len(aligned) / max(limit - 2, 1)
        aligned = [
            aligned[int(i * step)] for i in range(max(limit - 2, 1))
        ]
    out = [lo] + aligned + ([hi] if hi != lo else [])
    return out


class _FloatDistribution:
    """Float mirror of one resource's occupancy, for candidate scoring.

    Feasibility never depends on it (the mobility windows guarantee
    precedence and period), so scoring may run on floats: event *times*
    are approximate, the concurrency *counts* stay exact integers. The
    committed schedule and the final fallback comparison are evaluated
    in exact Fractions by :func:`_distribution_metrics`.
    """

    def __init__(self) -> None:
        # kept sorted; (t, delta) tuple order puts ends (-1) before
        # starts (+1) at equal times, so touching pieces never overlap.
        self.events: List[Tuple[float, int]] = []

    def commit(self, pieces) -> None:
        from bisect import insort

        for a, b in pieces:
            insort(self.events, (float(a), 1))
            insort(self.events, (float(b), -1))

    def score(self, pieces) -> Tuple[int, float]:
        """``(peak, pressure)`` with the candidate pieces added —
        one merge walk over the presorted mirror, no per-call sort."""
        extra = []
        for a, b in pieces:
            extra.append((float(a), 1))
            extra.append((float(b), -1))
        extra.sort()
        stored = self.events
        i = j = 0
        n, m = len(stored), len(extra)
        count = peak = 0
        pressure = 0.0
        prev = 0.0
        while i < n or j < m:
            if j >= m or (i < n and stored[i] <= extra[j]):
                t, delta = stored[i]
                i += 1
            else:
                t, delta = extra[j]
                j += 1
            if count and t > prev:
                pressure += count * count * (t - prev)
            prev = t
            count += delta
            if count > peak:
                peak = count
        return peak, pressure


@register_policy(
    "force-directed",
    refinement=True,
    summary="distribution-graph refinement: flatten periodic resource "
            "pressure inside the mobility windows (peak ≤ ASAP peak)",
)
def build_force_directed(
    ctx: ScheduleContext,
    *,
    binding: Optional[ResourceBinding] = None,
    candidate_limit: int = 12,
    **options,
):
    reject_unknown_options("force-directed", options)
    if binding is None:
        binding = ResourceBinding.unlimited(ctx.graph)
    binding.validate(ctx.graph)
    if candidate_limit < 2:
        candidate_limit = 2

    asap = ctx.asap_potentials()
    alap = ctx.alap_potentials()
    instances = ctx.instances()
    peak_before, pressure_before = _distribution_metrics(
        ctx, binding, asap
    )

    _period, timelines = build_timelines(
        ctx, binding, enforce_capacity=False
    )
    mirrors = {r: _FloatDistribution() for r in timelines}
    peaks = {r: 0 for r in timelines}
    weights = ctx.arc_weights()
    bi = ctx.bi_graph
    in_arcs: Dict[int, List[int]] = {}
    for i in range(bi.arc_count):
        in_arcs.setdefault(bi.arc_dst[i], []).append(i)
    lo = list(asap)
    hi = list(alap)

    order = sorted(
        instances,
        key=lambda i: (hi[i.node] - lo[i.node], lo[i.node], i.key),
    )
    for inst in order:
        node = inst.node
        resource = binding.resource_of(inst.task)
        tl = timelines[resource]
        mirror = mirrors[resource]
        if lo[node] == hi[node] or inst.duration == 0:
            start = lo[node]
            chosen_pieces = tl.occurrence_pieces(
                start, inst.duration, inst.period
            )
        else:
            others_peak = max(
                (p for r, p in peaks.items() if r != resource),
                default=0,
            )
            best = None
            for cand in _candidate_starts(
                tl, lo[node], hi[node], inst.duration, inst.period,
                candidate_limit,
            ):
                pieces = tl.occurrence_pieces(
                    cand, inst.duration, inst.period
                )
                peak, pressure = mirror.score(pieces)
                score = (max(peak, others_peak), pressure, cand)
                if best is None or score < best:
                    best = score
                    start = cand
                    chosen_pieces = pieces
                    chosen_peak = peak
            peaks[resource] = max(peaks[resource], chosen_peak)
        tl.add(node, start, inst.duration, inst.period)
        mirror.commit(chosen_pieces)
        lo[node] = hi[node] = start
        _close_windows(bi, weights, in_arcs, lo, hi, [node])

    refined = list(lo)
    peak_after, pressure_after = _distribution_metrics(
        ctx, binding, refined
    )
    fallback = (peak_after, pressure_after) > (peak_before, pressure_before)
    if fallback:
        refined = list(asap)
        peak_after, pressure_after = peak_before, pressure_before
    stats = {
        "binding": binding.describe(),
        "peak_before": peak_before,
        "peak_after": peak_after,
        "pressure_before": pressure_before,
        "pressure_after": pressure_after,
        "fallback": fallback,
        "hyperperiod": _period,
    }
    return refined, stats
