"""Mobility (slack) analysis of the K-periodic instance set.

For every instance ``⟨t_p, β⟩`` the window ``[ASAP, ALAP]`` is its
*mobility*: the exact interval of start times for which the remaining
system stays feasible at the certified period (difference-constraint
solution sets are lattices — componentwise min/max of solutions are
solutions — so each projection interval is attainable). ``slack =
ALAP − ASAP`` is the classic HLS mobility metric, computed here in
exact Fractions:

* ``slack ≥ 0`` everywhere (ALAP dominates ASAP by construction);
* ``slack = 0`` on every instance of the certified critical circuit
  (the throughput-limiting cycle leaves no freedom);
* resource-aware policies (list, force-directed) move instances only
  inside these windows, which is why they cannot perturb ``λ*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.scheduling.registry import ScheduleContext, schedule_context


@dataclass(frozen=True)
class InstanceMobility:
    """Exact mobility window of one K-periodic task instance."""

    task: str
    phase: int
    beta: int
    node: int
    duration: int
    asap: Fraction
    alap: Fraction

    @property
    def slack(self) -> Fraction:
        return self.alap - self.asap

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.task, self.phase, self.beta)


@dataclass
class MobilityReport:
    """All instance windows of one certified (graph, K, λ*) solve."""

    K: Dict[str, int]
    omega: Fraction
    instances: List[InstanceMobility]
    critical_keys: FrozenSet[Tuple[str, int, int]]

    def by_key(self) -> Dict[Tuple[str, int, int], InstanceMobility]:
        return {m.key: m for m in self.instances}

    @property
    def max_slack(self) -> Fraction:
        return max((m.slack for m in self.instances), default=Fraction(0))

    def critical_instances(self) -> List[InstanceMobility]:
        """Instances on the certified critical circuit (all slack 0)."""
        return [m for m in self.instances if m.key in self.critical_keys]


def mobility_from_context(ctx: ScheduleContext) -> MobilityReport:
    """Window every instance using the context's cached potentials."""
    asap = ctx.asap_potentials()
    alap = ctx.alap_potentials()
    instances = [
        InstanceMobility(
            task=inst.task, phase=inst.phase, beta=inst.beta,
            node=inst.node, duration=inst.duration,
            asap=asap[inst.node], alap=alap[inst.node],
        )
        for inst in ctx.instances()
    ]
    critical_keys = set()
    phis = {t.name: t.phase_count for t in ctx.graph.tasks()}
    for task, expanded_phase in ctx.critical_labels:
        beta, p = divmod(expanded_phase - 1, phis[task])
        critical_keys.add((task, p + 1, beta + 1))
    return MobilityReport(
        K=dict(ctx.K),
        omega=ctx.omega,
        instances=instances,
        critical_keys=frozenset(critical_keys),
    )


def mobility_report(
    graph,
    *,
    K: Optional[Mapping[str, int]] = None,
    engine: str = "ratio-iteration",
) -> MobilityReport:
    """Certify λ* (K-Iter when ``K`` is omitted) and window every
    instance.

    Examples
    --------
    >>> from repro import sdf
    >>> from repro.scheduling import mobility_report
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
    >>> report = mobility_report(g)
    >>> all(m.slack >= 0 for m in report.instances)
    True
    >>> all(m.slack == 0 for m in report.critical_instances())
    True
    """
    return mobility_from_context(schedule_context(graph, K=K, engine=engine))
