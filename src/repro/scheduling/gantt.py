"""ASCII Gantt charts (the paper's Figures 3 and 4).

Renders a list of :class:`~repro.scheduling.asap.FiringRecord` as one text
row per task, each firing drawn as ``[P#...`` boxes on a discrete time
axis. K-periodic schedules are converted to firing records first (their
start times are rational; rendering scales them to a common denominator).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.kperiodic.schedule import KPeriodicSchedule
from repro.model.graph import CsdfGraph
from repro.scheduling.asap import FiringRecord
from repro.utils.rational import lcm_list


def schedule_to_firings(
    schedule: KPeriodicSchedule,
    graph: CsdfGraph,
    horizon_iterations: int = 2,
) -> List[FiringRecord]:
    """Expand a K-periodic schedule into explicit firings.

    Rational start times are scaled by the lcm of their denominators so
    the records keep exact integer timestamps; the caller can read the
    scale from the ratio of record times to schedule times (rendering does
    not care).
    """
    from repro.analysis.consistency import repetition_vector

    q = repetition_vector(graph)
    denominators = [s.denominator for s in schedule.starts.values()]
    denominators += [p.denominator for p in schedule.task_periods.values()]
    scale = lcm_list(denominators) if denominators else 1
    records: List[FiringRecord] = []
    for t in graph.tasks():
        executions = horizon_iterations * q[t.name]
        for n in range(1, executions + 1):
            for p in range(1, t.phase_count + 1):
                start = schedule.start_time(t.name, p, n) * scale
                records.append(
                    FiringRecord(
                        task=t.name,
                        phase=p,
                        n=n,
                        start=int(start),
                        end=int(start) + t.duration(p) * scale,
                    )
                )
    records.sort(key=lambda r: (r.start, r.task, r.phase))
    return records


def policy_gantt(
    graph: CsdfGraph,
    policy: str = "asap",
    *,
    engine: str = "ratio-iteration",
    binding=None,
    horizon_iterations: int = 2,
    width: int = 100,
    label_phases: bool = True,
    **options,
) -> str:
    """Build a schedule with a registered policy and render it.

    One call takes any policy of :mod:`repro.scheduling.registry` to an
    ASCII chart — the CLI's ``repro gantt --policy`` path, and the
    reason the conformance suite can render every registered policy
    without per-policy glue.
    """
    from repro.scheduling.registry import build_schedule

    outcome = build_schedule(
        graph, policy, engine=engine, binding=binding, **options
    )
    records = schedule_to_firings(
        outcome.schedule, graph, horizon_iterations=horizon_iterations
    )
    chart = render_gantt(
        records, width=width, label_phases=label_phases
    )
    header = (
        f"policy={outcome.policy}  Ω = {outcome.omega}  "
        f"K={{{', '.join(f'{t}:{k}' for t, k in sorted(outcome.K.items()))}}}"
    )
    return header + "\n" + chart


def render_gantt(
    records: Sequence[FiringRecord],
    *,
    width: int = 100,
    task_order: Optional[List[str]] = None,
    label_phases: bool = True,
) -> str:
    """Render firings as an ASCII chart, one row per task.

    Zero-duration firings are drawn as ``|``; overlapping labels collapse
    to ``#``. The chart is clipped to ``width`` columns after scaling the
    time axis down to fit.
    """
    if not records:
        return "(empty schedule)"
    horizon = max(r.end for r in records)
    if task_order is None:
        task_order = []
        for r in records:
            if r.task not in task_order:
                task_order.append(r.task)
    # pick an integer downscale so horizon fits in `width` columns
    unit = max(1, -(-horizon // width))  # ceil division
    columns = -(-horizon // unit) + 1
    name_width = max(len(t) for t in task_order) + 1
    rows: Dict[str, List[str]] = {
        t: [" "] * columns for t in task_order
    }
    for r in records:
        if r.task not in rows:
            continue
        c0 = r.start // unit
        c1 = max(c0, (r.end - 1) // unit) if r.end > r.start else c0
        row = rows[r.task]
        if r.end == r.start:
            row[c0] = "|" if row[c0] == " " else "#"
            continue
        for c in range(c0, c1 + 1):
            if row[c] == " ":
                row[c] = "="
            else:
                row[c] = "#"
        if label_phases:
            label = f"{r.phase}"
            if row[c0] in ("=",):
                row[c0] = label[0]
    header_step = max(1, columns // 10)
    axis = [" "] * (name_width + columns)
    for c in range(0, columns, header_step):
        stamp = str(c * unit)
        pos = name_width + c
        for i, ch in enumerate(stamp):
            if pos + i < len(axis):
                axis[pos + i] = ch
    lines = ["".join(axis)]
    for t in task_order:
        lines.append(t.ljust(name_width) + "".join(rows[t]))
    return "\n".join(lines)
