"""ALAP schedules from the certified potentials, via the reversed graph.

At the certified ``λ*`` every feasible K-periodic start vector solves
the difference-constraint system ``S[dst] − S[src] ≥ w(e)`` with
``w(e) = L(e) − λ*·H(e)`` over the bi-valued constraint graph. ASAP is
the *least* solution ≥ 0 (:func:`repro.kperiodic.solver.
longest_path_potentials`). ALAP is the *greatest* solution under a cap
vector, computed by the same queue relaxation run on the **reversed**
graph: with ``f = −S``, the constraint becomes ``f[src] ≥ f[dst] + w``,
i.e. a longest-path fixpoint along reversed arcs seeded at ``−cap``.

Choosing the caps is where the scheduling content lives. A pure
makespan horizon (``T = max(ASAP + tail)``) yields latest starts for a
*deadline* ``T`` — but when the horizon is attained off the critical
circuit, the circuit itself inherits positive slack and the mobility
invariant "slack = 0 on a critical cycle" breaks. We therefore anchor:

* every node is capped at the horizon ``T`` (so ALAP ≥ ASAP holds
  everywhere — each cap dominates the node's ASAP value by the
  definition of ``T``), and
* the certified critical-circuit nodes are capped at their **ASAP**
  values exactly.

The critical circuit has cycle weight 0 at ``λ*``, so the ASAP values
along it already satisfy its arcs with equality; capping there is
consistent (the relaxation returns the cap itself) and pins the
circuit's slack to 0, which is the paper's notion of criticality:
instances on the throughput-limiting circuit have no freedom.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.exceptions import SolverError
from repro.mcrp.graph import BiValuedGraph
from repro.scheduling.registry import (
    ScheduleContext,
    register_policy,
    reject_unknown_options,
)


def reverse_bi_graph(bi: BiValuedGraph) -> BiValuedGraph:
    """The arc-reversed bi-valued graph (same nodes, labels, values)."""
    rev = BiValuedGraph(bi.node_count, labels=list(bi.labels))
    rev.extend_arcs(
        list(bi.arc_dst), list(bi.arc_src),
        list(bi.arc_cost), list(bi.arc_transit),
    )
    return rev


def _relax_reversed(
    bi: BiValuedGraph,
    omega_expanded: Fraction,
    seeds: Optional[Sequence[Fraction]],
) -> List[Fraction]:
    """Least fixpoint of ``g[x] = max(seed_x, max_{x→y} g[y] + w(e))``.

    Runs the solver's exact queue relaxation on the reversed compiled
    graph; seeds are converted to the compiled integer scale (they must
    land on it — all inputs here are ratios of potentials, which do).
    """
    from repro.kperiodic.solver import _potentials_python

    rev = reverse_bi_graph(bi)
    compiled = rev.compile()
    a, b = omega_expanded.numerator, omega_expanded.denominator
    weights = compiled.parametric_weights(a, b)
    denom = b * compiled.scale
    seed_int: Optional[List[int]] = None
    if seeds is not None:
        seed_int = []
        for s in seeds:
            scaled = s * denom
            if scaled.denominator != 1:
                raise SolverError(
                    f"ALAP seed {s} does not land on the compiled "
                    f"scale 1/{denom}"
                )
            seed_int.append(scaled.numerator)
    dist = _potentials_python(compiled, weights, seed=seed_int)
    return [Fraction(d, denom) for d in dist]


def reverse_longest_walks(
    bi: BiValuedGraph, omega_expanded: Fraction
) -> List[Fraction]:
    """Longest walk value leaving each node at ``λ*`` (non-negative).

    ``tail[v] = max(0, max over walks from v of Σ w(e))`` — the node's
    downstream critical path. ``ASAP[v] + tail[v]`` bounds how late any
    work seeded at ``v`` can reach, which defines the ALAP horizon, and
    the critical-path list-scheduling priority ranks by ``tail`` alone.
    """
    return _relax_reversed(bi, omega_expanded, None)


def latest_path_potentials(
    bi: BiValuedGraph,
    omega_expanded: Fraction,
    caps: Sequence[Fraction],
) -> List[Fraction]:
    """Greatest solution of the constraint system with ``S ≤ caps``.

    ``S = −g`` where ``g`` is the reversed-graph least fixpoint seeded
    at ``−caps``; raises :class:`~repro.exceptions.SolverError` if a
    positive cycle survives (an uncertified λ was passed).
    """
    g = _relax_reversed(bi, omega_expanded, [-c for c in caps])
    return [-v for v in g]


def alap_potentials(ctx: ScheduleContext) -> List[Fraction]:
    """Critical-circuit-anchored latest starts for a context (cached
    via :meth:`ScheduleContext.alap_potentials`)."""
    asap = ctx.asap_potentials()
    tail = ctx.reverse_potentials()
    horizon = max(
        (a + t for a, t in zip(asap, tail)), default=Fraction(0)
    )
    caps = [horizon] * ctx.bi_graph.node_count
    for node in ctx.critical_node_ids():
        caps[node] = asap[node]
    return latest_path_potentials(ctx.bi_graph, ctx.omega_expanded, caps)


@register_policy(
    "alap",
    summary="latest starts at λ* (reversed-graph potentials, "
            "critical circuit anchored at ASAP)",
)
def build_alap(ctx: ScheduleContext, *, binding=None, **options):
    """ALAP start vector; the mobility window's upper edge."""
    reject_unknown_options("alap", options)
    starts = ctx.alap_potentials()
    asap = ctx.asap_potentials()
    zero_slack = sum(1 for a, l in zip(asap, starts) if a == l)
    horizon = max(
        (s + t for s, t in zip(asap, ctx.reverse_potentials())),
        default=Fraction(0),
    )
    return starts, {
        "horizon": horizon,
        "zero_slack_instances": zero_slack,
        "instances": len(starts),
    }
