"""Resource-constrained list scheduling of the K-periodic instance set.

The policy keeps the certified period fixed and spends only the slack
the mobility analysis found: each instance may start anywhere in its
``[ASAP, ALAP]`` window, and the scheduler picks starts so that on every
resource of a :class:`ResourceBinding` at most ``capacity`` bound
firings execute concurrently — checked exactly on the hyperperiod
circle (:mod:`repro.scheduling.timeline`).

Instances are placed in ready order (earliest lower bound first, ties by
a pluggable priority: ``mobility`` = tightest window first, or
``critical-path`` = longest downstream tail first) at the earliest
capacity-feasible start inside their window. Placing an instance raises
the lower bounds of its constraint-graph successors (``S_dst ≥ S_src +
w(e)``); a successor already placed below its new bound is *reopened*
(unplaced, re-queued) — bounds only ever rise and never pass ALAP, so
the process either settles or exhausts the reopen budget.

Failure is honest: a binding can simply be too tight for the certified
period — then no window placement exists and the policy raises
:class:`~repro.exceptions.SchedulingError` instead of quietly stretching
the period. The escalation path for that case is
:func:`repro.mapping.transform.apply_mapping`, which folds the
processors into the dataflow and lets K-Iter certify the (longer)
achievable period of the mapped graph.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import SchedulingError, SolverError
from repro.scheduling.registry import (
    Instance,
    ScheduleContext,
    register_policy,
    reject_unknown_options,
)
from repro.scheduling.timeline import PeriodicTimeline, hyperperiod

#: Hard cap on Σ_instances (hyperperiod / µ_t): the number of firings a
#: resource model must track. Far above every corpus graph; a guard, not
#: a tuning knob.
MAX_TOTAL_FIRINGS = 200_000


class ResourceBinding:
    """Task → resource assignment with per-resource capacities.

    ``capacity=None`` means unlimited. The binding is the scheduling
    layer's *contract* with :mod:`repro.mapping`: a
    :class:`~repro.mapping.partition.Mapping`'s processor assignment
    becomes a binding via :meth:`from_mapping` (static orders are
    dropped — list scheduling re-derives the interleaving from slack,
    it does not replay the mapping's sequence).
    """

    def __init__(
        self,
        assignment: Mapping[str, str],
        capacities: Optional[Mapping[str, Optional[int]]] = None,
        *,
        default_capacity: Optional[int] = 1,
    ):
        self.assignment: Dict[str, str] = dict(assignment)
        self.capacities: Dict[str, Optional[int]] = dict(capacities or {})
        self.default_capacity = default_capacity

    def resources(self) -> List[str]:
        return sorted(set(self.assignment.values()))

    def resource_of(self, task: str) -> str:
        try:
            return self.assignment[task]
        except KeyError:
            raise SchedulingError(
                f"resource binding does not assign task {task!r}"
            ) from None

    def capacity_of(self, resource: str) -> Optional[int]:
        return self.capacities.get(resource, self.default_capacity)

    def validate(self, graph) -> None:
        tasks = set(graph.task_names())
        missing = tasks - set(self.assignment)
        if missing:
            raise SchedulingError(
                f"resource binding leaves task(s) {sorted(missing)} unbound"
            )
        for resource in self.resources():
            cap = self.capacity_of(resource)
            if cap is not None and cap < 1:
                raise SchedulingError(
                    f"resource {resource!r} has capacity {cap} (must be "
                    "≥ 1 or None for unlimited)"
                )

    def describe(self) -> str:
        return ",".join(
            f"{r}:{self.capacity_of(r) if self.capacity_of(r) is not None else '∞'}"
            for r in self.resources()
        )

    # ------------------------------------------------------------------
    @classmethod
    def unlimited(cls, graph, resource: str = "cpu") -> "ResourceBinding":
        """All tasks on one capacity-unlimited resource (the neutral
        binding: list scheduling degenerates to ASAP under it)."""
        return cls(
            {name: resource for name in graph.task_names()},
            {resource: None},
        )

    @classmethod
    def balanced(
        cls,
        graph,
        resources: int = 2,
        *,
        capacity: int = 1,
        repetition: Optional[Dict[str, int]] = None,
    ) -> "ResourceBinding":
        """LPT assignment by workload ``q_t·Σ_p d(t_p)`` over ``resources``
        unit-capacity (by default) processors — the same heuristic as
        :func:`repro.mapping.heuristics.greedy_load_balance`, without
        the static orders."""
        from repro.analysis.consistency import repetition_vector

        if resources < 1:
            raise SchedulingError(f"need ≥ 1 resource, got {resources}")
        if repetition is None:
            repetition = repetition_vector(graph)
        workloads = {
            t.name: repetition[t.name] * t.iteration_duration
            for t in graph.tasks()
        }
        load = {f"cpu{i}": 0 for i in range(resources)}
        assignment: Dict[str, str] = {}
        for name in sorted(workloads, key=workloads.__getitem__, reverse=True):
            proc = min(load, key=lambda p: (load[p], p))
            assignment[name] = proc
            load[proc] += workloads[name]
        return cls(assignment, default_capacity=capacity)

    @classmethod
    def from_mapping(cls, mapping, *, capacity: int = 1) -> "ResourceBinding":
        """Adopt a :class:`repro.mapping.partition.Mapping`'s processor
        assignment as a binding (orders dropped, see class docstring)."""
        return cls(dict(mapping.assignment), default_capacity=capacity)


# ----------------------------------------------------------------------
# Priority functions
# ----------------------------------------------------------------------
def _priority_mobility(inst, asap, alap, ctx) -> Tuple:
    # tightest window first; longer firings break ties (harder to place)
    return (alap[inst.node] - asap[inst.node], -inst.duration)


def _priority_critical_path(inst, asap, alap, ctx) -> Tuple:
    # longest downstream tail first (classic HLS critical-path rank)
    return (-ctx.reverse_potentials()[inst.node],
            alap[inst.node] - asap[inst.node])


PRIORITIES: Dict[str, Callable] = {
    "mobility": _priority_mobility,
    "critical-path": _priority_critical_path,
}


def priority_names() -> List[str]:
    return sorted(PRIORITIES)


def get_priority(name: str) -> Callable:
    fn = PRIORITIES.get(name)
    if fn is None:
        raise SchedulingError(
            f"unknown list-scheduling priority {name!r}; "
            f"choose from {sorted(PRIORITIES)}"
        )
    return fn


# ----------------------------------------------------------------------
def check_firing_budget(instances: List[Instance], period: Fraction) -> None:
    total = sum(int(period / inst.period) for inst in instances)
    if total > MAX_TOTAL_FIRINGS:
        raise SchedulingError(
            f"resource model would track {total} periodic firings "
            f"(> {MAX_TOTAL_FIRINGS}); the hyperperiod is too fine for "
            "resource-constrained scheduling of this instance"
        )


def build_timelines(
    ctx: ScheduleContext,
    binding: ResourceBinding,
    *,
    enforce_capacity: bool = True,
) -> Tuple[Fraction, Dict[str, PeriodicTimeline]]:
    """Empty per-resource timelines over the instance hyperperiod."""
    instances = ctx.instances()
    period = hyperperiod([inst.period for inst in instances])
    check_firing_budget(instances, period)
    timelines = {
        r: PeriodicTimeline(
            period, binding.capacity_of(r) if enforce_capacity else None
        )
        for r in binding.resources()
    }
    return period, timelines


def periodic_peaks(
    ctx: ScheduleContext,
    schedule,
    binding: ResourceBinding,
) -> Dict[str, int]:
    """Per-resource peak concurrency of a schedule's steady state
    (the conformance suite's capacity oracle)."""
    _period, timelines = build_timelines(ctx, binding, enforce_capacity=False)
    for inst in ctx.instances():
        start = schedule.starts[inst.key]
        timelines[binding.resource_of(inst.task)].add(
            inst.key, start, inst.duration, inst.period
        )
    return {r: tl.peak() for r, tl in timelines.items()}


# ----------------------------------------------------------------------
@register_policy(
    "list",
    resource_constrained=True,
    summary="resource-constrained list scheduling inside the mobility "
            "windows (pluggable priority; period stays λ*)",
)
def build_list_schedule(
    ctx: ScheduleContext,
    *,
    binding: Optional[ResourceBinding] = None,
    priority: str = "mobility",
    **options,
):
    reject_unknown_options("list", options)
    rank_fn = get_priority(priority)
    if binding is None:
        binding = ResourceBinding.unlimited(ctx.graph)
    binding.validate(ctx.graph)

    asap = ctx.asap_potentials()
    alap = ctx.alap_potentials()
    instances = ctx.instances()
    by_node = {inst.node: inst for inst in instances}
    _period, timelines = build_timelines(ctx, binding)
    weights = ctx.arc_weights()
    bi = ctx.bi_graph

    lo: List[Fraction] = list(asap)
    hi: List[Fraction] = list(alap)
    rank = {
        inst.node: rank_fn(inst, asap, alap, ctx) for inst in instances
    }
    placed: Dict[int, Fraction] = {}
    heap: List[Tuple] = []
    for inst in instances:
        heapq.heappush(
            heap, (lo[inst.node], rank[inst.node], inst.node)
        )
    reopen_budget = 20 * len(instances) + 100
    reopened = 0
    while heap:
        bound, _rk, node = heapq.heappop(heap)
        if node in placed or bound < lo[node]:
            continue  # stale entry; a fresher one is in the heap
        inst = by_node[node]
        resource = binding.resource_of(inst.task)
        start = timelines[resource].earliest_fit(
            lo[node], hi[node], inst.duration, inst.period
        )
        if start is None:
            raise SchedulingError(
                f"policy 'list': no capacity-feasible start for instance "
                f"{inst.key} on resource {resource!r} (window "
                f"[{lo[node]}, {hi[node]}], binding {binding.describe()}) "
                f"— the binding is too tight for the certified period "
                f"Ω = {ctx.omega}; apply the mapping to the graph "
                "(repro.mapping.apply_mapping) and schedule the mapped "
                "graph at its own certified period instead"
            )
        placed[node] = start
        timelines[resource].add(node, start, inst.duration, inst.period)
        # Tighten successors: S_dst ≥ S_src + w(e). Bounds only rise and
        # ALAP is an upper fixpoint, so new bounds never pass hi.
        for arc in bi.out_arcs(node):
            succ = bi.arc_dst[arc]
            new_lo = start + weights[arc]
            if new_lo <= lo[succ]:
                continue
            if new_lo > hi[succ]:
                raise SolverError(
                    "list scheduling drove a lower bound past ALAP: "
                    "window invariant broken (internal error)"
                )
            lo[succ] = new_lo
            if succ in placed and placed[succ] < new_lo:
                reopened += 1
                if reopened > reopen_budget:
                    raise SchedulingError(
                        "policy 'list': reopen budget exhausted "
                        f"(> {reopen_budget}) — the binding "
                        f"{binding.describe()} admits no stable placement "
                        f"at Ω = {ctx.omega}; map the graph "
                        "(repro.mapping.apply_mapping) instead"
                    )
                timelines[
                    binding.resource_of(by_node[succ].task)
                ].remove(succ)
                del placed[succ]
                heapq.heappush(heap, (lo[succ], rank[succ], succ))
            elif succ not in placed:
                heapq.heappush(heap, (lo[succ], rank[succ], succ))

    if len(placed) != bi.node_count:
        raise SolverError(
            "constraint graph has nodes outside the instance set "
            "(internal error)"
        )
    # Defence in depth: replay every constraint arc before handing the
    # vector to schedule assembly.
    for i in range(bi.arc_count):
        if (placed[bi.arc_dst[i]] - placed[bi.arc_src[i]]) < weights[i]:
            raise SolverError(
                "list scheduling produced an infeasible start vector "
                "(internal error)"
            )
    full = [Fraction(0)] * bi.node_count
    for inst in instances:
        full[inst.node] = placed[inst.node]
    pattern_makespan = max(
        (placed[i.node] + i.duration for i in instances), default=Fraction(0)
    ) - min((placed[i.node] for i in instances), default=Fraction(0))
    stats = {
        "priority": priority,
        "binding": binding.describe(),
        "reopened": reopened,
        "pattern_makespan": pattern_makespan,
        "peaks": {r: tl.peak() for r, tl in timelines.items()},
        "hyperperiod": _period,
    }
    return full, stats
