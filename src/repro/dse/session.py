"""`DseSession`: one graph under targeted edits, re-solved incrementally.

The inner loop of every design-space exploration — buffer sizing,
duration sensitivity, mapping sweeps — evaluates λ* after a *small*
edit: one capacity, one task's durations, one marking. A cold
:func:`~repro.kperiodic.kiter.throughput_kiter` call pays the full
price every time: the repetition vector, the serialization-loop copy,
every buffer's useful-pair sweep, and the whole K escalation ladder
from ``K ≡ 1``. The session keeps all four warm:

===================  =================================================
state                reuse across edits
===================  =================================================
expansion blocks     an edit drops only the touched buffers' blocks
                     (``(buffer, K_src, K_dst)`` keys — everything
                     else stays valid by construction)
repetition vector    memoized; dropped only by rate edits
certified K          re-used as ``initial_k`` — always exactness-safe
                     (Theorem 4 certifies at the final K regardless of
                     the path there), skips the escalation ladder
certified λ*         seeds the first round's engine — only when every
                     edit since could not *lower* λ* (the downgrade
                     rule below)
===================  =================================================

**Warm-start downgrade rule.** A seed above the true λ* costs restart
probes (never exactness — the engines detect an uncertified start).
Each edit therefore declares a direction: capacity shrink, token
removal and duration increase can only *raise* the period (tightening
a monotone constraint set), so the previous λ* stays a lower bound and
remains a safe seed. Any edit that could lower the period — capacity
growth, token addition, speedups, every rate edit — downgrades the
next solve to the plain utilization-bound start (the certified K is
still reused unless the repetition vector itself moved).

**Exactness contract.** Every ``solve()`` answer is bit-identical
(`Fraction` equality) to a cold solve of the current graph. Edits
build *new* graph objects (see :mod:`repro.transforms.surgery`), so no
count-validated weak-key memo can ever serve stale data; the session's
own block cache is invalidated per edit by name.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.consistency import repetition_vector
from repro.exceptions import DeadlockError, ModelError, ReproError
from repro.kperiodic.expansion import ExpansionBlockCache
from repro.kperiodic.kiter import KIterResult, throughput_kiter
from repro.model.graph import CsdfGraph
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.obs.trace import span as _span
from repro.model.buffer import Buffer
from repro.transforms.surgery import (
    rebuild_graph,
    with_buffer_rates,
    with_initial_tokens,
    with_scaled_task,
    with_task_durations,
)
from repro.utils.rational import lcm_list

# Process-global cells (module import time, like every other subsystem);
# per-session numbers live in plain int attributes so sessions pickle.
_EDITS = _REGISTRY.counter("repro_session_edits_total")
_INVALIDATIONS = _REGISTRY.counter(
    "repro_session_block_invalidations_total")
_SOLVES = _REGISTRY.counter("repro_session_solves_total")
_WARM = _REGISTRY.counter("repro_session_warm_starts_total")
_ROUNDS_SAVED = _REGISTRY.counter("repro_session_rounds_saved_total")


class DseSession:
    """One compiled graph plus its solver state, edited in place.

    Parameters
    ----------
    graph:
        The base design point. Never mutated — edits swap in new graph
        objects sharing every untouched task/buffer, and ``reset()``
        returns to this exact object.
    engine:
        MCRP engine for every solve (see
        :func:`repro.kperiodic.kiter.throughput_kiter`).
    warm_start:
        ``False`` disables both the cross-solve λ* seed and K-Iter's
        own intra-solve seeding (ablation/debug switch); the certified
        K is still reused.
    max_cells:
        Block-cache budget, as in
        :class:`~repro.kperiodic.expansion.ExpansionBlockCache`.
    """

    #: The public edit surface, pinned to the table in ``docs/dse.md``
    #: by ``tests/test_docs.py`` — extend both together.
    EDIT_METHODS: Tuple[str, ...] = (
        "set_capacity",
        "set_capacities",
        "set_initial_tokens",
        "set_durations",
        "scale_task",
        "set_rates",
        "apply",
    )

    def __init__(
        self,
        graph: CsdfGraph,
        *,
        engine: str = "ratio-iteration",
        warm_start: bool = True,
        max_cells: int = 16_000_000,
    ) -> None:
        self._base = graph
        self.graph = graph
        self.engine = engine
        self.warm_start = warm_start
        self._max_cells = max_cells
        self._cache = ExpansionBlockCache(max_cells)
        self._q: Optional[Dict[str, int]] = None
        self._last: Optional[KIterResult] = None
        self._last_seed: Optional[Fraction] = None
        # Validity of the previous certified solve as a starting point:
        # _k_valid — q unchanged, so the K vector still applies;
        # _seed_valid — every edit since was direction-"up", so the
        # previous λ* cannot overshoot. Both accumulate across edits
        # (and across failed solves) until the next certified solve.
        self._k_valid = False
        self._seed_valid = False
        # Every buffer name whose blocks went stale since construction
        # (reset() invalidates exactly these — blocks of never-edited
        # buffers are valid for the base graph by content identity).
        self._dirty: set = set()
        # Plain-int mirrors of the session.* metric families.
        self.edits: Dict[str, int] = {}
        self.invalidated_blocks = 0
        self.warm_outcomes: Dict[str, int] = {}
        self.rounds_saved = 0
        self.solves: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Edit surface
    # ------------------------------------------------------------------
    def set_capacity(self, buffer_name: str, capacity: int) -> None:
        """Re-bound one data buffer's capacity.

        The graph must already be capacity-bounded (contain the
        ``__space_<name>`` reverse buffer of
        :func:`repro.buffers.capacity.bound_all_buffers`): a capacity
        edit is then a marking edit on that one space buffer. Shrinking
        keeps the warm λ* seed; growing downgrades it.
        """
        self._apply_capacities({buffer_name: capacity})

    def set_capacities(self, capacities: Mapping[str, int]) -> None:
        """Batch :meth:`set_capacity`: one edit, one invalidation pass."""
        self._apply_capacities(dict(capacities))

    def _apply_capacities(self, capacities: Dict[str, int]) -> None:
        graph = self.graph
        replacements: Dict[str, Buffer] = {}
        shrink_only = True
        for name, capacity in capacities.items():
            data = graph.buffer(name)
            space_name = f"__space_{name}"
            if not graph.has_buffer(space_name):
                raise ModelError(
                    f"buffer {name!r} is not capacity-bounded (no "
                    f"{space_name!r}); build the session on "
                    "bound_all_buffers(graph, ...)"
                )
            if capacity < data.initial_tokens:
                raise ModelError(
                    f"capacity {capacity} of buffer {name!r} is below "
                    f"its initial marking {data.initial_tokens}"
                )
            space = graph.buffer(space_name)
            tokens = capacity - data.initial_tokens
            if tokens == space.initial_tokens:
                continue  # no-op: keep blocks, seed, everything
            if tokens > space.initial_tokens:
                shrink_only = False
            replacements[space_name] = Buffer(
                space.name, space.source, space.target, space.production,
                space.consumption, tokens,
                serialization=space.serialization,
            )
        if replacements:
            # One shared-reference rebuild for the whole batch — a
            # uniform-scale step touches every space buffer, and
            # chaining per-buffer copies would be quadratic.
            graph = rebuild_graph(graph, buffers=replacements)
        self._commit(
            "capacity", graph, list(replacements),
            seed_safe=shrink_only,
        )

    def set_initial_tokens(self, buffer_name: str, tokens: int) -> None:
        """Replace one buffer's initial marking.

        Token removal tightens the precedence constraints (period can
        only rise → seed kept); addition downgrades the seed.
        """
        old = self.graph.buffer(buffer_name)
        if tokens == old.initial_tokens:
            return
        self._commit(
            "tokens",
            with_initial_tokens(self.graph, buffer_name, tokens),
            [buffer_name],
            seed_safe=tokens < old.initial_tokens,
        )

    def set_durations(
        self, task_name: str, durations: Sequence[int]
    ) -> None:
        """Replace one task's phase durations (phase count fixed).

        Invalidates the blocks of every buffer the task *produces into*
        (block costs are producer phase durations), including its
        serialization self-loop. A uniform slowdown keeps the seed; any
        phase getting faster downgrades it.
        """
        old = self.graph.task(task_name)
        new = tuple(int(d) for d in durations)
        if new == old.durations:
            return
        edited = with_task_durations(self.graph, task_name, new)
        self._commit(
            "duration",
            edited,
            self._source_buffers(task_name),
            seed_safe=(
                len(new) == len(old.durations)
                and all(a >= b for a, b in zip(new, old.durations))
            ),
            tasks={task_name: edited.task(task_name)},
        )

    def scale_task(
        self, task_name: str, numerator: int, denominator: int = 1
    ) -> None:
        """Scale one task's durations by ``numerator/denominator`` (floor)."""
        graph = with_scaled_task(
            self.graph, task_name, numerator, denominator)
        if graph.task(task_name).durations == \
                self.graph.task(task_name).durations:
            return
        self._commit(
            "duration", graph, self._source_buffers(task_name),
            seed_safe=numerator >= denominator,
            tasks={task_name: graph.task(task_name)},
        )

    def set_rates(
        self,
        buffer_name: str,
        *,
        production: Optional[Sequence[int]] = None,
        consumption: Optional[Sequence[int]] = None,
        initial_tokens: Optional[int] = None,
    ) -> None:
        """Replace one buffer's rate vectors (and optionally marking).

        The repetition vector may move, so the memoized ``q`` *and* the
        certified K are dropped along with the seed — the next solve
        restarts the escalation from ``K ≡ 1``. Only this buffer's
        blocks are invalidated (denominators are assembly-time).
        """
        self._commit(
            "rates",
            with_buffer_rates(
                self.graph, buffer_name,
                production=production, consumption=consumption,
                initial_tokens=initial_tokens,
            ),
            [buffer_name],
            seed_safe=False,
            k_safe=False,
        )

    def apply(self, edits: Iterable[Mapping[str, Any]]) -> None:
        """Apply a manifest edit list (the ``repro explore`` op schema).

        Each op is a dict with an ``"op"`` key naming an edit method
        (or ``"reset"``) and that method's arguments as the remaining
        keys, e.g. ``{"op": "set_capacity", "buffer": "A_B_0",
        "capacity": 7}``.
        """
        for edit in edits:
            op = dict(edit)
            kind = op.pop("op", None)
            if kind == "reset":
                self.reset()
            elif kind == "set_capacity":
                self.set_capacity(op.pop("buffer"), op.pop("capacity"))
            elif kind == "set_capacities":
                self.set_capacities(op.pop("capacities"))
            elif kind == "set_initial_tokens":
                self.set_initial_tokens(op.pop("buffer"), op.pop("tokens"))
            elif kind == "set_durations":
                self.set_durations(op.pop("task"), op.pop("durations"))
            elif kind == "scale_task":
                self.scale_task(
                    op.pop("task"), op.pop("numerator"),
                    op.pop("denominator", 1),
                )
            elif kind == "set_rates":
                self.set_rates(
                    op.pop("buffer"),
                    production=op.pop("production", None),
                    consumption=op.pop("consumption", None),
                    initial_tokens=op.pop("initial_tokens", None),
                )
            else:
                raise ModelError(f"unknown explore op {kind!r}")
            if op:
                raise ModelError(
                    f"unexpected keys {sorted(op)} in {kind!r} op")

    # ------------------------------------------------------------------
    # Edit plumbing
    # ------------------------------------------------------------------
    def _source_buffers(self, task_name: str) -> List[str]:
        self.graph.task(task_name)  # unknown names raise ModelError
        touched = [
            b.name for b in self.graph.buffers() if b.source == task_name
        ]
        # The serialization self-loop added by with_serialization_loops
        # carries the task's durations as block costs too; its blocks
        # are cached under this name even though the session graph does
        # not contain the loop itself.
        touched.append(f"__serial_{task_name}")
        return touched

    def _commit(
        self,
        kind: str,
        graph: CsdfGraph,
        touched: Iterable[str],
        *,
        seed_safe: bool,
        k_safe: bool = True,
        tasks: Optional[Dict[str, Any]] = None,
    ) -> None:
        with _span("dse.edit", kind=kind) as sp:
            self.graph = graph
            dropped = 0
            touched = list(touched)
            for name in touched:
                dropped += self._cache.invalidate_buffer(name)
                self._dirty.add(name)
            # The assembled-K memo aggregates the whole graph and
            # validates only by counts — always stale after a content
            # edit. The serialization copy is structurally identical
            # under content edits, so the edited objects are swapped
            # into the memo instead of re-deriving it per solve.
            self._cache.invalidate_compiled()
            self._cache.patch_serialized(
                graph,
                tasks=tasks,
                buffers={
                    name: graph.buffer(name) for name in touched
                    if graph.has_buffer(name)
                },
            )
            if not seed_safe:
                self._seed_valid = False
            if not k_safe:
                self._k_valid = False
                self._q = None
            sp.attrs["invalidated"] = dropped
        self.edits[kind] = self.edits.get(kind, 0) + 1
        self.invalidated_blocks += dropped
        _EDITS.labels(kind=kind).inc()
        _INVALIDATIONS.inc(dropped)

    def _repetition(self) -> Dict[str, int]:
        if self._q is None:
            self._q = repetition_vector(self.graph)
        return self._q

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, *, build_schedule: bool = False) -> KIterResult:
        """Certified λ* of the current graph (exact, warm where safe).

        Raises :class:`~repro.exceptions.DeadlockError` exactly like a
        cold :func:`~repro.kperiodic.kiter.throughput_kiter`; the
        session stays usable (further edits keep accumulating against
        the last *certified* solve).
        """
        q = self._repetition()
        initial_k = None
        warm: Optional[Fraction] = None
        if self._last is not None and self._k_valid:
            initial_k = dict(self._last.K)
            if self.warm_start and self._seed_valid:
                warm = self._last_seed
        with _span("dse.solve", engine=self.engine) as sp:
            sp.attrs["warm"] = warm is not None
            try:
                result = throughput_kiter(
                    self.graph,
                    engine=self.engine,
                    build_schedule=build_schedule,
                    initial_k=initial_k,
                    warm_start=self.warm_start,
                    expansion_cache=self._cache,
                    repetition=q,
                    warm_lambda=warm,
                )
            except DeadlockError:
                self._count_solve("DEADLOCK")
                sp.attrs["status"] = "DEADLOCK"
                raise
            except ReproError:
                self._count_solve("ERROR")
                sp.attrs["status"] = "ERROR"
                raise
            sp.attrs["status"] = "OK"
            sp.attrs["rounds"] = result.iteration_count
        self._absorb_solve(result, warm, initial_k)
        return result

    def _absorb_solve(
        self,
        result: KIterResult,
        warm: Optional[Fraction],
        initial_k: Optional[Dict[str, int]],
    ) -> None:
        if warm is None:
            outcome = "skipped"
        else:
            first = result.rounds[0] if result.rounds else None
            overshoot = (
                first is not None
                and first.omega is not None
                and warm > first.omega * lcm_list(first.K.values())
            )
            outcome = "overshoot" if overshoot else "hit"
        self.warm_outcomes[outcome] = self.warm_outcomes.get(outcome, 0) + 1
        _WARM.labels(outcome=outcome).inc()
        if initial_k is not None and self._last is not None:
            # Proxy for the escalation rounds the reused K skipped: the
            # ladder that produced it is at least that long again from
            # a cold all-ones start.
            saved = max(
                0, self._last.iteration_count - result.iteration_count)
            self.rounds_saved += saved
            _ROUNDS_SAVED.inc(saved)
        self._count_solve("OK")
        self._last = result
        self._last_seed = result.period * lcm_list(result.K.values())
        self._k_valid = True
        self._seed_valid = True

    def _count_solve(self, status: str) -> None:
        self.solves[status] = self.solves.get(status, 0) + 1
        _SOLVES.labels(status=status).inc()

    def evaluate(self) -> Dict[str, Any]:
        """One design point as a JSON-able record (the explore row)."""
        started = time.perf_counter()
        try:
            result = self.solve()
        except DeadlockError as exc:
            return {
                "status": "DEADLOCK",
                "error": str(exc),
                "wall_time": time.perf_counter() - started,
            }
        except ReproError as exc:
            return {
                "status": "ERROR",
                "error": str(exc),
                "wall_time": time.perf_counter() - started,
            }
        throughput = result.throughput
        return {
            "status": "OK",
            "period": [result.period.numerator, result.period.denominator],
            "throughput": (
                None if throughput is None
                else [throughput.numerator, throughput.denominator]
            ),
            "K": dict(result.K),
            "rounds": result.iteration_count,
            "engine_iterations": result.engine_iteration_count,
            "critical_tasks": sorted(result.critical_tasks),
            "wall_time": time.perf_counter() - started,
        }

    @property
    def last_result(self) -> Optional[KIterResult]:
        """The most recent certified solve (``None`` before the first)."""
        return self._last

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Back to the base design point, forgetting the solve state.

        Blocks of never-edited buffers survive — they are keyed by
        buffer name and the base graph's content matches them; only the
        names dirtied since construction are dropped.
        """
        for name in self._dirty:
            self.invalidated_blocks += self._cache.invalidate_buffer(name)
        self._dirty.clear()
        self._cache.invalidate_assembled()
        self.graph = self._base
        self._q = None
        self._last = None
        self._last_seed = None
        self._k_valid = False
        self._seed_valid = False

    def stats(self) -> Dict[str, Any]:
        """Session counters plus the block cache's own statistics."""
        return {
            "edits": dict(self.edits),
            "invalidated_blocks": self.invalidated_blocks,
            "warm_starts": dict(self.warm_outcomes),
            "rounds_saved": self.rounds_saved,
            "solves": dict(self.solves),
            "cache": self._cache.stats(),
        }

    # ------------------------------------------------------------------
    # Pickling: the block cache holds numpy arrays scaled to the
    # session's working set — drop it and rebuild cold on the far side.
    # Graphs, the q memo and the last certified solve travel, so an
    # unpickled session still warm-starts from λ* and the certified K.
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_cache"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._cache = ExpansionBlockCache(self._max_cells)
        # Blocks were dropped wholesale: every name starts clean.
        self._dirty = set(self._dirty)
        self._dirty.clear()
