"""Incremental design-space exploration sessions.

One :class:`DseSession` = one design point under iterated targeted
edits: the session keeps the expansion block cache, the repetition
vector and the last certified solve alive across edits, so a sweep
re-solves only what an edit actually touched instead of starting cold
N times. The exactness contract is absolute — every design point's λ*
is bit-identical to a cold solve of the edited graph (pinned by
``tests/test_dse.py``); the caches and warm starts only move work,
never answers.
"""

from repro.dse.explore import (
    explore_payload_for,
    run_explore,
    solve_explore_payload,
)
from repro.dse.session import DseSession

__all__ = [
    "DseSession",
    "explore_payload_for",
    "run_explore",
    "solve_explore_payload",
]
