"""Edit-manifest sweeps: one sticky session, many design points.

An *explore manifest* is a list of design points, each a dict::

    {"name": "cap7",                 # optional label (default point-<i>)
     "reset": false,                 # start from the base graph again
     "edits": [{"op": "set_capacity", "buffer": "A_B_0", "capacity": 7},
               ...]}                 # DseSession.apply op schema

Points are evaluated in order through one :class:`~repro.dse.DseSession`
— edits accumulate unless a point sets ``reset`` — and each yields a
JSON-able record with the certified exact λ* (``period`` as a
``[numerator, denominator]`` pair). The same runner backs the
``repro explore`` CLI verb, ``ThroughputService.explore`` and the pool
workers' explore chunks, so a sweep is *one* job wherever it runs: the
session's block cache and warm-start state live where the solves do.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

from repro.dse.session import DseSession
from repro.exceptions import ModelError
from repro.model.graph import CsdfGraph
from repro.obs.trace import span as _span


def run_explore(
    graph: CsdfGraph,
    points: Iterable[Mapping[str, Any]],
    *,
    engine: str = "ratio-iteration",
    warm_start: bool = True,
    check: bool = False,
) -> Iterator[Dict[str, Any]]:
    """Evaluate manifest points through one session, yielding records.

    ``check=True`` re-solves every point cold (fresh graph object, no
    session state) and asserts bit-identical λ* — the exactness
    contract as a runtime switch; a mismatch raises ``AssertionError``
    (it would be a solver bug, not an input error).
    """
    session = DseSession(graph, engine=engine, warm_start=warm_start)
    for index, point in enumerate(points):
        if not isinstance(point, Mapping):
            raise ModelError(
                f"explore point #{index} is not a mapping: {point!r}")
        name = str(point.get("name", f"point-{index}"))
        if point.get("reset"):
            session.reset()
        session.apply(point.get("edits", ()))
        record = session.evaluate()
        record["point"] = name
        if check:
            record["check"] = _cold_check(session, record, engine)
        yield record


def _cold_check(
    session: DseSession, record: Dict[str, Any], engine: str
) -> str:
    from fractions import Fraction

    from repro.exceptions import DeadlockError
    from repro.kperiodic.kiter import throughput_kiter

    # A fresh structural copy: cold caches, cold q, cold K ladder.
    cold_graph = CsdfGraph.from_dict(session.graph.to_dict())
    try:
        cold = throughput_kiter(cold_graph, engine=engine)
    except DeadlockError:
        status = "DEADLOCK"
        period = None
    else:
        status = "OK"
        period = cold.period
    if record["status"] != status:
        raise AssertionError(
            f"explore point {record['point']!r}: session status "
            f"{record['status']} vs cold {status}")
    if status == "OK" and Fraction(*record["period"]) != period:
        raise AssertionError(
            f"explore point {record['point']!r}: session period "
            f"{record['period']} vs cold {period} — exactness violated")
    return "OK"


def explore_payload_for(
    graph: CsdfGraph,
    points: Iterable[Mapping[str, Any]],
    *,
    engine: str = "ratio-iteration",
    warm_start: bool = True,
    check: bool = False,
) -> Dict[str, Any]:
    """A picklable explore chunk for the solver pool.

    ``kind: "explore"`` is what :func:`repro.service.pool.solve_chunk`
    discriminates on; ``digest`` keys the worker's parsed-graph LRU
    (shared with plain solve payloads on the same graph — sessions
    never mutate the base object, so sharing is safe).
    """
    canonical = graph.to_dict(canonical=True)
    from repro.service.job import graph_digest

    return {
        "kind": "explore",
        "graph": canonical,
        "graph_digest": graph_digest(canonical),
        "points": [dict(p) for p in points],
        "engine": engine,
        "warm_start": bool(warm_start),
        "check": bool(check),
    }


def solve_explore_payload(
    payload: Mapping[str, Any], *, graph: Optional[CsdfGraph] = None
) -> Dict[str, Any]:
    """Run one explore chunk: plain dict in, plain dict out.

    Module-level and JSON-able end to end, so it crosses the process
    pool's ``spawn`` boundary like
    :func:`repro.kperiodic.kiter.solve_kiter_payload`. The outcome
    carries ``status`` (``"OK"`` unless the *manifest itself* was
    malformed — per-point solver failures land in that point's record)
    and ``results``, one record per design point in order.
    """
    started = time.perf_counter()
    if graph is None:
        graph = CsdfGraph.from_dict(payload["graph"])
    points = payload.get("points", [])
    with _span("dse.explore", points=len(points)) as sp:
        try:
            results = list(run_explore(
                graph, points,
                engine=payload.get("engine", "ratio-iteration"),
                warm_start=payload.get("warm_start", True),
                check=payload.get("check", False),
            ))
        except ModelError as exc:
            sp.attrs["status"] = "ERROR"
            return {
                "status": "ERROR",
                "error": str(exc),
                "results": [],
                "wall_time": time.perf_counter() - started,
                "worker_pid": os.getpid(),
            }
        sp.attrs["status"] = "OK"
    return {
        "status": "OK",
        "results": results,
        "wall_time": time.perf_counter() - started,
        "worker_pid": os.getpid(),
    }
