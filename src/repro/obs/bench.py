"""Shared benchmark emission: one schema for every ``BENCH_*.json``.

Every ``benchmarks/bench_*.py`` gate routes its numbers through
:func:`emit_bench`, which (1) sets ``repro_bench_value{bench,name}``
gauges in the process registry so a live scrape sees the latest gate
numbers, and (2) writes ``BENCH_<bench>.json`` with the append-able
schema the ROADMAP bench trajectory expects::

    {"bench": "...", "schema": "repro-bench/1", "commit": "<sha|''>",
     "metrics": [{"name": ..., "value": ..., "unit": ...,
                  "commit": ...}, ...],
     ...extra}
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .metrics import REGISTRY

__all__ = ["bench_commit", "emit_bench", "BENCH_SCHEMA"]

BENCH_SCHEMA = "repro-bench/1"


def bench_commit() -> str:
    """Current git commit sha, or "" outside a repo — never raises."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=Path(__file__).resolve().parents[3],
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def emit_bench(bench: str, metrics: Iterable[Dict[str, object]],
               extra: Optional[Dict[str, object]] = None,
               out_dir: str = ".") -> Dict[str, object]:
    """Record gate numbers and write ``BENCH_<bench>.json``.

    ``metrics`` rows need ``name``/``value``/``unit`` keys; the commit
    sha is stamped on the envelope and every row so rows stay
    self-describing when trajectories are concatenated.
    """
    commit = bench_commit()
    gauge = REGISTRY.gauge("repro_bench_value")
    rows: List[Dict[str, object]] = []
    for metric in metrics:
        row = {
            "name": str(metric["name"]),
            "value": metric["value"],
            "unit": str(metric.get("unit", "")),
            "commit": commit,
        }
        try:
            gauge.labels(bench=bench, name=row["name"]).set(
                float(row["value"]))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            pass  # non-numeric gate values still land in the JSON
        rows.append(row)
    envelope: Dict[str, object] = {
        "bench": bench,
        "schema": BENCH_SCHEMA,
        "commit": commit,
        "metrics": rows,
    }
    if extra:
        envelope.update(extra)
    path = Path(out_dir) / f"BENCH_{bench}.json"
    path.write_text(json.dumps(envelope, indent=2) + "\n",
                    encoding="utf-8")
    # Best-effort trend row(s): the gate JSON is the artifact of
    # record, the history powers `repro bench-report` trajectories.
    from .history import append_history, history_path
    append_history(envelope, history_path(out_dir))
    return envelope
