"""Trace summarizer: span trees and self/total time tables.

Backs ``repro trace out.jsonl`` — loads a JSONL trace file, groups
events by ``trace_id``, rebuilds the parent/child tree, and renders a
per-trace tree (total time per span) plus an aggregate top-N table
(count, total, self time per span name).

"Self" time is a span's duration minus the duration of its direct
children — the time the span spent doing its own work rather than
waiting on instrumented callees.  Spans recorded by different
processes are stitched by ids, not clocks: ``t0`` is per-process
monotonic, so ordering across processes uses ``wall``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional

__all__ = ["load_events", "build_trees", "aggregate", "render_summary",
           "load_profiles", "merge_profiles", "render_profile"]


def load_events(path) -> List[Dict]:
    """Parse a JSONL trace file, skipping malformed lines."""
    events: List[Dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict) and event.get("name"):
            events.append(event)
    return events


class SpanNode:
    __slots__ = ("event", "children")

    def __init__(self, event: Dict) -> None:
        self.event = event
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        return str(self.event.get("name", "?"))

    @property
    def dur(self) -> float:
        return float(self.event.get("dur") or 0.0)

    @property
    def self_time(self) -> float:
        return max(0.0, self.dur - sum(c.dur for c in self.children))


def build_trees(events: Iterable[Dict]) -> Dict[str, List[SpanNode]]:
    """Group events by trace id and link children to parents.

    Returns ``{trace_id: [root nodes]}``; events whose parent is not in
    the trace (e.g. the parent process wasn't tracing) become roots.
    """
    by_trace: Dict[str, List[Dict]] = defaultdict(list)
    for event in events:
        by_trace[str(event.get("trace_id") or "?")].append(event)
    trees: Dict[str, List[SpanNode]] = {}
    for trace_id, group in by_trace.items():
        nodes = {e.get("span_id"): SpanNode(e) for e in group
                 if e.get("span_id")}
        roots: List[SpanNode] = []
        for node in nodes.values():
            parent = nodes.get(node.event.get("parent_id"))
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.event.get("wall", 0.0),
                                              n.event.get("t0", 0.0)))
        roots.sort(key=lambda n: (n.event.get("wall", 0.0),
                                  n.event.get("t0", 0.0)))
        trees[trace_id] = roots
    return trees


def aggregate(events: Iterable[Dict]) -> List[Dict]:
    """Per-name totals: count, total time, self time; sorted by self."""
    trees = build_trees(events)
    rows: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"count": 0, "total": 0.0, "self": 0.0})

    def walk(node: SpanNode) -> None:
        row = rows[node.name]
        row["count"] += 1
        row["total"] += node.dur
        row["self"] += node.self_time
        for child in node.children:
            walk(child)

    for roots in trees.values():
        for root in roots:
            walk(root)
    out = [{"name": name, **row} for name, row in rows.items()]
    out.sort(key=lambda r: -r["self"])
    return out


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def _render_node(node: SpanNode, depth: int, lines: List[str],
                 max_depth: int) -> None:
    attrs = node.event.get("attrs") or {}
    detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items())
                      if k in ("engine", "K", "graph", "status", "jobs",
                               "digest", "mode", "kind", "worker"))
    pad = "  " * depth
    suffix = f"  [{detail}]" if detail else ""
    lines.append(f"{pad}{node.name:<24} {_fmt_seconds(node.dur):>10}"
                 f"{suffix}")
    if depth + 1 >= max_depth:
        if node.children:
            lines.append(f"{pad}  … {len(node.children)} children elided")
        return
    for child in node.children:
        _render_node(child, depth + 1, lines, max_depth)


def render_summary(events: List[Dict], top: int = 10,
                   trace_id: Optional[str] = None,
                   max_traces: int = 5, max_depth: int = 6,
                   dropped: int = 0) -> str:
    """Human-readable trace report: per-trace trees + top-N table.

    ``dropped`` (from :func:`repro.obs.trace.trace_dropped_total`)
    flags ring-buffer evictions so a truncated in-memory view is never
    mistaken for the whole story.
    """
    if not events:
        if dropped:
            return (f"no trace events (ring buffer dropped {dropped} "
                    f"events)\n")
        return "no trace events\n"
    trees = build_trees(events)
    lines: List[str] = []
    wanted = [trace_id] if trace_id else list(trees)
    shown = 0
    for tid in wanted:
        roots = trees.get(tid)
        if not roots:
            lines.append(f"trace {tid}: not found")
            continue
        if shown >= max_traces:
            break
        shown += 1
        span_count = sum(1 for e in events
                         if str(e.get("trace_id")) == tid)
        total = sum(r.dur for r in roots)
        lines.append(f"trace {tid}  ({span_count} spans, "
                     f"{_fmt_seconds(total)} across {len(roots)} roots)")
        for root in roots:
            _render_node(root, 1, lines, max_depth)
        lines.append("")
    remaining = len(trees) - shown
    if not trace_id and remaining > 0:
        lines.append(f"… {remaining} more traces "
                     f"(use --trace-id to pick one)")
        lines.append("")
    rows = aggregate(events)[:top]
    lines.append(f"top {min(top, len(rows))} spans by self time:")
    lines.append(f"  {'span':<26} {'count':>7} {'total':>10} {'self':>10}")
    for row in rows:
        lines.append(f"  {row['name']:<26} {int(row['count']):>7} "
                     f"{_fmt_seconds(row['total']):>10} "
                     f"{_fmt_seconds(row['self']):>10}")
    if dropped:
        lines.append("")
        lines.append(f"warning: ring buffer dropped {dropped} events — "
                     f"in-memory views are incomplete (the trace file, "
                     f"if configured, has everything)")
    return "\n".join(lines) + "\n"


# -- sampling-profiler rendering -------------------------------------

def load_profiles(path) -> List[Dict]:
    """Parse a ``repro-profile/1`` JSONL file (one envelope per
    process), skipping malformed lines."""
    envelopes: List[Dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(envelope, dict) and \
                envelope.get("schema") == "repro-profile/1":
            envelopes.append(envelope)
    return envelopes


def merge_profiles(envelopes: Iterable[Dict]) -> Dict[str, Dict]:
    """Fold per-process envelopes into one span → frame table."""
    spans: Dict[str, Dict] = {}
    for envelope in envelopes:
        for name, data in (envelope.get("spans") or {}).items():
            acc = spans.setdefault(name, {"samples": 0, "frames": {}})
            acc["samples"] += int(data.get("samples", 0))
            for key, self_n, cum_n in data.get("frames", []):
                row = acc["frames"].setdefault(key, [0, 0])
                row[0] += self_n
                row[1] += cum_n
    return spans


def render_profile(envelopes: List[Dict], top: int = 15) -> str:
    """Human-readable flame table for ``repro profile``."""
    spans = merge_profiles(envelopes)
    if not spans:
        return "no profile samples\n"
    intervals = [e.get("interval") for e in envelopes
                 if isinstance(e.get("interval"), (int, float))]
    interval = min(intervals) if intervals else 0.005
    pids = {e.get("pid") for e in envelopes}
    lines = [f"profile: {len(envelopes)} envelope(s) from "
             f"{len(pids)} process(es), interval {interval * 1e3:.1f}ms"]
    for name in sorted(spans, key=lambda n: -spans[n]["samples"]):
        data = spans[name]
        samples = data["samples"]
        lines.append("")
        lines.append(f"span {name}: {samples} samples "
                     f"(~{_fmt_seconds(samples * interval)})")
        lines.append(f"  {'frame':<44} {'self':>6} {'self%':>7} "
                     f"{'cum':>6}")
        rows = sorted(data["frames"].items(),
                      key=lambda kv: (-kv[1][0], -kv[1][1], kv[0]))
        for key, (self_n, cum_n) in rows[:top]:
            share = 100.0 * self_n / samples if samples else 0.0
            lines.append(f"  {key:<44} {self_n:>6} {share:>6.1f}% "
                         f"{cum_n:>6}")
        if len(rows) > top:
            lines.append(f"  … {len(rows) - top} more frames")
    return "\n".join(lines) + "\n"
