"""Trace summarizer: span trees and self/total time tables.

Backs ``repro trace out.jsonl`` — loads a JSONL trace file, groups
events by ``trace_id``, rebuilds the parent/child tree, and renders a
per-trace tree (total time per span) plus an aggregate top-N table
(count, total, self time per span name).

"Self" time is a span's duration minus the duration of its direct
children — the time the span spent doing its own work rather than
waiting on instrumented callees.  Spans recorded by different
processes are stitched by ids, not clocks: ``t0`` is per-process
monotonic, so ordering across processes uses ``wall``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional

__all__ = ["load_events", "build_trees", "aggregate", "render_summary"]


def load_events(path) -> List[Dict]:
    """Parse a JSONL trace file, skipping malformed lines."""
    events: List[Dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict) and event.get("name"):
            events.append(event)
    return events


class SpanNode:
    __slots__ = ("event", "children")

    def __init__(self, event: Dict) -> None:
        self.event = event
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        return str(self.event.get("name", "?"))

    @property
    def dur(self) -> float:
        return float(self.event.get("dur") or 0.0)

    @property
    def self_time(self) -> float:
        return max(0.0, self.dur - sum(c.dur for c in self.children))


def build_trees(events: Iterable[Dict]) -> Dict[str, List[SpanNode]]:
    """Group events by trace id and link children to parents.

    Returns ``{trace_id: [root nodes]}``; events whose parent is not in
    the trace (e.g. the parent process wasn't tracing) become roots.
    """
    by_trace: Dict[str, List[Dict]] = defaultdict(list)
    for event in events:
        by_trace[str(event.get("trace_id") or "?")].append(event)
    trees: Dict[str, List[SpanNode]] = {}
    for trace_id, group in by_trace.items():
        nodes = {e.get("span_id"): SpanNode(e) for e in group
                 if e.get("span_id")}
        roots: List[SpanNode] = []
        for node in nodes.values():
            parent = nodes.get(node.event.get("parent_id"))
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.event.get("wall", 0.0),
                                              n.event.get("t0", 0.0)))
        roots.sort(key=lambda n: (n.event.get("wall", 0.0),
                                  n.event.get("t0", 0.0)))
        trees[trace_id] = roots
    return trees


def aggregate(events: Iterable[Dict]) -> List[Dict]:
    """Per-name totals: count, total time, self time; sorted by self."""
    trees = build_trees(events)
    rows: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"count": 0, "total": 0.0, "self": 0.0})

    def walk(node: SpanNode) -> None:
        row = rows[node.name]
        row["count"] += 1
        row["total"] += node.dur
        row["self"] += node.self_time
        for child in node.children:
            walk(child)

    for roots in trees.values():
        for root in roots:
            walk(root)
    out = [{"name": name, **row} for name, row in rows.items()]
    out.sort(key=lambda r: -r["self"])
    return out


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def _render_node(node: SpanNode, depth: int, lines: List[str],
                 max_depth: int) -> None:
    attrs = node.event.get("attrs") or {}
    detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items())
                      if k in ("engine", "K", "graph", "status", "jobs",
                               "digest", "mode", "kind", "worker"))
    pad = "  " * depth
    suffix = f"  [{detail}]" if detail else ""
    lines.append(f"{pad}{node.name:<24} {_fmt_seconds(node.dur):>10}"
                 f"{suffix}")
    if depth + 1 >= max_depth:
        if node.children:
            lines.append(f"{pad}  … {len(node.children)} children elided")
        return
    for child in node.children:
        _render_node(child, depth + 1, lines, max_depth)


def render_summary(events: List[Dict], top: int = 10,
                   trace_id: Optional[str] = None,
                   max_traces: int = 5, max_depth: int = 6) -> str:
    """Human-readable trace report: per-trace trees + top-N table."""
    if not events:
        return "no trace events\n"
    trees = build_trees(events)
    lines: List[str] = []
    wanted = [trace_id] if trace_id else list(trees)
    shown = 0
    for tid in wanted:
        roots = trees.get(tid)
        if not roots:
            lines.append(f"trace {tid}: not found")
            continue
        if shown >= max_traces:
            break
        shown += 1
        span_count = sum(1 for e in events
                         if str(e.get("trace_id")) == tid)
        total = sum(r.dur for r in roots)
        lines.append(f"trace {tid}  ({span_count} spans, "
                     f"{_fmt_seconds(total)} across {len(roots)} roots)")
        for root in roots:
            _render_node(root, 1, lines, max_depth)
        lines.append("")
    remaining = len(trees) - shown
    if not trace_id and remaining > 0:
        lines.append(f"… {remaining} more traces "
                     f"(use --trace-id to pick one)")
        lines.append("")
    rows = aggregate(events)[:top]
    lines.append(f"top {min(top, len(rows))} spans by self time:")
    lines.append(f"  {'span':<26} {'count':>7} {'total':>10} {'self':>10}")
    for row in rows:
        lines.append(f"  {row['name']:<26} {int(row['count']):>7} "
                     f"{_fmt_seconds(row['total']):>10} "
                     f"{_fmt_seconds(row['self']):>10}")
    return "\n".join(lines) + "\n"
