"""Sampling profiler: low-overhead stack attribution for spans.

A single daemon thread wakes every ``interval`` seconds (5 ms by
default), and for every thread that currently has a profiled span open
(``span(..., profile=True)``) grabs its Python stack via
``sys._current_frames`` and folds it into a per-span table of
``frame → (self samples, cumulative samples)``.  Nothing is paid on
the solve path itself beyond one list append/pop per profiled span, so
the overhead budget (≤5 % wall, λ* bit-identical — see
``tests/test_observatory.py``) holds even on micro-solves.

Profiling is off unless ``REPRO_PROFILE`` is set (``1``/``true`` → a
``profile.jsonl`` in the current directory, anything else → that path)
or :func:`configure_profiling` is called.  Enabling exports the env
var so spawned pool children inherit the setting and append their own
profile envelopes (one JSON line per process, ``O_APPEND``-safe) to
the same file; ``repro profile <file>`` merges and renders them.

Envelope schema (one JSON object per line)::

    {"schema": "repro-profile/1", "pid": 1234, "interval": 0.005,
     "spans": {"job.solve": {"samples": 180,
                             "frames": [["kiter.solve_kiter", 12, 170],
                                        ...]}}}

``frames`` rows are ``[key, self, cum]`` where ``key`` is
``<module-stem>.<function>``, ``self`` counts samples with that frame
on top, and ``cum`` counts samples with it anywhere on the stack.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from .metrics import REGISTRY

__all__ = [
    "PROFILE_SCHEMA",
    "configure_profiling",
    "profiling_enabled",
    "profile_path",
    "take_profile",
    "write_profile",
]

_ENV = "REPRO_PROFILE"
PROFILE_SCHEMA = "repro-profile/1"
_MAX_DEPTH = 64
_DEFAULT_INTERVAL = 0.005


class _Profiler:
    """Singleton owning the sampler thread and the per-span tables."""

    def __init__(self) -> None:
        self.enabled = False
        self.path: Optional[str] = None
        self.interval = _DEFAULT_INTERVAL
        self._lock = threading.Lock()
        #: thread ident → stack of open profiled span names.
        self._active: Dict[int, List[str]] = {}
        #: span name → frame key → [self samples, cumulative samples].
        self._stats: Dict[str, Dict[str, List[int]]] = {}
        #: span name → total samples attributed.
        self._counts: Dict[str, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._atexit_armed = False

    # -- lifecycle ----------------------------------------------------
    def configure(self, path: Optional[str],
                  interval: float = _DEFAULT_INTERVAL) -> None:
        with self._lock:
            self.path = path
            self.interval = max(float(interval), 0.001)
            self.enabled = path is not None
            if path is not None:
                os.environ[_ENV] = path
            else:
                os.environ.pop(_ENV, None)
        if self.enabled:
            self._ensure_thread()
            if not self._atexit_armed:
                atexit.register(self._flush_atexit)
                self._atexit_armed = True

    def _ensure_thread(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread = thread
        thread.start()

    def _flush_atexit(self) -> None:  # pragma: no cover - process exit
        try:
            self.write()
        except OSError:
            pass

    # -- span bookkeeping (called from trace.Span enter/exit) ---------
    def push(self, name: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._active.setdefault(ident, []).append(name)

    def pop(self, name: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            stack = self._active.get(ident)
            if not stack:
                return
            if stack[-1] == name:
                stack.pop()
            elif name in stack:  # pragma: no cover - unwound out of order
                stack.remove(name)
            if not stack:
                self._active.pop(ident, None)

    # -- the sampler thread -------------------------------------------
    def _run(self) -> None:
        my_ident = threading.get_ident()
        samples_total = REGISTRY.counter("repro_profile_samples_total")
        while self.enabled:
            time.sleep(self.interval)
            self._sample(my_ident, samples_total)

    def _sample(self, my_ident: int, samples_total) -> None:
        with self._lock:
            targets = {ident: stack[-1]
                       for ident, stack in self._active.items()
                       if stack and ident != my_ident}
        if not targets:
            return
        frames = sys._current_frames()
        with self._lock:
            for ident, span_name in targets.items():
                frame = frames.get(ident)
                if frame is None:
                    continue
                keys: List[str] = []
                depth = 0
                while frame is not None and depth < _MAX_DEPTH:
                    code = frame.f_code
                    keys.append(
                        f"{Path(code.co_filename).stem}.{code.co_name}")
                    frame = frame.f_back
                    depth += 1
                table = self._stats.setdefault(span_name, {})
                table.setdefault(keys[0], [0, 0])[0] += 1
                for key in set(keys):
                    table.setdefault(key, [0, 0])[1] += 1
                self._counts[span_name] = self._counts.get(span_name, 0) + 1
        for span_name in targets.values():
            samples_total.labels(span=span_name).inc()

    # -- reading back -------------------------------------------------
    def take(self, clear: bool = False) -> Dict[str, object]:
        with self._lock:
            spans: Dict[str, object] = {}
            for name, table in self._stats.items():
                rows = sorted(
                    ([key, cnt[0], cnt[1]] for key, cnt in table.items()),
                    key=lambda row: (-row[1], -row[2], row[0]))
                spans[name] = {
                    "samples": self._counts.get(name, 0),
                    "frames": rows,
                }
            envelope = {
                "schema": PROFILE_SCHEMA,
                "pid": os.getpid(),
                "interval": self.interval,
                "spans": spans,
            }
            if clear:
                self._stats.clear()
                self._counts.clear()
            return envelope

    def write(self, path: Optional[str] = None) -> Optional[str]:
        target = path or self.path
        if target is None:
            return None
        envelope = self.take(clear=True)
        if not envelope["spans"]:
            return None
        line = json.dumps(envelope, separators=(",", ":"))
        fd = os.open(target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (line + "\n").encode("utf-8"))
        finally:
            os.close(fd)
        return target


_PROFILER = _Profiler()


def _bootstrap_from_env() -> None:
    raw = os.environ.get(_ENV, "").strip()
    if not raw or raw == "0" or raw.lower() == "false":
        return
    path = "profile.jsonl" if raw == "1" or raw.lower() == "true" else raw
    _PROFILER.configure(path)


_bootstrap_from_env()


def configure_profiling(path: Optional[str],
                        interval: float = _DEFAULT_INTERVAL) -> None:
    """Enable sampling to ``path`` (or disable with ``None``).

    Also exports ``REPRO_PROFILE`` so spawned pool children inherit the
    setting and append their own envelopes to the same file.
    """
    _PROFILER.configure(path, interval)


def profiling_enabled() -> bool:
    return _PROFILER.enabled


def profile_path() -> Optional[str]:
    return _PROFILER.path


def take_profile(clear: bool = False) -> Dict[str, object]:
    """This process's aggregated profile as a ``repro-profile/1`` dict."""
    return _PROFILER.take(clear)


def write_profile(path: Optional[str] = None) -> Optional[str]:
    """Append this process's envelope to the profile file, then reset.

    Returns the path written, or ``None`` when there is nothing to
    write (no samples, or profiling never configured).
    """
    return _PROFILER.write(path)
