"""Span tracer: JSONL flight-recorder events with parent/trace ids.

Tracing is off unless ``REPRO_TRACE`` is set (``1``/``true`` → a
``trace.jsonl`` in the current directory, anything else → that path) or
:func:`configure_tracing` is called.  When off, :func:`span` returns a
shared no-op context manager — the cost is one module-global attribute
load, cheap enough to leave span sites in the hottest driver loops.

Event schema (one JSON object per line)::

    {"trace_id": "…", "span_id": "…", "parent_id": "…" | null,
     "name": "kiter.round", "t0": <perf_counter>, "wall": <time.time>,
     "dur": <seconds>, "pid": 1234, "attrs": {...}}

``t0`` is a monotonic timestamp (comparable only within one process);
``wall`` anchors the trace across processes.  Parenthood is tracked
with a :mod:`contextvars` stack, so nested spans and thread/worker
boundaries behave.  Trace ids propagate across process and host
boundaries inside job payloads as ``{"trace_id": ..., "parent_id":
...}`` dicts (see :meth:`Span.ctx`); the file is opened with
``O_APPEND`` so pool children can share one trace file safely.
"""

from __future__ import annotations

import contextvars
import io
import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Dict, List, Optional

from .metrics import REGISTRY
from .profiler import _PROFILER

__all__ = [
    "span",
    "emit_event",
    "configure_tracing",
    "tracing_enabled",
    "trace_path",
    "new_trace_id",
    "current_trace",
    "collect_events",
    "trace_dropped_total",
]

_ENV = "REPRO_TRACE"

#: (trace_id, span_id) of the innermost open span, or None.
_current: contextvars.ContextVar[Optional[tuple]] = contextvars.ContextVar(
    "repro_trace_current", default=None)


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class _Tracer:
    """Singleton owning the output file and the in-memory ring buffer."""

    def __init__(self, buffer_size: int = 65536) -> None:
        self.enabled = False
        self.path: Optional[str] = None
        self._fh: Optional[io.TextIOBase] = None
        self._lock = threading.Lock()
        # ring buffer so workers can ship events to the coordinator
        self.buffer: deque = deque(maxlen=buffer_size)
        #: events evicted by the full ring buffer (file output, when
        #: configured, still receives every event).
        self.dropped = 0
        self._dropped_cell = REGISTRY.counter("repro_trace_dropped_total")

    def configure(self, path: Optional[str]) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                self._fh = None
            self.path = path
            self.enabled = path is not None
            if path is not None:
                os.environ[_ENV] = path
            else:
                os.environ.pop(_ENV, None)

    def _handle(self) -> Optional[io.TextIOBase]:
        if self._fh is None and self.path is not None:
            try:
                fd = os.open(self.path,
                             os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
                self._fh = os.fdopen(fd, "w", encoding="utf-8")
            except OSError:  # pragma: no cover - unwritable path
                self.enabled = False
                return None
        return self._fh

    def emit(self, event: Dict[str, object]) -> None:
        if not self.enabled:
            return
        if len(self.buffer) == self.buffer.maxlen:
            self.dropped += 1
            self._dropped_cell.inc()
        self.buffer.append(event)
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            fh = self._handle()
            if fh is not None:
                fh.write(line + "\n")
                fh.flush()

    def collect(self, trace_ids=None, clear: bool = False) -> List[Dict]:
        """Drain (or copy) buffered events, optionally filtered."""
        with self._lock:
            if trace_ids is None:
                events = list(self.buffer)
                if clear:
                    self.buffer.clear()
                return events
            wanted = set(trace_ids)
            events = [e for e in self.buffer if e.get("trace_id") in wanted]
            if clear and events:
                keep = [e for e in self.buffer
                        if e.get("trace_id") not in wanted]
                self.buffer.clear()
                self.buffer.extend(keep)
            return events


_TRACER = _Tracer()


def _bootstrap_from_env() -> None:
    raw = os.environ.get(_ENV, "").strip()
    if not raw or raw == "0" or raw.lower() == "false":
        return
    path = "trace.jsonl" if raw == "1" or raw.lower() == "true" else raw
    _TRACER.path = path
    _TRACER.enabled = True


_bootstrap_from_env()


def configure_tracing(path: Optional[str]) -> None:
    """Enable tracing to ``path`` (or disable with ``None``).

    Also exports ``REPRO_TRACE`` so spawned pool children inherit the
    setting and append to the same file.
    """
    _TRACER.configure(path)


def tracing_enabled() -> bool:
    return _TRACER.enabled


def trace_path() -> Optional[str]:
    return _TRACER.path


def current_trace() -> Optional[Dict[str, str]]:
    """Propagation context of the innermost open span, or None.

    The returned ``{"trace_id", "parent_id"}`` dict is what job
    payloads carry across process/host boundaries.
    """
    state = _current.get()
    if state is None:
        return None
    return {"trace_id": state[0], "parent_id": state[1]}


def collect_events(trace_ids=None, clear: bool = False) -> List[Dict]:
    """Buffered events (workers ship these to the coordinator)."""
    return _TRACER.collect(trace_ids, clear)


def trace_dropped_total() -> int:
    """Events evicted from the ring buffer since process start."""
    return _TRACER.dropped


def emit_event(name: str, *, trace_id: str, dur: float = 0.0,
               parent_id: Optional[str] = None,
               span_id: Optional[str] = None,
               t0: Optional[float] = None,
               **attrs: object) -> None:
    """Record a point/span event without the context-manager protocol.

    The fleet driver uses this for per-job spans whose lifetimes
    interleave inside one lockstep loop (a context manager can't nest
    them), and the coordinator uses it for enqueue/result milestones.
    """
    if not _TRACER.enabled:
        return
    _TRACER.emit({
        "trace_id": trace_id,
        "span_id": span_id or _new_span_id(),
        "parent_id": parent_id,
        "name": name,
        "t0": time.perf_counter() if t0 is None else t0,
        "wall": time.time(),
        "dur": dur,
        "pid": os.getpid(),
        "attrs": attrs,
    })


class Span:
    """An open span; emitted as one JSONL event on exit."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "_t0", "_wall", "_token", "_profiled")

    def __init__(self, name: str, trace: Optional[Dict[str, str]],
                 attrs: Dict[str, object], profiled: bool = False) -> None:
        self.name = name
        self.attrs = attrs
        self._profiled = profiled
        state = _current.get()
        if trace is not None and trace.get("trace_id"):
            self.trace_id = str(trace["trace_id"])
            self.parent_id = trace.get("parent_id") or None
        elif state is not None:
            self.trace_id = state[0]
            self.parent_id = state[1]
        else:
            self.trace_id = new_trace_id()
            self.parent_id = None
        self.span_id = _new_span_id()
        self._t0 = 0.0
        self._wall = 0.0
        self._token = None

    def ctx(self) -> Dict[str, str]:
        """Propagation dict: children opened elsewhere parent to us."""
        return {"trace_id": self.trace_id, "parent_id": self.span_id}

    def __enter__(self) -> "Span":
        self._token = _current.set((self.trace_id, self.span_id))
        if self._profiled:
            _PROFILER.push(self.name)
        self._t0 = time.perf_counter()
        self._wall = time.time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.perf_counter() - self._t0
        if self._profiled:
            _PROFILER.pop(self.name)
        if self._token is not None:
            _current.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _TRACER.emit({
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0": self._t0,
            "wall": self._wall,
            "dur": dur,
            "pid": os.getpid(),
            "attrs": self.attrs,
        })


class _NoopSpan:
    """Shared disabled span: every field empty, every method a no-op."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None

    @property
    def attrs(self) -> Dict[str, object]:
        # fresh throwaway dict so call sites can annotate unconditionally
        return {}

    def ctx(self) -> Dict[str, str]:
        return {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


class _ProfileOnlySpan:
    """Profiler bookkeeping for a span site when tracing is off.

    Emits nothing; its only job is to make ``span(..., profile=True)``
    attribute stack samples even without a trace file configured.
    """

    __slots__ = ("name", "attrs")
    trace_id = ""
    span_id = ""
    parent_id = None

    def __init__(self, name: str) -> None:
        self.name = name
        self.attrs: Dict[str, object] = {}

    def ctx(self) -> Dict[str, str]:
        return {}

    def __enter__(self) -> "_ProfileOnlySpan":
        _PROFILER.push(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _PROFILER.pop(self.name)


def span(name: str, trace: Optional[Dict[str, str]] = None,
         profile: bool = False, **attrs: object):
    """Open a span.  ``with span("kiter.round", K=4, engine="hybrid"):``

    ``trace`` adopts a propagated ``{"trace_id", "parent_id"}`` context
    (e.g. from a job payload); otherwise the span parents to the
    innermost open span in this execution context, or starts a fresh
    trace.  ``profile=True`` additionally marks the span as a sampling
    target while the profiler is enabled (see
    :mod:`repro.obs.profiler`).  Returns a shared no-op object when
    both tracing and profiling are disabled.
    """
    profiled = profile and _PROFILER.enabled
    if not _TRACER.enabled:
        if profiled:
            return _ProfileOnlySpan(name)
        return _NOOP
    return Span(name, trace, attrs, profiled=profiled)
