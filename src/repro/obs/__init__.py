"""repro.obs — the flight recorder: metrics registry + span tracer.

Stdlib-only observability for the whole stack: a process-local
:class:`~repro.obs.metrics.MetricsRegistry` (counters / gauges /
histograms, parent-chained so per-object stats and the global
``/metrics`` surface share cells), a JSONL span tracer gated on
``REPRO_TRACE``, the trace summarizer behind ``repro trace``, and the
shared ``BENCH_*.json`` emission schema.

See ``docs/observability.md`` for the span taxonomy and metric-name
table (pinned to :data:`METRICS` by ``tests/test_docs.py``).
"""

from .metrics import (METRICS, MetricSpec, MetricsRegistry, REGISTRY,
                      merge_snapshots, render_prometheus)
from .trace import (collect_events, configure_tracing, current_trace,
                    emit_event, new_trace_id, span, trace_path,
                    tracing_enabled)

__all__ = [
    "METRICS",
    "MetricSpec",
    "MetricsRegistry",
    "REGISTRY",
    "merge_snapshots",
    "render_prometheus",
    "span",
    "emit_event",
    "configure_tracing",
    "tracing_enabled",
    "trace_path",
    "new_trace_id",
    "current_trace",
    "collect_events",
]
