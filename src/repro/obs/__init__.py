"""repro.obs — the performance observatory.

Stdlib-only observability for the whole stack: a process-local
:class:`~repro.obs.metrics.MetricsRegistry` (counters / gauges /
histograms, parent-chained so per-object stats and the global
``/metrics`` surface share cells), a JSONL span tracer gated on
``REPRO_TRACE``, a sampling profiler gated on ``REPRO_PROFILE``, a
slow-solve capture/replay log gated on ``REPRO_SLOWLOG``, the
commit-stamped bench history behind ``repro bench-report``, the trace
summarizer behind ``repro trace``, the shared ``BENCH_*.json``
emission schema, and the static HTML ops report behind ``repro
report`` / ``GET /report``.

See ``docs/observability.md`` for the span taxonomy and metric-name
table (pinned to :data:`METRICS` by ``tests/test_docs.py``).
"""

from .history import (append_history, bench_report, history_path,
                      load_history, render_bench_report)
from .metrics import (METRICS, MetricSpec, MetricsRegistry, REGISTRY,
                      SNAPSHOT_IDENTITY_KEY, merge_snapshots,
                      render_prometheus)
from .profiler import (configure_profiling, profile_path,
                       profiling_enabled, take_profile, write_profile)
from .report import build_report, write_report
from .slowlog import (RollingQuantile, configure_slowlog, observe_solve,
                      replay_entry, render_replay, slowlog_enabled,
                      slowlog_entries, slowlog_root)
from .trace import (collect_events, configure_tracing, current_trace,
                    emit_event, new_trace_id, span, trace_dropped_total,
                    trace_path, tracing_enabled)

__all__ = [
    "METRICS",
    "MetricSpec",
    "MetricsRegistry",
    "REGISTRY",
    "SNAPSHOT_IDENTITY_KEY",
    "merge_snapshots",
    "render_prometheus",
    "span",
    "emit_event",
    "configure_tracing",
    "tracing_enabled",
    "trace_path",
    "new_trace_id",
    "current_trace",
    "collect_events",
    "trace_dropped_total",
    "configure_profiling",
    "profiling_enabled",
    "profile_path",
    "take_profile",
    "write_profile",
    "RollingQuantile",
    "configure_slowlog",
    "slowlog_enabled",
    "slowlog_root",
    "slowlog_entries",
    "observe_solve",
    "replay_entry",
    "render_replay",
    "history_path",
    "append_history",
    "load_history",
    "bench_report",
    "render_bench_report",
    "build_report",
    "write_report",
]
