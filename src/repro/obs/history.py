"""Bench history: commit-stamped trajectories and regression reports.

Every :func:`repro.obs.bench.emit_bench` call appends its metric rows
to ``results/bench_history.jsonl`` (one JSON object per row), so the
``BENCH_*.json`` gate numbers grow a trend dimension for free::

    {"bench": "expansion", "name": "cold_wall_s", "value": 0.41,
     "unit": "s", "commit": "<sha|''>", "ts": 1754650000.0}

``repro bench-report`` then compares the *current* ``BENCH_*.json``
files against the best value the history has ever recorded for each
``(bench, name)`` pair and exits nonzero when any metric regressed by
more than the threshold (default 30 %).  "Best" respects direction:
time-like metrics (``unit`` in seconds/ms, or a name ending in
``_seconds``/``_s``) regress upward, throughput-like metrics regress
downward; a row may carry an explicit ``direction`` of ``"lower"`` or
``"higher"`` to override the inference.

The history file location honors ``REPRO_BENCH_HISTORY``: unset →
``<out_dir>/results/bench_history.jsonl``, a path → that file,
``0``/``false`` → appending disabled.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

__all__ = [
    "history_path",
    "append_history",
    "load_history",
    "metric_direction",
    "bench_report",
    "render_bench_report",
]

_ENV = "REPRO_BENCH_HISTORY"
_DEFAULT_RELPATH = Path("results") / "bench_history.jsonl"

#: Units whose metrics regress by going *up* (latency-like).
_LOWER_BETTER_UNITS = {"s", "sec", "secs", "second", "seconds", "ms",
                       "millisecond", "milliseconds", "us", "rounds"}


def history_path(out_dir: str = ".") -> Optional[Path]:
    """Where history rows go, or ``None`` when appending is disabled."""
    raw = os.environ.get(_ENV, "").strip()
    if raw == "0" or raw.lower() == "false":
        return None
    if raw:
        return Path(raw)
    return Path(out_dir) / _DEFAULT_RELPATH


def append_history(envelope: Dict[str, object],
                   path: Optional[Path] = None) -> Optional[Path]:
    """Append one ``repro-bench/1`` envelope's rows to the history.

    Returns the path written, or ``None`` when disabled.  Never raises
    on I/O problems — history is best-effort, the gate JSON is the
    artifact of record.
    """
    if path is None:
        path = history_path()
    if path is None:
        return None
    rows = []
    for metric in envelope.get("metrics", []):  # type: ignore[union-attr]
        value = metric.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue  # only numeric rows can trend
        row = {
            "bench": envelope.get("bench", ""),
            "name": metric.get("name", ""),
            "value": value,
            "unit": metric.get("unit", ""),
            "commit": metric.get("commit", envelope.get("commit", "")),
            "ts": time.time(),
        }
        if "direction" in metric:
            row["direction"] = metric["direction"]
        rows.append(json.dumps(row, separators=(",", ":")))
    if not rows:
        return None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(path),
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, ("\n".join(rows) + "\n").encode("utf-8"))
        finally:
            os.close(fd)
    except OSError:
        return None
    return path


def load_history(path) -> List[Dict[str, object]]:
    """Parse a history JSONL file, skipping malformed lines."""
    path = Path(path)
    if not path.is_file():
        return []
    rows: List[Dict[str, object]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict) and isinstance(
                row.get("value"), (int, float)):
            rows.append(row)
    return rows


def metric_direction(row: Dict[str, object]) -> str:
    """``"lower"`` or ``"higher"`` — which way is better for this row."""
    explicit = row.get("direction")
    if explicit in ("lower", "higher"):
        return explicit  # type: ignore[return-value]
    unit = str(row.get("unit", "")).lower()
    name = str(row.get("name", ""))
    if unit in _LOWER_BETTER_UNITS or name.endswith(("_seconds", "_s",
                                                     "_ms", "_wall")):
        return "lower"
    return "higher"


def _load_bench_file(path) -> Optional[Dict[str, object]]:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or data.get("schema") != "repro-bench/1":
        return None  # e.g. pytest-benchmark JSONs share the BENCH_ prefix
    return data


def bench_report(bench_paths: Iterable, history_rows: List[Dict[str, object]],
                 threshold: float = 0.30) -> List[Dict[str, object]]:
    """Compare current ``BENCH_*.json`` files against best-of-history.

    Returns one row per current metric: ``bench``, ``name``, ``value``,
    ``unit``, ``direction``, ``baseline`` (best historic value, or
    ``None`` with no history), ``change`` (signed fraction, positive =
    worse) and ``regressed`` (change > threshold).
    """
    best: Dict[tuple, float] = {}
    for row in history_rows:
        key = (row.get("bench"), row.get("name"))
        value = float(row["value"])  # type: ignore[arg-type]
        current = best.get(key)
        if current is None:
            best[key] = value
        elif metric_direction(row) == "lower":
            best[key] = min(current, value)
        else:
            best[key] = max(current, value)
    report: List[Dict[str, object]] = []
    for path in bench_paths:
        envelope = _load_bench_file(path)
        if envelope is None:
            continue
        bench = envelope.get("bench", "")
        for metric in envelope.get("metrics", []):
            value = metric.get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            direction = metric_direction(metric)
            baseline = best.get((bench, metric.get("name")))
            change: Optional[float] = None
            if baseline is not None and baseline != 0:
                if direction == "lower":
                    change = (value - baseline) / baseline
                else:
                    change = (baseline - value) / baseline
            report.append({
                "bench": bench,
                "name": metric.get("name", ""),
                "value": value,
                "unit": metric.get("unit", ""),
                "direction": direction,
                "baseline": baseline,
                "change": change,
                "regressed": change is not None and change > threshold,
            })
    return report


def render_bench_report(report: List[Dict[str, object]],
                        threshold: float = 0.30) -> str:
    """Human-readable regression table for ``repro bench-report``."""
    if not report:
        return "no repro-bench/1 files found\n"
    lines = [f"bench report (regression threshold "
             f"{threshold * 100:.0f}% vs best-of-history)",
             f"  {'bench':<14} {'metric':<26} {'value':>12} "
             f"{'baseline':>12} {'change':>8}  verdict"]
    for row in report:
        baseline = row["baseline"]
        baseline_text = (f"{baseline:.4g}" if baseline is not None else "—")
        change = row["change"]
        change_text = f"{change * 100:+.1f}%" if change is not None else "—"
        verdict = "REGRESSED" if row["regressed"] else "ok"
        if baseline is None:
            verdict = "no-history"
        lines.append(f"  {str(row['bench']):<14} {str(row['name']):<26} "
                     f"{row['value']:>12.4g} {baseline_text:>12} "
                     f"{change_text:>8}  {verdict}")
    worst = [row for row in report if row["regressed"]]
    lines.append(f"{len(report)} metrics checked, {len(worst)} regressed")
    return "\n".join(lines) + "\n"
