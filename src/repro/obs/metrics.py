"""Process-local metrics registry: counters, gauges, histograms.

The registry is stdlib-only and cheap enough to be always-on: every
instrumented site pre-binds its cell once (module import or object
construction), so the steady-state cost of a count is one attribute
load plus an integer add — no locks, no string formatting, no dict
lookup on the hot path.

Two pieces matter to the rest of the repo:

``METRICS``
    The central declaration table.  Every metric family the codebase
    emits is declared here (name → type/help/labels), and
    ``docs/observability.md`` plus ``tests/test_docs.py`` pin their
    tables to it — an undeclared metric cannot be emitted, a renamed
    one must update the doc.

``MetricsRegistry``
    Families of labelled cells.  Registries chain: a child registry
    (one per ``ThroughputService`` / ``ResultCache`` / ``Worker``)
    forwards every increment to its parent, so per-object ``stats()``
    views and the process-global :data:`REGISTRY` (the ``/metrics``
    source) are the *same counters* and can never drift apart.

Snapshots are plain JSON-able dicts so worker daemons can ship them
inside heartbeats; :func:`merge_snapshots` sums them and
:func:`render_prometheus` emits the text exposition format
(``text/plain; version=0.0.4``).
"""

from __future__ import annotations

import os
import threading
import uuid
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "METRICS",
    "MetricSpec",
    "MetricsRegistry",
    "REGISTRY",
    "SNAPSHOT_IDENTITY_KEY",
    "merge_snapshots",
    "render_prometheus",
]

#: Reserved snapshot key carrying the producing registry's process
#: identity (``"<pid>-<seed>"``).  Keys starting with ``__`` are
#: metadata, never metric families — :func:`merge_snapshots` and
#: :func:`render_prometheus` skip them.
SNAPSHOT_IDENTITY_KEY = "__process__"


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    type: str  # "counter" | "gauge" | "histogram"
    help: str
    labels: Tuple[str, ...] = ()


# Log-scale second buckets: 2**-13 s (~122 µs) .. 2**6 s (64 s).
SECONDS_BUCKETS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-13, 7))


METRICS: Dict[str, MetricSpec] = {
    # --- solver core -------------------------------------------------
    "repro_kiter_rounds_total": MetricSpec(
        "counter", "K-Iter rounds executed (one MCRP solve per round)"),
    "repro_kiter_escalations_total": MetricSpec(
        "counter", "K-vector escalations by trigger", ("kind",)),
    "repro_solver_jobs_total": MetricSpec(
        "counter", "Solver jobs finished, by terminal status", ("status",)),
    "repro_solver_seconds": MetricSpec(
        "histogram", "Per-job solve wall time in seconds"),
    "repro_engine_iterations_total": MetricSpec(
        "counter", "MCRP engine inner iterations", ("engine",)),
    # --- batched fleet kernel ---------------------------------------
    "repro_batched_kernel_rounds_total": MetricSpec(
        "counter", "Batched super-CSR kernel passes", ("engine",)),
    "repro_batched_delegations_total": MetricSpec(
        "counter", "Graphs delegated out of the batched kernel",
        ("engine",)),
    "repro_fleet_jobs_total": MetricSpec(
        "counter", "Fleet jobs by route taken", ("mode",)),
    # --- expansion block cache --------------------------------------
    "repro_expansion_block_cache_total": MetricSpec(
        "counter", "Expansion block cache events", ("event",)),
    "repro_expansion_compiled_total": MetricSpec(
        "counter", "Compiled K-graph memo events", ("event",)),
    # --- result cache ------------------------------------------------
    "repro_result_cache_hits_total": MetricSpec(
        "counter", "Result cache hits by tier", ("tier",)),
    "repro_result_cache_misses_total": MetricSpec(
        "counter", "Result cache misses"),
    "repro_result_cache_puts_total": MetricSpec(
        "counter", "Result cache stores"),
    # --- service facade ----------------------------------------------
    "repro_service_jobs_total": MetricSpec(
        "counter", "Service jobs recorded, by status", ("status",)),
    "repro_service_solves_total": MetricSpec(
        "counter", "Jobs that required a fresh solve"),
    "repro_service_batch_dedup_total": MetricSpec(
        "counter", "Jobs answered by in-batch deduplication"),
    "repro_service_batched_total": MetricSpec(
        "counter", "Jobs answered by the batched fleet kernel"),
    "repro_service_fallback_total": MetricSpec(
        "counter", "Jobs that fell back past the requested engine"),
    "repro_service_wall_seconds_total": MetricSpec(
        "counter", "Cumulative solve wall time in seconds"),
    "repro_service_batch_seconds": MetricSpec(
        "histogram", "submit_many batch wall time in seconds"),
    # --- solver pool -------------------------------------------------
    "repro_pool_chunks_total": MetricSpec(
        "counter", "Chunks submitted to the process pool"),
    "repro_pool_jobs_total": MetricSpec(
        "counter", "Jobs submitted to the process pool"),
    "repro_pool_failures_total": MetricSpec(
        "counter", "Pool chunk failures by kind", ("kind",)),
    "repro_pool_recycles_total": MetricSpec(
        "counter", "Process pool recycles after a crash"),
    # --- distributed worker daemon ----------------------------------
    "repro_worker_chunks_total": MetricSpec(
        "counter", "Chunks leased and solved by the worker"),
    "repro_worker_jobs_total": MetricSpec(
        "counter", "Jobs solved by the worker"),
    "repro_worker_acks_total": MetricSpec(
        "counter", "Results acknowledged by the queue"),
    "repro_worker_stale_total": MetricSpec(
        "counter", "Results rejected as stale (lease expired)"),
    "repro_worker_nacks_total": MetricSpec(
        "counter", "Jobs nacked back to the queue"),
    "repro_worker_batched_total": MetricSpec(
        "counter", "Worker jobs answered by the batched kernel"),
    "repro_worker_heartbeats_total": MetricSpec(
        "counter", "Heartbeats sent while holding leases"),
    "repro_worker_idle_polls_total": MetricSpec(
        "counter", "Lease polls that returned no work"),
    "repro_worker_queue_errors_total": MetricSpec(
        "counter", "Queue/transport errors survived by the worker"),
    # --- coordinator -------------------------------------------------
    "repro_coordinator_jobs_submitted_total": MetricSpec(
        "counter", "Jobs accepted by the coordinator"),
    "repro_coordinator_cache_short_circuits_total": MetricSpec(
        "counter", "Submissions answered straight from the shared cache"),
    "repro_queue_depth": MetricSpec(
        "gauge", "Queue rows by state, sampled at scrape time", ("state",)),
    "repro_cache_entries": MetricSpec(
        "gauge", "Shared result-cache entries, sampled at scrape time"),
    "repro_workers_known": MetricSpec(
        "gauge", "Workers that ever leased or heartbeat against this "
                 "coordinator"),
    # --- DSE sessions ------------------------------------------------
    "repro_session_edits_total": MetricSpec(
        "counter", "DseSession edits applied, by edit kind", ("kind",)),
    "repro_session_block_invalidations_total": MetricSpec(
        "counter", "Expansion blocks dropped by session edits"),
    "repro_session_solves_total": MetricSpec(
        "counter", "DseSession solves, by terminal status", ("status",)),
    "repro_session_warm_starts_total": MetricSpec(
        "counter", "Session re-solve warm starts, by outcome", ("outcome",)),
    "repro_session_rounds_saved_total": MetricSpec(
        "counter", "K-Iter rounds skipped by reusing the certified K"),
    # --- benches -----------------------------------------------------
    "repro_bench_value": MetricSpec(
        "gauge", "Latest benchmark gate numbers", ("bench", "name")),
    # --- observatory -------------------------------------------------
    "repro_trace_dropped_total": MetricSpec(
        "counter", "Trace events dropped by the full ring buffer"),
    "repro_profile_samples_total": MetricSpec(
        "counter", "Sampling-profiler stack samples attributed to a span",
        ("span",)),
    "repro_slowlog_entries_total": MetricSpec(
        "counter", "Slow-solve captures persisted to the slowlog"),
    "repro_slowlog_replays_total": MetricSpec(
        "counter", "Slowlog replays, by comparison outcome", ("outcome",)),
}


_HISTOGRAM_BUCKETS: Dict[str, Tuple[float, ...]] = {
    name: SECONDS_BUCKETS
    for name, spec in METRICS.items() if spec.type == "histogram"
}


class _CounterCell:
    __slots__ = ("value", "_parent")

    def __init__(self, parent: Optional["_CounterCell"] = None) -> None:
        self.value = 0
        self._parent = parent

    def inc(self, amount: float = 1) -> None:
        self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)


class _GaugeCell:
    __slots__ = ("value", "_parent")

    def __init__(self, parent: Optional["_GaugeCell"] = None) -> None:
        self.value = 0
        self._parent = parent

    def set(self, value: float) -> None:
        self.value = value
        if self._parent is not None:
            self._parent.set(value)

    def inc(self, amount: float = 1) -> None:
        self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)


class _HistogramCell:
    __slots__ = ("buckets", "sum", "count", "_bounds", "_parent")

    def __init__(self, bounds: Sequence[float],
                 parent: Optional["_HistogramCell"] = None) -> None:
        self._bounds = tuple(bounds)
        self.buckets = [0] * (len(self._bounds) + 1)  # +1 → +Inf
        self.sum = 0.0
        self.count = 0
        self._parent = parent

    def observe(self, value: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                index = i
                break
        self.buckets[index] += 1
        self.sum += value
        self.count += 1
        if self._parent is not None:
            self._parent.observe(value)


_CELL_TYPES = {
    "counter": _CounterCell,
    "gauge": _GaugeCell,
}


class _Metric:
    """One family: a spec plus its labelled cells."""

    __slots__ = ("name", "spec", "_cells", "_registry")

    def __init__(self, name: str, spec: MetricSpec,
                 registry: "MetricsRegistry") -> None:
        self.name = name
        self.spec = spec
        self._cells: Dict[Tuple[str, ...], object] = {}
        self._registry = registry

    def labels(self, **labelvalues: str) -> object:
        key = tuple(str(labelvalues[label]) for label in self.spec.labels)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._registry._make_cell(self, key)
        return cell

    # label-less convenience -----------------------------------------
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self.labels().set(value)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        self.labels().observe(value)  # type: ignore[attr-defined]


class MetricsRegistry:
    """A set of metric families, optionally chained to a parent.

    Child registries forward every increment to the parent, so an
    object-scoped registry doubles as the object's ``stats()`` source
    while the process-global :data:`REGISTRY` stays authoritative for
    ``/metrics``.
    """

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self._parent = parent
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()
        # Per-instance identity seed.  Snapshots stamp this together
        # with the pid (read at snapshot time, so forked children
        # diverge) — merge_snapshots dedupes repeated ships of the
        # *same* registry while still summing distinct registries.
        self._seed = uuid.uuid4().hex[:12]

    # -- family accessors --------------------------------------------
    def counter(self, name: str) -> _Metric:
        return self._family(name, "counter")

    def gauge(self, name: str) -> _Metric:
        return self._family(name, "gauge")

    def histogram(self, name: str) -> _Metric:
        return self._family(name, "histogram")

    def _family(self, name: str, expected: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            return metric
        spec = METRICS.get(name)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not declared in repro.obs.METRICS")
        if spec.type != expected:
            raise TypeError(
                f"metric {name!r} is a {spec.type}, not a {expected}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = _Metric(name, spec, self)
                self._metrics[name] = metric
        return metric

    def _make_cell(self, metric: _Metric, key: Tuple[str, ...]) -> object:
        with self._lock:
            cell = metric._cells.get(key)
            if cell is not None:
                return cell
            parent_cell = None
            if self._parent is not None:
                parent_metric = self._parent._family(
                    metric.name, metric.spec.type)
                labelvalues = dict(zip(metric.spec.labels, key))
                parent_cell = parent_metric.labels(**labelvalues)
            if metric.spec.type == "histogram":
                bounds = _HISTOGRAM_BUCKETS.get(metric.name, SECONDS_BUCKETS)
                cell = _HistogramCell(bounds, parent_cell)
            else:
                cell = _CELL_TYPES[metric.spec.type](parent_cell)
            metric._cells[key] = cell
        return cell

    # -- reading back -------------------------------------------------
    def value(self, name: str, /, **labelvalues: str) -> float:
        """Current value of one cell (0 if never touched).

        ``name`` is positional-only so families with a ``name`` label
        (``repro_bench_value``) stay addressable.
        """
        spec = METRICS[name]
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        key = tuple(str(labelvalues.get(label, ""))
                    for label in spec.labels)
        cell = metric._cells.get(key)
        if cell is None:
            return 0
        if spec.type == "histogram":
            return cell.count  # type: ignore[union-attr]
        return cell.value  # type: ignore[union-attr]

    def samples(self, name: str) -> Dict[Tuple[str, ...], float]:
        """All cells of one family as ``{label-values: value}``."""
        metric = self._metrics.get(name)
        if metric is None:
            return {}
        spec = METRICS[name]
        out: Dict[Tuple[str, ...], float] = {}
        for key, cell in metric._cells.items():
            if spec.type == "histogram":
                out[key] = cell.count  # type: ignore[union-attr]
            else:
                out[key] = cell.value  # type: ignore[union-attr]
        return out

    def snapshot(self) -> Dict[str, object]:
        """JSON-able dump of every touched cell.

        Shape: ``{name: {"type": t, "samples": [[labels, value], ...]}}``
        where a histogram value is ``{"buckets": [...], "sum": s,
        "count": n}`` (bucket counts are per-bucket, not cumulative).
        The reserved :data:`SNAPSHOT_IDENTITY_KEY` entry identifies the
        producing registry instance so repeated ships of the same
        snapshot dedupe instead of double-counting on merge.
        """
        out: Dict[str, object] = {
            SNAPSHOT_IDENTITY_KEY: f"{os.getpid()}-{self._seed}",
        }
        for name, metric in list(self._metrics.items()):
            spec = metric.spec
            samples: List[List[object]] = []
            for key, cell in list(metric._cells.items()):
                labels = dict(zip(spec.labels, key))
                if spec.type == "histogram":
                    value: object = {
                        "buckets": list(cell.buckets),  # type: ignore
                        "sum": cell.sum,  # type: ignore[union-attr]
                        "count": cell.count,  # type: ignore[union-attr]
                    }
                else:
                    value = cell.value  # type: ignore[union-attr]
                samples.append([labels, value])
            if samples:
                out[name] = {"type": spec.type, "samples": samples}
        return out


#: Process-global registry — the source for ``/metrics`` and the parent
#: of every object-scoped child registry.
REGISTRY = MetricsRegistry()


def merge_snapshots(snapshots: Iterable[Dict[str, object]]
                    ) -> Dict[str, object]:
    """Sum counters/histograms across snapshots; gauges last-write-wins.

    Used by the coordinator to fold worker heartbeat snapshots into its
    own process snapshot before rendering ``/metrics``.

    Snapshots carrying the same :data:`SNAPSHOT_IDENTITY_KEY` identity
    come from the *same registry instance* (e.g. a worker's in-process
    ship of the coordinator's own global registry): only the last one
    is merged, so one registry can never be counted twice.  Snapshots
    without an identity (older producers) always merge.
    """
    distinct: List[Dict[str, object]] = []
    by_identity: Dict[str, int] = {}
    for snap in snapshots:
        identity = snap.get(SNAPSHOT_IDENTITY_KEY)
        if isinstance(identity, str):
            seen = by_identity.get(identity)
            if seen is not None:
                distinct[seen] = snap  # later ship supersedes
                continue
            by_identity[identity] = len(distinct)
        distinct.append(snap)
    merged: Dict[str, Dict[Tuple[Tuple[str, str], ...], object]] = {}
    types: Dict[str, str] = {}
    for snap in distinct:
        for name, family in snap.items():
            if name.startswith("__"):  # reserved metadata keys
                continue
            ftype = family.get("type", "counter")  # type: ignore[union-attr]
            types[name] = ftype
            cells = merged.setdefault(name, {})
            for labels, value in family.get("samples", []):  # type: ignore
                key = tuple(sorted(labels.items()))
                if key not in cells:
                    if isinstance(value, dict):
                        cells[key] = {
                            "buckets": list(value["buckets"]),
                            "sum": value["sum"],
                            "count": value["count"],
                        }
                    else:
                        cells[key] = value
                elif ftype == "gauge":
                    cells[key] = value
                elif isinstance(value, dict):
                    acc = cells[key]
                    buckets = acc["buckets"]  # type: ignore[index]
                    for i, n in enumerate(value["buckets"]):
                        if i < len(buckets):
                            buckets[i] += n
                        else:  # pragma: no cover - mismatched shapes
                            buckets.append(n)
                    acc["sum"] += value["sum"]  # type: ignore[index]
                    acc["count"] += value["count"]  # type: ignore[index]
                else:
                    cells[key] = cells[key] + value  # type: ignore
    out: Dict[str, object] = {}
    for name, cells in merged.items():
        out[name] = {
            "type": types[name],
            "samples": [[dict(key), value] for key, value in cells.items()],
        }
    return out


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a (merged) snapshot in the Prometheus text format."""
    lines: List[str] = []
    # declaration order keeps scrapes stable and diffable
    ordered = [n for n in METRICS if n in snapshot]
    ordered += [n for n in snapshot
                if n not in METRICS and not n.startswith("__")]
    for name in ordered:
        family = snapshot[name]
        ftype = family.get("type", "counter")  # type: ignore[union-attr]
        spec = METRICS.get(name)
        help_text = spec.help if spec else name
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {ftype}")
        for labels, value in family.get("samples", []):  # type: ignore
            if isinstance(value, dict):  # histogram
                bounds = _HISTOGRAM_BUCKETS.get(name, SECONDS_BUCKETS)
                cumulative = 0
                for bound, count in zip(bounds, value["buckets"]):
                    cumulative += count
                    le = _format_labels(labels, f'le="{repr(bound)}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += value["buckets"][len(bounds)] if \
                    len(value["buckets"]) > len(bounds) else 0
                inf = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {cumulative}")
                suffix = _format_labels(labels)
                lines.append(f"{name}_sum{suffix} "
                             f"{_format_value(value['sum'])}")
                lines.append(f"{name}_count{suffix} {value['count']}")
            else:
                suffix = _format_labels(labels)
                lines.append(f"{name}{suffix} {_format_value(value)}")
    return "\n".join(lines) + "\n"
