"""Slowlog: latency-outlier capture and deterministic replay.

The solver's ``repro_solver_seconds`` observation sites also feed a
:class:`RollingQuantile` tracker here.  Once the window has warmed up,
a job slower than ``max(min_seconds, factor × p-quantile)`` is
captured: the canonical job payload, the outcome, the job's trace
spans (when tracing is on) and a metrics snapshot are persisted as one
JSON file under ``results/slowlog/``, bounded to ``max_entries`` files
(oldest evicted first).

Because the payload is the exact dict
:func:`repro.kperiodic.kiter.solve_kiter_payload` consumes, a capture
is replayable: :func:`replay_entry` re-solves it deterministically and
diffs λ* (``period``), ``status``, ``rounds`` and the per-span
self-time table against the capture — ``repro replay <entry>`` renders
the diff and exits nonzero when λ* diverges.

Capture is off unless ``REPRO_SLOWLOG`` is set (``1``/``true`` →
``results/slowlog`` under the current directory, anything else → that
directory) or :func:`configure_slowlog` is called.
"""

from __future__ import annotations

import bisect
import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from .metrics import REGISTRY
from .summary import aggregate
from .trace import (collect_events, configure_tracing, new_trace_id,
                    tracing_enabled)

__all__ = [
    "SLOWLOG_SCHEMA",
    "RollingQuantile",
    "configure_slowlog",
    "slowlog_enabled",
    "slowlog_root",
    "slowlog_entries",
    "observe_solve",
    "replay_entry",
    "render_replay",
]

_ENV = "REPRO_SLOWLOG"
SLOWLOG_SCHEMA = "repro-slowlog/1"


class RollingQuantile:
    """Exact quantiles over a sliding window of observations.

    Keeps the window both in arrival order (a deque, for eviction) and
    sorted (for O(log n) insert/remove via :mod:`bisect`), so
    :meth:`quantile` is exact — linear interpolation between order
    statistics, the same definition as ``statistics.quantiles`` with
    ``method="inclusive"``.
    """

    def __init__(self, window: int = 512) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._order: deque = deque()
        self._sorted: List[float] = []

    def __len__(self) -> int:
        return len(self._order)

    def add(self, value: float) -> None:
        value = float(value)
        if len(self._order) == self.window:
            oldest = self._order.popleft()
            index = bisect.bisect_left(self._sorted, oldest)
            del self._sorted[index]
        self._order.append(value)
        bisect.insort(self._sorted, value)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0 ≤ q ≤ 1) of the window, or ``None``."""
        if not self._sorted:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        position = q * (len(self._sorted) - 1)
        lower = int(position)
        upper = min(lower + 1, len(self._sorted) - 1)
        fraction = position - lower
        return (self._sorted[lower] * (1.0 - fraction)
                + self._sorted[upper] * fraction)


class _SlowLog:
    """Singleton owning the tracker, the threshold rule and the files."""

    def __init__(self) -> None:
        self.enabled = False
        self.root: Optional[Path] = None
        self.quantile_q = 0.99
        self.factor = 2.0
        self.min_seconds = 0.05
        self.warmup = 20
        self.max_entries = 50
        self.tracker = RollingQuantile()
        self._entries_cell = REGISTRY.counter("repro_slowlog_entries_total")

    def configure(self, root, *, window: int = 512, quantile: float = 0.99,
                  factor: float = 2.0, min_seconds: float = 0.05,
                  warmup: int = 20, max_entries: int = 50) -> None:
        self.enabled = root is not None
        self.root = Path(root) if root is not None else None
        self.quantile_q = quantile
        self.factor = factor
        self.min_seconds = min_seconds
        self.warmup = warmup
        self.max_entries = max_entries
        self.tracker = RollingQuantile(window)
        if root is not None:
            os.environ[_ENV] = str(root)
        else:
            os.environ.pop(_ENV, None)

    def observe(self, seconds: float, payload: Dict[str, object],
                outcome: Dict[str, object]) -> Optional[Path]:
        if not self.enabled:
            return None
        # Threshold from the window *before* this sample joins it, so
        # one huge outlier can't raise the bar it is judged against.
        threshold = None
        if len(self.tracker) >= self.warmup:
            quantile_value = self.tracker.quantile(self.quantile_q)
            threshold = max(self.min_seconds,
                            self.factor * quantile_value)
        self.tracker.add(seconds)
        if threshold is None or seconds <= threshold:
            return None
        try:
            return self._capture(seconds, threshold, payload, outcome)
        except (OSError, TypeError, ValueError):  # never fail the solve
            return None

    def _capture(self, seconds: float, threshold: float,
                 payload: Dict[str, object],
                 outcome: Dict[str, object]) -> Path:
        trace_ctx = payload.get("trace") or {}
        trace_id = trace_ctx.get("trace_id") if isinstance(trace_ctx, dict) \
            else None
        events = collect_events([trace_id]) if trace_id else []
        entry = {
            "schema": SLOWLOG_SCHEMA,
            "captured_at": time.time(),
            "seconds": seconds,
            "threshold": threshold,
            "quantile": {
                "q": self.quantile_q,
                "value": self.tracker.quantile(self.quantile_q),
                "window": len(self.tracker),
            },
            "payload": {k: v for k, v in payload.items() if k != "trace"},
            "outcome": outcome,
            "trace": events,
            "metrics": REGISTRY.snapshot(),
            "pid": os.getpid(),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        digest = str(payload.get("digest", "")) or "anon"
        path = self.root / f"slow-{time.time_ns()}-{digest[:12]}.json"
        path.write_text(json.dumps(entry, indent=2, sort_keys=True),
                        encoding="utf-8")
        self._entries_cell.inc()
        for stale in sorted(self.root.glob("slow-*.json"))[:-self.max_entries]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                pass
        return path


_SLOWLOG = _SlowLog()


def _bootstrap_from_env() -> None:
    raw = os.environ.get(_ENV, "").strip()
    if not raw or raw == "0" or raw.lower() == "false":
        return
    root = "results/slowlog" if raw == "1" or raw.lower() == "true" else raw
    _SLOWLOG.configure(root)


_bootstrap_from_env()


def configure_slowlog(root, **options) -> None:
    """Enable capture under ``root`` (or disable with ``None``).

    Options: ``window`` (quantile window size), ``quantile`` (the
    tracked quantile, default p99), ``factor`` (slow = factor × p99),
    ``min_seconds`` (floor below which nothing is slow), ``warmup``
    (observations before the threshold arms) and ``max_entries``
    (capture files kept, oldest evicted).  Exports ``REPRO_SLOWLOG``
    so spawned pool children capture into the same directory.
    """
    _SLOWLOG.configure(root, **options)


def slowlog_enabled() -> bool:
    return _SLOWLOG.enabled


def slowlog_root() -> Optional[Path]:
    return _SLOWLOG.root


def observe_solve(seconds: float, payload: Dict[str, object],
                  outcome: Dict[str, object]) -> Optional[Path]:
    """Feed one finished solve to the tracker; capture it if slow.

    Called next to every ``repro_solver_seconds`` observation site.
    Returns the capture path when an entry was persisted.
    """
    return _SLOWLOG.observe(seconds, payload, outcome)


def slowlog_entries(root=None) -> List[Path]:
    """Capture files under ``root`` (default: the configured root)."""
    base = Path(root) if root is not None else _SLOWLOG.root
    if base is None or not base.is_dir():
        return []
    return sorted(base.glob("slow-*.json"))


def _outcome_digest(outcome: Dict[str, object]) -> Dict[str, object]:
    return {
        "status": outcome.get("status"),
        "period": outcome.get("period"),
        "rounds": outcome.get("rounds"),
        "engine_used": outcome.get("engine_used"),
        "wall_time": outcome.get("wall_time"),
    }


def replay_entry(entry, *, trace: bool = True) -> Dict[str, object]:
    """Re-solve a captured payload and diff it against the capture.

    ``entry`` is a path to a slowlog file or an already-loaded entry
    dict.  The replay is deterministic — same payload, same engines —
    so an ``"OK"`` capture must reproduce λ* bit-identically
    (``match`` is True iff ``status`` and ``period`` agree).  With
    ``trace=True`` the replay runs under a throwaway trace so its
    self-time table can be diffed against the captured spans.
    """
    from repro.kperiodic.kiter import solve_kiter_payload

    if not isinstance(entry, dict):
        entry = json.loads(Path(entry).read_text(encoding="utf-8"))
    if entry.get("schema") != SLOWLOG_SCHEMA:
        raise ValueError(
            f"not a {SLOWLOG_SCHEMA} entry: {entry.get('schema')!r}")
    payload = dict(entry.get("payload") or {})
    payload.pop("trace", None)
    replay_events: List[Dict] = []
    if trace:
        trace_id = new_trace_id()
        payload["trace"] = {"trace_id": trace_id}
        was_enabled = tracing_enabled()
        if not was_enabled:
            # Buffer-only tracing: events land in the ring buffer for
            # the diff without leaving a file behind.
            configure_tracing(os.devnull)
        try:
            outcome = solve_kiter_payload(payload)
            replay_events = collect_events([trace_id], clear=True)
        finally:
            if not was_enabled:
                configure_tracing(None)
    else:
        outcome = solve_kiter_payload(payload)
    captured = entry.get("outcome") or {}
    match = (captured.get("status") == outcome.get("status")
             and captured.get("period") == outcome.get("period"))
    REGISTRY.counter("repro_slowlog_replays_total").labels(
        outcome="match" if match else "mismatch").inc()
    return {
        "match": match,
        "captured": _outcome_digest(captured),
        "replayed": _outcome_digest(outcome),
        "captured_self_time": aggregate(entry.get("trace") or []),
        "replayed_self_time": aggregate(replay_events),
        "captured_seconds": entry.get("seconds"),
        "threshold": entry.get("threshold"),
    }


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def render_replay(report: Dict[str, object]) -> str:
    """Human-readable replay diff for ``repro replay``."""
    lines: List[str] = []
    verdict = "MATCH" if report["match"] else "MISMATCH"
    lines.append(f"replay: {verdict}")
    lines.append(f"  {'field':<14} {'captured':>22} {'replayed':>22}")
    captured = report["captured"]
    replayed = report["replayed"]
    for field in ("status", "period", "rounds", "engine_used",
                  "wall_time"):
        lines.append(f"  {field:<14} {_fmt(captured.get(field)):>22} "
                     f"{_fmt(replayed.get(field)):>22}")
    by_name = {row["name"]: row
               for row in report.get("captured_self_time") or []}
    replay_rows = report.get("replayed_self_time") or []
    if by_name or replay_rows:
        lines.append("  self time (s):")
        names = list(dict.fromkeys(
            list(by_name) + [row["name"] for row in replay_rows]))
        replay_by_name = {row["name"]: row for row in replay_rows}
        for name in names:
            was = by_name.get(name, {}).get("self")
            now = replay_by_name.get(name, {}).get("self")
            was_text = f"{was:.6f}" if was is not None else "—"
            now_text = f"{now:.6f}" if now is not None else "—"
            lines.append(f"  {name:<14} {was_text:>22} {now_text:>22}")
    return "\n".join(lines) + "\n"
