"""Static HTML ops report: one self-contained page, zero dependencies.

:func:`build_report` folds whatever observability surfaces exist —
a metrics snapshot, trace events, slowlog captures, bench history —
into one HTML string (inline CSS, inline SVG sparklines, no scripts,
no external assets), so the page works as a CI artifact, an email
attachment, or the coordinator's ``GET /report`` response.

Sections render only when their input is present; an empty observatory
still produces a valid page saying so.
"""

from __future__ import annotations

import html
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .bench import bench_commit
from .metrics import METRICS, SNAPSHOT_IDENTITY_KEY
from .summary import aggregate, render_summary

__all__ = ["build_report", "write_report"]

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #1a1a2e; padding: 0 1rem; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem;
border-bottom: 1px solid #ddd; padding-bottom: .25rem; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: .25rem .6rem;
         border-bottom: 1px solid #eee; }
th { background: #f6f6fa; } td.num, th.num { text-align: right;
font-variant-numeric: tabular-nums; }
pre { background: #f6f6fa; padding: .75rem; overflow-x: auto;
      font-size: 12px; }
.muted { color: #888; } .bad { color: #b00020; font-weight: 600; }
.ok { color: #1b7a2f; }
svg.spark { vertical-align: middle; }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _metric_rows(snapshot: Dict[str, object]) -> List[str]:
    rows: List[str] = []
    names = [n for n in METRICS if n in snapshot]
    names += sorted(n for n in snapshot
                    if n not in METRICS and not n.startswith("__"))
    for name in names:
        family = snapshot[name]
        ftype = family.get("type", "counter")  # type: ignore[union-attr]
        spec = METRICS.get(name)
        for labels, value in family.get("samples", []):  # type: ignore
            if isinstance(value, dict):  # histogram
                text = (f"count={value.get('count', 0)} "
                        f"sum={value.get('sum', 0.0):.6g}s")
            else:
                text = f"{value:.6g}" if isinstance(value, float) \
                    else str(value)
            label_text = ", ".join(f"{k}={v}"
                                   for k, v in sorted(labels.items()))
            rows.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f"<td>{_esc(ftype)}</td>"
                f"<td>{_esc(label_text) or '—'}</td>"
                f"<td class=num>{_esc(text)}</td>"
                f"<td class=muted>{_esc(spec.help if spec else '')}</td>"
                f"</tr>")
    return rows


def _sparkline(values: List[float], width: int = 160,
               height: int = 28) -> str:
    if len(values) < 2:
        return "<span class=muted>—</span>"
    low, high = min(values), max(values)
    spread = (high - low) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 2 - (v - low) / spread * (height - 4):.1f}"
        for i, v in enumerate(values))
    return (f'<svg class=spark width={width} height={height} '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="#4054b2" stroke-width="1.5" '
            f'points="{points}"/></svg>')


def _history_section(history_rows: List[Dict[str, object]]) -> List[str]:
    series: Dict[tuple, List[Dict[str, object]]] = {}
    for row in history_rows:
        series.setdefault((str(row.get("bench")), str(row.get("name"))),
                          []).append(row)
    parts = ["<h2>Bench trajectories</h2>"]
    if not series:
        parts.append("<p class=muted>no bench history recorded</p>")
        return parts
    parts.append("<table><tr><th>bench</th><th>metric</th>"
                 "<th class=num>latest</th><th class=num>best</th>"
                 "<th class=num>points</th><th>trend</th></tr>")
    for (bench, name), rows in sorted(series.items()):
        rows.sort(key=lambda r: r.get("ts", 0.0))
        values = [float(r["value"]) for r in rows]
        unit = str(rows[-1].get("unit", ""))
        from .history import metric_direction
        best = (min(values) if metric_direction(rows[-1]) == "lower"
                else max(values))
        parts.append(
            f"<tr><td>{_esc(bench)}</td><td>{_esc(name)}</td>"
            f"<td class=num>{values[-1]:.4g} {_esc(unit)}</td>"
            f"<td class=num>{best:.4g}</td>"
            f"<td class=num>{len(values)}</td>"
            f"<td>{_sparkline(values)}</td></tr>")
    parts.append("</table>")
    return parts


def _slowlog_section(entries: Iterable[Dict[str, object]]) -> List[str]:
    parts = ["<h2>Slowlog</h2>"]
    entries = list(entries)
    if not entries:
        parts.append("<p class=muted>no slow-solve captures</p>")
        return parts
    parts.append("<table><tr><th>captured</th><th class=num>seconds</th>"
                 "<th class=num>threshold</th><th>status</th>"
                 "<th>digest</th><th class=num>spans</th></tr>")
    for entry in entries:
        outcome = entry.get("outcome") or {}
        payload = entry.get("payload") or {}
        when = entry.get("captured_at")
        when_text = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(when)) if when else "—"
        parts.append(
            f"<tr><td>{_esc(when_text)}</td>"
            f"<td class=num>{float(entry.get('seconds', 0.0)):.4f}</td>"
            f"<td class=num>{float(entry.get('threshold', 0.0)):.4f}</td>"
            f"<td>{_esc(outcome.get('status', '?'))}</td>"
            f"<td><code>{_esc(str(payload.get('digest', ''))[:12])}"
            f"</code></td>"
            f"<td class=num>{len(entry.get('trace') or [])}</td></tr>")
    parts.append("</table>")
    return parts


def build_report(*, snapshot: Optional[Dict[str, object]] = None,
                 events: Optional[List[Dict]] = None,
                 slowlog_entries: Optional[List[Dict[str, object]]] = None,
                 history_rows: Optional[List[Dict[str, object]]] = None,
                 dropped: int = 0, top: int = 10,
                 title: str = "repro ops report") -> str:
    """Render the ops report as one self-contained HTML string."""
    now = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    commit = bench_commit()
    identity = ""
    if snapshot:
        identity = str(snapshot.get(SNAPSHOT_IDENTITY_KEY, ""))
    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class=muted>generated {now}"
        + (f" · commit <code>{_esc(commit[:12])}</code>" if commit else "")
        + (f" · registry <code>{_esc(identity)}</code>" if identity else "")
        + "</p>",
    ]

    parts.append("<h2>Metric families</h2>")
    rows = _metric_rows(snapshot) if snapshot else []
    if rows:
        parts.append("<table><tr><th>family</th><th>type</th>"
                     "<th>labels</th><th class=num>value</th>"
                     "<th>help</th></tr>")
        parts.extend(rows)
        parts.append("</table>")
    else:
        parts.append("<p class=muted>no metrics recorded</p>")

    parts.append("<h2>Spans</h2>")
    if events:
        table = aggregate(events)[:top]
        parts.append("<table><tr><th>span</th><th class=num>count</th>"
                     "<th class=num>total s</th><th class=num>self s"
                     "</th></tr>")
        for row in table:
            parts.append(
                f"<tr><td><code>{_esc(row['name'])}</code></td>"
                f"<td class=num>{int(row['count'])}</td>"
                f"<td class=num>{row['total']:.4f}</td>"
                f"<td class=num>{row['self']:.4f}</td></tr>")
        parts.append("</table>")
        parts.append("<h3>Span trees</h3>")
        parts.append(f"<pre>{_esc(render_summary(events, top=top))}</pre>")
    else:
        parts.append("<p class=muted>no trace events</p>")
    if dropped:
        parts.append(f"<p class=bad>ring buffer dropped {dropped} "
                     f"events — span views are incomplete</p>")

    parts.extend(_slowlog_section(slowlog_entries or []))
    parts.extend(_history_section(history_rows or []))
    parts.append("</body></html>")
    return "".join(parts)


def write_report(path, **kwargs) -> Path:
    """Write :func:`build_report` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report(**kwargs), encoding="utf-8")
    return path
