"""Small shared utilities: exact rational helpers and timing tools."""

from repro.utils.rational import (
    Frac,
    ceil_div,
    ceil_to_multiple,
    floor_div,
    floor_to_multiple,
    gcd_list,
    lcm_list,
    normalize_fractions,
)
from repro.utils.timing import Stopwatch, TimeBudget

__all__ = [
    "Frac",
    "ceil_div",
    "ceil_to_multiple",
    "floor_div",
    "floor_to_multiple",
    "gcd_list",
    "lcm_list",
    "normalize_fractions",
    "Stopwatch",
    "TimeBudget",
]
