"""Exact integer/rational arithmetic helpers.

The paper's formulas (Theorem 2) are stated over integers with rounding to
multiples of ``gcd(i_b, o_b)``; the periods and throughputs are rationals.
Everything here is exact — the library never rounds a throughput.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, List, Sequence

Frac = Fraction


def floor_div(a: int, b: int) -> int:
    """Floor division that works for negative numerators (Python's ``//``).

    Exposed with a name so call sites that transcribe the paper's
    ``⌊α/γ⌋`` read literally.
    """
    return a // b


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for possibly-negative numerators."""
    return -((-a) // b)


def floor_to_multiple(alpha: int, gamma: int) -> int:
    """The paper's ``⌊α⌋^γ = floor(α/γ)·γ`` (largest multiple of γ ≤ α)."""
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    return (alpha // gamma) * gamma


def ceil_to_multiple(alpha: int, gamma: int) -> int:
    """The paper's ``⌈α⌉^γ = ceil(α/γ)·γ`` (smallest multiple of γ ≥ α)."""
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    return ceil_div(alpha, gamma) * gamma


def gcd_list(values: Iterable[int]) -> int:
    """gcd of an iterable of integers; gcd of the empty set is 0."""
    result = 0
    for v in values:
        result = gcd(result, v)
    return result


def lcm_list(values: Iterable[int]) -> int:
    """lcm of an iterable of positive integers; lcm of the empty set is 1."""
    result = 1
    for v in values:
        if v == 0:
            raise ValueError("lcm of 0 is undefined here")
        result = result * v // gcd(result, v)
    return result


def normalize_fractions(values: Sequence[Fraction]) -> List[int]:
    """Scale positive rationals to the smallest integer vector.

    Used to turn the per-task firing rates obtained by balance-equation
    propagation into the minimal repetition vector: multiply by the lcm of
    denominators, then divide by the gcd of numerators.
    """
    if not values:
        return []
    denom_lcm = lcm_list(v.denominator for v in values)
    scaled = [int(v * denom_lcm) for v in values]
    g = gcd_list(scaled)
    if g == 0:
        return scaled
    return [s // g for s in scaled]


def as_fraction(value) -> Fraction:
    """Coerce ints/strings/Fractions to an exact Fraction (floats rejected).

    Floats are rejected because a float period silently destroys the
    exactness guarantee the library is built around.
    """
    if isinstance(value, float):
        raise TypeError(
            "floats are not accepted where exact rationals are required; "
            "pass a Fraction, an int, or a 'num/den' string"
        )
    return Fraction(value)
