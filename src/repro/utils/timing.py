"""Wall-clock measurement and budget enforcement for benchmarks.

The paper reports timeout rows (``> 1d``) for the exponential baselines.
:class:`TimeBudget` makes that reproducible at laptop scale: long-running
loops poll :meth:`TimeBudget.check` and raise
:class:`~repro.exceptions.BudgetExceededError` when the budget is spent.
"""

from __future__ import annotations

import time

from repro.exceptions import BudgetExceededError


class Stopwatch:
    """Monotonic wall-clock stopwatch, usable as a context manager."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start

    def lap(self) -> float:
        """Seconds since ``__enter__`` without stopping the watch."""
        if self._start is None:
            raise RuntimeError("Stopwatch not started")
        return time.perf_counter() - self._start


class TimeBudget:
    """A wall-clock budget; ``None`` seconds means unlimited.

    ``check()`` is cheap enough to call inside inner simulation loops every
    few thousand iterations (it reads a monotonic clock once).
    """

    def __init__(self, seconds: float | None, label: str = "computation"):
        self.seconds = seconds
        self.label = label
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def remaining(self) -> float | None:
        if self.seconds is None:
            return None
        return self.seconds - self.elapsed()

    def exhausted(self) -> bool:
        return self.seconds is not None and self.elapsed() > self.seconds

    def check(self) -> None:
        """Raise :class:`BudgetExceededError` if the budget is spent."""
        if self.exhausted():
            raise BudgetExceededError(
                f"{self.label} exceeded {self.seconds:.3f}s wall-clock budget",
                elapsed=self.elapsed(),
            )
