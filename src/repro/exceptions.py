"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single type. The hierarchy distinguishes *modelling* errors (an invalid
graph), *analysis* errors (a well-formed graph for which the requested
analysis has no answer: inconsistency, deadlock), and *resource* errors
(budget exhaustion while running an exponential baseline).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ModelError(ReproError):
    """An invalid model was constructed (bad rates, unknown task, ...)."""


class InconsistentGraphError(ReproError):
    """The graph admits no repetition vector (rate balance is unsolvable).

    Consistency is a necessary condition for any bounded-memory schedule
    (Lee & Messerschmitt for SDF, Bilsen et al. for CSDF), so throughput is
    undefined for inconsistent graphs.
    """


class DeadlockError(ReproError):
    """No valid schedule exists *for the analysed formulation*.

    In the MCRP formulation this corresponds to a circuit whose total
    transit ``H(c)`` is non-positive while its cost ``L(c)`` is positive,
    i.e. the linear program of Theorem 2 is infeasible for every period.

    Nuance: for a periodicity vector ``K`` strictly below the repetition
    vector this means "no K-periodic schedule with *this* K" — the graph
    itself may be live (the paper's ``N/S`` rows for the 1-periodic
    method). K-Iter treats such a circuit as infinitely critical and
    raises K along it; only at ``K_t = q_t`` does the infeasibility
    certify a true deadlock.

    ``cycle_nodes`` / ``critical_tasks`` carry the offending circuit when
    the raising layer knows it (solver layers annotate progressively).
    """

    def __init__(self, message: str, *, cycle_nodes=None, critical_tasks=None):
        super().__init__(message)
        self.cycle_nodes = cycle_nodes
        self.critical_tasks = critical_tasks


class NotLiveError(DeadlockError):
    """Alias kept for API clarity when liveness is checked explicitly."""


class BudgetExceededError(ReproError):
    """A step/state/wall-clock budget was exhausted before an answer.

    Raised by the symbolic-execution baseline and by the bench runner; the
    bench reporting layer converts it into the paper's ``> 1d``-style
    TIMEOUT table entries.
    """

    def __init__(self, message: str, elapsed: float | None = None):
        super().__init__(message)
        self.elapsed = elapsed


class SolverError(ReproError):
    """An internal solver failed to certify its result (should not happen)."""


class SchedulingError(ReproError):
    """A schedule-construction policy could not produce a schedule.

    Raised by the scheduling-policy registry for unknown policy names or
    options, and by resource-constrained policies when no start times
    within the mobility windows respect the binding's capacity at the
    *certified* period. The latter is not a solver bug: a binding can
    genuinely be too tight for ``λ*`` — the principled escalation is to
    transform the graph with :func:`repro.mapping.apply_mapping` (which
    folds the resource constraint into the dataflow) and schedule the
    mapped graph at *its* certified period instead.
    """
