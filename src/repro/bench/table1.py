"""Table 1: average runtime of three optimal SDF methods per category.

Paper columns: category statistics (graph count, task/channel counts,
Σq min/avg/max) and average computation time for K-Iter, the
cycle-induced-subgraph expansion method [6], and symbolic execution [8].

The SDF3 suite is substituted by the seeded generators of
:mod:`repro.generators` (DESIGN.md §5); ``graphs_per_category`` scales the
suite size (the paper used 100 per random category — the default here is
laptop-friendly and adjustable).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.analysis import repetition_vector_sum
from repro.bench.reporting import format_table
from repro.bench.runner import MethodOutcome, run_method
from repro.generators.dsp import actual_dsp_graphs
from repro.generators.random_sdf import large_hsdf, large_transient, mimic_dsp

METHODS = ("kiter", "expansion", "symbolic")


def _category_graphs(name: str, count: int):
    if name == "ActualDSP":
        return actual_dsp_graphs()
    makers: Dict[str, Callable[[int], object]] = {
        "MimicDSP": mimic_dsp,
        "LgHSDF": large_hsdf,
        "LgTransient": large_transient,
    }
    return [makers[name](seed) for seed in range(count)]


TABLE1_CATEGORIES = ("ActualDSP", "MimicDSP", "LgHSDF", "LgTransient")


@dataclass
class Table1Row:
    category: str
    graph_count: int
    task_stats: str
    channel_stats: str
    sum_q_stats: str
    avg_times: Dict[str, str] = field(default_factory=dict)
    disagreements: int = 0


def _min_avg_max(values: Sequence[int]) -> str:
    return f"{min(values)}/{round(statistics.mean(values))}/{max(values)}"


def run_table1(
    *,
    graphs_per_category: int = 20,
    budget: float = 20.0,
    categories: Sequence[str] = TABLE1_CATEGORIES,
) -> List[Table1Row]:
    """Run the three methods over every category; average OK times.

    Methods that time out contribute the full budget to their average
    (a *lower bound* on the true cost, as in the paper's ``>`` rows).
    Exact methods that both finish must agree — disagreements are counted
    and should always be 0.
    """
    rows: List[Table1Row] = []
    for category in categories:
        graphs = _category_graphs(category, graphs_per_category)
        tasks = [g.task_count for g in graphs]
        channels = [g.buffer_count for g in graphs]
        sums = [repetition_vector_sum(g) for g in graphs]
        times: Dict[str, List[float]] = {m: [] for m in METHODS}
        disagreements = 0
        for g in graphs:
            outcomes: Dict[str, MethodOutcome] = {}
            for method in METHODS:
                outcome = run_method(method, g, budget)
                outcomes[method] = outcome
                times[method].append(
                    outcome.seconds if outcome.ok else budget
                )
            periods = {
                o.period for o in outcomes.values() if o.ok
            }
            if len(periods) > 1:
                disagreements += 1
        rows.append(
            Table1Row(
                category=category,
                graph_count=len(graphs),
                task_stats=_min_avg_max(tasks),
                channel_stats=_min_avg_max(channels),
                sum_q_stats=_min_avg_max(sums),
                avg_times={
                    m: f"{1000.0 * statistics.mean(times[m]):.2f} ms"
                    for m in METHODS
                },
                disagreements=disagreements,
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    headers = [
        "Category", "Graphs", "Tasks (min/avg/max)",
        "Channels (min/avg/max)", "Σq (min/avg/max)",
        "K-Iter", "expansion [6]", "symbolic [8]",
    ]
    body = [
        [
            r.category, str(r.graph_count), r.task_stats,
            r.channel_stats, r.sum_q_stats,
            r.avg_times["kiter"], r.avg_times["expansion"],
            r.avg_times["symbolic"],
        ]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Table 1 — average computation time, optimal SDF methods",
    )
