"""Benchmark harness regenerating the paper's tables.

* :mod:`repro.bench.runner` — method wrappers with wall-clock budgets
  and uniform outcome records (OK / N-S / DEADLOCK / TIMEOUT).
* :mod:`repro.bench.table1` — Table 1 (SDF categories × 3 optimal
  methods, average runtimes).
* :mod:`repro.bench.table2` — Table 2 (CSDF applications and synthetic
  graphs × {periodic, K-Iter, symbolic}, optimality % + runtimes).
* :mod:`repro.bench.reporting` — ASCII/markdown table formatting.
"""

from repro.bench.runner import MethodOutcome, run_method
from repro.bench.reporting import format_table
from repro.bench.table1 import TABLE1_CATEGORIES, run_table1, format_table1
from repro.bench.table2 import run_table2, format_table2

__all__ = [
    "MethodOutcome",
    "run_method",
    "format_table",
    "TABLE1_CATEGORIES",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
]
