"""Uniform method execution with budgets for the table drivers.

Each throughput method is wrapped so a table cell is always one of:

* ``OK`` with an exact period and a wall-clock time;
* ``N/S`` — the method proved *its own* formulation infeasible (the
  1-periodic method on a live graph);
* ``DEADLOCK`` — the graph itself admits no schedule;
* ``TIMEOUT`` — the budget was exhausted (the paper's ``> 1d`` rows,
  scaled to laptop budgets).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from repro.baselines import (
    throughput_expansion,
    throughput_periodic,
    throughput_symbolic,
)
from repro.exceptions import BudgetExceededError, DeadlockError
from repro.kperiodic import throughput_kiter


@dataclass
class MethodOutcome:
    """One table cell."""

    status: str  # "OK" | "N/S" | "DEADLOCK" | "TIMEOUT"
    period: Optional[Fraction]
    seconds: float

    @property
    def ok(self) -> bool:
        return self.status == "OK"

    def time_text(self) -> str:
        if self.status == "TIMEOUT":
            return f"> {self.seconds:.0f}s"
        ms = self.seconds * 1000.0
        if ms < 100:
            return f"{ms:.2f}ms"
        if ms < 10_000:
            return f"{ms:.0f}ms"
        return f"{self.seconds:.1f}s"

    def optimality_text(self, exact: Optional[Fraction]) -> str:
        """The paper's percentage column: Th_method / Th_optimal."""
        if self.status == "N/S":
            return "N/S"
        if self.status in ("TIMEOUT", "DEADLOCK"):
            return "-"
        if exact is None or self.period is None:
            return "??%"  # optimum itself unknown
        if self.period == 0:
            return "100%" if exact == 0 else "??%"
        ratio = float(exact / self.period) * 100.0
        return f"{ratio:.4g}%"


def method_names() -> list:
    """Every method name ``run_method`` accepts.

    K-Iter and service variants are enumerated per registered MCRP
    engine (``kiter@<engine>``, ``service@<engine>``), so a new
    registry engine is immediately benchable without touching this
    module.
    """
    from repro.mcrp.registry import engine_names

    base = ["kiter", "kiter-fullq", "service", "periodic", "symbolic",
            "expansion", "expansion-full", "unfolding", "maxplus"]
    return base + [
        f"{prefix}@{name}"
        for prefix in ("kiter", "service")
        for name in engine_names()
    ]


def run_method(
    method: str, graph, budget: float, *, engine: Optional[str] = None
) -> MethodOutcome:
    """Run one named method with a wall-clock budget.

    Methods: ``kiter``, ``kiter-fullq``, ``periodic``, ``symbolic``,
    ``expansion`` (SDF only), ``expansion-full``, ``unfolding``,
    ``maxplus``; plus one ``kiter@<engine>`` variant per registered
    MCRP engine. ``engine`` selects the MCRP engine for the K-Iter
    variants (the ``kiter@<engine>`` spelling is shorthand for it);
    the other methods do not take one.
    """
    from repro.baselines.unfolding import throughput_unfolding
    from repro.exceptions import SolverError
    from repro.mcrp.registry import get_engine

    if method.startswith(("kiter@", "service@")):
        method, spelled = method.split("@", 1)
        if engine is not None and engine != spelled:
            raise SolverError(
                f"conflicting engines: method {method}@{spelled!r} vs "
                f"engine={engine!r}"
            )
        engine = spelled
    mcrp_engine = engine if engine is not None else "ratio-iteration"
    get_engine(mcrp_engine)  # fail fast on unknown engine names
    if engine is not None and method not in ("kiter", "kiter-fullq",
                                             "service"):
        raise SolverError(
            f"method {method!r} does not take an MCRP engine "
            "(only the kiter and service methods do)"
        )

    runners: dict[str, Callable[[], Optional[Fraction]]] = {
        "kiter": lambda: throughput_kiter(
            graph, time_budget=budget, engine=mcrp_engine
        ).period,
        "kiter-fullq": lambda: throughput_kiter(
            graph, time_budget=budget, update_policy="full-q",
            engine=mcrp_engine,
        ).period,
        "service": lambda: _service(graph, mcrp_engine, budget),
        "periodic": lambda: _periodic(graph),
        "symbolic": lambda: throughput_symbolic(
            graph, time_budget=budget
        ).period,
        "expansion": lambda: throughput_expansion(
            graph, reduced=True
        ).period,
        "expansion-full": lambda: throughput_expansion(
            graph, reduced=False
        ).period,
        "unfolding": lambda: throughput_unfolding(graph).period,
        "maxplus": lambda: _maxplus(graph),
    }
    runner = runners.get(method)
    if runner is None:
        raise SolverError(
            f"unknown method {method!r}; choose from {method_names()}"
        )
    start = time.perf_counter()
    try:
        period = runner()
    except BudgetExceededError:
        return MethodOutcome("TIMEOUT", None, budget)
    except DeadlockError:
        return MethodOutcome(
            "DEADLOCK", None, time.perf_counter() - start
        )
    except _NotSchedulable:
        return MethodOutcome("N/S", None, time.perf_counter() - start)
    elapsed = time.perf_counter() - start
    if elapsed > budget:
        # expansion has no internal budget hook; grade honestly
        return MethodOutcome("TIMEOUT", period, elapsed)
    return MethodOutcome("OK", period, elapsed)


def schedule_policy_names() -> list:
    """Every policy name ``run_schedule_policy`` accepts — the registry,
    verbatim, so a newly registered policy is immediately benchable."""
    from repro.scheduling import policy_names

    return policy_names()


def run_schedule_policy(
    policy: str,
    graph,
    budget: float,
    *,
    engine: str = "ratio-iteration",
    binding=None,
    **options,
) -> MethodOutcome:
    """Build one policy's schedule under a wall-clock budget.

    The outcome grid matches :func:`run_method`: ``OK`` carries the
    certified ``Ω`` (every policy certifies the same one — that equality
    is a bench *gate*, not just a table row), ``N/S`` means the policy
    proved its own formulation infeasible (a resource binding too tight
    for the certified period), and ``DEADLOCK``/``TIMEOUT`` pass
    through from the solve.
    """
    from repro.exceptions import SchedulingError
    from repro.scheduling import build_schedule, get_policy

    get_policy(policy)  # fail fast on unknown policy names
    start = time.perf_counter()
    try:
        outcome = build_schedule(
            graph, policy, engine=engine, binding=binding,
            time_budget=budget, **options,
        )
    except BudgetExceededError:
        return MethodOutcome("TIMEOUT", None, budget)
    except DeadlockError:
        return MethodOutcome(
            "DEADLOCK", None, time.perf_counter() - start
        )
    except SchedulingError:
        return MethodOutcome("N/S", None, time.perf_counter() - start)
    return MethodOutcome(
        "OK", outcome.omega, time.perf_counter() - start
    )


class _NotSchedulable(Exception):
    """Internal marker: the method's own relaxation is infeasible."""


def _service(graph, engine: str, budget: float) -> Optional[Fraction]:
    """One-shot solve through the service facade (cache disabled).

    Measures the serving layer's overhead over the bare K-Iter call;
    the batch-level speedups (dedup, cache, pool) are benchmarked by
    ``benchmarks/bench_service.py``.
    """
    from repro.exceptions import SolverError
    from repro.service import ResultCache, ThroughputService

    # No fallback chain: a bench row labelled service@<engine> must
    # fail like kiter@<engine> does, not silently report another
    # engine's numbers.
    service = ThroughputService(
        engine=engine, fallback_engines=(), time_budget=budget,
        cache=ResultCache(memory_size=0),
    )
    outcome = service.submit(graph)
    if outcome.status == "DEADLOCK":
        raise DeadlockError(outcome.error)
    if outcome.status == "TIMEOUT":
        raise BudgetExceededError(outcome.error)
    if outcome.status != "OK":
        raise SolverError(outcome.error or "service job failed")
    return outcome.period


def _maxplus(graph) -> Optional[Fraction]:
    from repro.maxplus import throughput_maxplus

    return throughput_maxplus(graph).period


def _periodic(graph) -> Optional[Fraction]:
    result = throughput_periodic(graph)
    if not result.feasible:
        raise _NotSchedulable()
    return result.period
