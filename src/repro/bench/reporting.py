"""Plain-text table rendering for the bench drivers."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Align columns with a header rule; markdown-ish but monospace-first."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt_row(cells) -> str:
        return " | ".join(
            str(c).ljust(widths[i]) for i, c in enumerate(cells)
        ).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths[:columns]))
    for row in rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)
