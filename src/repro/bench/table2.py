"""Table 2: CSDF applications and synthetic graphs × three methods.

Paper layout: for each graph (applications with and without buffer-size
bounds, then five synthetic graphs) the optimality percentage and runtime
of the approximative periodic method [4], K-Iter, and symbolic execution
[16]. ``N/S`` marks a live graph with no strictly periodic schedule;
``> budget`` marks timeouts; ``??%`` marks optimality that nobody could
certify (paper rows graph2/graph3).

Bounded-buffer variants use the smallest power-of-two multiple of each
buffer's structural minimal capacity that keeps the graph live — the
tightest interesting bound (a fixed arbitrary bound either deadlocks or
is slack; the paper's suite shipped hand-chosen sizes we don't have).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.analysis import is_live, repetition_vector_sum
from repro.bench.reporting import format_table
from repro.bench.runner import MethodOutcome, run_method
from repro.buffers.capacity import bound_all_buffers, minimal_buffer_capacity
from repro.generators.csdf_apps import csdf_applications
from repro.generators.synthetic import synthetic_graphs

METHODS = ("periodic", "kiter", "symbolic")


@dataclass
class Table2Row:
    name: str
    tasks: int
    buffers: int
    sum_q: int
    outcomes: Dict[str, MethodOutcome] = field(default_factory=dict)
    exact: Optional[Fraction] = None


def tightest_live_bounding(graph, max_doublings: int = 12):
    """Bound every buffer at the smallest live power-of-two scale."""
    scale = 1
    for _ in range(max_doublings):
        caps = {
            b.name: scale * minimal_buffer_capacity(b)
            for b in graph.buffers()
            if not b.is_self_loop()
        }
        bounded = bound_all_buffers(graph, caps)
        if is_live(bounded):
            return bounded, scale
        scale *= 2
    raise RuntimeError(
        f"no live bounding found for {graph.name!r} within "
        f"scale 2^{max_doublings}"
    )


def _run_rows(
    entries: List[Tuple[str, object]],
    budget: float,
) -> List[Table2Row]:
    rows = []
    for name, graph in entries:
        row = Table2Row(
            name=name,
            tasks=graph.task_count,
            buffers=graph.buffer_count,
            sum_q=repetition_vector_sum(graph),
        )
        for method in METHODS:
            row.outcomes[method] = run_method(method, graph, budget)
        kiter = row.outcomes.get("kiter")
        symbolic = row.outcomes.get("symbolic")
        if kiter is not None and kiter.ok:
            row.exact = kiter.period
        elif symbolic is not None and symbolic.ok:
            row.exact = symbolic.period
        rows.append(row)
    return rows


def run_table2(
    *,
    scale: int = 1,
    budget: float = 60.0,
    include_bounded: bool = True,
    include_synthetic: bool = True,
) -> Dict[str, List[Table2Row]]:
    """The three Table 2 blocks: unbounded apps, bounded apps, synthetic."""
    blocks: Dict[str, List[Table2Row]] = {}
    apps = [(name, thunk()) for name, thunk in csdf_applications(scale)]
    blocks["no buffer size"] = _run_rows(apps, budget)
    if include_bounded:
        bounded_entries = []
        for name, graph in apps:
            bounded, _cap_scale = tightest_live_bounding(graph)
            bounded_entries.append((name, bounded))
        blocks["fixed buffer size"] = _run_rows(bounded_entries, budget)
    if include_synthetic:
        synth = [(name, thunk()) for name, thunk in synthetic_graphs(scale)]
        blocks["synthetic"] = _run_rows(synth, budget)
    return blocks


def format_table2(blocks: Dict[str, List[Table2Row]]) -> str:
    headers = [
        "Application", "Tasks", "Buffers", "Σq",
        "periodic [4]", "K-Iter", "symbolic [16]",
    ]
    sections = []
    for block_name, rows in blocks.items():
        body = []
        for r in rows:
            cells = [r.name, str(r.tasks), str(r.buffers), str(r.sum_q)]
            for method in METHODS:
                o = r.outcomes[method]
                if o.status == "OK":
                    cells.append(
                        f"{o.optimality_text(r.exact)} {o.time_text()}"
                    )
                elif o.status == "N/S":
                    cells.append(f"N/S {o.time_text()}")
                elif o.status == "DEADLOCK":
                    cells.append(f"deadlock {o.time_text()}")
                else:
                    cells.append(o.time_text())
            body.append(cells)
        sections.append(
            format_table(headers, body, title=f"Table 2 — {block_name}")
        )
    return "\n\n".join(sections)
