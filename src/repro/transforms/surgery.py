"""Semantics-aware graph rewrites.

All functions return new graphs; inputs are never mutated (tasks and
buffers are immutable anyway). The semantic contracts — which rewrites
preserve throughput, which scale it — are stated per function and pinned
by tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.exceptions import ModelError
from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task


def rebuild_graph(
    graph: CsdfGraph,
    *,
    tasks: Optional[Mapping[str, Task]] = None,
    buffers: Optional[Mapping[str, Buffer]] = None,
    name: Optional[str] = None,
) -> CsdfGraph:
    """A structural copy with selected tasks/buffers swapped in place.

    The shared single-target copy core of every edit helper here and of
    :class:`repro.dse.DseSession`: tasks and buffers are immutable, so
    a one-element ``tasks``/``buffers`` override is the cheapest exact
    "edit" there is — every untouched object is shared by reference and
    insertion order (hence node layout, canonical serialization, and
    digests of unrelated content) is preserved. Replacement names must
    already exist; phase-count compatibility is re-validated by the
    ``add_buffer`` checks on the way back in.

    Content-only swaps — same names, endpoints and phase counts —
    take a dict-copy fast path instead of re-inserting every object
    through ``add_task``/``add_buffer``: the adjacency is unchanged by
    construction, and per-object re-validation would make a session
    edit on an N-buffer graph O(N) Python calls for a one-buffer
    change. Anything that *could* shift validation (a replacement
    changing phase count or endpoints) falls back to the full
    re-insertion, which raises exactly where manual construction would.
    """
    tasks = dict(tasks or {})
    buffers = dict(buffers or {})
    for t_name in tasks:
        graph.task(t_name)  # unknown names raise ModelError
    for b_name in buffers:
        graph.buffer(b_name)

    def _phases(task_name: str) -> int:
        replaced = tasks.get(task_name)
        return (replaced or graph.task(task_name)).phase_count

    fast = all(
        t.name == t_name
        and t.phase_count == graph.task(t_name).phase_count
        for t_name, t in tasks.items()
    ) and all(
        b.name == b_name
        and (b.source, b.target)
        == (graph.buffer(b_name).source, graph.buffer(b_name).target)
        and len(b.production) == _phases(b.source)
        and len(b.consumption) == _phases(b.target)
        for b_name, b in buffers.items()
    )
    if fast:
        out = CsdfGraph.__new__(CsdfGraph)
        out.name = name or graph.name
        out._tasks = dict(graph._tasks)
        out._tasks.update(tasks)
        out._buffers = dict(graph._buffers)
        out._buffers.update(buffers)
        out._out = {key: list(val) for key, val in graph._out.items()}
        out._in = {key: list(val) for key, val in graph._in.items()}
        return out

    out = CsdfGraph(name or graph.name)
    for t in graph.tasks():
        out.add_task(tasks.get(t.name, t))
    for b in graph.buffers():
        out.add_buffer(buffers.get(b.name, b))
    return out


def with_task_durations(
    graph: CsdfGraph, task_name: str, durations: Sequence[int]
) -> CsdfGraph:
    """One task's phase durations replaced; everything else shared.

    The phase count must not change (rate vectors of adjacent buffers
    are pinned to it).
    """
    old = graph.task(task_name)
    durations = tuple(int(d) for d in durations)
    if len(durations) != old.phase_count:
        raise ModelError(
            f"task {task_name!r} has {old.phase_count} phases; got "
            f"{len(durations)} durations"
        )
    return rebuild_graph(
        graph, tasks={task_name: Task(task_name, durations)}
    )


def with_scaled_task(
    graph: CsdfGraph, task_name: str, numerator: int, denominator: int = 1
) -> CsdfGraph:
    """One task's durations scaled by ``numerator/denominator`` (floor)."""
    if numerator < 0 or denominator < 1:
        raise ModelError(
            f"bad duration scale {numerator}/{denominator} for task "
            f"{task_name!r}"
        )
    old = graph.task(task_name)
    return with_task_durations(
        graph, task_name,
        tuple((d * numerator) // denominator for d in old.durations),
    )


def with_buffer(graph: CsdfGraph, buffer: Buffer) -> CsdfGraph:
    """One buffer replaced by name; endpoints must be unchanged.

    Keeping the endpoints fixed is what makes this a *single-target*
    edit: the adjacency lists, the node layout and every other buffer's
    constraint blocks are untouched.
    """
    old = graph.buffer(buffer.name)
    if (buffer.source, buffer.target) != (old.source, old.target):
        raise ModelError(
            f"buffer {buffer.name!r} endpoints changed "
            f"({old.source}->{old.target} vs "
            f"{buffer.source}->{buffer.target}); add a new buffer instead"
        )
    return rebuild_graph(graph, buffers={buffer.name: buffer})


def with_initial_tokens(
    graph: CsdfGraph, buffer_name: str, initial_tokens: int
) -> CsdfGraph:
    """One buffer's marking replaced; rates and endpoints shared."""
    old = graph.buffer(buffer_name)
    return with_buffer(
        graph,
        Buffer(
            old.name, old.source, old.target, old.production,
            old.consumption, initial_tokens,
            serialization=old.serialization,
        ),
    )


def with_buffer_rates(
    graph: CsdfGraph,
    buffer_name: str,
    *,
    production: Optional[Sequence[int]] = None,
    consumption: Optional[Sequence[int]] = None,
    initial_tokens: Optional[int] = None,
) -> CsdfGraph:
    """One buffer's rate vectors (and optionally marking) replaced.

    Rate edits can change the repetition vector — or break consistency
    entirely — so callers must re-derive ``q`` (DseSession drops its
    memo on this edit).
    """
    old = graph.buffer(buffer_name)
    return with_buffer(
        graph,
        Buffer(
            old.name, old.source, old.target,
            tuple(production) if production is not None else old.production,
            tuple(consumption) if consumption is not None
            else old.consumption,
            initial_tokens if initial_tokens is not None
            else old.initial_tokens,
            serialization=old.serialization,
        ),
    )


def relabel_graph(
    graph: CsdfGraph,
    mapping: Dict[str, str],
    *,
    name: Optional[str] = None,
) -> CsdfGraph:
    """Rename tasks (buffers keep their names, endpoints re-pointed).

    Unmapped tasks keep their names; collisions raise.
    """
    new_names = {}
    for t in graph.tasks():
        target = mapping.get(t.name, t.name)
        if target in new_names.values():
            raise ModelError(f"relabeling collides on {target!r}")
        new_names[t.name] = target
    out = CsdfGraph(name or graph.name)
    for t in graph.tasks():
        out.add_task(Task(new_names[t.name], t.durations))
    for b in graph.buffers():
        out.add_buffer(
            Buffer(
                b.name,
                new_names[b.source],
                new_names[b.target],
                b.production,
                b.consumption,
                b.initial_tokens,
                serialization=b.serialization,
            )
        )
    return out


def merge_graphs(
    graphs: Iterable[CsdfGraph],
    *,
    name: str = "merged",
) -> CsdfGraph:
    """Disjoint union; task/buffer names are prefixed with the graph name.

    Semantics caveat: the merged repetition vector is a common integer
    refinement of the parts', so the merged *graph iteration* — and with
    it the period Ω — is rescaled. The invariant is per-task throughput:
    every task's ``q_t/Ω`` rate is bounded by its standalone rate, with
    the slowest component attaining its bound (pinned by a property
    test).
    """
    out = CsdfGraph(name)
    for g in graphs:
        prefix = f"{g.name}."
        for t in g.tasks():
            out.add_task(Task(prefix + t.name, t.durations))
        for b in g.buffers():
            out.add_buffer(
                Buffer(
                    prefix + b.name,
                    prefix + b.source,
                    prefix + b.target,
                    b.production,
                    b.consumption,
                    b.initial_tokens,
                    serialization=b.serialization,
                )
            )
    return out


def scale_durations(graph: CsdfGraph, factor: int) -> CsdfGraph:
    """Multiply every phase duration by ``factor`` (≥ 1).

    Scales the exact period by exactly ``factor`` (homogeneity of the
    max-cycle-ratio — pinned by a property test).
    """
    if factor < 1:
        raise ModelError(f"duration factor must be ≥ 1, got {factor}")
    return rebuild_graph(
        graph,
        tasks={
            t.name: Task(t.name, tuple(d * factor for d in t.durations))
            for t in graph.tasks()
        },
    )


def scale_rates(graph: CsdfGraph, factor: int) -> CsdfGraph:
    """Multiply every rate *and marking* by ``factor`` (≥ 1).

    Token counts scale uniformly, so the repetition vector, liveness and
    the exact period are all unchanged (pinned by tests). Useful for
    building numerically-stressed variants of a benchmark.
    """
    if factor < 1:
        raise ModelError(f"rate factor must be ≥ 1, got {factor}")
    return rebuild_graph(
        graph,
        buffers={
            b.name: Buffer(
                b.name,
                b.source,
                b.target,
                tuple(r * factor for r in b.production),
                tuple(r * factor for r in b.consumption),
                b.initial_tokens * factor,
                serialization=b.serialization,
            )
            for b in graph.buffers()
        },
    )
