"""Semantics-aware graph rewrites.

All functions return new graphs; inputs are never mutated (tasks and
buffers are immutable anyway). The semantic contracts — which rewrites
preserve throughput, which scale it — are stated per function and pinned
by tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.exceptions import ModelError
from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task


def relabel_graph(
    graph: CsdfGraph,
    mapping: Dict[str, str],
    *,
    name: Optional[str] = None,
) -> CsdfGraph:
    """Rename tasks (buffers keep their names, endpoints re-pointed).

    Unmapped tasks keep their names; collisions raise.
    """
    new_names = {}
    for t in graph.tasks():
        target = mapping.get(t.name, t.name)
        if target in new_names.values():
            raise ModelError(f"relabeling collides on {target!r}")
        new_names[t.name] = target
    out = CsdfGraph(name or graph.name)
    for t in graph.tasks():
        out.add_task(Task(new_names[t.name], t.durations))
    for b in graph.buffers():
        out.add_buffer(
            Buffer(
                b.name,
                new_names[b.source],
                new_names[b.target],
                b.production,
                b.consumption,
                b.initial_tokens,
                serialization=b.serialization,
            )
        )
    return out


def merge_graphs(
    graphs: Iterable[CsdfGraph],
    *,
    name: str = "merged",
) -> CsdfGraph:
    """Disjoint union; task/buffer names are prefixed with the graph name.

    Semantics caveat: the merged repetition vector is a common integer
    refinement of the parts', so the merged *graph iteration* — and with
    it the period Ω — is rescaled. The invariant is per-task throughput:
    every task's ``q_t/Ω`` rate is bounded by its standalone rate, with
    the slowest component attaining its bound (pinned by a property
    test).
    """
    out = CsdfGraph(name)
    for g in graphs:
        prefix = f"{g.name}."
        for t in g.tasks():
            out.add_task(Task(prefix + t.name, t.durations))
        for b in g.buffers():
            out.add_buffer(
                Buffer(
                    prefix + b.name,
                    prefix + b.source,
                    prefix + b.target,
                    b.production,
                    b.consumption,
                    b.initial_tokens,
                    serialization=b.serialization,
                )
            )
    return out


def scale_durations(graph: CsdfGraph, factor: int) -> CsdfGraph:
    """Multiply every phase duration by ``factor`` (≥ 1).

    Scales the exact period by exactly ``factor`` (homogeneity of the
    max-cycle-ratio — pinned by a property test).
    """
    if factor < 1:
        raise ModelError(f"duration factor must be ≥ 1, got {factor}")
    out = CsdfGraph(graph.name)
    for t in graph.tasks():
        out.add_task(Task(t.name, tuple(d * factor for d in t.durations)))
    for b in graph.buffers():
        out.add_buffer(b)
    return out


def scale_rates(graph: CsdfGraph, factor: int) -> CsdfGraph:
    """Multiply every rate *and marking* by ``factor`` (≥ 1).

    Token counts scale uniformly, so the repetition vector, liveness and
    the exact period are all unchanged (pinned by tests). Useful for
    building numerically-stressed variants of a benchmark.
    """
    if factor < 1:
        raise ModelError(f"rate factor must be ≥ 1, got {factor}")
    out = CsdfGraph(graph.name)
    for t in graph.tasks():
        out.add_task(t)
    for b in graph.buffers():
        out.add_buffer(
            Buffer(
                b.name,
                b.source,
                b.target,
                tuple(r * factor for r in b.production),
                tuple(r * factor for r in b.consumption),
                b.initial_tokens * factor,
                serialization=b.serialization,
            )
        )
    return out
