"""Graph-to-graph transformations.

* :mod:`repro.transforms.surgery` — renaming, merging, duration/rate
  scaling and other semantics-aware rewrites used by generators,
  examples, and the scaling benches.

(An exact structural CSDF→SDF phase splitting deliberately does *not*
exist here: cyclo-static firing patterns are strictly more expressive
than SDF channels, so any faithful conversion is the per-execution
unfolding — provided by
:func:`repro.baselines.unfolding.unfold_csdf_to_hsdf`.)
"""

from repro.transforms.surgery import (
    merge_graphs,
    relabel_graph,
    scale_durations,
    scale_rates,
)

__all__ = [
    "merge_graphs",
    "relabel_graph",
    "scale_durations",
    "scale_rates",
]
