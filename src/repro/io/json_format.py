"""Native JSON serialization of CSDF graphs.

Schema (version 1)::

    {
      "format": "repro-csdf",
      "version": 1,
      "name": "...",
      "tasks":   [{"name": "A", "durations": [1, 2]}, ...],
      "buffers": [{"name": "b", "source": "A", "target": "B",
                   "production": [1, 0], "consumption": [2],
                   "initial_tokens": 3}, ...]
    }

Deterministic field order so serialized graphs diff cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import ModelError
from repro.model.graph import (
    DICT_FORMAT_TAG as FORMAT_TAG,
    DICT_FORMAT_VERSION as FORMAT_VERSION,
    CsdfGraph,
)


def graph_to_json(graph: CsdfGraph, *, canonical: bool = False) -> str:
    """Serialize a graph to a JSON string (see :meth:`CsdfGraph.to_dict`)."""
    return json.dumps(graph.to_dict(canonical=canonical), indent=2)


def graph_from_json(text: str) -> CsdfGraph:
    """Parse a graph from its JSON form (validating the schema tag)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelError(f"invalid JSON: {exc}") from exc
    # Stricter than from_dict (which defaults absent keys for in-process
    # payloads): an on-disk document must carry both markers explicitly.
    if payload.get("format") != FORMAT_TAG:
        raise ModelError(
            f"not a {FORMAT_TAG} document (format={payload.get('format')!r})"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported version {payload.get('version')!r}"
        )
    return CsdfGraph.from_dict(payload)


def save_graph(graph: CsdfGraph, path: Union[str, Path]) -> None:
    """Write a graph to a ``.json`` file."""
    Path(path).write_text(graph_to_json(graph))


def load_graph(path: Union[str, Path]) -> CsdfGraph:
    """Read a graph from a ``.json`` file."""
    return graph_from_json(Path(path).read_text())
