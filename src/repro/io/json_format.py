"""Native JSON serialization of CSDF graphs.

Schema (version 1)::

    {
      "format": "repro-csdf",
      "version": 1,
      "name": "...",
      "tasks":   [{"name": "A", "durations": [1, 2]}, ...],
      "buffers": [{"name": "b", "source": "A", "target": "B",
                   "production": [1, 0], "consumption": [2],
                   "initial_tokens": 3}, ...]
    }

Deterministic field order so serialized graphs diff cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import ModelError
from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task

FORMAT_TAG = "repro-csdf"
FORMAT_VERSION = 1


def graph_to_json(graph: CsdfGraph) -> str:
    """Serialize a graph to a JSON string."""
    payload = {
        "format": FORMAT_TAG,
        "version": FORMAT_VERSION,
        "name": graph.name,
        "tasks": [
            {"name": t.name, "durations": list(t.durations)}
            for t in graph.tasks()
        ],
        "buffers": [
            {
                "name": b.name,
                "source": b.source,
                "target": b.target,
                "production": list(b.production),
                "consumption": list(b.consumption),
                "initial_tokens": b.initial_tokens,
            }
            for b in graph.buffers()
        ],
    }
    return json.dumps(payload, indent=2)


def graph_from_json(text: str) -> CsdfGraph:
    """Parse a graph from its JSON form (validating the schema tag)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelError(f"invalid JSON: {exc}") from exc
    if payload.get("format") != FORMAT_TAG:
        raise ModelError(
            f"not a {FORMAT_TAG} document (format={payload.get('format')!r})"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported version {payload.get('version')!r}"
        )
    graph = CsdfGraph(payload.get("name", "csdfg"))
    for t in payload.get("tasks", []):
        graph.add_task(Task(t["name"], tuple(t["durations"])))
    for b in payload.get("buffers", []):
        graph.add_buffer(
            Buffer(
                name=b["name"],
                source=b["source"],
                target=b["target"],
                production=tuple(b["production"]),
                consumption=tuple(b["consumption"]),
                initial_tokens=b.get("initial_tokens", 0),
            )
        )
    return graph


def save_graph(graph: CsdfGraph, path: Union[str, Path]) -> None:
    """Write a graph to a ``.json`` file."""
    Path(path).write_text(graph_to_json(graph))


def load_graph(path: Union[str, Path]) -> CsdfGraph:
    """Read a graph from a ``.json`` file."""
    return graph_from_json(Path(path).read_text())
