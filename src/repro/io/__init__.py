"""Serialization: JSON round-trip, SDF3-compatible XML, Graphviz DOT.

The JSON format is the library's native interchange; the XML reader and
writer speak the subset of the SDF3 ``sdf``/``csdf`` schema needed to
exchange graphs with SDF3-era tooling (the benchmark suites the paper
evaluates are distributed in that format).
"""

from repro.io.json_format import graph_from_json, graph_to_json, load_graph, save_graph
from repro.io.schedule_format import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)
from repro.io.sdf3_xml import read_sdf3_xml, write_sdf3_xml
from repro.io.dot import constraint_graph_to_dot, graph_to_dot

__all__ = [
    "graph_from_json",
    "graph_to_json",
    "load_graph",
    "save_graph",
    "load_schedule",
    "save_schedule",
    "schedule_from_json",
    "schedule_to_json",
    "read_sdf3_xml",
    "write_sdf3_xml",
    "constraint_graph_to_dot",
    "graph_to_dot",
]
