"""Graphviz DOT export — CSDF graphs and bi-valued constraint graphs.

Used by the paper-figure example to regenerate Figure 5 (the bi-valued
graph of the running example) in a renderable form.
"""

from __future__ import annotations

from typing import Optional

from repro.mcrp.graph import BiValuedGraph
from repro.model.graph import CsdfGraph


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def graph_to_dot(graph: CsdfGraph) -> str:
    """A CSDFG as DOT: tasks as boxes, buffers as labelled edges."""
    lines = [f'digraph "{_escape(graph.name)}" {{', "  rankdir=LR;",
             "  node [shape=box];"]
    for t in graph.tasks():
        label = f"{t.name}\\nd={list(t.durations)}"
        lines.append(f'  "{_escape(t.name)}" [label="{label}"];')
    for b in graph.buffers():
        label = (
            f"{list(b.production)} → {list(b.consumption)}"
            + (f"\\nM0={b.initial_tokens}" if b.initial_tokens else "")
        )
        style = " style=dashed" if b.serialization else ""
        lines.append(
            f'  "{_escape(b.source)}" -> "{_escape(b.target)}" '
            f'[label="{label}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def constraint_graph_to_dot(
    bi_graph: BiValuedGraph,
    *,
    critical_arcs: Optional[set] = None,
) -> str:
    """A bi-valued graph as DOT with ``(L, H)`` edge labels (Figure 5).

    ``critical_arcs`` (arc indices) are drawn bold red — pass the
    critical circuit from a :class:`~repro.mcrp.graph.CycleResult` to
    highlight it the way the paper's Figure 5 caption does.
    """
    critical_arcs = critical_arcs or set()
    lines = ["digraph constraints {", "  node [shape=circle];"]
    for idx, label in enumerate(bi_graph.labels):
        if isinstance(label, tuple) and len(label) == 2:
            text = f"{label[0]}{label[1]}"
        else:
            text = str(label)
        lines.append(f'  n{idx} [label="{_escape(text)}"];')
    for i in range(bi_graph.arc_count):
        cost = bi_graph.arc_cost[i]
        transit = bi_graph.arc_transit[i]
        style = " color=red penwidth=2" if i in critical_arcs else ""
        lines.append(
            f"  n{bi_graph.arc_src[i]} -> n{bi_graph.arc_dst[i]} "
            f'[label="({cost}, {transit})"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
